"""Available-check analysis: which byte ranges are already guarded.

A *fact* says: "on every path reaching this point, the bytes in these
ranges of this object were validated by a check that executed after the
object's addressability last possibly changed."  A later check whose
coverage is contained in an available range is redundant and can be
eliminated — across block boundaries, which the old window-based
``AliasedCheckElimination`` could not see.

Facts are keyed two ways:

* by **provenance root** (``alloc:``/``stack:``/``global:``/``param:``)
  with root-relative byte ranges, when the base pointer's provenance and
  total offset are statically known;
* by **current value** of the base variable (``("v", name)``) otherwise.
  Such a fact covers ranges relative to whatever the variable holds
  *right now*; any redefinition of the variable kills it.  This is what
  dedupes checks on freshly loaded pointers (``p->a`` then ``p->b``),
  where provenance is unknown but the base value is provably unchanged.

Kills keep the analysis honest about lifetimes: ``Free`` through a known
pointer kills that root (plus all value-keyed facts, which may alias
it); ``Free`` through an unknown pointer kills everything; ``Call``
without a summary kills everything except stack/global roots (a callee
cannot pop the caller's frame).  A ``Malloc`` kills its own root's facts
— the same allocation site produces a fresh object every execution.

With interprocedural summaries (:mod:`repro.dataflow.summaries`) a call
site becomes precise in both directions:

* **kills** shrink to the callee's summarized free effects — only the
  provenance roots of arguments bound to may-freed parameters die (plus
  value-keyed facts, which may alias them).  A provably non-freeing
  callee kills nothing, so checks hoisted above a call stay available
  after it;
* **gen** appears: the callee's per-parameter must-``checked`` ranges —
  offsets it validated on every path by its exit — are translated
  through each argument's base offset and recorded post-call.  This is
  sound because the ranges were validated after the object's
  addressability last possibly changed (the callee's own analysis
  guarantees exactly that at its exit), and nothing between the
  callee's exit and the caller's post-call point runs at all.

``entry_facts`` seeds the boundary state: the cross-call eliminator
passes the intersection of every call site's surviving coverage,
letting a callee's prologue checks be elided when all callers already
validated the range (see ``passes/check_merging.py``).

Anchored region checks (GiantSan's §4.4.1 shape) validate everything
from the base pointer to the region end, so their coverage is widened to
``[min(base, start), end)`` before it is recorded or tested.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..ir.nodes import (
    Assign,
    Call,
    CheckAccess,
    CheckRegion,
    Free,
    GlobalAlloc,
    Instr,
    Load,
    Malloc,
    PtrAdd,
    StackAlloc,
    Var,
)
from ..ir.program import Function
from .cfg import CFG, BasicBlock
from .solver import ForwardAnalysis


def eval_const(expr):
    """Late-bound :func:`repro.passes.constprop.eval_const`.

    The passes package imports this module at load time; importing it
    back lazily keeps ``import repro.dataflow`` cycle-free.
    """
    from ..passes.constprop import eval_const as impl

    return impl(expr)

#: An immutable, normalized set of half-open byte ranges.
IntervalSet = Tuple[Tuple[int, int], ...]

#: Fact key: a provenance root string, or ("v", variable name).
FactKey = object


def normalize(ranges: List[Tuple[int, int]]) -> IntervalSet:
    """Sort, drop empties, and coalesce overlapping/adjacent ranges."""
    spans = sorted((lo, hi) for lo, hi in ranges if lo < hi)
    merged: List[Tuple[int, int]] = []
    for lo, hi in spans:
        if merged and lo <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return tuple(merged)


def union(a: IntervalSet, b: IntervalSet) -> IntervalSet:
    return normalize(list(a) + list(b))


def intersect(a: IntervalSet, b: IntervalSet) -> IntervalSet:
    result: List[Tuple[int, int]] = []
    for alo, ahi in a:
        for blo, bhi in b:
            lo, hi = max(alo, blo), min(ahi, bhi)
            if lo < hi:
                result.append((lo, hi))
    return normalize(result)


def covers(available: IntervalSet, lo: int, hi: int) -> bool:
    """True when ``[lo, hi)`` lies inside one available range."""
    if lo >= hi:
        return True  # empty coverage is vacuously guarded
    return any(alo <= lo and hi <= ahi for alo, ahi in available)


class AvailableCheckAnalysis(ForwardAnalysis):
    """Forward must-analysis of validated byte ranges.

    ``suppressed`` holds ``id()`` of checks that must not generate facts
    — the elimination pass uses it to rule out a check justifying its
    own deletion through a loop back edge.
    """

    def __init__(
        self,
        function: Function,
        provenance_map,
        suppressed: Optional[Set[int]] = None,
        summaries: Optional[Dict[str, object]] = None,
        entry_facts: Optional[Dict[FactKey, IntervalSet]] = None,
    ) -> None:
        self.function = function
        self.pmap = provenance_map
        self.suppressed: Set[int] = suppressed or set()
        self.summaries = summaries
        self.entry_facts = entry_facts

    # -- lattice -------------------------------------------------------
    def boundary(self, cfg: CFG) -> Dict[FactKey, IntervalSet]:
        if self.entry_facts:
            return dict(self.entry_facts)
        return {}

    def copy(self, state) -> Dict[FactKey, IntervalSet]:
        return dict(state)

    def meet(self, a, b) -> Dict[FactKey, IntervalSet]:
        merged: Dict[FactKey, IntervalSet] = {}
        for key in a.keys() & b.keys():
            ranges = intersect(a[key], b[key])
            if ranges:
                merged[key] = ranges
        return merged

    # -- coverage ------------------------------------------------------
    def coverage(
        self, instr: Instr
    ) -> Optional[Tuple[FactKey, int, int]]:
        """``(fact key, lo, hi)`` guarded by ``instr``, or None.

        Offsets must fold to constants (constant propagation has already
        run); anything symbolic generates and eliminates nothing.
        """
        if isinstance(instr, CheckAccess):
            offset = eval_const(instr.offset)
            if offset is None:
                return None
            key, base_off = self._key_for(instr.base)
            lo = base_off + offset
            return key, lo, lo + instr.width
        if isinstance(instr, CheckRegion):
            start = eval_const(instr.start)
            end = eval_const(instr.end)
            if start is None or end is None:
                return None
            key, base_off = self._key_for(instr.base)
            lo, hi = base_off + start, base_off + end
            if instr.use_anchor:
                # the runtime widens the region to start at the anchor
                lo = min(lo, base_off)
            return key, lo, hi
        return None

    def _key_for(self, base: str) -> Tuple[FactKey, int]:
        prov = self.pmap.provenance(base)
        if prov is not None:
            base_off = eval_const(prov.offset)
            if base_off is not None:
                return prov.root, base_off
        return ("v", base), 0

    # -- transfer ------------------------------------------------------
    def transfer(self, instr: Instr, state) -> None:
        if isinstance(instr, (CheckAccess, CheckRegion)):
            if id(instr) in self.suppressed:
                return
            covered = self.coverage(instr)
            if covered is not None:
                key, lo, hi = covered
                state[key] = union(state.get(key, ()), ((lo, hi),))
            return
        if isinstance(instr, Free):
            prov = self.pmap.provenance(instr.ptr)
            if prov is None:
                state.clear()
                return
            self._kill_root(state, prov.root)
            self._kill_value_facts(state)
            return
        if isinstance(instr, Call):
            self._transfer_call(instr, state)
            return
        if isinstance(instr, Malloc):
            # this site's previous object (a prior loop iteration) is
            # not this object
            state.pop(f"alloc:{id(instr)}", None)
            self._kill_var(state, instr.dst)
            return
        if isinstance(instr, (StackAlloc, GlobalAlloc)):
            self._kill_var(state, instr.dst)
            return
        if isinstance(instr, (Assign, Load, PtrAdd)):
            self._kill_var(state, instr.dst)
            return

    def _transfer_call(self, instr: Call, state) -> None:
        summary = (
            self.summaries.get(instr.func)
            if self.summaries is not None
            else None
        )
        if (
            summary is None
            or summary.recursive
            or summary.may_free_unknown
        ):
            # opaque call: today's treatment — anything heap-like may
            # have been freed by the callee
            self._kill_heap_facts(state)
            if instr.dst:
                self._kill_var(state, instr.dst)
            return
        # -- kills: only what the summary says the callee may free
        freed_any = False
        for index, facts in enumerate(summary.param_facts):
            if not facts.freed:
                continue
            freed_any = True
            arg = (
                instr.args[index] if index < len(instr.args) else None
            )
            prov = (
                self.pmap.provenance(arg.name)
                if isinstance(arg, Var)
                else None
            )
            if prov is not None:
                self._kill_root(state, prov.root)
            else:
                # may-freed argument of unknown provenance: any object
                # could be the one that died
                self._kill_heap_facts(state)
                freed_any = False  # value facts already gone
                break
        if freed_any:
            # value-keyed facts may alias the freed roots
            self._kill_value_facts(state)
        # re-execution of this site yields a fresh returned object
        state.pop(f"callret:{id(instr)}", None)
        # -- gen: ranges the callee validated on every path by exit,
        # translated through each argument's base offset
        for index, facts in enumerate(summary.param_facts):
            ranges = self._call_facts(facts)
            if not ranges:
                continue
            arg = (
                instr.args[index] if index < len(instr.args) else None
            )
            if not isinstance(arg, Var):
                continue
            key, base_off = self._key_for(arg.name)
            shifted = tuple(
                (base_off + lo, base_off + hi) for lo, hi in ranges
            )
            state[key] = union(state.get(key, ()), shifted)
        if instr.dst:
            self._kill_var(state, instr.dst)

    def _call_facts(self, facts) -> IntervalSet:
        """Post-call fact ranges contributed per parameter (hook:
        :class:`repro.dataflow.summaries.MustAccessAnalysis` overrides
        this to propagate must-accessed instead of must-checked)."""
        return facts.checked

    def at_block_start(self, block: BasicBlock, state) -> None:
        loop = block.loop_body_of
        if loop is not None:
            # the header rebinds the induction variable every iteration
            self._kill_var(state, loop.var)

    @staticmethod
    def _kill_var(state, name: str) -> None:
        state.pop(("v", name), None)

    @staticmethod
    def _kill_value_facts(state) -> None:
        for key in list(state):
            if isinstance(key, tuple) and key and key[0] == "v":
                del state[key]

    @staticmethod
    def _kill_root(state, root: str) -> None:
        """Kill facts for a freed root — and, because distinct
        parameters may alias the same caller object, freeing through
        any ``param:`` root kills every ``param:`` fact."""
        state.pop(root, None)
        if root.startswith("param:"):
            for key in list(state):
                if isinstance(key, str) and key.startswith("param:"):
                    del state[key]

    @staticmethod
    def _kill_heap_facts(state) -> None:
        """Kill every fact except stack/global roots (a callee cannot
        pop the caller's frame or unmap a global)."""
        for key in list(state):
            if not (
                isinstance(key, str)
                and key.startswith(("stack:", "global:"))
            ):
                del state[key]
