"""Allocation-lifetime analysis: LIVE / FREED / MAYBE per object root.

Tracks, per provenance root (``alloc:``/``stack:``/``global:``/
``param:``), whether the object is definitely live, definitely freed, or
unknown at each program point.  Consumers:

* check **elision** requires LIVE — an in-bounds proof only removes a
  check when the object's lifetime provably covers the access;
* the static bug detector reports a *definite* use-after-free when an
  access's root is FREED on all paths, and a definite double-free when a
  ``Free`` executes against an already-FREED root.

Stack and global buffers stay live for the whole function (frames pop at
return; globals are immortal), so only heap roots ever transition.  A
``Free`` through an unknown pointer or a ``Call`` (which may free
anything the callee can reach) degrades every heap root to MAYBE.

With interprocedural summaries a ``Call`` degrades only the provenance
roots of arguments bound to may-freed parameters — a call to a provably
non-freeing callee leaves every lifetime fact intact.  A callee that
definitely returns a fresh heap allocation contributes a
``callret:{id(call)}`` root: MAYBE in the entry state (the call has not
executed), LIVE after the call transfers.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..ir.nodes import (
    Call,
    Free,
    GlobalAlloc,
    Instr,
    Malloc,
    StackAlloc,
    Var,
)
from ..ir.program import Function, walk
from .cfg import CFG
from .solver import ForwardAnalysis

LIVE = "live"
FREED = "freed"
MAYBE = "maybe"


def _meet_state(a: str, b: str) -> str:
    return a if a == b else MAYBE


class AllocStateAnalysis(ForwardAnalysis):
    """Forward lifetime analysis; state is ``{root: LIVE|FREED|MAYBE}``.

    Every root the function can mention is materialized in the entry
    state: stack/global/param roots start LIVE, heap roots start MAYBE
    (their ``Malloc`` has not executed yet) and become LIVE at their
    allocation site.
    """

    def __init__(
        self,
        function: Function,
        provenance_map,
        summaries: Optional[Dict[str, object]] = None,
    ) -> None:
        self.function = function
        self.pmap = provenance_map
        self.summaries = summaries
        # materialize every root up front so degradation (Call, unknown
        # Free) reaches roots that have not been touched yet
        self._entry: Dict[str, str] = {}
        for name in function.params:
            self._entry[f"param:{name}"] = LIVE
        for instr in walk(function.body):
            if isinstance(instr, Malloc):
                self._entry[f"alloc:{id(instr)}"] = MAYBE
            elif isinstance(instr, StackAlloc):
                self._entry[f"stack:{id(instr)}"] = LIVE
            elif isinstance(instr, GlobalAlloc):
                self._entry[f"global:{id(instr)}"] = LIVE
            elif isinstance(instr, Call):
                summary = self._summary_of(instr)
                if summary is not None and summary.returns_fresh is not None:
                    self._entry[f"callret:{id(instr)}"] = MAYBE

    def _summary_of(self, instr: Call):
        if self.summaries is None:
            return None
        return self.summaries.get(instr.func)

    def boundary(self, cfg: CFG) -> Dict[str, str]:
        return dict(self._entry)

    def copy(self, state: Dict[str, str]) -> Dict[str, str]:
        return dict(state)

    def meet(self, a: Dict[str, str], b: Dict[str, str]) -> Dict[str, str]:
        merged: Dict[str, str] = {}
        for root in a.keys() | b.keys():
            merged[root] = _meet_state(
                a.get(root, MAYBE), b.get(root, MAYBE)
            )
        return merged

    def transfer(self, instr: Instr, state: Dict[str, str]) -> None:
        if isinstance(instr, Malloc):
            state[f"alloc:{id(instr)}"] = LIVE
        elif isinstance(instr, Free):
            prov = self.pmap.provenance(instr.ptr)
            if prov is not None:
                state[prov.root] = FREED
                # distinct parameters may alias one caller object, so a
                # free through any param root clouds every other param
                self._degrade_param_aliases(state, prov.root)
            else:
                # an unknown pointer may free any heap object
                for root in list(state):
                    if self._heap_like(root):
                        state[root] = MAYBE
        elif isinstance(instr, Call):
            summary = self._summary_of(instr)
            if (
                summary is None
                or summary.recursive
                or summary.may_free_unknown
            ):
                # the callee may free anything it can reach
                for root in list(state):
                    if self._heap_like(root):
                        state[root] = MAYBE
                return
            # only arguments bound to may-freed parameters can die
            for index, facts in enumerate(summary.param_facts):
                if not facts.freed:
                    continue
                arg = (
                    instr.args[index]
                    if index < len(instr.args)
                    else None
                )
                prov = (
                    self.pmap.provenance(arg.name)
                    if isinstance(arg, Var)
                    else None
                )
                if prov is not None:
                    if self._heap_like(prov.root):
                        state[prov.root] = MAYBE
                    self._degrade_param_aliases(state, prov.root)
                else:
                    for root in list(state):
                        if self._heap_like(root):
                            state[root] = MAYBE
                    return
            if summary.returns_fresh is not None:
                state[f"callret:{id(instr)}"] = LIVE

    @staticmethod
    def _heap_like(root: str) -> bool:
        return not (root.startswith("stack:") or root.startswith("global:"))

    @staticmethod
    def _degrade_param_aliases(state: Dict[str, str], root: str) -> None:
        """A free through a ``param:`` root may have freed the object
        behind any *other* parameter (the caller may pass one pointer
        twice); degrade the rest to MAYBE."""
        if not root.startswith("param:"):
            return
        for other in state:
            if other.startswith("param:") and other != root:
                state[other] = MAYBE

    # ------------------------------------------------------------------
    @staticmethod
    def state_of(state: Dict[str, str], root: str) -> str:
        """The lifetime state of ``root`` (absent roots are unknown)."""
        return state.get(root, MAYBE)
