"""Bottom-up function summaries: what a call can do to its caller.

A :class:`FunctionSummary` condenses one function's externally visible
effects so the intraprocedural analyses can consume a ``Call`` site
precisely instead of clobbering to ⊤:

* **per-parameter facts** (:class:`ParamFacts`) — which byte offsets of
  the pointee the callee may access, *must* access on every path, and
  must have validated with a check by the time it returns; whether the
  parameter may be freed; whether the pointer value escapes (stored to
  memory, passed onward to a capturing callee, or returned);
* **free effects** — ``may_free_unknown`` is the ⊤ effect: the callee
  (or something it calls) may free an object the summary cannot name
  (a free through a loaded pointer, a call to an unknown or recursive
  target).  When it is clear, the *only* objects a call can free are
  the arguments listed in the per-parameter freed set — a callee can
  reach nothing else: our IR has no globals-held pointers except those
  stored by an observed ``Store`` (whose later free appears as a free
  through an unknown pointer, which sets the ⊤ flag);
* **returned-fresh-allocation** — the callee definitely returns a
  pointer to the base of a heap object it allocated itself, of at least
  ``returns_fresh`` bytes, that it neither freed nor leaked elsewhere.
  The caller may treat the destination as a brand-new object root;
* **return interval** — a value range for the returned integer;
* **purity** — no writes, no frees, no allocations (reported by the
  whole-program analyzer; not itself load-bearing).

Summaries are computed bottom-up over the call graph's SCC condensation
(:mod:`repro.dataflow.callgraph`).  Members of non-trivial SCCs and
self-recursive functions take the conservative ⊤ summary — exactly the
pre-interprocedural treatment of every call — so recursion never needs
a cross-function fixpoint to stay sound.  Calls to targets missing from
the program degrade the caller's summary the same way.

The lattice ordering is "fewer claimed effects is above": ⊤ claims
every effect (may free anything, accesses unknown) and guarantees none
(no checked ranges, no fresh return).  Every consumer treats an absent
summary as ⊤, which makes summaries an optional refinement: disable
them (``REPRO_INTERPROC=0``) and every analysis behaves byte-for-byte
as before.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir.nodes import (
    Call,
    CheckAccess,
    CheckRegion,
    Free,
    Instr,
    Load,
    Malloc,
    Memcpy,
    Memset,
    Return,
    Store,
    Strcpy,
    Var,
)
from ..ir.program import Function, Program, walk
from .available import AvailableCheckAnalysis, IntervalSet, normalize, union
from .callgraph import CallGraph, build_call_graph
from .cfg import lower_function
from .intervals import TOP, Interval, IntervalAnalysis, const, eval_expr
from .solver import solve


def interprocedural_default() -> bool:
    """Process default for summary-based analysis (``REPRO_INTERPROC``)."""
    return os.environ.get("REPRO_INTERPROC", "1").lower() not in (
        "0",
        "false",
        "off",
    )


@dataclass(frozen=True)
class ParamFacts:
    """Summarized effects on (the pointee of) one parameter.

    Offsets are bytes relative to the pointer value passed in.
    ``accessed`` is a may-over-approximation (``None`` = unknown/⊤);
    ``must_access`` and ``checked`` are must-under-approximations
    (empty = nothing guaranteed).
    """

    accessed: Optional[IntervalSet] = ()
    must_access: IntervalSet = ()
    checked: IntervalSet = ()
    freed: bool = False
    escapes: bool = False

    def as_dict(self) -> dict:
        return {
            "accessed": None if self.accessed is None else list(self.accessed),
            "must_access": list(self.must_access),
            "checked": list(self.checked),
            "freed": self.freed,
            "escapes": self.escapes,
        }


#: The ⊤ parameter facts: claims every effect, guarantees nothing.
TOP_PARAM = ParamFacts(accessed=None, freed=True, escapes=True)


@dataclass(frozen=True)
class FunctionSummary:
    """Externally visible effects of one function."""

    name: str
    params: Tuple[str, ...]
    param_facts: Tuple[ParamFacts, ...] = ()
    may_free_unknown: bool = False
    writes_memory: bool = False
    allocates: bool = False
    returns_fresh: Optional[int] = None
    return_interval: Interval = TOP
    recursive: bool = False

    @property
    def frees_nothing(self) -> bool:
        """No call to this function can deallocate anything."""
        return not self.may_free_unknown and not any(
            facts.freed for facts in self.param_facts
        )

    @property
    def pure(self) -> bool:
        return (
            not self.writes_memory
            and not self.allocates
            and self.frees_nothing
        )

    def facts_for(self, index: int) -> ParamFacts:
        if 0 <= index < len(self.param_facts):
            return self.param_facts[index]
        return TOP_PARAM

    def as_dict(self) -> dict:
        return {
            "params": list(self.params),
            "param_facts": {
                name: facts.as_dict()
                for name, facts in zip(self.params, self.param_facts)
            },
            "may_free_unknown": self.may_free_unknown,
            "frees_nothing": self.frees_nothing,
            "writes_memory": self.writes_memory,
            "allocates": self.allocates,
            "pure": self.pure,
            "returns_fresh": self.returns_fresh,
            "return_interval": repr(self.return_interval),
            "recursive": self.recursive,
        }

    def render(self) -> str:
        bits = []
        if self.recursive:
            bits.append("recursive: conservative ⊤")
        elif self.pure:
            bits.append("pure")
        else:
            if self.frees_nothing:
                bits.append("frees nothing")
            elif self.may_free_unknown:
                bits.append("may free unknown objects")
            else:
                freed = [
                    name
                    for name, facts in zip(self.params, self.param_facts)
                    if facts.freed
                ]
                bits.append(f"may free {', '.join(freed)}")
            if self.writes_memory:
                bits.append("writes memory")
        if self.returns_fresh is not None:
            bits.append(f"returns fresh {self.returns_fresh}-byte alloc")
        elif self.return_interval != TOP:
            bits.append(f"returns {self.return_interval!r}")
        param_bits = []
        for name, facts in zip(self.params, self.param_facts):
            spans = (
                "?" if facts.accessed is None
                else ",".join(f"[{lo},{hi})" for lo, hi in facts.accessed)
                or "-"
            )
            checked = ",".join(f"[{lo},{hi})" for lo, hi in facts.checked)
            detail = f"{name}: touches {spans}"
            if checked:
                detail += f", checks {checked}"
            if facts.freed:
                detail += ", may free"
            if facts.escapes:
                detail += ", escapes"
            param_bits.append(detail)
        head = "; ".join(bits) if bits else "no effects"
        if param_bits:
            return f"{head} | " + " | ".join(param_bits)
        return head


def conservative_summary(
    name: str, params: List[str], recursive: bool = False
) -> FunctionSummary:
    """The ⊤ summary: today's call-site treatment, spelled out."""
    return FunctionSummary(
        name=name,
        params=tuple(params),
        param_facts=tuple(TOP_PARAM for _ in params),
        may_free_unknown=True,
        writes_memory=True,
        allocates=True,
        returns_fresh=None,
        return_interval=TOP,
        recursive=recursive,
    )


def call_is_opaque(summary: Optional[FunctionSummary]) -> bool:
    """True when a call must be treated with full conservatism."""
    return (
        summary is None or summary.recursive or summary.may_free_unknown
    )


def call_frees_nothing(
    call: Call, summaries: Optional[Dict[str, FunctionSummary]]
) -> bool:
    """True when ``call`` provably cannot deallocate any object."""
    if not summaries:
        return False
    summary = summaries.get(call.func)
    return (
        summary is not None
        and not summary.recursive
        and summary.frees_nothing
    )


class MustAccessAnalysis(AvailableCheckAnalysis):
    """Must-ACCESSED byte ranges, in the available-check framework.

    Facts are generated by real dereferences (loads, stores, fills,
    copies) with constant extents instead of by checks; kills are
    identical.  The exit state, restricted to parameter roots, is the
    summary's ``must_access`` — offsets the callee dereferences on
    every path, which the static detector turns into definite
    cross-call findings.
    """

    def transfer(self, instr: Instr, state) -> None:
        if isinstance(instr, (CheckAccess, CheckRegion)):
            return  # checks validate; they do not access
        for lo, hi, base in self._access_spans(instr):
            key, base_off = self._key_for(base)
            state[key] = union(
                state.get(key, ()), ((base_off + lo, base_off + hi),)
            )
        super().transfer(instr, state)

    def _access_spans(self, instr: Instr):
        spans = []
        if isinstance(instr, (Load, Store)):
            offset = eval_const(instr.offset)
            if offset is not None:
                spans.append((offset, offset + instr.width, instr.base))
        elif isinstance(instr, Memset):
            offset = eval_const(instr.offset)
            length = eval_const(instr.length)
            if offset is not None and length is not None and length > 0:
                spans.append((offset, offset + length, instr.base))
        elif isinstance(instr, Memcpy):
            length = eval_const(instr.length)
            if length is not None and length > 0:
                for base, off_expr in (
                    (instr.dst_base, instr.dst_offset),
                    (instr.src_base, instr.src_offset),
                ):
                    offset = eval_const(off_expr)
                    if offset is not None:
                        spans.append((offset, offset + length, base))
        return spans

    def _call_facts(self, facts: ParamFacts) -> IntervalSet:
        return facts.must_access


#: Late import shim shared with :mod:`repro.dataflow.available`.
def eval_const(expr):
    from ..passes.constprop import eval_const as impl

    return impl(expr)


# ----------------------------------------------------------------------
# summary computation
# ----------------------------------------------------------------------
def compute_summaries(
    program: Program, graph: Optional[CallGraph] = None
) -> Dict[str, FunctionSummary]:
    """Summaries for every function, computed callees-first."""
    graph = graph or build_call_graph(program)
    summaries: Dict[str, FunctionSummary] = {}
    for name in graph.bottom_up():
        function = program.functions[name]
        if name in graph.recursive or name in graph.unknown_callers:
            summaries[name] = conservative_summary(
                name, function.params, recursive=name in graph.recursive
            )
        else:
            summaries[name] = _summarize(function, summaries)
    return summaries


def _summarize(
    function: Function, summaries: Dict[str, FunctionSummary]
) -> FunctionSummary:
    from ..passes.alias import ProvenanceMap

    pmap = ProvenanceMap(function, summaries=summaries)
    cfg = lower_function(function)
    intervals = solve(cfg, IntervalAnalysis(summaries=summaries))

    params = list(function.params)
    param_roots = {f"param:{name}": i for i, name in enumerate(params)}
    #: per-param may-accessed ranges; None = ⊤ (unknown extent)
    accessed: List[Optional[List[Tuple[int, int]]]] = [[] for _ in params]
    freed = [False] * len(params)
    escapes = [False] * len(params)
    may_free_unknown = False
    writes_memory = False
    allocates = False
    escaped_roots: set = set()
    freed_roots: set = set()
    returns: List[Tuple[Return, Dict[str, Interval]]] = []

    def param_of(var: Optional[str]) -> Optional[int]:
        if var is None:
            return None
        prov = pmap.provenance(var)
        if prov is None:
            return None
        return param_roots.get(prov.root)

    def touch(index: Optional[int], span: Optional[Tuple[int, int]]):
        """Record a may-access on param ``index`` (None span = ⊤)."""
        if index is None:
            return
        if span is None:
            accessed[index] = None
        elif accessed[index] is not None:
            accessed[index].append(span)

    def access_span(base, offset_expr, width_iv, ivals):
        """Root-relative (lo, hi) span of an access, or None for ⊤."""
        prov = pmap.provenance(base)
        if prov is None:
            return None
        offset = eval_expr(prov.offset, ivals).hull(const(0))
        total = _iv_add(eval_expr(offset_expr, ivals), offset)
        if total.lo is None or total.hi is None:
            return None
        if width_iv.hi is None:
            return None
        return (total.lo, total.hi + width_iv.hi)

    for block in cfg.blocks:
        if block.index not in intervals.in_states:
            continue
        for instr, ivals in intervals.replay(block):
            if isinstance(instr, (Load, Store)):
                index = param_of(instr.base)
                touch(
                    index,
                    access_span(
                        instr.base, instr.offset, const(instr.width), ivals
                    ),
                )
                if isinstance(instr, Store):
                    writes_memory = True
                    if isinstance(instr.value, Var):
                        _mark_escape(
                            pmap, instr.value.name, param_roots,
                            escapes, escaped_roots,
                        )
            elif isinstance(instr, Memset):
                writes_memory = True
                touch(
                    param_of(instr.base),
                    access_span(
                        instr.base, instr.offset,
                        eval_expr(instr.length, ivals), ivals,
                    ),
                )
            elif isinstance(instr, Memcpy):
                writes_memory = True
                length = eval_expr(instr.length, ivals)
                for base, off in (
                    (instr.dst_base, instr.dst_offset),
                    (instr.src_base, instr.src_offset),
                ):
                    touch(
                        param_of(base),
                        access_span(base, off, length, ivals),
                    )
            elif isinstance(instr, Strcpy):
                writes_memory = True
                touch(param_of(instr.dst_base), None)
                touch(param_of(instr.src_base), None)
            elif isinstance(instr, Free):
                prov = pmap.provenance(instr.ptr)
                if prov is None:
                    may_free_unknown = True
                elif prov.root in param_roots:
                    freed[param_roots[prov.root]] = True
                else:
                    freed_roots.add(prov.root)
            elif isinstance(instr, Malloc):
                allocates = True
            elif isinstance(instr, Call):
                callee = summaries.get(instr.func)
                if call_is_opaque(callee):
                    may_free_unknown = True
                    writes_memory = True
                    allocates = True
                    for arg in instr.args:
                        if isinstance(arg, Var):
                            _mark_escape(
                                pmap, arg.name, param_roots,
                                escapes, escaped_roots,
                            )
                            touch(param_of(arg.name), None)
                    continue
                writes_memory |= callee.writes_memory
                allocates |= callee.allocates
                for index, facts in enumerate(callee.param_facts):
                    arg = (
                        instr.args[index]
                        if index < len(instr.args)
                        else None
                    )
                    arg_var = arg.name if isinstance(arg, Var) else None
                    prov = (
                        pmap.provenance(arg_var) if arg_var else None
                    )
                    if facts.freed:
                        if prov is None:
                            may_free_unknown = True
                        elif prov.root in param_roots:
                            freed[param_roots[prov.root]] = True
                        else:
                            freed_roots.add(prov.root)
                    if facts.escapes and arg_var is not None:
                        _mark_escape(
                            pmap, arg_var, param_roots,
                            escapes, escaped_roots,
                        )
                    own = param_of(arg_var)
                    if own is None:
                        continue
                    if facts.accessed is None:
                        touch(own, None)
                    else:
                        base_off = (
                            eval_const(prov.offset)
                            if prov is not None
                            else None
                        )
                        if base_off is None:
                            if facts.accessed:
                                touch(own, None)
                        else:
                            for lo, hi in facts.accessed:
                                touch(own, (lo + base_off, hi + base_off))
            elif isinstance(instr, Return):
                returns.append((instr, intervals.analysis.copy(ivals)))
                if instr.expr is not None and isinstance(instr.expr, Var):
                    _mark_escape(
                        pmap, instr.expr.name, param_roots,
                        escapes, escaped_roots,
                    )

    # a function whose body does not end in a top-level Return can fall
    # off the end (returning 0), so return facts must include that path
    definitely_returns = bool(function.body) and isinstance(
        function.body[-1], Return
    )

    return_interval = _return_interval(returns, definitely_returns)
    returns_fresh = _returns_fresh(
        function, pmap, returns, definitely_returns,
        escaped_roots, freed_roots, may_free_unknown,
    )

    # must-analyses over the same CFG: validated + dereferenced ranges
    # guaranteed by exit, keyed by parameter root
    checked_at_exit = _exit_param_facts(
        solve(
            cfg, AvailableCheckAnalysis(function, pmap, summaries=summaries)
        ),
        param_roots,
    )
    accessed_at_exit = _exit_param_facts(
        solve(cfg, MustAccessAnalysis(function, pmap, summaries=summaries)),
        param_roots,
    )

    facts = tuple(
        ParamFacts(
            accessed=(
                None
                if accessed[i] is None
                else normalize(accessed[i])
            ),
            must_access=accessed_at_exit.get(i, ()),
            checked=checked_at_exit.get(i, ()),
            freed=freed[i],
            escapes=escapes[i],
        )
        for i in range(len(params))
    )
    return FunctionSummary(
        name=function.name,
        params=tuple(params),
        param_facts=facts,
        may_free_unknown=may_free_unknown,
        writes_memory=writes_memory,
        allocates=allocates,
        returns_fresh=returns_fresh,
        return_interval=return_interval,
        recursive=False,
    )


def _iv_add(a: Interval, b: Interval) -> Interval:
    lo = None if a.lo is None or b.lo is None else a.lo + b.lo
    hi = None if a.hi is None or b.hi is None else a.hi + b.hi
    return Interval(lo, hi)


def _mark_escape(pmap, var, param_roots, escapes, escaped_roots) -> None:
    prov = pmap.provenance(var)
    if prov is None:
        return
    if prov.root in param_roots:
        escapes[param_roots[prov.root]] = True
    else:
        escaped_roots.add(prov.root)


def _exit_param_facts(solution, param_roots) -> Dict[int, IntervalSet]:
    """Exit-state facts restricted to parameter roots, by index."""
    state = solution.in_states.get(1, {})  # block 1 is the exit
    facts: Dict[int, IntervalSet] = {}
    for key, ranges in state.items():
        if isinstance(key, str) and key in param_roots and ranges:
            facts[param_roots[key]] = ranges
    return facts


def _return_interval(returns, definitely_returns) -> Interval:
    if not returns:
        return const(0)
    interval = None
    for instr, ivals in returns:
        value = (
            const(0)
            if instr.expr is None
            else eval_expr(instr.expr, ivals)
        )
        interval = value if interval is None else interval.hull(value)
    if not definitely_returns:
        interval = interval.hull(const(0))
    return interval


def _returns_fresh(
    function, pmap, returns, definitely_returns,
    escaped_roots, freed_roots, may_free_unknown,
) -> Optional[int]:
    """Constant size of the fresh heap object every return hands back,
    or None when any path may return something else (or leak/free it)."""
    if not returns or not definitely_returns or may_free_unknown:
        return None
    sizes: List[int] = []
    alloc_sizes = _alloc_sizes(function)
    for instr, _ in returns:
        if not isinstance(instr.expr, Var):
            return None
        prov = pmap.provenance(instr.expr.name)
        if prov is None or not prov.root.startswith("alloc:"):
            return None
        if eval_const(prov.offset) != 0:
            return None
        if prov.root in escaped_roots or prov.root in freed_roots:
            # Return-position uses are recorded as escapes too, but a
            # pointer that *only* escapes by being returned is exactly
            # the fresh-allocation shape; any other escape (a Store, a
            # capturing callee) disqualifies.  _mark_escape records
            # both identically, so re-check: stores/calls put the root
            # in escaped_roots before we get here only for non-return
            # uses... returns also add it.  Distinguish via a second
            # scan below.
            pass
        size = alloc_sizes.get(prov.root)
        if size is None:
            return None
        if prov.root in freed_roots:
            return None
        if _escapes_outside_return(function, pmap, prov.root):
            return None
        sizes.append(size)
    return min(sizes) if sizes else None


def _alloc_sizes(function) -> Dict[str, int]:
    sizes: Dict[str, int] = {}
    for instr in walk(function.body):
        if isinstance(instr, Malloc):
            size = eval_const(instr.size)
            if size is not None:
                sizes[f"alloc:{id(instr)}"] = size
    return sizes


def _escapes_outside_return(function, pmap, root: str) -> bool:
    """True when a pointer to ``root`` leaks anywhere but a Return."""
    for instr in walk(function.body):
        if isinstance(instr, Store) and isinstance(instr.value, Var):
            prov = pmap.provenance(instr.value.name)
            if prov is not None and prov.root == root:
                return True
        elif isinstance(instr, Call):
            for arg in instr.args:
                if isinstance(arg, Var):
                    prov = pmap.provenance(arg.name)
                    if prov is not None and prov.root == root:
                        return True
    return False
