"""A generic forward worklist solver over the lowered CFG.

Analyses implement the small :class:`ForwardAnalysis` protocol (boundary
state, meet, per-instruction transfer) and the solver iterates blocks in
reverse post-order until the in-states stabilize.  Loop headers get two
extra hooks:

* :meth:`ForwardAnalysis.at_block_start` runs after the meet, which is
  where the interval analysis clamps the induction variable to its trip
  range (and where any analysis models the header's redefinition of the
  loop variable);
* :meth:`ForwardAnalysis.widen` is applied once a header has been
  re-entered a few times, so lattices of unbounded height (intervals)
  still terminate.

States are treated as opaque values; the solver only copies, meets,
compares (``==``) and hands them to transfer functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..ir.nodes import Instr
from .cfg import CFG, LOOP_HEADER, BasicBlock

#: Header visits before widening kicks in (a few exact iterations first
#: keeps short constant loops precise).
WIDEN_AFTER = 3

#: Hard backstop against a non-monotone transfer function looping the
#: solver forever; generously above any legitimate fixpoint.
MAX_VISITS_PER_BLOCK = 200


class ForwardAnalysis:
    """Protocol for forward dataflow analyses (subclass and override)."""

    def boundary(self, cfg: CFG) -> object:
        """The state on entry to the function."""
        raise NotImplementedError

    def copy(self, state: object) -> object:
        raise NotImplementedError

    def meet(self, a: object, b: object) -> object:
        """Combine states at a join; must not mutate its arguments."""
        raise NotImplementedError

    def transfer(self, instr: Instr, state: object) -> None:
        """Apply one instruction's effect to ``state`` in place."""
        raise NotImplementedError

    def at_block_start(self, block: BasicBlock, state: object) -> None:
        """Hook applied after the meet (loop-header var effects)."""

    def widen(self, old: object, new: object) -> object:
        """Accelerate convergence at loop headers; default: no widening."""
        return new


@dataclass
class Solution:
    """Fixpoint states: per reachable block, the state at block entry."""

    cfg: CFG
    analysis: ForwardAnalysis
    in_states: Dict[int, object] = field(default_factory=dict)
    out_states: Dict[int, object] = field(default_factory=dict)

    def replay(
        self, block: BasicBlock
    ) -> Iterator[Tuple[Instr, object]]:
        """Yield ``(instr, state-before-instr)`` through one block.

        The yielded state is live — the caller sees it advance as the
        replay transfers each instruction — so consumers must read it
        before advancing the iterator.
        """
        state = self.analysis.copy(self.in_states[block.index])
        for instr in block.instrs:
            yield instr, state
            self.analysis.transfer(instr, state)

    def state_before(self, instr: Instr) -> Optional[object]:
        """The state just before ``instr``; None when unreachable."""
        for block in self.cfg.blocks:
            if block.index not in self.in_states:
                continue
            if any(i is instr for i in block.instrs):
                for candidate, state in self.replay(block):
                    if candidate is instr:
                        return self.analysis.copy(state)
        return None


def solve(cfg: CFG, analysis: ForwardAnalysis) -> Solution:
    """Run ``analysis`` to fixpoint over ``cfg``."""
    order = cfg.rpo()
    position = {index: i for i, index in enumerate(order)}
    solution = Solution(cfg=cfg, analysis=analysis)
    visits: Dict[int, int] = {}

    worklist: List[int] = [0]
    queued = {0}
    while worklist:
        # lowest RPO position first approximates topological order
        worklist.sort(key=lambda i: position[i])
        index = worklist.pop(0)
        queued.discard(index)
        block = cfg.blocks[index]
        visits[index] = visits.get(index, 0) + 1
        if visits[index] > MAX_VISITS_PER_BLOCK:
            raise RuntimeError(
                f"dataflow solver failed to converge at block {index}"
            )

        if index == 0:
            in_state = analysis.boundary(cfg)
        else:
            in_state = None
            for pred in block.preds:
                pred_out = solution.out_states.get(pred)
                if pred_out is None:
                    continue  # unvisited (or unreachable) predecessor
                if in_state is None:
                    in_state = analysis.copy(pred_out)
                else:
                    in_state = analysis.meet(in_state, pred_out)
            if in_state is None:
                continue  # no reachable predecessor yet

        analysis.at_block_start(block, in_state)
        old_in = solution.in_states.get(index)
        if block.kind == LOOP_HEADER and visits[index] > WIDEN_AFTER:
            if old_in is not None:
                in_state = analysis.widen(old_in, in_state)
        if old_in is not None and old_in == in_state:
            continue  # already at fixpoint for this block
        solution.in_states[index] = in_state

        out_state = analysis.copy(in_state)
        for instr in block.instrs:
            analysis.transfer(instr, out_state)
        solution.out_states[index] = out_state
        for succ in block.succs:
            if succ not in queued:
                worklist.append(succ)
                queued.add(succ)
    return solution
