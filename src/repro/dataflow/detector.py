"""Static bug detector: definite memory errors, found before running.

Combines the interval and allocation-state fixpoints to flag accesses
that are wrong on *every* execution reaching them:

* **definite-oob** — the access's offset interval lies entirely outside
  ``[0, size)`` of a statically sized object (every execution of the
  site overflows or underflows);
* **definite-uaf** — the access's heap root is FREED on all paths in;
* **definite-double-free** — a ``Free`` whose root is already FREED on
  all paths.

"May" errors (offset interval straddling the bound, MAYBE lifetime) are
deliberately not reported: those are what the runtime checks are for.
Findings carry ``always_executes`` — whether the faulting block lies on
every entry-to-exit path (its block dominates the exit) — so a consumer
can tell "this program cannot run correctly" from "this branch, if
taken, is doomed".

With interprocedural summaries the same definite-only discipline
extends across calls: a call whose callee *must* dereference a
parameter on every path is itself a definite use-after-free when the
argument's object is freed on all paths in, and a definite
out-of-bounds when the callee's must-access range provably exceeds the
argument's statically known object size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..ir.nodes import (
    Call,
    Free,
    GlobalAlloc,
    Instr,
    Load,
    Malloc,
    Memset,
    StackAlloc,
    Store,
    Var,
)
from ..ir.program import Function, Program, walk
from .allocstate import FREED, AllocStateAnalysis
from .cfg import CFG, lower_function
from .dominators import immediate_dominators
from .intervals import Interval, IntervalAnalysis, eval_expr
from .solver import Solution, solve


def root_sizes(function: Function, summaries=None) -> Dict[str, int]:
    """Constant object sizes keyed by provenance root."""
    from ..passes.constprop import eval_const

    sizes: Dict[str, int] = {}
    for instr in walk(function.body):
        if isinstance(instr, Malloc):
            size = eval_const(instr.size)
            if size is not None:
                sizes[f"alloc:{id(instr)}"] = size
        elif isinstance(instr, StackAlloc):
            sizes[f"stack:{id(instr)}"] = instr.size
        elif isinstance(instr, GlobalAlloc):
            sizes[f"global:{id(instr)}"] = instr.size
        elif isinstance(instr, Call) and summaries is not None:
            summary = summaries.get(instr.func)
            if summary is not None and summary.returns_fresh is not None:
                sizes[f"callret:{id(instr)}"] = summary.returns_fresh
    return sizes


class FunctionDataflow:
    """All per-function dataflow results, computed once and shared.

    Bundles the CFG lowering, provenance, constant object sizes,
    dominators, and the interval and allocation-state fixpoints — the
    facts the rebased passes and the detector consume.
    """

    def __init__(self, function: Function, summaries=None):
        from ..passes.alias import ProvenanceMap

        self.function = function
        self.summaries = summaries
        self.cfg: CFG = lower_function(function)
        self.pmap = ProvenanceMap(function, summaries=summaries)
        self.sizes = root_sizes(function, summaries=summaries)
        self.intervals: Solution = solve(
            self.cfg, IntervalAnalysis(summaries=summaries)
        )
        self.alloc_analysis = AllocStateAnalysis(
            function, self.pmap, summaries=summaries
        )
        self.allocstate: Solution = solve(self.cfg, self.alloc_analysis)
        self.idom = immediate_dominators(self.cfg)

    def always_executes(self, block_index: int) -> bool:
        """True when the block lies on every entry-to-exit path."""
        current: Optional[int] = 1  # the exit block
        while current is not None:
            if current == block_index:
                return True
            current = self.idom.get(current)
            if current == 0:
                return block_index == 0
        return False

    def reachable(self, block_index: int) -> bool:
        return block_index in self.intervals.in_states


@dataclass(frozen=True)
class StaticFinding:
    """One definite memory bug found at instrumentation time."""

    function: str
    kind: str  # definite-oob | definite-uaf | definite-double-free
    site_id: int
    detail: str
    always_executes: bool

    def render(self) -> str:
        scope = (
            "on every run" if self.always_executes else "on a feasible path"
        )
        return f"[{self.kind}] {self.function}: {self.detail} ({scope})"


def _span(
    offset_iv: Interval, width: int, base_off: int
) -> Optional[tuple]:
    """Root-relative ``(lo, hi)`` touched bounds (either may be None)."""
    lo = None if offset_iv.lo is None else base_off + offset_iv.lo
    hi = None if offset_iv.hi is None else base_off + offset_iv.hi + width
    return lo, hi


def detect_function(flow: FunctionDataflow) -> List[StaticFinding]:
    """All definite findings in one function."""
    findings: List[StaticFinding] = []
    for block in flow.cfg.blocks:
        if not flow.reachable(block.index):
            continue
        always = flow.always_executes(block.index)
        # replay yields a live state object; snapshot each step
        alloc_states = [
            flow.alloc_analysis.copy(state)
            for _, state in flow.allocstate.replay(block)
        ]
        for position, (instr, ivals) in enumerate(
            flow.intervals.replay(block)
        ):
            astate = alloc_states[position]
            finding = _inspect(flow, instr, ivals, astate, always)
            if finding is not None:
                findings.append(finding)
    return findings


def _inspect(
    flow: FunctionDataflow,
    instr: Instr,
    ivals,
    astate,
    always: bool,
) -> Optional[StaticFinding]:
    name = flow.function.name
    if isinstance(instr, Free):
        prov = flow.pmap.provenance(instr.ptr)
        if (
            prov is not None
            and prov.root.startswith("alloc:")
            and AllocStateAnalysis.state_of(astate, prov.root) == FREED
        ):
            return StaticFinding(
                function=name,
                kind="definite-double-free",
                site_id=-1,
                detail=f"free({instr.ptr}) of an already-freed object",
                always_executes=always,
            )
        return None

    if isinstance(instr, Call):
        return _inspect_call(flow, instr, astate, always)

    if isinstance(instr, (Load, Store)):
        base, offset, width = instr.base, instr.offset, instr.width
    elif isinstance(instr, Memset):
        base, offset, width = instr.base, instr.offset, 0
    else:
        return None

    prov = flow.pmap.provenance(base)
    if prov is None:
        return None
    base_off = _const_offset(prov)
    if base_off is None:
        return None

    if prov.root.startswith("alloc:") and (
        AllocStateAnalysis.state_of(astate, prov.root) == FREED
    ):
        return StaticFinding(
            function=name,
            kind="definite-uaf",
            site_id=getattr(instr, "site_id", -1),
            detail=f"access through {base} after its object is freed "
            "on all paths",
            always_executes=always,
        )

    size = flow.sizes.get(prov.root)
    if size is None:
        return None
    offset_iv = eval_expr(offset, ivals)
    if offset_iv.is_bottom():
        return None
    if isinstance(instr, Memset):
        length_iv = eval_expr(instr.length, ivals)
        if length_iv.lo is None or length_iv.lo <= 0:
            return None
        width = length_iv.lo
    lo, hi = _span(offset_iv, width, base_off)
    if lo is not None and lo + width > size and width > 0:
        return StaticFinding(
            function=name,
            kind="definite-oob",
            site_id=getattr(instr, "site_id", -1),
            detail=(
                f"{_describe(instr)}: minimum offset {lo} + width {width} "
                f"exceeds object size {size} on every path"
            ),
            always_executes=always,
        )
    if hi is not None and hi <= 0 and width > 0:
        return StaticFinding(
            function=name,
            kind="definite-oob",
            site_id=getattr(instr, "site_id", -1),
            detail=(
                f"{_describe(instr)}: accessed range ends at offset {hi}, "
                "before the object begins, on every path"
            ),
            always_executes=always,
        )
    return None


def _inspect_call(
    flow: FunctionDataflow, instr: Call, astate, always: bool
) -> Optional[StaticFinding]:
    """Definite cross-call bugs: the callee's summarized must-access
    ranges applied to what the caller knows about the arguments."""
    if not flow.summaries:
        return None
    summary = flow.summaries.get(instr.func)
    if summary is None or summary.recursive:
        return None
    name = flow.function.name
    for index, facts in enumerate(summary.param_facts):
        if not facts.must_access:
            continue
        arg = instr.args[index] if index < len(instr.args) else None
        if not isinstance(arg, Var):
            continue
        prov = flow.pmap.provenance(arg.name)
        if prov is None:
            continue
        if prov.root.startswith(("alloc:", "callret:")) and (
            AllocStateAnalysis.state_of(astate, prov.root) == FREED
        ):
            return StaticFinding(
                function=name,
                kind="definite-uaf",
                site_id=-1,
                detail=(
                    f"call {summary.name}({arg.name}) dereferences "
                    f"parameter '{summary.params[index]}' of an object "
                    "freed on all paths"
                ),
                always_executes=always,
            )
        base_off = _const_offset(prov)
        size = flow.sizes.get(prov.root)
        if base_off is None or size is None:
            continue
        for lo, hi in facts.must_access:
            if base_off + hi > size or base_off + lo < 0:
                return StaticFinding(
                    function=name,
                    kind="definite-oob",
                    site_id=-1,
                    detail=(
                        f"call {summary.name}({arg.name}) always "
                        f"accesses bytes [{base_off + lo}, "
                        f"{base_off + hi}) of a {size}-byte object"
                    ),
                    always_executes=always,
                )
    return None


def _const_offset(prov) -> Optional[int]:
    from ..passes.constprop import eval_const

    return eval_const(prov.offset)


def _describe(instr: Instr) -> str:
    if isinstance(instr, Load):
        return f"load{instr.width} {instr.base}[{instr.offset}]"
    if isinstance(instr, Store):
        return f"store{instr.width} {instr.base}[{instr.offset}]"
    if isinstance(instr, Memset):
        return f"memset({instr.base} + {instr.offset}, .., {instr.length})"
    return type(instr).__name__


def analyze_program(
    program: Program,
    summaries=None,
    interprocedural: Optional[bool] = None,
) -> List[StaticFinding]:
    """Definite findings for every function of ``program``.

    Analyzes a clone with site ids assigned, so the input program is
    never mutated and findings carry stable site identifiers.  When
    ``interprocedural`` (default: the ``REPRO_INTERPROC`` switch) is on
    and no ``summaries`` are supplied, they are computed on the clone.
    """
    from ..ir.program import assign_site_ids
    from .summaries import compute_summaries, interprocedural_default

    clone = program.clone()
    assign_site_ids(clone)
    if interprocedural is None:
        interprocedural = interprocedural_default()
    if summaries is None and interprocedural:
        summaries = compute_summaries(clone)
    elif not interprocedural:
        summaries = None
    findings: List[StaticFinding] = []
    for function in clone.functions.values():
        findings.extend(
            detect_function(FunctionDataflow(function, summaries=summaries))
        )
    return findings
