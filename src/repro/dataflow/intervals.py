"""Interval (value-range) analysis — the SCEV-flavored workhorse.

Every integer local is mapped to a closed interval ``[lo, hi]`` (either
bound may be infinite).  Loop induction variables are clamped to their
trip range at the loop header, affine expressions over them evaluate to
tight ranges, and joins take the interval hull — which is exactly what
is needed to prove ``base + offset`` accesses in-bounds against a
statically known allocation size, or *definitely* out of bounds for the
static bug detector.

Arithmetic follows the interpreter's conventions (notably ``//`` and
``%`` by zero evaluate to 0), so a proof about an expression is a proof
about what the interpreter will compute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..ir.nodes import (
    Assign,
    BinOp,
    Call,
    Const,
    Expr,
    GlobalAlloc,
    Instr,
    Load,
    Loop,
    Malloc,
    PtrAdd,
    StackAlloc,
    Var,
)
from .cfg import CFG, BasicBlock
from .solver import ForwardAnalysis


@dataclass(frozen=True)
class Interval:
    """A closed integer interval; ``None`` bounds mean +/- infinity."""

    lo: Optional[int]
    hi: Optional[int]

    def is_bottom(self) -> bool:
        """Empty interval (unreachable value)."""
        return (
            self.lo is not None and self.hi is not None and self.lo > self.hi
        )

    def is_constant(self) -> bool:
        return self.lo is not None and self.lo == self.hi

    def hull(self, other: "Interval") -> "Interval":
        if self.is_bottom():
            return other
        if other.is_bottom():
            return self
        lo = (
            None
            if self.lo is None or other.lo is None
            else min(self.lo, other.lo)
        )
        hi = (
            None
            if self.hi is None or other.hi is None
            else max(self.hi, other.hi)
        )
        return Interval(lo, hi)

    def clamp(self, lo: Optional[int], hi: Optional[int]) -> "Interval":
        new_lo = self.lo
        if lo is not None and (new_lo is None or new_lo < lo):
            new_lo = lo
        new_hi = self.hi
        if hi is not None and (new_hi is None or new_hi > hi):
            new_hi = hi
        return Interval(new_lo, new_hi)

    def __repr__(self) -> str:
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"


TOP = Interval(None, None)
BOTTOM = Interval(0, -1)


def const(value: int) -> Interval:
    return Interval(value, value)


def _add(a: Interval, b: Interval) -> Interval:
    lo = None if a.lo is None or b.lo is None else a.lo + b.lo
    hi = None if a.hi is None or b.hi is None else a.hi + b.hi
    return Interval(lo, hi)


def _neg(a: Interval) -> Interval:
    lo = None if a.hi is None else -a.hi
    hi = None if a.lo is None else -a.lo
    return Interval(lo, hi)


def _mul(a: Interval, b: Interval) -> Interval:
    corners = []
    for x in (a.lo, a.hi):
        for y in (b.lo, b.hi):
            if x is None or y is None:
                # sign analysis could sharpen this; infinity times
                # anything nonzero stays unbounded
                if (x == 0) or (y == 0):
                    corners.append(0)
                else:
                    return TOP
            else:
                corners.append(x * y)
    return Interval(min(corners), max(corners))


def _floordiv(a: Interval, b: Interval) -> Interval:
    # division by a single positive constant is the common case
    # (index scaling); the by-zero convention maps to literal 0
    if b.is_constant() and b.lo is not None:
        divisor = b.lo
        if divisor == 0:
            return const(0)
        if divisor > 0:
            lo = None if a.lo is None else a.lo // divisor
            hi = None if a.hi is None else a.hi // divisor
            return Interval(lo, hi)
    return TOP


def _mod(a: Interval, b: Interval) -> Interval:
    # x % m for m in a known-positive range lies in [0, max_m - 1];
    # a zero divisor evaluates to 0, which that range already contains
    if b.lo is not None and b.hi is not None and b.lo >= 0:
        if b.hi == 0:
            return const(0)
        return Interval(0, b.hi - 1)
    return TOP


def _shift_left(a: Interval, b: Interval) -> Interval:
    if b.is_constant() and b.lo is not None and b.lo >= 0:
        return _mul(a, const(1 << b.lo))
    return TOP


def _shift_right(a: Interval, b: Interval) -> Interval:
    if b.is_constant() and b.lo is not None and b.lo >= 0:
        return _floordiv(a, const(1 << b.lo))
    return TOP


def _bit_and(a: Interval, b: Interval) -> Interval:
    # masking a non-negative value with a non-negative constant bounds
    # the result by both the mask and the value
    if b.is_constant() and b.lo is not None and b.lo >= 0:
        if a.lo is not None and a.lo >= 0:
            hi = b.lo if a.hi is None else min(a.hi, b.lo)
            return Interval(0, hi)
        return Interval(0, b.lo)
    if a.is_constant() and a.lo is not None and a.lo >= 0:
        return _bit_and(b, a)
    return TOP


_COMPARISON = ("<", "<=", ">", ">=", "==", "!=")


def eval_expr(expr: Expr, env: Dict[str, Interval]) -> Interval:
    """The interval of ``expr`` under per-variable interval ``env``."""
    if isinstance(expr, Const):
        return const(expr.value)
    if isinstance(expr, Var):
        return env.get(expr.name, TOP)
    if isinstance(expr, BinOp):
        left = eval_expr(expr.left, env)
        right = eval_expr(expr.right, env)
        if left.is_bottom() or right.is_bottom():
            return BOTTOM
        op = expr.op
        if op == "+":
            return _add(left, right)
        if op == "-":
            return _add(left, _neg(right))
        if op == "*":
            return _mul(left, right)
        if op == "//":
            return _floordiv(left, right)
        if op == "%":
            return _mod(left, right)
        if op == "<<":
            return _shift_left(left, right)
        if op == ">>":
            return _shift_right(left, right)
        if op == "&":
            return _bit_and(left, right)
        if op in ("|", "^"):
            return TOP
        if op in _COMPARISON:
            return Interval(0, 1)
    return TOP


class IntervalAnalysis(ForwardAnalysis):
    """Forward interval analysis over one function's CFG.

    The state is ``{variable name: Interval}``; absent variables are
    unconstrained (TOP).  Meet is the interval hull per variable, with
    variables known on only one side dropping to TOP (they may hold
    anything on the other path).

    With interprocedural ``summaries`` a call's destination takes the
    callee's summarized return interval instead of dropping to TOP.
    """

    def __init__(
        self, summaries: Optional[Dict[str, object]] = None
    ) -> None:
        self.summaries = summaries

    def boundary(self, cfg: CFG) -> Dict[str, Interval]:
        # parameters are unconstrained; nothing else is bound yet
        return {}

    def copy(self, state: Dict[str, Interval]) -> Dict[str, Interval]:
        return dict(state)

    def meet(
        self, a: Dict[str, Interval], b: Dict[str, Interval]
    ) -> Dict[str, Interval]:
        merged: Dict[str, Interval] = {}
        for name in a.keys() & b.keys():
            hull = a[name].hull(b[name])
            if hull != TOP:
                merged[name] = hull
        return merged

    def widen(
        self, old: Dict[str, Interval], new: Dict[str, Interval]
    ) -> Dict[str, Interval]:
        widened: Dict[str, Interval] = {}
        for name in old.keys() & new.keys():
            before, after = old[name], new[name]
            lo = before.lo if before.lo == after.lo else None
            hi = before.hi if before.hi == after.hi else None
            result = Interval(lo, hi)
            if result != TOP:
                widened[name] = result
        return widened

    def at_block_start(
        self, block: BasicBlock, state: Dict[str, Interval]
    ) -> None:
        loop = block.loop_body_of
        if loop is None:
            return
        # On the body-entry edge the induction variable ranges over
        # [start, end - 1] whatever the step or direction (forward
        # starts at start, reverse starts at end - step; both stay
        # inside the half-open [start, end)).  The clamp lives here and
        # not at the header so the loop *exit* edge keeps the hull of
        # pre-loop and in-loop values (a zero-trip loop leaves the
        # variable untouched).
        start = eval_expr(loop.start, state)
        end = eval_expr(loop.end, state)
        lo = start.lo
        hi = None if end.hi is None else end.hi - 1
        state[loop.var] = Interval(lo, hi)

    def transfer(self, instr: Instr, state: Dict[str, Interval]) -> None:
        if isinstance(instr, Assign):
            value = eval_expr(instr.expr, state)
            if value == TOP:
                state.pop(instr.dst, None)
            else:
                state[instr.dst] = value
        elif isinstance(instr, Load):
            # an unsigned width-byte load can produce [0, 2^(8w) - 1]
            state[instr.dst] = Interval(0, (1 << (8 * instr.width)) - 1)
        elif isinstance(instr, (Malloc, StackAlloc, GlobalAlloc, PtrAdd)):
            state.pop(instr.dst, None)
        elif isinstance(instr, Call):
            if instr.dst:
                summary = (
                    self.summaries.get(instr.func)
                    if self.summaries is not None
                    else None
                )
                if (
                    summary is not None
                    and not summary.recursive
                    and summary.returns_fresh is None
                    and summary.return_interval != TOP
                ):
                    state[instr.dst] = summary.return_interval
                else:
                    state.pop(instr.dst, None)
