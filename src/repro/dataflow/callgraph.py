"""Call-graph construction with SCC condensation.

The interprocedural layer needs two orderings over a program's
functions:

* **bottom-up** (callees before callers) — the order function summaries
  are computed in, so a caller's summary can fold in its callees';
* **top-down** (callers before callees) — the order the cross-call check
  eliminator visits functions in, so a callee's entry state can be
  seeded from every *finalized* call site.

Both are topological orders over the **condensation**: strongly
connected components (direct or mutual recursion) collapse to one node.
Functions inside a non-trivial SCC — or with a self edge — are flagged
``recursive``; every consumer treats them with the pre-interprocedural
conservatism (⊤ summaries, no entry seeding), which keeps recursion
sound without a cross-function fixpoint.

Calls whose target is not defined in the program (possible for
hand-built fragments that skip :meth:`Program.validate`) contribute no
edge but flag the caller ``has_unknown_calls`` — its summary degrades
to ⊤ free effects, today's behavior.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..ir.nodes import Call
from ..ir.program import Program, walk


@dataclass
class CallGraph:
    """Edges, call sites, and the SCC condensation of one program."""

    #: caller -> set of callee names (known targets only).
    callees: Dict[str, Set[str]] = field(default_factory=dict)
    #: callee -> set of caller names.
    callers: Dict[str, Set[str]] = field(default_factory=dict)
    #: callee -> [(caller name, Call instruction), ...] in walk order.
    call_sites: Dict[str, List[Tuple[str, Call]]] = field(
        default_factory=dict
    )
    #: SCCs in bottom-up (callees-first) order; singletons included.
    sccs: List[Tuple[str, ...]] = field(default_factory=list)
    #: Members of non-trivial SCCs plus self-recursive functions.
    recursive: Set[str] = field(default_factory=set)
    #: Functions containing a call to a target the program lacks.
    unknown_callers: Set[str] = field(default_factory=set)

    def bottom_up(self) -> List[str]:
        """Function names, callees before callers."""
        return [name for scc in self.sccs for name in scc]

    def top_down(self) -> List[str]:
        """Function names, callers before callees."""
        return [name for scc in reversed(self.sccs) for name in scc]

    def render(self) -> str:
        """A compact text rendering (the analyze CLI prints this)."""
        lines = []
        for name in self.top_down():
            targets = sorted(self.callees.get(name, ()))
            mark = " [recursive]" if name in self.recursive else ""
            arrow = f" -> {', '.join(targets)}" if targets else ""
            lines.append(f"{name}{arrow}{mark}")
        return "\n".join(lines)


def build_call_graph(program: Program) -> CallGraph:
    """Build the call graph of ``program`` and condense its SCCs."""
    graph = CallGraph()
    names = list(program.functions)
    for name in names:
        graph.callees[name] = set()
        graph.callers.setdefault(name, set())
    for name in names:
        for instr in walk(program.functions[name].body):
            if not isinstance(instr, Call):
                continue
            if instr.func not in program.functions:
                graph.unknown_callers.add(name)
                continue
            graph.callees[name].add(instr.func)
            graph.callers.setdefault(instr.func, set()).add(name)
            graph.call_sites.setdefault(instr.func, []).append(
                (name, instr)
            )
    graph.sccs = _tarjan(names, graph.callees)
    for scc in graph.sccs:
        if len(scc) > 1:
            graph.recursive.update(scc)
        elif scc[0] in graph.callees.get(scc[0], ()):
            graph.recursive.add(scc[0])  # self edge
    return graph


def _tarjan(
    names: List[str], edges: Dict[str, Set[str]]
) -> List[Tuple[str, ...]]:
    """Iterative Tarjan; emits SCCs callees-first (reverse topological
    over the condensation, with caller->callee edges)."""
    index_of: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[Tuple[str, ...]] = []
    counter = [0]

    for root in names:
        if root in index_of:
            continue
        # explicit DFS stack of (node, iterator over successors)
        work = [(root, iter(sorted(edges.get(root, ()))))]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(edges.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(tuple(sorted(component)))
    return sccs
