"""Dominator computation (Cooper-Harvey-Kennedy iterative algorithm).

``B dominates C`` when every path from the entry to ``C`` passes through
``B``.  The static bug detector uses dominance of the *exit* block to
tag findings that execute on every terminating run (``always_executes``),
and the framework exposes the full tree for analyses that need it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .cfg import CFG


def immediate_dominators(cfg: CFG) -> Dict[int, Optional[int]]:
    """``block index -> immediate dominator index`` (entry maps to None).

    Unreachable blocks are absent from the result.
    """
    order = cfg.rpo()
    position = {index: i for i, index in enumerate(order)}
    idom: Dict[int, int] = {0: 0}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while position[a] > position[b]:
                a = idom[a]
            while position[b] > position[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for index in order:
            if index == 0:
                continue
            preds = [
                p
                for p in cfg.blocks[index].preds
                if p in idom  # processed (or entry) and reachable
            ]
            if not preds:
                continue
            new_idom = preds[0]
            for pred in preds[1:]:
                new_idom = intersect(new_idom, pred)
            if idom.get(index) != new_idom:
                idom[index] = new_idom
                changed = True
    return {
        index: (None if index == 0 else idom[index])
        for index in idom
    }


def dominators_of(cfg: CFG, block_index: int) -> List[int]:
    """Every block dominating ``block_index`` (including itself)."""
    idom = immediate_dominators(cfg)
    if block_index not in idom:
        return []  # unreachable
    chain = [block_index]
    current = block_index
    while idom[current] is not None:
        current = idom[current]
        chain.append(current)
    return chain


def dominates(cfg: CFG, a: int, b: int) -> bool:
    """True when block ``a`` dominates block ``b``."""
    return a in dominators_of(cfg, b)
