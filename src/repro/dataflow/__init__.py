"""Whole-function dataflow framework (CFG, solver, analyses).

Lowers the structured mini-IR to an explicit CFG, computes dominators,
and runs a generic forward worklist solver hosting:

* :class:`~repro.dataflow.intervals.IntervalAnalysis` — value ranges,
  SCEV-flavored handling of loop induction variables;
* :class:`~repro.dataflow.allocstate.AllocStateAnalysis` — per-root
  LIVE/FREED/MAYBE lifetime states;
* :class:`~repro.dataflow.available.AvailableCheckAnalysis` — which
  byte ranges are already guarded on every incoming path.

The instrumentation passes consume these facts to elide provably safe
checks and eliminate redundant ones across block boundaries; the static
detector (:mod:`~repro.dataflow.detector`) reports definite memory bugs
before the program ever runs.

The interprocedural layer sits on top: a call graph with SCC
condensation (:mod:`~repro.dataflow.callgraph`), bottom-up function
summaries (:mod:`~repro.dataflow.summaries`), and a shared
:class:`~repro.dataflow.interproc.InterproceduralContext` that lets
every analysis consume ``Call`` sites precisely instead of clobbering
to ⊤, and the cross-call eliminator seed callee entry states from
finalized caller facts.

Import discipline: this package never imports :mod:`repro.passes` at
module load time (only lazily inside functions) — the passes import us.
"""

from .cfg import (
    CFG,
    ENTRY,
    EXIT,
    JOIN,
    LOOP_HEADER,
    PLAIN,
    BasicBlock,
    lower_function,
)
from .dominators import dominates, dominators_of, immediate_dominators
from .solver import ForwardAnalysis, Solution, solve
from .intervals import (
    BOTTOM,
    TOP,
    Interval,
    IntervalAnalysis,
    const,
    eval_expr,
)
from .allocstate import FREED, LIVE, MAYBE, AllocStateAnalysis
from .available import (
    AvailableCheckAnalysis,
    IntervalSet,
    covers,
    intersect,
    normalize,
    union,
)
from .detector import (
    FunctionDataflow,
    StaticFinding,
    analyze_program,
    detect_function,
    root_sizes,
)
from .callgraph import CallGraph, build_call_graph
from .summaries import (
    FunctionSummary,
    MustAccessAnalysis,
    ParamFacts,
    call_frees_nothing,
    compute_summaries,
    conservative_summary,
    interprocedural_default,
)
from .interproc import (
    InterproceduralContext,
    render_whole_program,
    whole_program_data,
)

__all__ = [
    "CFG",
    "BasicBlock",
    "lower_function",
    "ENTRY",
    "EXIT",
    "PLAIN",
    "LOOP_HEADER",
    "JOIN",
    "immediate_dominators",
    "dominators_of",
    "dominates",
    "ForwardAnalysis",
    "Solution",
    "solve",
    "Interval",
    "IntervalAnalysis",
    "TOP",
    "BOTTOM",
    "const",
    "eval_expr",
    "AllocStateAnalysis",
    "LIVE",
    "FREED",
    "MAYBE",
    "AvailableCheckAnalysis",
    "IntervalSet",
    "normalize",
    "union",
    "intersect",
    "covers",
    "FunctionDataflow",
    "StaticFinding",
    "analyze_program",
    "detect_function",
    "root_sizes",
    "CallGraph",
    "build_call_graph",
    "FunctionSummary",
    "ParamFacts",
    "MustAccessAnalysis",
    "call_frees_nothing",
    "compute_summaries",
    "conservative_summary",
    "interprocedural_default",
    "InterproceduralContext",
    "render_whole_program",
    "whole_program_data",
]
