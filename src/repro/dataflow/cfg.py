r"""Lowering the structured IR to an explicit control-flow graph.

The mini-IR is fully structured (``Loop``/``If`` trees, no goto), which
the window-based passes exploited by simply clearing facts at every
nesting boundary.  The dataflow framework instead lowers each function
to basic blocks with explicit edges, so the worklist solver can meet
facts at joins and iterate loop back edges to a fixpoint — the same
shape LLVM's function passes see.

Lowering preserves instruction *identity*: blocks reference the very
``Instr`` objects of the structured tree, so analysis results keyed by
``id(instr)`` can be applied back to the tree (e.g. deleting a check via
:func:`~repro.ir.program.transform_blocks`).

Block shapes produced::

    If    ->  cond block --(then)--> arm blocks --+--> join
                          --(else)----------------+
    Loop  ->  preheader --> header <--(back edge)-- body tail
                              |  \--> body entry
                              \----> after (loop exit)
    Return -> edge straight to the function exit block; trailing code
              in the same structured block becomes unreachable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir.nodes import If, Instr, Loop, Return
from ..ir.program import Function

#: Block kinds (informational; the solver only looks at edges).
ENTRY, EXIT, PLAIN, LOOP_HEADER, JOIN = (
    "entry",
    "exit",
    "plain",
    "loop-header",
    "join",
)


@dataclass
class BasicBlock:
    """One straight-line run of instructions plus its edges."""

    index: int
    kind: str = PLAIN
    #: Non-control instructions, in execution order (references into the
    #: structured tree, not copies).
    instrs: List[Instr] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)
    #: The ``Loop`` this block is the header of, if any.
    loop: Optional[Loop] = None
    #: The ``Loop`` whose body this block enters, if any.  Induction-
    #: variable facts hold on this edge only — not at the header, whose
    #: out-state also feeds the loop *exit* (where, after zero trips,
    #: the variable still holds its pre-loop value).
    loop_body_of: Optional[Loop] = None
    #: The ``If`` whose condition this block evaluates last, if any.
    branch: Optional[If] = None


@dataclass
class CFG:
    """The control-flow graph of one function."""

    function: Function
    blocks: List[BasicBlock] = field(default_factory=list)

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    @property
    def exit(self) -> BasicBlock:
        return self.blocks[1]

    def new_block(self, kind: str = PLAIN) -> BasicBlock:
        block = BasicBlock(index=len(self.blocks), kind=kind)
        self.blocks.append(block)
        return block

    def add_edge(self, src: BasicBlock, dst: BasicBlock) -> None:
        if dst.index not in src.succs:
            src.succs.append(dst.index)
        if src.index not in dst.preds:
            dst.preds.append(src.index)

    # ------------------------------------------------------------------
    def rpo(self) -> List[int]:
        """Reverse post-order over blocks reachable from the entry."""
        seen = set()
        order: List[int] = []

        # iterative DFS (generated loop nests can be deep)
        stack: List[Tuple[int, int]] = [(0, 0)]
        seen.add(0)
        while stack:
            index, child = stack[-1]
            succs = self.blocks[index].succs
            if child < len(succs):
                stack[-1] = (index, child + 1)
                succ = succs[child]
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, 0))
            else:
                stack.pop()
                order.append(index)
        order.reverse()
        return order

    def instruction_blocks(self) -> Dict[int, int]:
        """``id(instr) -> block index`` for every lowered instruction."""
        mapping: Dict[int, int] = {}
        for block in self.blocks:
            for instr in block.instrs:
                mapping[id(instr)] = block.index
            if block.loop is not None:
                mapping[id(block.loop)] = block.index
            if block.branch is not None:
                mapping[id(block.branch)] = block.index
        return mapping


def lower_function(function: Function) -> CFG:
    """Build the CFG of ``function`` (blocks 0/1 are entry/exit)."""
    cfg = CFG(function=function)
    entry = cfg.new_block(ENTRY)
    exit_block = cfg.new_block(EXIT)

    def lower_block(instrs: List[Instr], current: BasicBlock) -> BasicBlock:
        """Lower one structured block; returns the fall-through block."""
        for instr in instrs:
            if isinstance(instr, Loop):
                # current becomes the preheader
                header = cfg.new_block(LOOP_HEADER)
                header.loop = instr
                cfg.add_edge(current, header)
                body_entry = cfg.new_block()
                body_entry.loop_body_of = instr
                cfg.add_edge(header, body_entry)
                body_tail = lower_block(instr.body, body_entry)
                cfg.add_edge(body_tail, header)  # back edge
                after = cfg.new_block()
                cfg.add_edge(header, after)
                current = after
            elif isinstance(instr, If):
                current.branch = instr
                join = cfg.new_block(JOIN)
                for arm in (instr.then, instr.orelse):
                    arm_entry = cfg.new_block()
                    cfg.add_edge(current, arm_entry)
                    arm_tail = lower_block(arm, arm_entry)
                    cfg.add_edge(arm_tail, join)
                current = join
            elif isinstance(instr, Return):
                current.instrs.append(instr)
                cfg.add_edge(current, exit_block)
                # anything after an unconditional return is unreachable;
                # keep lowering into a predecessor-less block so the
                # tree and the graph stay in sync
                current = cfg.new_block()
            else:
                current.instrs.append(instr)
        return current

    tail = lower_block(function.body, entry)
    cfg.add_edge(tail, exit_block)
    return cfg
