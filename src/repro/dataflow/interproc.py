"""Whole-program orchestration of the interprocedural layer.

:class:`InterproceduralContext` bundles everything the optimization
passes share for one program: the call graph, the bottom-up function
summaries, and the **entry seeds** the cross-call check eliminator
accumulates as it walks functions top-down.

Entry seeding is how a callee's prologue checks die from caller-side
knowledge: when every finalized call site of ``f`` reaches the call
with byte range ``R`` of the argument's object already validated (by
checks that themselves survive elimination), then ``f`` may start its
own available-check analysis with ``R`` recorded against the parameter
root — any ``f``-internal check covered by it is redundant on every
possible invocation.  The intersection over *all* call sites (and the
empty seed for the program entry, which is invoked externally, and for
recursive functions, whose call sites are not finalized before they
are processed) keeps this sound; see docs/STATIC_ANALYSIS.md for the
full argument.

:func:`whole_program_data` is the analysis snapshot the ``repro
analyze --whole-program`` CLI renders (text or JSON): call graph,
per-function summaries, and static findings.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.program import Program
from .available import FactKey, IntervalSet, intersect
from .callgraph import CallGraph, build_call_graph
from .summaries import FunctionSummary, compute_summaries


class InterproceduralContext:
    """Shared interprocedural facts for one program."""

    def __init__(
        self,
        program: Program,
        graph: Optional[CallGraph] = None,
        summaries: Optional[Dict[str, FunctionSummary]] = None,
    ) -> None:
        self.program = program
        self.graph = graph or build_call_graph(program)
        self.summaries = (
            summaries
            if summaries is not None
            else compute_summaries(program, self.graph)
        )
        #: callee name -> intersected caller-side entry facts; absent
        #: means "no site noted yet" and yields the empty (sound) seed.
        self.entry_facts: Dict[str, Dict[FactKey, IntervalSet]] = {}
        self._noted: set = set()

    def note_call_site(
        self, target: str, facts: Dict[FactKey, IntervalSet]
    ) -> None:
        """Fold one finalized call site's translated facts into the
        callee's entry seed (pointwise intersection across sites)."""
        if target not in self._noted:
            self._noted.add(target)
            self.entry_facts[target] = dict(facts)
            return
        current = self.entry_facts[target]
        for key in list(current):
            ranges = intersect(current[key], facts.get(key, ()))
            if ranges:
                current[key] = ranges
            else:
                del current[key]

    def seeds_for(self, name: str) -> Dict[FactKey, IntervalSet]:
        """The sound entry state for ``name``'s available-check run.

        Empty for the program entry (invoked externally with no caller
        facts) and for recursive functions (their call sites are not
        all finalized when they are processed).
        """
        if name == self.program.entry or name in self.graph.recursive:
            return {}
        return self.entry_facts.get(name, {})


def whole_program_data(
    program: Program, interprocedural: bool = True
) -> dict:
    """The whole-program analysis snapshot (CLI text/JSON source)."""
    from .detector import analyze_program

    graph = build_call_graph(program)
    summaries = (
        compute_summaries(program, graph) if interprocedural else {}
    )
    findings = analyze_program(
        program, interprocedural=interprocedural
    )
    return {
        "entry": program.entry,
        "call_graph": {
            "edges": {
                name: sorted(targets)
                for name, targets in sorted(graph.callees.items())
            },
            "sccs": [list(scc) for scc in graph.sccs],
            "recursive": sorted(graph.recursive),
            "unknown_callers": sorted(graph.unknown_callers),
        },
        "summaries": {
            name: summaries[name].as_dict() for name in sorted(summaries)
        },
        "findings": [
            {
                "function": f.function,
                "kind": f.kind,
                "site_id": f.site_id,
                "detail": f.detail,
                "always_executes": f.always_executes,
            }
            for f in findings
        ],
    }


def render_whole_program(program: Program, data: dict) -> str:
    """Human-readable rendering of :func:`whole_program_data`."""
    graph = build_call_graph(program)
    summaries = (
        compute_summaries(program, graph) if data["summaries"] else {}
    )
    lines: List[str] = ["call graph (callers first):"]
    for line in graph.render().splitlines():
        lines.append(f"  {line}")
    if summaries:
        lines.append("")
        lines.append("function summaries:")
        for name in graph.top_down():
            lines.append(f"  {name}: {summaries[name].render()}")
    if data["findings"]:
        lines.append("")
        lines.append("static findings:")
        for finding in data["findings"]:
            lines.append(
                f"  [{finding['kind']}] {finding['function']}: "
                f"{finding['detail']}"
            )
    return "\n".join(lines)
