"""Human-readable error reports in the style of AddressSanitizer's output.

`format_report` renders one violation with the allocation it relates to
and a shadow-memory dump around the fault, the way compiler-rt prints
``SUMMARY: AddressSanitizer: heap-buffer-overflow ...`` followed by the
shadow bytes legend.  Works for every tool that keeps a shadow (ASan,
ASan--, GiantSan); LFP reports render without the dump.
"""

from __future__ import annotations

from typing import List, Optional

from .errors import ErrorReport
from .memory.layout import SEGMENT_SIZE, segment_index
from .sanitizers.base import Sanitizer
from .sanitizers.giantsan import GiantSan
from .shadow import giantsan_encoding

#: Shadow bytes printed on each side of the faulting segment.
DUMP_RADIUS = 8


def _describe_shadow_byte(sanitizer: Sanitizer, code: int) -> str:
    if isinstance(sanitizer, GiantSan):
        labels = giantsan_encoding.describe_codes([code])
        return labels[0]
    if code == 0:
        return "good"
    if 1 <= code <= 7:
        return f"{code}-part"
    return f"err:{code:#04x}"


def _shadow_dump(sanitizer: Sanitizer, address: int) -> List[str]:
    index = segment_index(max(address, 0))
    first = max(index - DUMP_RADIUS, 0)
    last = min(index + DUMP_RADIUS, len(sanitizer.shadow) - 1)
    lines = []
    for i in range(first, last + 1):
        marker = "=>" if i == index else "  "
        code = sanitizer.shadow.load(i)
        label = _describe_shadow_byte(sanitizer, code)
        lines.append(
            f"  {marker} shadow[{i:#08x}] = {code:#04x}  ({label})"
            f"   covers [{i * SEGMENT_SIZE:#x}, {(i + 1) * SEGMENT_SIZE:#x})"
        )
    return lines


def _allocation_context(sanitizer: Sanitizer, address: int) -> Optional[str]:
    allocation = sanitizer.allocator.find_containing(address)
    if allocation is None:
        # try the closest chunk by scanning live + quarantined records
        candidates = list(sanitizer.allocator.live_allocations)
        candidates.extend(sanitizer.quarantine._queue)
        best = None
        for candidate in candidates:
            if candidate.chunk_base <= address < candidate.chunk_end:
                best = candidate
                break
        allocation = best
    if allocation is None:
        return None
    relation = "inside"
    if address < allocation.base:
        relation = f"{allocation.base - address} byte(s) BEFORE"
    elif address >= allocation.end:
        relation = f"{address - allocation.end + 1} byte(s) AFTER"
    return (
        f"address {address:#x} is {relation} a {allocation.requested_size}-"
        f"byte region [{allocation.base:#x}, {allocation.end:#x})"
        f" (allocation #{allocation.allocation_id},"
        f" state: {allocation.state.value})"
    )


def format_report(sanitizer: Sanitizer, report: ErrorReport) -> str:
    """One violation rendered ASan-style, with allocation context and a
    shadow dump when the tool keeps shadow memory."""
    lines = [
        "=" * 64,
        f"ERROR: {sanitizer.name}: {report.kind.value} on address "
        f"{report.address:#x}",
        f"  {report.access.value.upper()} of size {report.size}"
        + (f" ({report.detail})" if report.detail else ""),
    ]
    context = _allocation_context(sanitizer, report.address)
    if context is not None:
        lines.append(f"  {context}")
    if report.shadow_value is not None:
        lines.append(
            f"  shadow byte at fault: {report.shadow_value:#04x} "
            f"({_describe_shadow_byte(sanitizer, report.shadow_value)})"
        )
    if type(sanitizer).__name__ not in ("LFP", "NativeSanitizer"):
        lines.append("Shadow bytes around the buggy address:")
        lines.extend(_shadow_dump(sanitizer, report.address))
    lines.append(f"SUMMARY: {sanitizer.name}: {report.kind.value}")
    lines.append("=" * 64)
    return "\n".join(lines)


def format_all_reports(sanitizer: Sanitizer) -> str:
    """Every report in the sanitizer's log, rendered and concatenated."""
    if not sanitizer.log:
        return f"{sanitizer.name}: no errors detected"
    return "\n\n".join(
        format_report(sanitizer, report) for report in sanitizer.log
    )


def format_static_findings(findings) -> str:
    """Render instrumentation-time detector findings (StaticFinding).

    These are *definite* bugs the whole-function dataflow analysis
    proved along all paths reaching the access — reported before the
    program ever runs, unlike the dynamic reports above.
    """
    if not findings:
        return "no definite static findings"
    lines = [f"{len(findings)} definite static finding(s):"]
    lines.extend(f"  {finding.render()}" for finding in findings)
    return "\n".join(lines)
