"""Execution runtime: interpreter, intrinsics, cost model, sessions."""

from .cost_model import (
    CostModel,
    DEFAULT_COST_MODEL,
    NativeCosts,
    SanitizerCosts,
    geometric_mean,
)
from .compiler import (
    CompiledEngine,
    compile_function,
    compile_program,
    engine_default,
    resolve_engine,
)
from .fastpath import LoopPlan, analyze_loop, fastpath_enabled_default
from .interpreter import BudgetExceeded, Interpreter, RunResult, run_program
from .session import Session, run_with_tools

__all__ = [
    "CompiledEngine",
    "compile_function",
    "compile_program",
    "engine_default",
    "resolve_engine",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "NativeCosts",
    "SanitizerCosts",
    "geometric_mean",
    "LoopPlan",
    "analyze_loop",
    "fastpath_enabled_default",
    "BudgetExceeded",
    "Interpreter",
    "RunResult",
    "run_program",
    "Session",
    "run_with_tools",
]
