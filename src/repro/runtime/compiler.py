"""Compile-to-closures execution engine.

The tree-walking :class:`~repro.runtime.interpreter.Interpreter` pays a
``type(instr)`` dispatch and a recursive ``Expr`` walk for every executed
instruction; across a Table 2 sweep that dispatch — not the sanitizer
checks being studied — dominates wall-clock.  This module removes it the
same way the superblock fast path removes per-iteration dispatch for
eligible loops, but for *whole functions*: a one-time compile pass walks
each instrumented function's IR once and lowers it to a flat Python
function over a slot-indexed environment (a plain list), with real Python
control flow standing in for ``Loop``/``If`` nodes and every expression
pre-flattened to straight-line source.  The hot path then runs compiled
bytecode with zero per-instruction pattern matching.

Observable equivalence is the contract: native-cycle accounting (same
additions in the same order), instruction counting and the budget check,
CheckStats and the Figure 10 classification, telemetry counters,
elision-audit replay, error logs, and hardware-fault fallback semantics
all match the tree-walker bit for bit.  The differential suite in
``tests/test_engine_differential.py`` enforces this over the fuzz corpus
and the Table 2 kernels.

Functions the compiler cannot prove safe are simply *not compiled* and
run through the inherited tree-walker — :class:`CompiledEngine` is an
``Interpreter`` subclass, so compiled and interpreted functions call each
other freely.  The main reason to decline is a variable read that is not
*definitely assigned* on every path: the tree-walker would raise
``NameError``/``KeyError`` at the exact faulting instruction, and a slot
environment cannot reproduce that lazily, so such functions keep
reference semantics.

The superblock fast path still engages from compiled code: loop headers
flush the local counters, hand :func:`repro.runtime.fastpath.try_execute`
a dict view of the live slots, and sync the slots back on success, so
``fastpath`` × ``engine`` compose.

Select the engine per session with ``Session(engine="compiled")`` or
process-wide with ``REPRO_ENGINE=compiled``; the tree-walker remains the
default and the reference.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional

from ..ir.nodes import (
    Assign,
    BinOp,
    CacheFinalize,
    Call,
    CheckAccess,
    CheckCached,
    CheckElided,
    CheckRegion,
    Compute,
    Const,
    Expr,
    Free,
    GlobalAlloc,
    If,
    Load,
    Loop,
    Malloc,
    Memcpy,
    Memset,
    Protection,
    PtrAdd,
    Return,
    StackAlloc,
    Store,
    Strcpy,
    Var,
)
from ..ir.program import Function, Program
from ..memory.address_space import CODEC_BY_WIDTH, _MASK_BY_WIDTH
from . import fastpath as _fastpath
from .cost_model import NativeCosts
from .interpreter import (
    BudgetExceeded,
    ElisionAuditFailure,
    Interpreter,
)
from .intrinsics import guarded_memcpy, guarded_memset, guarded_strcpy

#: Attribute on :class:`~repro.ir.program.Program` memoizing compiled
#: tables, keyed by (costs, needs_resolve, telemetry_on).  Instrumented
#: programs shared through the instrumentation memo cache therefore
#: compile once per process, like fastpath loop plans.
_TABLE_ATTR = "_closure_tables"


def engine_default() -> str:
    """Process-wide default execution engine (``REPRO_ENGINE``)."""
    value = os.environ.get("REPRO_ENGINE", "tree").strip().lower()
    return value or "tree"


class _Uncompilable(Exception):
    """Internal signal: this function keeps tree-walker semantics."""


# ----------------------------------------------------------------------
# expression lowering
# ----------------------------------------------------------------------
# Same operator surface as the tree-walker's _ARITH table.  ``//`` and
# ``%`` return 0 on a zero divisor; negative shift amounts raise
# ValueError in both engines (plain Python semantics), so shifts need no
# fastpath-style constant restriction here.
_BIN_TEMPLATES = {
    "+": "({} + {})",
    "-": "({} - {})",
    "*": "({} * {})",
    "//": "_div({}, {})",
    "%": "_mod({}, {})",
    "<<": "({} << {})",
    ">>": "({} >> {})",
    "&": "({} & {})",
    "|": "({} | {})",
    "^": "({} ^ {})",
    "<": "int({} < {})",
    "<=": "int({} <= {})",
    ">": "int({} > {})",
    ">=": "int({} >= {})",
    "==": "int({} == {})",
    "!=": "int({} != {})",
}

_COMPARISONS = ("<", "<=", ">", ">=", "==", "!=")

#: Namespace shared by every compiled function.
_SHARED_NS: Dict[str, object] = {
    "_div": _fastpath._div,
    "_mod": _fastpath._mod,
    "TRY": _fastpath.try_execute,
    "GMS": guarded_memset,
    "GMC": guarded_memcpy,
    "GSC": guarded_strcpy,
}
for _width, _codec in CODEC_BY_WIDTH.items():
    _SHARED_NS[f"U{_width}"] = _codec.unpack_from
    _SHARED_NS[f"K{_width}"] = _codec.pack_into


def _budget_exceeded(limit: int) -> BudgetExceeded:
    return BudgetExceeded(f"exceeded {limit} executed instructions")


_SHARED_NS["_BE"] = _budget_exceeded


class CompiledFunction:
    """One lowered function: the closure plus its slot layout."""

    __slots__ = ("name", "closure", "n_slots", "param_slots", "n_params", "source")

    def __init__(self, name, closure, n_slots, param_slots, source):
        self.name = name
        self.closure = closure
        self.n_slots = n_slots
        self.param_slots = param_slots
        self.n_params = len(param_slots)
        self.source = source


class _Emitter:
    """Lowers one :class:`Function` to Python source and compiles it."""

    def __init__(
        self,
        function: Function,
        costs: NativeCosts,
        needs_resolve: bool,
        telemetry_on: bool,
    ):
        self.fn = function
        self.costs = costs
        self.needs_resolve = needs_resolve
        self.telemetry_on = telemetry_on
        self.slots: Dict[str, int] = {}
        self.defined: set = set()
        self.lines: List[str] = []
        self.used: set = set()
        self.consts: Dict[int, str] = {}
        self.ns: Dict[str, object] = {}
        self._serial = 0

    # -- infrastructure ------------------------------------------------
    def _next(self) -> int:
        self._serial += 1
        return self._serial

    def slot(self, name: str) -> int:
        index = self.slots.get(name)
        if index is None:
            index = len(self.slots)
            self.slots[name] = index
        return index

    def const(self, value: object, hint: str = "K") -> str:
        """Bind an arbitrary object into the namespace; stable per object."""
        name = self.consts.get(id(value))
        if name is None:
            name = f"_{hint}{self._next()}"
            self.consts[id(value)] = name
            self.ns[name] = value
        return name

    def emit(self, depth: int, line: str) -> None:
        self.lines.append("    " * depth + line)

    # -- expressions ---------------------------------------------------
    def expr(self, node: Expr) -> str:
        kind = type(node)
        if kind is Const:
            return repr(node.value)
        if kind is Var:
            if node.name not in self.defined:
                raise _Uncompilable(f"may-undefined read of {node.name!r}")
            return f"e[{self.slot(node.name)}]"
        if kind is BinOp:
            template = _BIN_TEMPLATES.get(node.op)
            if template is None:
                raise _Uncompilable(f"operator {node.op!r}")
            return template.format(self.expr(node.left), self.expr(node.right))
        raise _Uncompilable(f"expression {kind.__name__}")

    def cond(self, node: Expr) -> str:
        """Like :meth:`expr` but may skip the int() wrap for a top-level
        comparison: only the truthiness is consumed."""
        if type(node) is BinOp and node.op in _COMPARISONS:
            return "({} {} {})".format(
                self.expr(node.left), node.op, self.expr(node.right)
            )
        return self.expr(node)

    # -- instruction lowering ------------------------------------------
    def block(self, instrs: List, depth: int) -> None:
        if not instrs:
            self.emit(depth, "pass")
            return
        for instr in instrs:
            self.instr(instr, depth)

    def _budget(self, depth: int) -> None:
        self.emit(depth, "I += 1")
        self.emit(depth, "if I > M: raise _BE(M)")

    def _classify(self, protection: Protection, depth: int) -> None:
        if protection is Protection.DIRECT:
            return  # classified at the check instruction
        self.used.add("P")
        self.emit(depth, f"P[{protection.value!r}] += 1")

    def _check_classify(self, depth: int) -> None:
        self.used.update(("P", "st"))
        self.emit(depth, "if st.fast_checks > _fb:")
        self.emit(depth + 1, 'P["fast_only"] += 1')
        self.emit(depth, "else:")
        self.emit(depth + 1, 'P["full_check"] += 1')

    def instr(self, instr, depth: int) -> None:
        kind = type(instr)
        self._budget(depth)
        costs = self.costs

        if kind is Compute:
            self.emit(depth, f"cy += {instr.cycles!r}")
        elif kind is Assign:
            code = self.expr(instr.expr)
            self.defined.add(instr.dst)
            self.emit(depth, f"e[{self.slot(instr.dst)}] = {code}")
            self.emit(depth, f"cy += {costs.arith!r}")
        elif kind is Load or kind is Store:
            if instr.width not in CODEC_BY_WIDTH:
                raise _Uncompilable(f"width {instr.width}")
            self.used.add("mem")
            address = f"e[{self.slot(instr.base)}] + {self.expr(instr.offset)}"
            if instr.base not in self.defined:
                raise _Uncompilable(f"may-undefined read of {instr.base!r}")
            self.emit(depth, f"_a = {address}")
            if self.needs_resolve:
                self.used.add("RES")
                self.emit(depth, "_a = RES(_a)")
            width = instr.width
            self.emit(depth, f"if 0 <= _a and _a + {width} <= TS:")
            if kind is Load:
                self.emit(depth + 1, f"_v = U{width}(mem, _a)[0]")
                self.emit(depth, "else:")
                self.emit(depth + 1, "_v = 0")
                self.emit(depth + 1, "E.hardware_faults += 1")
                self.defined.add(instr.dst)
                self.emit(depth, f"e[{self.slot(instr.dst)}] = _v")
            else:
                value = self.expr(instr.value)
                mask = _MASK_BY_WIDTH[width]
                self.emit(depth + 1, f"K{width}(mem, _a, ({value}) & {mask})")
                self.emit(depth, "else:")
                self.emit(depth + 1, "E.hardware_faults += 1")
            self.emit(depth, f"cy += {costs.memory_access!r}")
            self._classify(instr.protection, depth)
        elif kind is Loop:
            self._loop(instr, depth)
        elif kind is If:
            self.emit(depth, f"cy += {costs.branch!r}")
            self.emit(depth, f"if {self.cond(instr.cond)}:")
            before = set(self.defined)
            self.block(instr.then, depth + 1)
            after_then = self.defined
            self.defined = set(before)
            if instr.orelse:
                self.emit(depth, "else:")
                self.block(instr.orelse, depth + 1)
            self.defined = before | (after_then & self.defined)
        elif kind is CheckRegion:
            if instr.base not in self.defined:
                raise _Uncompilable(f"may-undefined read of {instr.base!r}")
            self.used.update(("CR", "st"))
            self.emit(depth, f"_b = e[{self.slot(instr.base)}]")
            anchor = "_b" if instr.use_anchor else "None"
            self.emit(depth, "_fb = st.fast_checks")
            self.emit(
                depth,
                f"CR(_b + {self.expr(instr.start)}, _b + {self.expr(instr.end)}, "
                f"{self.const(instr.access, 'A')}, anchor={anchor})",
            )
            self._check_classify(depth)
        elif kind is CheckAccess:
            if instr.base not in self.defined:
                raise _Uncompilable(f"may-undefined read of {instr.base!r}")
            self.used.update(("CA", "st"))
            self.emit(depth, "_fb = st.fast_checks")
            self.emit(
                depth,
                f"CA(e[{self.slot(instr.base)}] + {self.expr(instr.offset)}, "
                f"{instr.width}, {self.const(instr.access, 'A')})",
            )
            self._check_classify(depth)
        elif kind is CheckElided:
            self._elided(instr, depth)
        elif kind is CheckCached:
            if instr.base not in self.defined:
                raise _Uncompilable(f"may-undefined read of {instr.base!r}")
            self.used.update(("CACHES", "MKC", "CC"))
            cid = instr.cache_id
            self.emit(depth, f"_c = CACHES.get({cid})")
            self.emit(depth, "if _c is None:")
            self.emit(depth + 1, "_c = MKC()")
            self.emit(depth + 1, f"CACHES[{cid}] = _c")
            call = (
                f"CC(_c, e[{self.slot(instr.base)}], {self.expr(instr.offset)}, "
                f"{instr.width}, {self.const(instr.access, 'A')})"
            )
            if not self.telemetry_on:
                self.emit(depth, call)
            else:
                self.used.add("TEL")
                self.emit(depth, "_ub = _c.ub")
                self.emit(depth, call)
                self.emit(depth, "if _c.ub > _ub:")
                self.emit(depth + 1, f"TEL.note_convergence({cid})")
        elif kind is CacheFinalize:
            if instr.base not in self.defined:
                raise _Uncompilable(f"may-undefined read of {instr.base!r}")
            self.used.update(("CACHES", "CR"))
            self.emit(depth, f"_c = CACHES.get({instr.cache_id})")
            self.emit(depth, "if _c is not None and _c.ub > 0:")
            self.emit(depth + 1, f"_b = e[{self.slot(instr.base)}]")
            self.emit(
                depth + 1,
                f"CR(_b, _b + _c.ub, {self.const(instr.access, 'A')}, anchor=_b)",
            )
            self.emit(depth + 1, "_c.reset()")
        elif kind is Malloc:
            self.used.add("MAL")
            code = self.expr(instr.size)
            self.defined.add(instr.dst)
            self.emit(depth, f"e[{self.slot(instr.dst)}] = MAL({code}).base")
            self.emit(depth, f"cy += {costs.malloc!r}")
        elif kind is GlobalAlloc:
            self.used.add("DG")
            self.defined.add(instr.dst)
            self.emit(
                depth,
                f"e[{self.slot(instr.dst)}] = "
                f"DG({instr.dst!r}, {instr.size}).base",
            )
        elif kind is Free:
            if instr.ptr not in self.defined:
                raise _Uncompilable(f"may-undefined read of {instr.ptr!r}")
            self.used.add("FR")
            self.emit(depth, f"FR(e[{self.slot(instr.ptr)}])")
            self.emit(depth, f"cy += {costs.free!r}")
        elif kind is PtrAdd:
            if instr.base not in self.defined:
                raise _Uncompilable(f"may-undefined read of {instr.base!r}")
            code = f"e[{self.slot(instr.base)}] + {self.expr(instr.offset)}"
            self.defined.add(instr.dst)
            self.emit(depth, f"e[{self.slot(instr.dst)}] = {code}")
            self.emit(depth, f"cy += {costs.arith!r}")
        elif kind is Memset:
            if instr.base not in self.defined:
                raise _Uncompilable(f"may-undefined read of {instr.base!r}")
            self.emit(depth, f"_b = e[{self.slot(instr.base)}]")
            self.emit(depth, f"_n = {self.expr(instr.length)}")
            self.emit(
                depth,
                f"GMS(san, {self.const(instr.protection, 'PR')}, "
                f"_b + {self.expr(instr.offset)}, _n, "
                f"{self.expr(instr.byte)}, _b)",
            )
            self.emit(
                depth, f"cy += {costs.byte_move!r} * (_n if _n > 0 else 0)"
            )
            self._classify(instr.protection, depth)
        elif kind is Memcpy:
            for base in (instr.dst_base, instr.src_base):
                if base not in self.defined:
                    raise _Uncompilable(f"may-undefined read of {base!r}")
            self.emit(depth, f"_db = e[{self.slot(instr.dst_base)}]")
            self.emit(depth, f"_sb = e[{self.slot(instr.src_base)}]")
            self.emit(depth, f"_n = {self.expr(instr.length)}")
            self.emit(
                depth,
                f"GMC(san, {self.const(instr.protection, 'PR')}, "
                f"_db + {self.expr(instr.dst_offset)}, "
                f"_sb + {self.expr(instr.src_offset)}, _n, _db, _sb)",
            )
            self.emit(
                depth, f"cy += {costs.byte_move!r} * (_n if _n > 0 else 0)"
            )
            self._classify(instr.protection, depth)
        elif kind is Strcpy:
            for base in (instr.dst_base, instr.src_base):
                if base not in self.defined:
                    raise _Uncompilable(f"may-undefined read of {base!r}")
            self.emit(depth, f"_db = e[{self.slot(instr.dst_base)}]")
            self.emit(depth, f"_sb = e[{self.slot(instr.src_base)}]")
            self.emit(
                depth,
                f"_n = GSC(san, {self.const(instr.protection, 'PR')}, "
                f"_db + {self.expr(instr.dst_offset)}, "
                f"_sb + {self.expr(instr.src_offset)}, _db, _sb)",
            )
            self.emit(depth, f"cy += {costs.byte_scan!r} * _n")
            self._classify(instr.protection, depth)
        elif kind is Call:
            args = ", ".join(self.expr(a) for a in instr.args)
            self.used.add("CALLF")
            self.emit(depth, f"cy += {costs.call!r}")
            self.emit(depth, "E.instructions = I")
            self.emit(depth, "E.native_cycles = cy")
            self.emit(depth, f"_r = CALLF({instr.func!r}, [{args}])")
            self.emit(depth, "I = E.instructions")
            self.emit(depth, "cy = E.native_cycles")
            if instr.dst is not None:
                self.defined.add(instr.dst)
                self.emit(
                    depth,
                    f"e[{self.slot(instr.dst)}] = _r if _r is not None else 0",
                )
        elif kind is Return:
            self.emit(depth, f"cy += {costs.ret!r}")
            if instr.expr is not None:
                self.emit(depth, f"return {self.expr(instr.expr)}")
            else:
                self.emit(depth, "return None")
        elif kind is StackAlloc:
            pass  # materialized at function entry
        else:
            raise _Uncompilable(f"instruction {kind.__name__}")

    # -- loops ---------------------------------------------------------
    def _loop(self, loop: Loop, depth: int) -> None:
        n = self._next()
        step = loop.step
        self.emit(depth, f"_s{n} = {self.expr(loop.start)}")
        self.emit(depth, f"_e{n} = {self.expr(loop.end)}")
        if loop.reverse:
            self.emit(
                depth, f"_r{n} = range(_e{n} - {step}, _s{n} - 1, {-step})"
            )
        else:
            self.emit(depth, f"_r{n} = range(_s{n}, _e{n}, {step})")

        plan = _fastpath.analyze_loop(loop)
        emit_try = self.telemetry_on or (
            plan is not None and not self.needs_resolve
        )
        if emit_try:
            preload = list(plan.preload) if plan is not None else []
            for name in preload:
                if name not in self.defined:
                    raise _Uncompilable(f"may-undefined read of {name!r}")
            env_literal = ", ".join(
                f"{name!r}: e[{self.slot(name)}]" for name in preload
            )
            self.used.update(("FP", "SL"))
            self.emit(depth, f"_t{n} = 0")
            if self.telemetry_on:
                self.used.update(("TEL", "PROF"))
                self.emit(depth, "if FP:")
                self.emit(depth + 1, '_p0 = PROF.begin("superblock")')
            else:
                # MIN_TRIP_COUNT mirrors try_execute's own early decline;
                # skipping the call entirely is invisible without telemetry.
                self.emit(
                    depth,
                    f"if FP and len(_r{n}) >= {_fastpath.MIN_TRIP_COUNT}:",
                )
            self.emit(depth + 1, "E.instructions = I")
            self.emit(depth + 1, "E.native_cycles = cy")
            self.emit(depth + 1, f"_env = {{{env_literal}}}")
            loop_ref = self.const(loop, "L")
            if self.telemetry_on:
                self.emit(depth + 1, f"_tk = TRY(E, {loop_ref}, _r{n}, _env)")
                self.emit(depth + 1, 'PROF.end("superblock", _p0)')
                self.emit(depth + 1, "if _tk:")
                inner = depth + 2
            else:
                self.emit(depth + 1, f"if TRY(E, {loop_ref}, _r{n}, _env):")
                inner = depth + 2
            self.emit(inner, "for _k, _v in _env.items():")
            self.emit(inner + 1, "e[SL[_k]] = _v")
            self.emit(inner, "I = E.instructions")
            self.emit(inner, "cy = E.native_cycles")
            if self.telemetry_on:
                self.emit(inner, 'TEL.incr("superblock_loops")')
                self.emit(inner, f'TEL.incr("superblock_iterations", len(_r{n}))')
            self.emit(inner, f"_t{n} = 1")
            self.emit(depth, f"if not _t{n}:")
            body_depth = depth + 1
        else:
            body_depth = depth

        if self.telemetry_on:
            self.used.add("PROF")
            self.emit(body_depth, '_p1 = PROF.begin("interpreter_loop")')
        before = set(self.defined)
        self.defined.add(loop.var)
        self.emit(body_depth, f"for _i{n} in _r{n}:")
        self.emit(body_depth + 1, f"e[{self.slot(loop.var)}] = _i{n}")
        self.emit(body_depth + 1, f"cy += {self.costs.loop_iteration!r}")
        self.block(loop.body, body_depth + 1)
        if self.telemetry_on:
            self.emit(body_depth, 'PROF.end("interpreter_loop", _p1)')
        # zero-trip rule: body definitions (and the induction variable)
        # are not definite after the loop
        self.defined = before

    # -- elision audit -------------------------------------------------
    def _elided(self, marker: CheckElided, depth: int) -> None:
        inner = marker.inner
        kind = type(inner)
        if kind is CheckRegion:
            if inner.base not in self.defined:
                raise _Uncompilable(f"may-undefined read of {inner.base!r}")
            self.used.add("RPR")
            self.emit(depth, f"_b = e[{self.slot(inner.base)}]")
            anchor = "_b" if inner.use_anchor else "None"
            self.emit(
                depth,
                f"RPR({self.const(marker, 'MK')}, "
                f"_b + {self.expr(inner.start)}, "
                f"_b + {self.expr(inner.end)}, {anchor})",
            )
        elif kind is CheckAccess:
            if inner.base not in self.defined:
                raise _Uncompilable(f"may-undefined read of {inner.base!r}")
            self.used.add("RPA")
            self.emit(
                depth,
                f"RPA({self.const(marker, 'MK')}, "
                f"e[{self.slot(inner.base)}] + {self.expr(inner.offset)})",
            )
        # other inner kinds: the tree-walker's replay is a no-op

    # -- assembly ------------------------------------------------------
    #: prologue binding per conditional helper name
    _BINDINGS = {
        "st": "st = san.stats",
        "P": "P = E.protection_counts",
        "mem": "_sp = san.space; mem = _sp._mem; TS = _sp._size",
        "RES": "RES = san.resolve_address",
        "CR": "CR = san.check_region",
        "CA": "CA = san.check_access",
        "CC": "CC = san.check_cached",
        "MKC": "MKC = san.make_cache",
        "CACHES": "CACHES = E.caches",
        "MAL": "MAL = san.malloc",
        "FR": "FR = san.free",
        "DG": "DG = san.define_global",
        "CALLF": "CALLF = E._call_by_name",
        "FP": "FP = E.fastpath",
        "TEL": "TEL = E.telemetry",
        "PROF": "PROF = E.telemetry.profiler",
        "RPR": "RPR = E._replay_region_elided",
        "RPA": "RPA = E._replay_access_elided",
        "SL": None,  # namespace constant (the slot map), not a binding
    }

    def build(self) -> CompiledFunction:
        function = self.fn
        self.defined.update(function.params)
        param_slots = [self.slot(p) for p in function.params]
        stack_buffers = function.stack_buffers()
        for sb in stack_buffers:
            self.defined.add(sb.dst)

        self.block(function.body, 2)
        body_lines = self.lines
        self.lines = []

        self.emit(0, "def _cf(E, e):")
        self.emit(1, "san = E.san")
        self.emit(1, "I = E.instructions")
        self.emit(1, "cy = E.native_cycles")
        self.emit(1, "M = E.max_instructions")
        for name in sorted(self.used):
            binding = self._BINDINGS[name]
            if binding:
                self.emit(1, binding)
        if "SL" in self.used:
            self.ns["SL"] = self.slots
        if stack_buffers:
            sizes = ", ".join(str(sb.size) for sb in stack_buffers)
            names = ", ".join(repr(sb.dst) for sb in stack_buffers)
            self.emit(1, f"_fr = san.push_frame([{sizes}], [{names}])")
            self.emit(1, "_fv = _fr.variables")
            for position, sb in enumerate(stack_buffers):
                self.emit(1, f"e[{self.slot(sb.dst)}] = _fv[{position}].base")
            self.emit(1, f"cy += {self.costs.stack_frame!r}")
        self.emit(1, "try:")
        self.lines.extend(body_lines)
        self.emit(2, "return None")
        self.emit(1, "finally:")
        self.emit(2, "E.instructions = I")
        self.emit(2, "E.native_cycles = cy")
        if stack_buffers:
            self.emit(2, "san.pop_frame()")

        source = "\n".join(self.lines)
        namespace = dict(_SHARED_NS)
        namespace.update(self.ns)
        exec(  # noqa: S102 - same trusted codegen pattern as fastpath
            compile(source, f"<compiled:{function.name}>", "exec"), namespace
        )
        return CompiledFunction(
            name=function.name,
            closure=namespace["_cf"],
            n_slots=len(self.slots),
            param_slots=param_slots,
            source=source,
        )


def compile_function(
    function: Function,
    costs: NativeCosts,
    needs_resolve: bool,
    telemetry_on: bool,
) -> Optional[CompiledFunction]:
    """Lower one function; None when it keeps tree-walker semantics."""
    try:
        return _Emitter(function, costs, needs_resolve, telemetry_on).build()
    except _Uncompilable:
        return None


def compile_program(
    program: Program,
    costs: NativeCosts,
    needs_resolve: bool,
    telemetry_on: bool,
) -> Dict[str, CompiledFunction]:
    """Compiled closures for every compilable function of ``program``.

    Results are memoized on the Program object keyed by everything the
    generated source bakes in; ``NativeCosts`` is frozen/hashable so it
    keys directly.
    """
    tables = getattr(program, _TABLE_ATTR, None)
    if tables is None:
        tables = {}
        setattr(program, _TABLE_ATTR, tables)
    key = (costs, needs_resolve, bool(telemetry_on))
    table = tables.get(key)
    if table is None:
        table = {}
        for name, function in program.functions.items():
            compiled = compile_function(
                function, costs, needs_resolve, telemetry_on
            )
            if compiled is not None:
                table[name] = compiled
        tables[key] = table
    return table


class CompiledEngine(Interpreter):
    """Interpreter variant that runs pre-lowered closures where possible.

    Subclassing keeps full interop: uncompilable functions execute
    through the inherited tree-walker, calls cross the boundary in both
    directions, and the superblock fast path sees the same attribute
    surface (``instructions``, ``native_cycles``, ``_eval``, …) it
    expects from the reference interpreter.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._table: Dict[str, CompiledFunction] = {}

    def run(self, iprogram, args=None):
        self._table = compile_program(
            iprogram.program,
            self.costs,
            self._needs_resolve,
            self.telemetry is not None,
        )
        return super().run(iprogram, args)

    # -- dispatch ------------------------------------------------------
    def _call_function(self, function, args):
        compiled = self._table.get(function.name)
        if compiled is None:
            return super()._call_function(function, args)
        if len(args) != compiled.n_params:
            raise TypeError(
                f"{function.name} expects {compiled.n_params} args, "
                f"got {len(args)}"
            )
        env = [None] * compiled.n_slots
        for slot, value in zip(compiled.param_slots, args):
            env[slot] = value
        return compiled.closure(self, env)

    def _call_by_name(self, name: str, values: List[int]):
        return self._call_function(self._functions[name], values)

    # -- elision audit replay (split per inner kind so compiled code
    #    passes precomputed addresses instead of re-walking exprs) ------
    def _replay_rollback(self, marker, run_check) -> None:
        san = self.san
        snapshot = dict(vars(san.stats))
        reports_before = len(san.log.reports)
        halt_before = san.log.halt_on_error
        san.log.halt_on_error = False
        try:
            run_check()
        finally:
            san.log.halt_on_error = halt_before
            fired = san.log.reports[reports_before:]
            del san.log.reports[reports_before:]
            vars(san.stats).update(snapshot)
        if fired:
            self.elision_failures.append(
                ElisionAuditFailure(
                    site_id=marker.inner.site_id,
                    reason=marker.reason,
                    report=fired[0],
                )
            )

    def _replay_region_elided(self, marker, start, end, anchor) -> None:
        inner = marker.inner
        self._replay_rollback(
            marker,
            lambda: self.san.check_region(
                start, end, inner.access, anchor=anchor
            ),
        )

    def _replay_access_elided(self, marker, address) -> None:
        inner = marker.inner
        self._replay_rollback(
            marker,
            lambda: self.san.check_access(address, inner.width, inner.access),
        )


#: Engine registry used by Session.
ENGINES = {
    "tree": Interpreter,
    "compiled": CompiledEngine,
}


def resolve_engine(engine: Optional[str]) -> type:
    """Map an engine name (or None = process default) to its class."""
    name = engine_default() if engine is None else str(engine).strip().lower()
    try:
        return ENGINES[name]
    except KeyError:
        known = ", ".join(sorted(ENGINES))
        raise ValueError(
            f"unknown engine {name!r}; known engines: {known}"
        ) from None
