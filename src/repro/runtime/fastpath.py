"""Superblock fast path: bulk execution of eligible loops.

The tree-walking interpreter dispatches one IR node per iteration, which
makes the big experiment sweeps interpreter-bound.  This module applies
the paper's own insight to the simulator: just as one folded segment
vouches for a whole region, one *superblock* can execute a whole
straight-line loop when its behaviour is statically predictable.

A loop is eligible when

* its body is straight line — only ``Compute``/``Assign``/``Load``/
  ``Store`` plus leftover ``CheckAccess``/``CheckRegion`` instructions
  (no control flow, calls, allocation, intrinsics, or history caching);
* every memory/check site's base pointer is loop-invariant and its
  offset is affine in the induction variable (the same SCEV-style
  analysis loop-check promotion uses);
* expressions use only interpretable operators (shift amounts must be
  non-negative constants so bulk execution cannot raise mid-flight).

Execution then proceeds in three phases, each of which may *decline* and
fall back to the per-iteration interpreter (so every error path and
every edge case runs through the reference implementation):

1. **Precheck** — instruction budget, required variables present, every
   accessed address range inside the simulated address space.
2. **Fold** — the sanitizer's ``fold_*_checks`` hooks decide, without
   mutating anything, that every per-iteration check passes and return
   the exact stat deltas (see :mod:`repro.sanitizers.base`).
3. **Run + charge** — a compiled Python closure performs the real loads
   and stores in program order directly on the address-space buffer,
   and native cycles / instruction counts / CheckStats / Figure 10
   categories are charged arithmetically (count × per-iteration
   events), matching the tree-walker to the last counter.

Set ``REPRO_FASTPATH=0`` to disable globally (the differential test
suite runs every proxy both ways and asserts identical results).

The fold hooks' whole-range addressability scans dispatch through the
session's shadow backend (``repro.shadow.ShadowMemory.find_not_full``),
so under ``REPRO_SHADOW=numpy`` a superblock's covering-range scan is a
single vectorized comparison reduction instead of a per-segment walk —
the fast path and the shadow plane compose without either knowing about
the other.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import AccessType
from ..ir.nodes import (
    Assign,
    BinOp,
    CheckAccess,
    CheckRegion,
    Compute,
    Const,
    Expr,
    Load,
    Loop,
    Protection,
    Store,
    Var,
)
from ..passes.constprop import assigned_vars
from ..passes.loop_bounds import affine_of
from ..sanitizers.base import FoldResult

#: Attribute used to memoize the analysis result on each Loop node.
_PLAN_ATTR = "_fastpath_plan"

#: Loops shorter than this run through the tree walker; the superblock
#: setup cost (invariant evaluation, folding, closure entry) only pays
#: off once several iterations are amortized over it.
MIN_TRIP_COUNT = 4


def fastpath_enabled_default() -> bool:
    """Process-wide default for the superblock fast path."""
    return os.environ.get("REPRO_FASTPATH", "1").lower() not in (
        "0",
        "false",
        "off",
    )


# ----------------------------------------------------------------------
# expression compilation
# ----------------------------------------------------------------------
_BIN_TEMPLATES = {
    "+": "({} + {})",
    "-": "({} - {})",
    "*": "({} * {})",
    "//": "_div({}, {})",
    "%": "_mod({}, {})",
    "<<": "({} << {})",
    ">>": "({} >> {})",
    "&": "({} & {})",
    "|": "({} | {})",
    "^": "({} ^ {})",
    "<": "int({} < {})",
    "<=": "int({} <= {})",
    ">": "int({} > {})",
    ">=": "int({} >= {})",
    "==": "int({} == {})",
    "!=": "int({} != {})",
}


def _div(a: int, b: int) -> int:
    return a // b if b else 0


def _mod(a: int, b: int) -> int:
    return a % b if b else 0


class _Ineligible(Exception):
    """Internal signal: this loop cannot take the fast path."""


class _Namer:
    """Maps IR variable names to safe, stable Python local names."""

    def __init__(self) -> None:
        self._names: Dict[str, str] = {}

    def local(self, name: str) -> str:
        local = self._names.get(name)
        if local is None:
            local = f"v{len(self._names)}"
            self._names[name] = local
        return local


def _emit(expr: Expr, namer: _Namer, reads: List[str]) -> str:
    """Compile one IR expression to Python source (fully parenthesized)."""
    if type(expr) is Const:
        return repr(expr.value)
    if type(expr) is Var:
        reads.append(expr.name)
        return namer.local(expr.name)
    if type(expr) is BinOp:
        template = _BIN_TEMPLATES.get(expr.op)
        if template is None:
            raise _Ineligible(expr.op)
        if expr.op in ("<<", ">>"):
            # A negative shift amount raises mid-run; only allow shapes
            # that provably cannot (the tree walker handles the rest).
            if not (type(expr.right) is Const and expr.right.value >= 0):
                raise _Ineligible("non-constant shift")
        return template.format(
            _emit(expr.left, namer, reads), _emit(expr.right, namer, reads)
        )
    raise _Ineligible(type(expr).__name__)


# ----------------------------------------------------------------------
# the loop plan
# ----------------------------------------------------------------------
@dataclass
class _MemSite:
    """One Load/Store with an affine address: base + coeff*i + offset."""

    base: str
    coefficient: int
    offset_expr: Expr  # loop-invariant part, evaluated once per entry
    width: int


@dataclass
class _AccessCheckSite:
    """One leftover in-loop CheckAccess (ASan / ASan-- shapes)."""

    base: str
    coefficient: int
    offset_expr: Expr
    width: int
    access: AccessType


@dataclass
class _RegionCheckSite:
    """One leftover in-loop CheckRegion (LFP's region placement)."""

    base: str
    start_coefficient: int
    start_expr: Expr
    end_coefficient: int
    end_expr: Expr
    access: AccessType
    use_anchor: bool


@dataclass
class LoopPlan:
    """Everything needed to run one eligible loop as a superblock."""

    body_len: int
    arith_count: int  # Assign instructions per iteration
    memory_count: int  # Load + Store instructions per iteration
    compute_cycles: float  # summed Compute cycles per iteration
    mem_sites: List[_MemSite] = field(default_factory=list)
    access_checks: List[_AccessCheckSite] = field(default_factory=list)
    region_checks: List[_RegionCheckSite] = field(default_factory=list)
    #: Figure 10 access categories charged per iteration.
    protection_per_iter: Dict[str, int] = field(default_factory=dict)
    #: Variables the closure reads from ``env`` before the first write.
    preload: List[str] = field(default_factory=list)
    runner: Callable = None
    source: str = ""


def _classify(protection: Protection) -> Optional[str]:
    """The Figure 10 category ``_classify_access`` would record."""
    if protection is Protection.ELIMINATED:
        return "eliminated"
    if protection is Protection.CACHED:
        return "cached"
    if protection is Protection.ELIDED:
        return "elided"
    if protection is Protection.UNPROTECTED:
        return "unprotected"
    return None  # DIRECT: classified at the check instruction


def analyze_loop(loop: Loop) -> Optional[LoopPlan]:
    """Build (or reuse) the superblock plan for ``loop``; None = ineligible.

    The result is memoized on the Loop node itself, so instrumented
    programs shared through the memo cache analyze each loop once per
    process no matter how many runs execute it.
    """
    plan = getattr(loop, _PLAN_ATTR, _PLAN_ATTR)
    if plan is not _PLAN_ATTR:
        return plan
    try:
        plan = _analyze(loop)
    except _Ineligible:
        plan = None
    setattr(loop, _PLAN_ATTR, plan)
    return plan


def _analyze(loop: Loop) -> LoopPlan:
    body = loop.body
    if not body:
        raise _Ineligible("empty body")
    killed = assigned_vars(body) | {loop.var}
    if loop.var in assigned_vars(body):
        raise _Ineligible("induction variable reassigned")

    plan = LoopPlan(
        body_len=len(body), arith_count=0, memory_count=0, compute_cycles=0.0
    )
    namer = _Namer()
    loop_local = namer.local(loop.var)
    lines: List[str] = []
    written = {loop.var}
    preload: List[str] = []

    def note_reads(names: List[str]) -> None:
        for name in names:
            if name not in written and name not in preload:
                preload.append(name)

    def affine(expr: Expr):
        result = affine_of(expr, loop.var, killed)
        if result is None:
            raise _Ineligible("non-affine offset")
        return result

    def invariant_base(name: str) -> None:
        if name in killed:
            raise _Ineligible("loop-variant base pointer")

    for instr in body:
        kind = type(instr)
        if kind is Compute:
            plan.compute_cycles += instr.cycles
        elif kind is Assign:
            reads: List[str] = []
            code = _emit(instr.expr, namer, reads)
            note_reads(reads)
            lines.append(f"{namer.local(instr.dst)} = {code}")
            written.add(instr.dst)
            plan.arith_count += 1
        elif kind is Load or kind is Store:
            if instr.width not in (1, 2, 4, 8):
                raise _Ineligible("unsupported width")
            invariant_base(instr.base)
            site = affine(instr.offset)
            reads = []
            offset_code = _emit(instr.offset, namer, reads)
            note_reads(reads + [instr.base])
            address = f"({namer.local(instr.base)} + {offset_code})"
            plan.mem_sites.append(
                _MemSite(instr.base, site.coefficient, site.offset, instr.width)
            )
            category = _classify(instr.protection)
            if category:
                plan.protection_per_iter[category] = (
                    plan.protection_per_iter.get(category, 0) + 1
                )
            plan.memory_count += 1
            if kind is Load:
                lines.append(
                    f"{namer.local(instr.dst)} = "
                    f"_u{instr.width}(mem, {address})[0]"
                )
                written.add(instr.dst)
            else:
                reads = []
                value_code = _emit(instr.value, namer, reads)
                note_reads(reads)
                mask = (1 << (8 * instr.width)) - 1
                lines.append(
                    f"_p{instr.width}(mem, {address}, {value_code} & {mask})"
                )
        elif kind is CheckAccess:
            invariant_base(instr.base)
            site = affine(instr.offset)
            note_reads([instr.base])
            plan.access_checks.append(
                _AccessCheckSite(
                    instr.base,
                    site.coefficient,
                    site.offset,
                    instr.width,
                    instr.access,
                )
            )
        elif kind is CheckRegion:
            invariant_base(instr.base)
            start = affine(instr.start)
            end = affine(instr.end)
            note_reads([instr.base])
            plan.region_checks.append(
                _RegionCheckSite(
                    instr.base,
                    start.coefficient,
                    start.offset,
                    end.coefficient,
                    end.offset,
                    instr.access,
                    instr.use_anchor,
                )
            )
        else:
            raise _Ineligible(kind.__name__)

    plan.preload = preload
    plan.source, plan.runner = _compile(
        loop, namer, loop_local, preload, lines, written
    )
    return plan


def _compile(
    loop: Loop,
    namer: _Namer,
    loop_local: str,
    preload: List[str],
    lines: List[str],
    written: set,
) -> Tuple[str, Callable]:
    """Assemble and compile the superblock closure."""
    source = ["def _superblock(env, values, mem):"]
    for name in preload:
        source.append(f"    {namer.local(name)} = env[{name!r}]")
    source.append(f"    for {loop_local} in values:")
    if lines:
        source.extend(f"        {line}" for line in lines)
    else:
        source.append("        pass")
    for name in sorted(written):
        source.append(f"    env[{name!r}] = {namer.local(name)}")
    text = "\n".join(source)
    namespace = {"_div": _div, "_mod": _mod}
    for width, fmt in ((1, "<B"), (2, "<H"), (4, "<I"), (8, "<Q")):
        packer = struct.Struct(fmt)
        namespace[f"_u{width}"] = packer.unpack_from
        namespace[f"_p{width}"] = packer.pack_into
    exec(compile(text, "<fastpath>", "exec"), namespace)  # noqa: S102
    return text, namespace["_superblock"]


# ----------------------------------------------------------------------
# runtime execution
# ----------------------------------------------------------------------
def _declined(interpreter, reason: str) -> bool:
    """Record a decline reason when telemetry is on; always False."""
    tele = interpreter.telemetry
    if tele is not None:
        tele.note_superblock_decline(reason)
    return False


def try_execute(interpreter, loop: Loop, values: range, env: Dict[str, int]) -> bool:
    """Run ``loop`` as a superblock if possible; False means fall back.

    Never partially executes: every declining branch happens before the
    first state mutation, so the tree walker can take over cleanly.
    When the interpreter carries a telemetry registry, every decline is
    counted by reason (the wiring-regression signal `repro profile`
    surfaces); the disabled path adds no work beyond the decline itself.
    """
    count = len(values)
    if count < MIN_TRIP_COUNT:
        return _declined(interpreter, "short_trip")
    if interpreter._needs_resolve:
        return _declined(interpreter, "needs_address_resolution")
    plan = analyze_loop(loop)
    if plan is None:
        return _declined(interpreter, "ineligible_body")
    if (
        interpreter.instructions + count * plan.body_len
        > interpreter.max_instructions
    ):
        # the reference path raises BudgetExceeded exactly
        return _declined(interpreter, "instruction_budget")
    for name in plan.preload:
        if name not in env:
            # the reference path raises NameError/KeyError
            return _declined(interpreter, "unbound_variable")
    sanitizer = interpreter.san
    space = sanitizer.space
    total_size = space.layout.total_size
    first, last, stride = values[0], values[-1], values.step

    evaluated: Dict[int, int] = {}

    def invariant(expr: Expr) -> int:
        key = id(expr)
        value = evaluated.get(key)
        if value is None:
            value = interpreter._eval(expr, env)
            evaluated[key] = value
        return value

    try:
        for site in plan.mem_sites:
            base = env[site.base]
            offset = invariant(site.offset_expr)
            lo = base + site.coefficient * first + offset
            hi = base + site.coefficient * last + offset
            if lo > hi:
                lo, hi = hi, lo
            if lo < 0 or hi + site.width > total_size:
                # reference path records hardware faults
                return _declined(interpreter, "address_out_of_range")

        folded = FoldResult()
        for check in plan.access_checks:
            base = env[check.base]
            address = base + check.coefficient * first + invariant(
                check.offset_expr
            )
            result = sanitizer.fold_access_checks(
                count,
                address,
                check.coefficient * stride,
                check.width,
                check.access,
            )
            if result is None:
                return _declined(interpreter, "fold_declined")
            folded.merge(result)
        for check in plan.region_checks:
            base = env[check.base]
            start = base + check.start_coefficient * first + invariant(
                check.start_expr
            )
            end = base + check.end_coefficient * first + invariant(
                check.end_expr
            )
            result = sanitizer.fold_region_checks(
                count,
                base,
                start,
                check.start_coefficient * stride,
                end,
                check.end_coefficient * stride,
                check.access,
                check.use_anchor,
            )
            if result is None:
                return _declined(interpreter, "fold_declined")
            folded.merge(result)
    except (KeyError, NameError):
        # undefined variable: reference path raises it
        return _declined(interpreter, "unbound_variable")

    plan.runner(env, values, space._mem)

    interpreter.instructions += count * plan.body_len
    costs = interpreter.costs
    interpreter.native_cycles += count * (
        costs.loop_iteration
        + plan.arith_count * costs.arith
        + plan.memory_count * costs.memory_access
        + plan.compute_cycles
    )
    folded.apply(sanitizer.stats)
    protection_counts = interpreter.protection_counts
    for category, per_iteration in plan.protection_per_iter.items():
        protection_counts[category] += per_iteration * count
    if folded.fast_only:
        protection_counts["fast_only"] += folded.fast_only
    if folded.full_check:
        protection_counts["full_check"] += folded.full_check
    return True
