"""Deterministic cycle accounting for overhead ratios.

The paper's evaluation metric is runtime overhead relative to native
execution.  Our substrate is an interpreter, so wall-clock time would
measure Python, not the sanitizer designs.  Instead we charge
*simulated cycles*: the interpreter accumulates native work per executed
IR operation, and the cost model converts a run's
:class:`~repro.sanitizers.base.CheckStats` into sanitizer cycles.  The
overhead ratio ``(native + sanitizer) / native`` then depends only on
check counts, metadata loads, and poisoning traffic — exactly the
quantities segment folding changes.

Weights approximate instruction costs on a modern x86-64 (1 cycle per
simple ALU op, ~3 per L1-hit load, heavier allocator paths) and were
calibrated so the geometric-mean overheads land near the paper's Table 2
(GiantSan 1.46x, ASan-- 1.75x, ASan 2.13x); the *shape* (ordering,
relative gaps) is robust to the exact values.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from ..sanitizers.base import CheckStats


@dataclass(frozen=True)
class NativeCosts:
    """Cycles charged per executed IR operation (the native baseline)."""

    arith: float = 1.0  # Assign / PtrAdd
    memory_access: float = 2.0  # Load / Store (address calc + access)
    loop_iteration: float = 1.0  # cmp + inc + branch
    branch: float = 1.0  # If
    call: float = 5.0
    ret: float = 1.0
    malloc: float = 60.0
    free: float = 40.0
    stack_frame: float = 4.0
    byte_move: float = 0.25  # memset/memcpy, per byte (vectorized)
    byte_scan: float = 0.5  # strcpy/strlen, per byte


@dataclass(frozen=True)
class SanitizerCosts:
    """Cycles charged per sanitizer event (on top of native work)."""

    shadow_load: float = 2.7  # metadata load (L1 hit + decode)
    shadow_store: float = 0.4  # poisoning is streaming writes
    instruction_check: float = 2.3  # cmp/branch + register pressure
    region_check: float = 3.5  # CI call + anchor setup
    slow_check_extra: float = 5.0  # the slow path's extra branches
    cached_hit: float = 3.5  # bound compare + branch + register pressure
    #   (Fig 11a: the cached fast path is only modestly cheaper than
    #   ASan's load+compare when the shadow load would hit L1 anyway)
    cache_update: float = 5.0  # reload metadata + recompute the bound
    extra_instruction: float = 1.0  # tool-specific work (poisoning
    #   bookkeeping, LFP's stack simulation) charged by runtime hooks
    malloc_overhead: float = 30.0  # interceptor dispatch (all tools)
    free_overhead: float = 20.0  # interceptor dispatch (all tools)

    def cycles(self, stats: CheckStats) -> float:
        """Total sanitizer cycles implied by a run's event counters."""
        return (
            stats.shadow_loads * self.shadow_load
            + stats.shadow_stores * self.shadow_store
            + stats.instruction_checks * self.instruction_check
            + stats.region_checks * self.region_check
            + stats.slow_checks * self.slow_check_extra
            + stats.cached_hits * self.cached_hit
            + stats.cache_updates * self.cache_update
            + stats.extra_instructions * self.extra_instruction
            + stats.allocations * self.malloc_overhead
            + stats.frees * self.free_overhead
        )


@dataclass(frozen=True)
class CostModel:
    """Bundles native and sanitizer cost tables."""

    native: NativeCosts = NativeCosts()
    sanitizer: SanitizerCosts = SanitizerCosts()

    def total_cycles(self, native_cycles: float, stats: CheckStats) -> float:
        return native_cycles + self.sanitizer.cycles(stats)

    def overhead_ratio(self, native_cycles: float, stats: CheckStats) -> float:
        """``(native + sanitizer) / native`` — Table 2's R column (1.0 = no
        overhead; the paper prints it as a percentage of native time)."""
        if native_cycles <= 0:
            return 1.0
        return self.total_cycles(native_cycles, stats) / native_cycles


DEFAULT_COST_MODEL = CostModel()


def geometric_mean(values) -> float:
    """Geometric mean, the aggregation Table 2 uses."""
    values = list(values)
    if not values:
        raise ValueError("geometric_mean of an empty sequence")
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError("geometric_mean needs positive values")
        product *= value
    return product ** (1.0 / len(values))
