"""Tree-walking interpreter executing instrumented IR under a sanitizer.

Responsibilities:

* evaluate expressions and execute instructions over the sanitizer's
  simulated address space;
* invoke the check instructions the instrumenter inserted, charging the
  sanitizer's event counters;
* accumulate *native* cycles per executed operation (the denominator of
  every overhead ratio);
* classify each dynamic memory access into the Figure 10 categories
  (eliminated / cached / fast-only / full-check).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import AccessType, AddressSpaceError, ErrorLog
from ..ir.nodes import (
    Assign,
    BinOp,
    CacheFinalize,
    Call,
    Compute,
    CheckAccess,
    CheckCached,
    CheckElided,
    CheckRegion,
    Const,
    Expr,
    Free,
    GlobalAlloc,
    If,
    Load,
    Loop,
    Malloc,
    Memcpy,
    Memset,
    Protection,
    PtrAdd,
    Return,
    StackAlloc,
    Store,
    Strcpy,
    Var,
)
from ..ir.program import Function
from ..passes.instrument import InstrumentedProgram
from ..sanitizers.base import AccessCache, CheckStats, Sanitizer
from . import fastpath as _fastpath
from .cost_model import CostModel, DEFAULT_COST_MODEL, NativeCosts
from .intrinsics import guarded_memcpy, guarded_memset, guarded_strcpy

_ARITH = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "//": lambda a, b: a // b if b else 0,
    "%": lambda a, b: a % b if b else 0,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
}


class _ReturnSignal(Exception):
    """Unwinds a function body on Return."""

    def __init__(self, value: Optional[int]):
        self.value = value


class BudgetExceeded(Exception):
    """Raised when a run exceeds its instruction budget (runaway guard)."""


@dataclass(frozen=True)
class ElisionAuditFailure:
    """A statically elided check whose dynamic replay fired a report.

    Produced only in audit instrumentation mode, where elided checks are
    kept as :class:`~repro.ir.nodes.CheckElided` markers and replayed
    against the shadow oracle.  Any instance means the static elision
    proof was unsound for this execution.
    """

    site_id: int
    reason: str
    report: object  # the first ErrorReport the replay produced


@dataclass
class RunResult:
    """Everything a single execution produced."""

    tool: str
    native_cycles: float
    stats: CheckStats
    errors: ErrorLog
    protection_counts: Counter = field(default_factory=Counter)
    return_value: Optional[int] = None
    instructions_executed: int = 0
    elision_audit_failures: List[ElisionAuditFailure] = field(
        default_factory=list
    )
    #: :class:`repro.telemetry.TelemetrySnapshot` when the session ran
    #: with telemetry enabled; None otherwise.
    telemetry: Optional[object] = None

    def total_cycles(self, model: CostModel = DEFAULT_COST_MODEL) -> float:
        return model.total_cycles(self.native_cycles, self.stats)

    def overhead_ratio(self, model: CostModel = DEFAULT_COST_MODEL) -> float:
        return model.overhead_ratio(self.native_cycles, self.stats)


class Interpreter:
    """Executes one instrumented program against one sanitizer."""

    def __init__(
        self,
        sanitizer: Sanitizer,
        native_costs: NativeCosts = NativeCosts(),
        max_instructions: int = 50_000_000,
        fastpath: Optional[bool] = None,
        telemetry: Optional[object] = None,
    ):
        self.san = sanitizer
        # only tag-based tools need address resolution before raw access
        self._needs_resolve = (
            type(sanitizer).resolve_address is not Sanitizer.resolve_address
        )
        self.costs = native_costs
        self.max_instructions = max_instructions
        #: Superblock fast path (see :mod:`repro.runtime.fastpath`);
        #: None resolves from the ``REPRO_FASTPATH`` environment toggle.
        self.fastpath = (
            _fastpath.fastpath_enabled_default() if fastpath is None else fastpath
        )
        #: Telemetry registry (:class:`repro.telemetry.Telemetry`) or
        #: None; gated per loop execution / cached-check site, never per
        #: instruction, so the disabled path stays at reference speed.
        self.telemetry = telemetry
        self.native_cycles = 0.0
        self.instructions = 0
        self.hardware_faults = 0
        self.caches: Dict[int, AccessCache] = {}
        self.protection_counts: Counter = Counter()
        self.elision_failures: List[ElisionAuditFailure] = []
        self._functions: Dict[str, Function] = {}

    # ------------------------------------------------------------------
    def run(
        self,
        iprogram: InstrumentedProgram,
        args: Optional[List[int]] = None,
    ) -> RunResult:
        """Execute the entry function with integer ``args``."""
        program = iprogram.program
        self._functions = program.functions
        entry = program.function(program.entry)
        tele = self.telemetry
        if tele is None:
            value = self._call_function(entry, list(args or []))
        else:
            started = tele.profiler.begin("run")
            try:
                value = self._call_function(entry, list(args or []))
            finally:
                tele.profiler.end("run", started)
        return RunResult(
            tool=self.san.name,
            native_cycles=self.native_cycles,
            stats=self.san.stats,
            errors=self.san.log,
            protection_counts=self.protection_counts,
            return_value=value,
            instructions_executed=self.instructions,
            elision_audit_failures=self.elision_failures,
            telemetry=None if tele is None else tele.snapshot(self.san),
        )

    # ------------------------------------------------------------------
    # function invocation
    # ------------------------------------------------------------------
    def _call_function(self, function: Function, args: List[int]) -> Optional[int]:
        if len(args) != len(function.params):
            raise TypeError(
                f"{function.name} expects {len(function.params)} args, "
                f"got {len(args)}"
            )
        env: Dict[str, int] = dict(zip(function.params, args))
        stack_buffers = function.stack_buffers()
        frame = None
        if stack_buffers:
            frame = self.san.push_frame(
                [sb.size for sb in stack_buffers],
                [sb.dst for sb in stack_buffers],
            )
            for variable in frame.variables:
                env[variable.name] = variable.base
            self.native_cycles += self.costs.stack_frame
        try:
            self._exec_block(function.body, env)
            return None
        except _ReturnSignal as signal:
            return signal.value
        finally:
            if frame is not None:
                self.san.pop_frame()

    # ------------------------------------------------------------------
    # expression evaluation
    # ------------------------------------------------------------------
    def _eval(self, expr: Expr, env: Dict[str, int]) -> int:
        if type(expr) is Const:
            return expr.value
        if type(expr) is Var:
            try:
                return env[expr.name]
            except KeyError:
                raise NameError(f"undefined variable {expr.name!r}") from None
        if type(expr) is BinOp:
            return _ARITH[expr.op](
                self._eval(expr.left, env), self._eval(expr.right, env)
            )
        raise TypeError(f"cannot evaluate {expr!r}")

    # ------------------------------------------------------------------
    # instruction execution
    # ------------------------------------------------------------------
    def _exec_block(self, block, env: Dict[str, int]) -> None:
        for instr in block:
            self._exec(instr, env)

    def _exec(self, instr, env: Dict[str, int]) -> None:
        self.instructions += 1
        if self.instructions > self.max_instructions:
            raise BudgetExceeded(
                f"exceeded {self.max_instructions} executed instructions"
            )
        kind = type(instr)

        if kind is Compute:
            self.native_cycles += instr.cycles
        elif kind is Assign:
            env[instr.dst] = self._eval(instr.expr, env)
            self.native_cycles += self.costs.arith
        elif kind is Load:
            address = env[instr.base] + self._eval(instr.offset, env)
            if self._needs_resolve:
                address = self.san.resolve_address(address)
            try:
                env[instr.dst] = self.san.space.load(address, instr.width)
            except AddressSpaceError:
                # a real program would segfault here; keep running so the
                # evaluation (halt_on_error=false) can finish the workload
                env[instr.dst] = 0
                self.hardware_faults += 1
            self.native_cycles += self.costs.memory_access
            self._classify_access(instr.protection)
        elif kind is Store:
            address = env[instr.base] + self._eval(instr.offset, env)
            if self._needs_resolve:
                address = self.san.resolve_address(address)
            try:
                self.san.space.store(
                    address, instr.width, self._eval(instr.value, env)
                )
            except AddressSpaceError:
                self.hardware_faults += 1
            self.native_cycles += self.costs.memory_access
            self._classify_access(instr.protection)
        elif kind is Loop:
            self._exec_loop(instr, env)
        elif kind is If:
            self.native_cycles += self.costs.branch
            if self._eval(instr.cond, env):
                self._exec_block(instr.then, env)
            else:
                self._exec_block(instr.orelse, env)
        elif kind is CheckRegion:
            base = env[instr.base]
            start = base + self._eval(instr.start, env)
            end = base + self._eval(instr.end, env)
            before_fast = self.san.stats.fast_checks
            self.san.check_region(
                start, end, instr.access,
                anchor=base if instr.use_anchor else None,
            )
            self._classify_check(before_fast)
        elif kind is CheckAccess:
            address = env[instr.base] + self._eval(instr.offset, env)
            before_fast = self.san.stats.fast_checks
            self.san.check_access(address, instr.width, instr.access)
            self._classify_check(before_fast)
        elif kind is CheckElided:
            self._replay_elided(instr, env)
        elif kind is CheckCached:
            cache = self.caches.get(instr.cache_id)
            if cache is None:
                cache = self.san.make_cache()
                self.caches[instr.cache_id] = cache
            if self.telemetry is None:
                self.san.check_cached(
                    cache,
                    env[instr.base],
                    self._eval(instr.offset, env),
                    instr.width,
                    instr.access,
                )
            else:
                # quasi-bound convergence: count each update that extended
                # this site's cached upper bound (§4.3 claims at most
                # ceil(log2(n/8)) of these per object on forward walks)
                bound_before = cache.ub
                self.san.check_cached(
                    cache,
                    env[instr.base],
                    self._eval(instr.offset, env),
                    instr.width,
                    instr.access,
                )
                if cache.ub > bound_before:
                    self.telemetry.note_convergence(instr.cache_id)
        elif kind is CacheFinalize:
            cache = self.caches.get(instr.cache_id)
            if cache is not None and cache.ub > 0:
                base = env[instr.base]
                self.san.check_region(
                    base, base + cache.ub, instr.access, anchor=base
                )
                cache.reset()
        elif kind is Malloc:
            size = self._eval(instr.size, env)
            env[instr.dst] = self.san.malloc(size).base
            self.native_cycles += self.costs.malloc
        elif kind is GlobalAlloc:
            env[instr.dst] = self.san.define_global(instr.dst, instr.size).base
        elif kind is Free:
            self.san.free(env[instr.ptr])
            self.native_cycles += self.costs.free
        elif kind is PtrAdd:
            env[instr.dst] = env[instr.base] + self._eval(instr.offset, env)
            self.native_cycles += self.costs.arith
        elif kind is Memset:
            base = env[instr.base]
            address = base + self._eval(instr.offset, env)
            length = self._eval(instr.length, env)
            guarded_memset(
                self.san, instr.protection, address, length,
                self._eval(instr.byte, env), anchor=base,
            )
            self.native_cycles += self.costs.byte_move * max(length, 0)
            self._classify_access(instr.protection)
        elif kind is Memcpy:
            dst_base = env[instr.dst_base]
            src_base = env[instr.src_base]
            dst = dst_base + self._eval(instr.dst_offset, env)
            src = src_base + self._eval(instr.src_offset, env)
            length = self._eval(instr.length, env)
            guarded_memcpy(
                self.san, instr.protection, dst, src, length,
                dst_anchor=dst_base, src_anchor=src_base,
            )
            self.native_cycles += self.costs.byte_move * max(length, 0)
            self._classify_access(instr.protection)
        elif kind is Strcpy:
            dst_base = env[instr.dst_base]
            src_base = env[instr.src_base]
            dst = dst_base + self._eval(instr.dst_offset, env)
            src = src_base + self._eval(instr.src_offset, env)
            copied = guarded_strcpy(
                self.san, instr.protection, dst, src,
                dst_anchor=dst_base, src_anchor=src_base,
            )
            self.native_cycles += self.costs.byte_scan * copied
            self._classify_access(instr.protection)
        elif kind is Call:
            target = self._functions[instr.func]
            values = [self._eval(a, env) for a in instr.args]
            self.native_cycles += self.costs.call
            result = self._call_function(target, values)
            if instr.dst is not None:
                env[instr.dst] = result if result is not None else 0
        elif kind is Return:
            self.native_cycles += self.costs.ret
            value = (
                self._eval(instr.expr, env) if instr.expr is not None else None
            )
            raise _ReturnSignal(value)
        elif kind is StackAlloc:
            pass  # materialized at function entry
        else:
            raise TypeError(f"cannot execute {instr!r}")

    def _exec_loop(self, loop: Loop, env: Dict[str, int]) -> None:
        start = self._eval(loop.start, env)
        end = self._eval(loop.end, env)
        step = loop.step
        if loop.reverse:
            values = range(end - step, start - 1, -step)
        else:
            values = range(start, end, step)
        tele = self.telemetry
        if tele is None:
            if self.fastpath and _fastpath.try_execute(
                self, loop, values, env
            ):
                return
            body = loop.body
            for value in values:
                env[loop.var] = value
                self.native_cycles += self.costs.loop_iteration
                self._exec_block(body, env)
            return
        # Telemetry path: identical semantics, plus superblock counters
        # and sampled phase timing of the two hot loops.
        profiler = tele.profiler
        if self.fastpath:
            started = profiler.begin("superblock")
            taken = _fastpath.try_execute(self, loop, values, env)
            profiler.end("superblock", started)
            if taken:
                tele.incr("superblock_loops")
                tele.incr("superblock_iterations", len(values))
                return
        started = profiler.begin("interpreter_loop")
        body = loop.body
        for value in values:
            env[loop.var] = value
            self.native_cycles += self.costs.loop_iteration
            self._exec_block(body, env)
        profiler.end("interpreter_loop", started)

    # ------------------------------------------------------------------
    # elision audit replay
    # ------------------------------------------------------------------
    def _replay_elided(self, marker: CheckElided, env: Dict[str, int]) -> None:
        """Replay a statically elided check against the shadow oracle.

        The replay must be invisible: every sanitizer counter and any
        error report it produces are rolled back, so an audited run's
        stats and log match the run where the check was truly deleted.
        A report firing means the static proof was unsound — recorded
        as an :class:`ElisionAuditFailure`.
        """
        inner = marker.inner
        san = self.san
        snapshot = dict(vars(san.stats))
        reports_before = len(san.log.reports)
        halt_before = san.log.halt_on_error
        san.log.halt_on_error = False
        try:
            if type(inner) is CheckRegion:
                base = env[inner.base]
                san.check_region(
                    base + self._eval(inner.start, env),
                    base + self._eval(inner.end, env),
                    inner.access,
                    anchor=base if inner.use_anchor else None,
                )
            elif type(inner) is CheckAccess:
                san.check_access(
                    env[inner.base] + self._eval(inner.offset, env),
                    inner.width,
                    inner.access,
                )
        finally:
            san.log.halt_on_error = halt_before
            fired = san.log.reports[reports_before:]
            del san.log.reports[reports_before:]
            vars(san.stats).update(snapshot)
        if fired:
            self.elision_failures.append(
                ElisionAuditFailure(
                    site_id=inner.site_id,
                    reason=marker.reason,
                    report=fired[0],
                )
            )

    # ------------------------------------------------------------------
    # Figure 10 classification
    # ------------------------------------------------------------------
    def _classify_access(self, protection: Protection) -> None:
        if protection is Protection.ELIMINATED:
            self.protection_counts["eliminated"] += 1
        elif protection is Protection.CACHED:
            self.protection_counts["cached"] += 1
        elif protection is Protection.ELIDED:
            self.protection_counts["elided"] += 1
        elif protection is Protection.UNPROTECTED:
            self.protection_counts["unprotected"] += 1
        # DIRECT accesses are classified at their check instruction.

    def _classify_check(self, fast_before: int) -> None:
        if self.san.stats.fast_checks > fast_before:
            self.protection_counts["fast_only"] += 1
        else:
            self.protection_counts["full_check"] += 1


def run_program(
    sanitizer: Sanitizer,
    iprogram: InstrumentedProgram,
    args: Optional[List[int]] = None,
    max_instructions: int = 50_000_000,
) -> RunResult:
    """One-shot convenience: interpret ``iprogram`` under ``sanitizer``."""
    return Interpreter(
        sanitizer, max_instructions=max_instructions
    ).run(iprogram, args)
