"""Guardian-wrapped memory intrinsics (memset / memcpy / strcpy).

ASan intercepts libc routines with guardian functions that validate the
whole touched region before running the real routine (paper §4.5,
"Runtime Checking").  For ASan the guardian costs one shadow load per
segment; GiantSan replaces it with the constant-time CI.  The interpreter
calls these helpers; they check (honouring the instruction's protection
tag) and then move the bytes.
"""

from __future__ import annotations

from ..errors import AccessType
from ..ir.nodes import Protection
from ..sanitizers.base import Sanitizer

#: Longest C-string strcpy will scan for a terminator before declaring
#: the source unterminated (keeps simulated runs bounded).
STRCPY_SCAN_LIMIT = 1 << 20


def guarded_memset(
    san: Sanitizer,
    protection: Protection,
    address: int,
    length: int,
    byte: int,
    anchor: int,
) -> None:
    """memset with an operation-level write guard."""
    if length <= 0:
        return
    if protection is Protection.DIRECT:
        san.check_region(address, address + length, AccessType.WRITE, anchor=anchor)
    san.space.fill(san.resolve_address(address), length, byte)


def guarded_memcpy(
    san: Sanitizer,
    protection: Protection,
    dst: int,
    src: int,
    length: int,
    dst_anchor: int,
    src_anchor: int,
) -> None:
    """memcpy with read+write operation-level guards."""
    if length <= 0:
        return
    if protection is Protection.DIRECT:
        san.check_region(src, src + length, AccessType.READ, anchor=src_anchor)
        san.check_region(dst, dst + length, AccessType.WRITE, anchor=dst_anchor)
    san.space.copy(san.resolve_address(dst), san.resolve_address(src), length)


def guarded_strcpy(
    san: Sanitizer,
    protection: Protection,
    dst: int,
    src: int,
    dst_anchor: int,
    src_anchor: int,
) -> int:
    """strcpy: find the terminator, guard both regions, copy; returns the
    number of bytes copied (terminator included)."""
    raw_src = san.resolve_address(src)
    limit = min(STRCPY_SCAN_LIMIT, san.layout.total_size - raw_src)
    scan = san.space.find_byte(raw_src, 0, limit)
    if scan < 0:
        scan = limit - 1
    length = scan + 1
    if protection is Protection.DIRECT:
        san.check_region(src, src + length, AccessType.READ, anchor=src_anchor)
        san.check_region(dst, dst + length, AccessType.WRITE, anchor=dst_anchor)
    san.space.copy(san.resolve_address(dst), raw_src, length)
    return length
