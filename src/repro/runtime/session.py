"""Session: the one-call API tying instrumentation and execution together.

A session owns a fresh sanitizer, instruments a program for it, runs the
program, and returns the :class:`RunResult`.  The benchmark harness and
the examples both drive everything through this module.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import os

from ..ir.program import Program
from ..passes.instrument import (
    InstrumentedProgram,
    instrument,
    instrument_cached,
)
from ..sanitizers import SANITIZER_FACTORIES
from ..sanitizers.base import Sanitizer
from ..telemetry import Telemetry, telemetry_enabled_default
from .compiler import resolve_engine
from .cost_model import CostModel, DEFAULT_COST_MODEL
from .interpreter import Interpreter, RunResult


def _memoize_default() -> bool:
    return os.environ.get("REPRO_INSTRUMENT_CACHE", "1").lower() not in (
        "0",
        "false",
        "off",
    )


def _invariants_default() -> bool:
    return os.environ.get("REPRO_INVARIANTS", "0").lower() in (
        "1",
        "true",
        "on",
    )


class Session:
    """One tool + one program, ready to execute.

    ``fastpath`` toggles the superblock fast path (None = the
    ``REPRO_FASTPATH`` process default); ``memoize`` reuses memoized
    instrumentation across sessions (None = the ``REPRO_INSTRUMENT_CACHE``
    process default).  Both are result-invariant accelerations.
    ``invariants`` attaches a raising
    :class:`~repro.fuzz.invariants.ShadowInvariantChecker` to the
    sanitizer so every allocator/frame event re-verifies shadow and
    accounting invariants (None = the ``REPRO_INVARIANTS`` process
    default, normally off).  ``audit_elisions`` keeps statically elided
    checks as :class:`~repro.ir.nodes.CheckElided` markers that the
    interpreter replays against the shadow oracle, surfacing unsound
    elisions in ``RunResult.elision_audit_failures``.
    ``interprocedural`` turns the summary-based analysis layer on or
    off for the static pipeline (None = the ``REPRO_INTERPROC`` process
    default, normally on): call sites consume function summaries
    instead of clobbering every dataflow fact, enabling cross-call
    check elision.

    ``telemetry`` attaches a :class:`~repro.telemetry.Telemetry`
    registry (None = the ``REPRO_TELEMETRY`` process default, normally
    off; pass an existing registry to share counters across sessions of
    the *same* sanitizer).  When on, each run's ``RunResult.telemetry``
    carries a counter snapshot; when off, nothing is attached and the
    run is byte-identical to a pre-telemetry session.

    ``engine`` selects the execution engine: ``"tree"`` (the reference
    tree-walking interpreter) or ``"compiled"`` (the compile-to-closures
    engine in :mod:`repro.runtime.compiler`, observation-equivalent and
    differentially tested).  None resolves the ``REPRO_ENGINE`` process
    default, which is ``tree``.

    ``shadow`` selects the shadow-plane backend the sanitizer is built
    on: ``"bytearray"`` (the reference plane) or ``"numpy"`` (the
    vectorized plane in :mod:`repro.shadow.numpy_shadow`, byte-identical
    and differentially tested).  None resolves the ``REPRO_SHADOW``
    process default, which is ``bytearray``.  Only valid with a tool
    *name* — a pre-built Sanitizer already owns its shadow plane.
    """

    def __init__(
        self,
        tool: str | Sanitizer,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        max_instructions: int = 50_000_000,
        fastpath: bool | None = None,
        memoize: bool | None = None,
        invariants: bool | None = None,
        audit_elisions: bool = False,
        telemetry: bool | Telemetry | None = None,
        engine: str | None = None,
        shadow: str | None = None,
        interprocedural: bool | None = None,
        **sanitizer_kwargs,
    ):
        if isinstance(tool, Sanitizer):
            if sanitizer_kwargs or shadow is not None:
                raise ValueError(
                    "pass sanitizer kwargs only with a tool *name*"
                )
            self.sanitizer = tool
        else:
            try:
                factory = SANITIZER_FACTORIES[tool]
            except KeyError:
                known = ", ".join(sorted(SANITIZER_FACTORIES))
                raise ValueError(
                    f"unknown tool {tool!r}; known tools: {known}"
                ) from None
            sanitizer_kwargs.setdefault("shadow_backend", shadow)
            self.sanitizer = factory(**sanitizer_kwargs)
        self.cost_model = cost_model
        self.max_instructions = max_instructions
        self.fastpath = fastpath
        self.engine = resolve_engine(engine)
        self.memoize = _memoize_default() if memoize is None else memoize
        self.audit_elisions = audit_elisions
        self.interprocedural = interprocedural
        if telemetry is None:
            telemetry = telemetry_enabled_default()
        self.telemetry = None
        if telemetry:
            self.telemetry = (
                telemetry
                if isinstance(telemetry, Telemetry)
                else Telemetry()
            )
            self.telemetry.attach(self.sanitizer)
        if invariants is None:
            invariants = _invariants_default()
        self.invariant_checker = None
        if invariants:
            # local import: repro.fuzz itself drives Sessions
            from ..fuzz.invariants import ShadowInvariantChecker

            self.invariant_checker = ShadowInvariantChecker.attach(
                self.sanitizer, raise_on_violation=True
            )

    def instrument(self, program: Program) -> InstrumentedProgram:
        if self.memoize:
            return instrument_cached(
                program,
                tool=self.sanitizer,
                audit_elisions=self.audit_elisions,
                interprocedural=self.interprocedural,
            )
        return instrument(
            program,
            tool=self.sanitizer,
            audit_elisions=self.audit_elisions,
            interprocedural=self.interprocedural,
        )

    def run(
        self, program: Program, args: Optional[List[int]] = None
    ) -> RunResult:
        """Instrument and execute ``program`` under this session's tool."""
        iprogram = self.instrument(program)
        interpreter = self.engine(
            self.sanitizer,
            max_instructions=self.max_instructions,
            fastpath=self.fastpath,
            telemetry=self.telemetry,
        )
        return interpreter.run(iprogram, args)


def run_with_tools(
    program: Program,
    tools: List[str],
    args: Optional[List[int]] = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    sanitizer_kwargs: Optional[Dict[str, dict]] = None,
) -> Dict[str, RunResult]:
    """Run one program under several tools with fresh state each.

    ``sanitizer_kwargs`` optionally maps tool name -> constructor kwargs
    (e.g. ``{"ASan": {"redzone": 512}}``).
    """
    results: Dict[str, RunResult] = {}
    for tool in tools:
        kwargs = (sanitizer_kwargs or {}).get(tool, {})
        session = Session(tool, cost_model=cost_model, **kwargs)
        results[tool] = session.run(program, args)
    return results
