"""Sanitizer-as-a-service control plane.

``repro serve`` turns :class:`~repro.runtime.session.Session` from a
library entry point into a multi-tenant runtime: an ASGI application
(:func:`repro.server.app.create_app`) accepts jobs over REST — run an
IR program under a chosen (tool × engine × shadow × fastpath) config,
run a table/figure sweep, launch a bounded fuzz campaign — executes
them on an async job manager backed by the persistent sharded fabric,
and exposes job status, results, telemetry, and error reports via
``GET /jobs/{id}`` plus a streamed event feed.

The package mirrors the API+worker layering of production FastAPI
services (``app.py`` / ``routers/`` / ``services/`` / ``models.py`` /
``config.py``), but is built on the dependency-free ASGI micro-kernel
in :mod:`repro.server.asgi` so the control plane runs on the stock
toolchain; any ASGI server (uvicorn, hypercorn) can host the app, and
:mod:`repro.server.http` provides a stdlib fallback server.

See ``docs/SERVICE.md`` for the endpoint and job-model reference.
"""

from .app import create_app
from .config import ServerConfig

__all__ = ["create_app", "ServerConfig"]
