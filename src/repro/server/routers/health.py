"""Liveness and process-level observability endpoints."""

from __future__ import annotations

from ..asgi import Router

router = Router()


@router.get("/healthz")
async def healthz(request):
    manager = request.state.manager
    return {
        "status": "ok" if manager.accepting else "draining",
        "accepting": manager.accepting,
        "jobs": manager.counts(),
    }


@router.get("/stats")
async def stats(request):
    from ...analysis.parallel import fabric_stats
    from ...passes.instrument import instrumentation_cache_stats

    state = request.state
    return {
        "jobs": state.manager.counts(),
        "config": state.config.model_dump(),
        "defaults": state.defaults.model_dump(),
        "fabric": fabric_stats(),
        "instrumentation_cache": instrumentation_cache_stats(),
        "telemetry_totals": state.telemetry_totals.as_dict(),
    }
