"""REST routers for the control plane."""

from . import health, jobs

__all__ = ["health", "jobs"]
