"""Job endpoints: submission, status, results, telemetry, events, cancel.

Submission returns 202 with the job summary; everything else reads the
in-process job store.  ``GET /jobs/{id}/events`` streams the job's
event feed as server-sent events and closes once the job settles, so a
client can follow queued → running → done without polling.
"""

from __future__ import annotations

import functools
import json

from ..asgi import HTTPError, JSONResponse, Router, StreamingResponse, validate
from ..jobs import JobManager
from ..models import FuzzJobRequest, RunJobRequest, SweepJobRequest
from ..services import execute_fuzz_job, execute_run_job, execute_sweep_job

router = Router()


def _manager(request) -> JobManager:
    return request.state.manager


def _cap(value: int, cap: int, what: str) -> None:
    if value > cap:
        raise HTTPError(
            422,
            [{"loc": ["body", what],
              "msg": f"{what} {value} exceeds the server cap of {cap}",
              "type": "value_error.cap"}],
        )


@router.post("/jobs/run")
async def submit_run(request):
    payload = validate(RunJobRequest, request.json())
    state = request.state
    runner = functools.partial(
        execute_run_job,
        request=payload,
        defaults=state.defaults,
        aggregate=state.telemetry_totals,
    )
    job = _manager(request).submit(
        "run", payload.model_dump(mode="json"), runner
    )
    return JSONResponse(job.summary(), status=202)


@router.post("/jobs/sweep")
async def submit_sweep(request):
    payload = validate(SweepJobRequest, request.json())
    state = request.state
    _cap(payload.jobs, state.config.worker_cap, "jobs")
    runner = functools.partial(
        execute_sweep_job, request=payload, defaults=state.defaults
    )
    job = _manager(request).submit(
        "sweep", payload.model_dump(mode="json"), runner
    )
    return JSONResponse(job.summary(), status=202)


@router.post("/jobs/fuzz")
async def submit_fuzz(request):
    payload = validate(FuzzJobRequest, request.json())
    state = request.state
    _cap(payload.jobs, state.config.worker_cap, "jobs")
    _cap(
        payload.iterations, state.config.fuzz_iteration_cap, "iterations"
    )
    runner = functools.partial(
        execute_fuzz_job, request=payload, defaults=state.defaults
    )
    job = _manager(request).submit(
        "fuzz", payload.model_dump(mode="json"), runner
    )
    return JSONResponse(job.summary(), status=202)


@router.get("/jobs")
async def list_jobs(request):
    manager = _manager(request)
    status = request.query_params.get("status")
    jobs = [
        job.summary()
        for job in manager.jobs.values()
        if status is None or job.status.value == status
    ]
    return {"jobs": jobs, "counts": manager.counts()}


@router.get("/jobs/{job_id}")
async def job_detail(request):
    return _manager(request).get(request.path_params["job_id"]).detail()


@router.get("/jobs/{job_id}/result")
async def job_result(request):
    job = _manager(request).get(request.path_params["job_id"])
    if job.status.value in ("queued", "running"):
        raise HTTPError(409, f"job {job.id} is still {job.status.value}")
    if job.result is None:
        raise HTTPError(
            409, f"job {job.id} {job.status.value} without a result"
        )
    return {"id": job.id, "status": job.status.value, "result": job.result}


@router.get("/jobs/{job_id}/telemetry")
async def job_telemetry(request):
    job = _manager(request).get(request.path_params["job_id"])
    if job.result is None or "telemetry" not in job.result:
        raise HTTPError(409, f"job {job.id} has no telemetry snapshot")
    return {"id": job.id, "telemetry": job.result["telemetry"]}


@router.get("/jobs/{job_id}/events")
async def job_events(request):
    manager = _manager(request)
    job = manager.get(request.path_params["job_id"])
    try:
        after = int(request.query_params.get("after", -1))
    except ValueError:
        raise HTTPError(422, "'after' must be an integer") from None

    async def stream():
        async for event in manager.follow_events(job, after=after):
            yield (
                f"event: {event['type']}\n"
                f"data: {json.dumps(event, sort_keys=True)}\n\n"
            )

    return StreamingResponse(stream())


async def _cancel(request):
    manager = _manager(request)
    job = manager.get(request.path_params["job_id"])
    changed = manager.cancel(job)
    return {
        "id": job.id,
        "status": job.status.value,
        "cancel_requested": changed,
    }


router.add("POST", "/jobs/{job_id}/cancel", _cancel)
router.add("DELETE", "/jobs/{job_id}", _cancel)
