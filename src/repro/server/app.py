"""Application factory for the sanitizer-as-a-service control plane.

``create_app`` wires the validated server config, the execution
defaults captured once at creation time, the async job manager, and
the process telemetry aggregate into an ASGI 3 application.  The app
is framework-free (see :mod:`repro.server.asgi`) so it runs under the
bundled stdlib server, the in-process test client, or any external
ASGI server without new dependencies.
"""

from __future__ import annotations

from typing import Optional

from .asgi import App
from .config import ExecutionDefaults, ServerConfig, config_from_env
from .jobs import JobManager
from .routers import health, jobs
from .services.common import TelemetryAggregate


def create_app(
    config: Optional[ServerConfig] = None,
    defaults: Optional[ExecutionDefaults] = None,
) -> App:
    """Build the control-plane app; ``config=None`` reads REPRO_SERVE_*."""
    config = config or config_from_env()
    defaults = defaults or ExecutionDefaults.capture()
    manager = JobManager(config)

    app = App()
    app.state.config = config
    app.state.defaults = defaults
    app.state.manager = manager
    app.state.telemetry_totals = TelemetryAggregate()
    app.include(health.router)
    app.include(jobs.router)
    app.on_startup.append(manager.startup)
    app.on_shutdown.append(manager.shutdown)
    return app
