"""A dependency-free ASGI micro-kernel with FastAPI-shaped ergonomics.

The control plane wants the layering of a FastAPI service — routers,
pydantic request models, 422 on validation failure, JSON responses,
streamed responses, lifespan hooks — but the repository's hard
constraint is the stock toolchain (pydantic is available; FastAPI,
starlette, and httpx are not).  This module implements the small slice
of that surface the server actually uses, as a spec-compliant ASGI 3
application, so the app runs unchanged under uvicorn/hypercorn when
they exist and under :mod:`repro.server.http` (stdlib asyncio) when
they do not.

Deliberate simplifications versus the real frameworks:

* handlers receive a single :class:`Request` and parse/validate their
  own body via :func:`validate` (explicit, no signature introspection);
* path templates support ``{name}`` segments only (no converters);
* one body message per request (the server buffers uploads).
"""

from __future__ import annotations

import inspect
import json
import traceback
from typing import (
    Any,
    AsyncIterator,
    Awaitable,
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
)
from types import SimpleNamespace
from urllib.parse import parse_qsl

import pydantic


class HTTPError(Exception):
    """Raise from a handler to produce a JSON error response."""

    def __init__(self, status: int, detail: Any):
        super().__init__(f"{status}: {detail}")
        self.status = status
        self.detail = detail


def validate(model: type, payload: Any) -> Any:
    """Validate ``payload`` against a pydantic model or raise a 422.

    The 422 body mirrors FastAPI's shape: ``{"detail": [{loc, msg,
    type}, ...]}`` so clients written against the real framework keep
    working.
    """
    try:
        return model.model_validate(payload)
    except pydantic.ValidationError as exc:
        detail = [
            {
                "loc": list(error.get("loc", ())),
                "msg": error.get("msg", "invalid"),
                "type": error.get("type", "value_error"),
            }
            for error in exc.errors()
        ]
        raise HTTPError(422, detail) from None


class Request:
    """One HTTP request: scope fields plus the fully buffered body."""

    def __init__(self, scope: dict, body: bytes, path_params: Dict[str, str]):
        self.scope = scope
        self.method: str = scope["method"]
        self.path: str = scope["path"]
        self.path_params = path_params
        self.query_params: Dict[str, str] = dict(
            parse_qsl(scope.get("query_string", b"").decode("latin-1"))
        )
        self.headers: Dict[str, str] = {
            key.decode("latin-1").lower(): value.decode("latin-1")
            for key, value in scope.get("headers", [])
        }
        self.body = body
        #: ``app.state`` of the application that routed this request.
        self.state: SimpleNamespace = scope.get("app_state") or SimpleNamespace()

    def json(self) -> Any:
        """The body parsed as JSON; 422 on malformed input."""
        if not self.body:
            raise HTTPError(
                422,
                [{"loc": ["body"], "msg": "request body required",
                  "type": "value_error.missing"}],
            )
        try:
            return json.loads(self.body)
        except ValueError:
            raise HTTPError(
                422,
                [{"loc": ["body"], "msg": "invalid JSON body",
                  "type": "value_error.json"}],
            ) from None


class Response:
    """A fully materialized response."""

    media_type = "text/plain; charset=utf-8"

    def __init__(
        self,
        content: Any = b"",
        status: int = 200,
        media_type: Optional[str] = None,
        headers: Optional[Dict[str, str]] = None,
    ):
        self.status = status
        self.body = self.render(content)
        self.headers = dict(headers or {})
        self.headers.setdefault(
            "content-type", media_type or type(self).media_type
        )

    def render(self, content: Any) -> bytes:
        if isinstance(content, bytes):
            return content
        return str(content).encode("utf-8")


class JSONResponse(Response):
    media_type = "application/json"

    def render(self, content: Any) -> bytes:
        return json.dumps(content, sort_keys=True).encode("utf-8")


class StreamingResponse(Response):
    """Chunked response fed from an async iterator (SSE lives here)."""

    def __init__(
        self,
        iterator: AsyncIterator[Any],
        status: int = 200,
        media_type: str = "text/event-stream",
        headers: Optional[Dict[str, str]] = None,
    ):
        self.iterator = iterator
        self.status = status
        self.body = b""
        self.headers = dict(headers or {})
        self.headers.setdefault("content-type", media_type)
        self.headers.setdefault("cache-control", "no-cache")


Handler = Callable[[Request], Awaitable[Any]]


class Router:
    """Route table; ``include`` grafts sub-routers under a prefix."""

    def __init__(self):
        self.routes: List[Tuple[str, Tuple[str, ...], Handler]] = []

    def add(self, method: str, path: str, handler: Handler) -> None:
        segments = tuple(part for part in path.strip("/").split("/") if part)
        self.routes.append((method.upper(), segments, handler))

    def get(self, path: str):
        return lambda handler: (self.add("GET", path, handler), handler)[1]

    def post(self, path: str):
        return lambda handler: (self.add("POST", path, handler), handler)[1]

    def delete(self, path: str):
        return lambda handler: (self.add("DELETE", path, handler), handler)[1]

    def include(self, router: "Router", prefix: str = "") -> None:
        lead = tuple(part for part in prefix.strip("/").split("/") if part)
        for method, segments, handler in router.routes:
            self.routes.append((method, lead + segments, handler))


def _match(
    template: Tuple[str, ...], parts: Tuple[str, ...]
) -> Optional[Dict[str, str]]:
    if len(template) != len(parts):
        return None
    params: Dict[str, str] = {}
    for expected, actual in zip(template, parts):
        if expected.startswith("{") and expected.endswith("}"):
            params[expected[1:-1]] = actual
        elif expected != actual:
            return None
    return params


class App(Router):
    """ASGI 3 application: routing + lifespan + error mapping."""

    def __init__(self):
        super().__init__()
        self.state = SimpleNamespace()
        self.on_startup: List[Callable] = []
        self.on_shutdown: List[Callable] = []

    # ------------------------------------------------------------------
    async def __call__(self, scope, receive, send) -> None:
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":  # pragma: no cover - no websockets
            raise RuntimeError(f"unsupported scope type {scope['type']!r}")
        await self._http(scope, receive, send)

    async def _lifespan(self, receive, send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                try:
                    for hook in self.on_startup:
                        await _maybe_await(hook())
                except Exception as exc:  # pragma: no cover - startup bug
                    await send(
                        {"type": "lifespan.startup.failed",
                         "message": repr(exc)}
                    )
                    return
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                try:
                    for hook in self.on_shutdown:
                        await _maybe_await(hook())
                except Exception as exc:  # pragma: no cover - shutdown bug
                    await send(
                        {"type": "lifespan.shutdown.failed",
                         "message": repr(exc)}
                    )
                    return
                await send({"type": "lifespan.shutdown.complete"})
                return

    # ------------------------------------------------------------------
    async def _http(self, scope, receive, send) -> None:
        body = bytearray()
        while True:
            message = await receive()
            if message["type"] == "http.disconnect":
                return
            body.extend(message.get("body", b""))
            if not message.get("more_body"):
                break
        scope = dict(scope)
        scope["app_state"] = self.state
        response = await self._dispatch(scope, bytes(body))
        await self._send_response(response, send)

    async def _dispatch(self, scope: dict, body: bytes) -> Response:
        parts = tuple(
            part for part in scope["path"].strip("/").split("/") if part
        )
        allowed: List[str] = []
        for method, template, handler in self.routes:
            params = _match(template, parts)
            if params is None:
                continue
            if method != scope["method"]:
                allowed.append(method)
                continue
            request = Request(scope, body, params)
            try:
                return _coerce(await _maybe_await(handler(request)))
            except HTTPError as exc:
                return JSONResponse({"detail": exc.detail}, status=exc.status)
            except Exception:  # noqa: BLE001 - map handler bugs to 500
                return JSONResponse(
                    {"detail": "internal server error",
                     "traceback": traceback.format_exc()},
                    status=500,
                )
        if allowed:
            return JSONResponse({"detail": "method not allowed"}, status=405)
        return JSONResponse({"detail": "not found"}, status=404)

    async def _send_response(self, response: Response, send) -> None:
        headers = [
            (key.encode("latin-1"), value.encode("latin-1"))
            for key, value in response.headers.items()
        ]
        await send(
            {"type": "http.response.start",
             "status": response.status,
             "headers": headers}
        )
        if isinstance(response, StreamingResponse):
            try:
                async for chunk in response.iterator:
                    if isinstance(chunk, str):
                        chunk = chunk.encode("utf-8")
                    await send(
                        {"type": "http.response.body",
                         "body": chunk,
                         "more_body": True}
                    )
            except ConnectionError:  # client went away mid-stream
                return
            await send(
                {"type": "http.response.body", "body": b"",
                 "more_body": False}
            )
            return
        await send(
            {"type": "http.response.body", "body": response.body,
             "more_body": False}
        )


def _coerce(result: Any) -> Response:
    """Map a handler's return value onto a Response."""
    if isinstance(result, Response):
        return result
    if isinstance(result, pydantic.BaseModel):
        return JSONResponse(result.model_dump(mode="json"))
    if isinstance(result, (dict, list)):
        return JSONResponse(result)
    if result is None:
        return Response(b"", status=204)
    return Response(result)


async def _maybe_await(value):
    if inspect.isawaitable(value):
        return await value
    return value


class LifespanManager:
    """Drives an app's lifespan protocol (shared by server and tests)."""

    def __init__(self, app: App):
        import asyncio

        self.app = app
        self._to_app: "asyncio.Queue" = asyncio.Queue()
        self._from_app: "asyncio.Queue" = asyncio.Queue()
        self._task = asyncio.ensure_future(
            app({"type": "lifespan"}, self._to_app.get, self._from_app.put)
        )

    async def startup(self) -> None:
        await self._to_app.put({"type": "lifespan.startup"})
        message = await self._from_app.get()
        if message["type"] != "lifespan.startup.complete":
            raise RuntimeError(f"app startup failed: {message}")

    async def shutdown(self) -> None:
        await self._to_app.put({"type": "lifespan.shutdown"})
        message = await self._from_app.get()
        await self._task
        if message["type"] != "lifespan.shutdown.complete":
            raise RuntimeError(f"app shutdown failed: {message}")
