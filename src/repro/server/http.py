"""A small stdlib asyncio HTTP/1.1 server for the ASGI app.

``repro serve`` must run on the stock toolchain, so this module plays
the uvicorn role: accept connections, parse one request at a time,
translate it into ASGI ``http`` scope messages, and write the
response back — chunked transfer for streaming responses (SSE),
content-length otherwise.  Connections are ``Connection: close``;
this is a lab control plane, not a production edge.

``serve_forever`` installs SIGINT/SIGTERM handlers that trigger one
graceful shutdown pass: stop accepting, run the app's lifespan
shutdown (which drains the job manager and the execution fabric), and
return.  A second signal aborts immediately.
"""

from __future__ import annotations

import asyncio
import signal
from typing import Optional

from .asgi import App, LifespanManager

_MAX_HEADER_BYTES = 65536
_MAX_BODY_BYTES = 16 * 1024 * 1024


class _Connection:
    """One accepted socket; serves a single request then closes."""

    def __init__(self, app: App, reader, writer):
        self.app = app
        self.reader = reader
        self.writer = writer

    async def handle(self) -> None:
        try:
            scope, body = await self._read_request()
            if scope is None:
                return
            await self._respond(scope, body)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                self.writer.close()
                await self.writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self):
        try:
            head = await self.reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            await self._plain_error(431, "headers too large")
            return None, b""
        if len(head) > _MAX_HEADER_BYTES:
            await self._plain_error(431, "headers too large")
            return None, b""
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = request_line.split(" ", 2)
        except ValueError:
            await self._plain_error(400, "malformed request line")
            return None, b""
        headers = []
        for line in header_lines:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers.append(
                (name.strip().lower().encode("latin-1"),
                 value.strip().encode("latin-1"))
            )
        length = 0
        for name, value in headers:
            if name == b"content-length":
                try:
                    length = int(value)
                except ValueError:
                    await self._plain_error(400, "bad content-length")
                    return None, b""
        if length > _MAX_BODY_BYTES:
            await self._plain_error(413, "body too large")
            return None, b""
        body = await self.reader.readexactly(length) if length else b""
        path, _, query = target.partition("?")
        scope = {
            "type": "http",
            "asgi": {"version": "3.0"},
            "http_version": "1.1",
            "method": method.upper(),
            "path": path,
            "query_string": query.encode("latin-1"),
            "headers": headers,
        }
        return scope, body

    async def _respond(self, scope: dict, body: bytes) -> None:
        incoming = [{"type": "http.request", "body": body, "more_body": False}]

        async def receive():
            if incoming:
                return incoming.pop(0)
            return {"type": "http.disconnect"}

        state = {"started": False, "streaming": False}

        async def send(message):
            if message["type"] == "http.response.start":
                state["status"] = message["status"]
                state["headers"] = list(message.get("headers", []))
            elif message["type"] == "http.response.body":
                chunk = message.get("body", b"")
                more = message.get("more_body", False)
                if not state["started"]:
                    state["started"] = True
                    state["streaming"] = more
                    self._write_head(
                        state["status"], state["headers"],
                        streaming=more, length=len(chunk),
                    )
                if state["streaming"]:
                    if chunk:
                        self.writer.write(
                            b"%x\r\n%s\r\n" % (len(chunk), chunk)
                        )
                    if not more:
                        self.writer.write(b"0\r\n\r\n")
                else:
                    self.writer.write(chunk)
                await self.writer.drain()

        await self.app(scope, receive, send)

    def _write_head(self, status, headers, streaming, length) -> None:
        lines = [b"HTTP/1.1 %d %s" % (status, _reason(status))]
        for name, value in headers:
            lines.append(name + b": " + value)
        if streaming:
            lines.append(b"transfer-encoding: chunked")
        else:
            lines.append(b"content-length: %d" % length)
        lines.append(b"connection: close")
        self.writer.write(b"\r\n".join(lines) + b"\r\n\r\n")

    async def _plain_error(self, status: int, message: str) -> None:
        body = message.encode("utf-8")
        self._write_head(
            status,
            [(b"content-type", b"text/plain; charset=utf-8")],
            streaming=False,
            length=len(body),
        )
        self.writer.write(body)
        await self.writer.drain()


def _reason(status: int) -> bytes:
    return {
        200: b"OK", 202: b"Accepted", 204: b"No Content",
        400: b"Bad Request", 404: b"Not Found", 405: b"Method Not Allowed",
        409: b"Conflict", 413: b"Payload Too Large",
        422: b"Unprocessable Entity", 431: b"Headers Too Large",
        500: b"Internal Server Error", 503: b"Service Unavailable",
    }.get(status, b"Status")


async def serve(
    app: App,
    host: str,
    port: int,
    ready: Optional[asyncio.Event] = None,
    stop: Optional[asyncio.Event] = None,
) -> None:
    """Run the app on ``host:port`` until ``stop`` (or a signal) fires.

    ``ready`` is set once the socket is listening and lifespan startup
    has completed — tests use it to know when to connect.
    """
    stop = stop or asyncio.Event()
    loop = asyncio.get_running_loop()
    installed = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
            installed.append(signum)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass

    lifespan = LifespanManager(app)
    await lifespan.startup()

    async def on_connection(reader, writer):
        await _Connection(app, reader, writer).handle()

    server = await asyncio.start_server(on_connection, host=host, port=port)
    try:
        if ready is not None:
            ready.set()
        await stop.wait()
    finally:
        server.close()
        await server.wait_closed()
        await lifespan.shutdown()
        for signum in installed:
            loop.remove_signal_handler(signum)


def run(app: App, host: str, port: int) -> None:
    """Blocking entry point used by ``repro serve``."""
    asyncio.run(serve(app, host, port))
