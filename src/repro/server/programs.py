"""Lower submitted job payloads into executable IR programs.

Two sources: corpus references into the canonical workload registries,
and inline JSON IR.  The JSON IR mirrors the
:class:`~repro.ir.builder.ProgramBuilder` surface one-to-one — every
op key is the builder method it lowers through — so a submitted
program instruments and executes exactly like one built in-process,
which is what makes the server's error reports byte-identical to a
direct ``Session`` run.

Expressions are ints (``Const``), strings (``Var``), or
``{"op": <binop>, "left": ..., "right": ...}`` trees over the
interpreter's operator alphabet.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..ir.builder import FunctionBuilder, ProgramBuilder
from ..ir.nodes import BinOp, Expr, as_expr
from ..ir.program import Program

#: The interpreter's binary-operator alphabet (`_ARITH` in
#: :mod:`repro.runtime.interpreter`).
BINARY_OPS = (
    "+", "-", "*", "//", "%", "<<", ">>", "&", "|", "^",
    "<", "<=", ">", ">=", "==", "!=",
)


class ProgramFormatError(ValueError):
    """Malformed JSON IR; the message names the offending location."""


def _expr(node: Any, where: str) -> Expr:
    if isinstance(node, bool):
        raise ProgramFormatError(f"{where}: booleans are not IR values")
    if isinstance(node, int):
        return as_expr(node)
    if isinstance(node, str):
        from ..ir.nodes import Var

        return Var(node)
    if isinstance(node, dict):
        op = node.get("op")
        if op not in BINARY_OPS:
            raise ProgramFormatError(
                f"{where}: unknown operator {op!r}; known: "
                + ", ".join(BINARY_OPS)
            )
        missing = [key for key in ("left", "right") if key not in node]
        if missing:
            raise ProgramFormatError(
                f"{where}: operator {op!r} missing {missing}"
            )
        return BinOp(
            op,
            _expr(node["left"], f"{where}.left"),
            _expr(node["right"], f"{where}.right"),
        )
    raise ProgramFormatError(
        f"{where}: expected int, variable name, or operator node, "
        f"got {type(node).__name__}"
    )


def _field(instr: Dict[str, Any], name: str, where: str) -> Any:
    try:
        return instr[name]
    except KeyError:
        raise ProgramFormatError(f"{where}: missing field {name!r}") from None


def _str_field(instr: Dict[str, Any], name: str, where: str) -> str:
    value = _field(instr, name, where)
    if not isinstance(value, str) or not value:
        raise ProgramFormatError(
            f"{where}: field {name!r} must be a non-empty string"
        )
    return value


def _int_field(
    instr: Dict[str, Any], name: str, where: str, default: Optional[int] = None
) -> int:
    value = instr.get(name, default)
    if value is None:
        raise ProgramFormatError(f"{where}: missing field {name!r}")
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProgramFormatError(f"{where}: field {name!r} must be an int")
    return value


def _emit(builder: FunctionBuilder, instr: Any, where: str) -> None:
    if not isinstance(instr, dict):
        raise ProgramFormatError(f"{where}: instruction must be an object")
    op = instr.get("op")
    if op == "malloc":
        builder.malloc(
            _str_field(instr, "dst", where),
            _expr(_field(instr, "size", where), f"{where}.size"),
        )
    elif op == "stack_alloc":
        builder.stack_alloc(
            _str_field(instr, "dst", where), _int_field(instr, "size", where)
        )
    elif op == "global_alloc":
        builder.global_alloc(
            _str_field(instr, "dst", where), _int_field(instr, "size", where)
        )
    elif op == "free":
        builder.free(_str_field(instr, "ptr", where))
    elif op == "ptr_add":
        builder.ptr_add(
            _str_field(instr, "dst", where),
            _str_field(instr, "base", where),
            _expr(_field(instr, "offset", where), f"{where}.offset"),
        )
    elif op == "load":
        builder.load(
            _str_field(instr, "dst", where),
            _str_field(instr, "base", where),
            _expr(_field(instr, "offset", where), f"{where}.offset"),
            _int_field(instr, "width", where, default=8),
        )
    elif op == "store":
        builder.store(
            _str_field(instr, "base", where),
            _expr(_field(instr, "offset", where), f"{where}.offset"),
            _int_field(instr, "width", where, default=8),
            _expr(_field(instr, "value", where), f"{where}.value"),
        )
    elif op == "memset":
        builder.memset(
            _str_field(instr, "base", where),
            _expr(_field(instr, "offset", where), f"{where}.offset"),
            _expr(_field(instr, "length", where), f"{where}.length"),
            _expr(instr.get("byte", 0), f"{where}.byte"),
        )
    elif op == "memcpy":
        builder.memcpy(
            _str_field(instr, "dst_base", where),
            _expr(_field(instr, "dst_offset", where), f"{where}.dst_offset"),
            _str_field(instr, "src_base", where),
            _expr(_field(instr, "src_offset", where), f"{where}.src_offset"),
            _expr(_field(instr, "length", where), f"{where}.length"),
        )
    elif op == "strcpy":
        builder.strcpy(
            _str_field(instr, "dst_base", where),
            _expr(_field(instr, "dst_offset", where), f"{where}.dst_offset"),
            _str_field(instr, "src_base", where),
            _expr(_field(instr, "src_offset", where), f"{where}.src_offset"),
        )
    elif op == "assign":
        builder.assign(
            _str_field(instr, "dst", where),
            _expr(_field(instr, "expr", where), f"{where}.expr"),
        )
    elif op == "compute":
        cycles = instr.get("cycles", 1)
        if isinstance(cycles, bool) or not isinstance(cycles, (int, float)):
            raise ProgramFormatError(f"{where}: 'cycles' must be a number")
        builder.compute(float(cycles))
    elif op == "call":
        args = instr.get("args", [])
        if not isinstance(args, list):
            raise ProgramFormatError(f"{where}: 'args' must be a list")
        builder.call(
            _str_field(instr, "func", where),
            [
                _expr(arg, f"{where}.args[{index}]")
                for index, arg in enumerate(args)
            ],
            dst=instr.get("dst"),
        )
    elif op == "ret":
        value = instr.get("value")
        builder.ret(
            _expr(value, f"{where}.value") if value is not None else None
        )
    elif op == "loop":
        body = _field(instr, "body", where)
        if not isinstance(body, list):
            raise ProgramFormatError(f"{where}: loop 'body' must be a list")
        with builder.loop(
            _str_field(instr, "var", where),
            _expr(_field(instr, "start", where), f"{where}.start"),
            _expr(_field(instr, "end", where), f"{where}.end"),
            step=_int_field(instr, "step", where, default=1),
            bounded=bool(instr.get("bounded", True)),
            reverse=bool(instr.get("reverse", False)),
        ):
            for index, sub in enumerate(body):
                _emit(builder, sub, f"{where}.body[{index}]")
    elif op == "if":
        then = _field(instr, "then", where)
        orelse = instr.get("else", [])
        if not isinstance(then, list) or not isinstance(orelse, list):
            raise ProgramFormatError(
                f"{where}: if 'then'/'else' must be lists"
            )
        with builder.if_(_expr(_field(instr, "cond", where), f"{where}.cond")):
            for index, sub in enumerate(then):
                _emit(builder, sub, f"{where}.then[{index}]")
        if orelse:
            with builder.else_():
                for index, sub in enumerate(orelse):
                    _emit(builder, sub, f"{where}.else[{index}]")
    else:
        raise ProgramFormatError(f"{where}: unknown op {op!r}")


def load_program(payload: Dict[str, Any]) -> Program:
    """Lower a JSON IR document into a :class:`Program`.

    Shape::

        {"entry": "main",
         "functions": [{"name": "main", "params": [], "body": [...]}]}
    """
    if not isinstance(payload, dict):
        raise ProgramFormatError("program must be an object")
    functions = payload.get("functions")
    if not isinstance(functions, list) or not functions:
        raise ProgramFormatError("'functions' must be a non-empty list")
    unknown = set(payload) - {"entry", "functions"}
    if unknown:
        raise ProgramFormatError(f"unknown program fields: {sorted(unknown)}")
    builder = ProgramBuilder()
    names = []
    for index, spec in enumerate(functions):
        where = f"functions[{index}]"
        if not isinstance(spec, dict):
            raise ProgramFormatError(f"{where}: function must be an object")
        name = _str_field(spec, "name", where)
        params = spec.get("params", [])
        if not isinstance(params, list) or any(
            not isinstance(param, str) for param in params
        ):
            raise ProgramFormatError(f"{where}: 'params' must be strings")
        body = spec.get("body", [])
        if not isinstance(body, list):
            raise ProgramFormatError(f"{where}: 'body' must be a list")
        names.append(name)
        with builder.function(name, params=params) as function:
            for sub_index, instr in enumerate(body):
                _emit(function, instr, f"{where}.body[{sub_index}]")
    entry = payload.get("entry", "main")
    if entry not in names:
        raise ProgramFormatError(
            f"entry {entry!r} is not a defined function (have: {names})"
        )
    return builder.build(entry=entry)


def build_demo_program() -> Program:
    """The quickstart bug: a heap overflow one iteration past the end."""
    builder = ProgramBuilder()
    with builder.function("main") as function:
        function.malloc("buf", 100)
        with function.loop("i", 0, 26, bounded=False) as i:
            function.store("buf", i * 4, 4, i)
        function.free("buf")
    return builder.build()


def resolve_corpus(ref: str) -> Tuple[Program, Optional[List[int]]]:
    """(program, default entry args) for a validated corpus reference."""
    if ref == "demo":
        return build_demo_program(), None
    if ref == "callheavy":
        from ..workloads import build_callheavy_program

        return build_callheavy_program(), None
    kind, _, name = ref.partition(":")
    if kind == "spec":
        from ..workloads import SPEC_BY_NAME

        spec = SPEC_BY_NAME[name]
        return spec.build(), [spec.default_scale]
    if kind == "juliet":
        from ..workloads import juliet_suite_cached

        for case in juliet_suite_cached():
            if case.case_id == name:
                return case.program, None
        raise ValueError(f"unknown juliet case {name!r}")
    raise ValueError(f"unknown corpus reference {ref!r}")


def build_job_program(spec) -> Tuple[Program, Optional[List[int]]]:
    """(program, entry args) for a validated :class:`ProgramSpec`."""
    if spec.corpus is not None:
        program, default_args = resolve_corpus(spec.corpus)
        return program, spec.args if spec.args is not None else default_args
    return load_program(spec.ir), spec.args
