"""Async job manager: lifecycle, store, cancellation, graceful drain.

Jobs move ``queued → running → done | failed | cancelled``.  The
manager lives on the server's event loop; job bodies are synchronous
sanitizer work, so they run on a small thread pool via
``run_in_executor`` while the loop keeps serving status reads and new
submissions.  Real parallelism inside a job comes from the persistent
execution fabric (``--jobs`` style), not from the thread pool.

Cancellation is cooperative: every job carries a ``threading.Event``
and the services poll it between work units (fuzz spans, sweep rows).
``DELETE /jobs/{id}`` flips the event; a queued job dies before it
starts, a running one raises :class:`JobCancelled` at its next
checkpoint.

Graceful shutdown (lifespan shutdown, so both ``repro serve`` signal
handlers and in-process test clients exercise it): stop accepting,
cancel queued jobs, give running jobs ``drain_timeout`` seconds, then
cancel them too — and finally drain the shared execution fabric off
the event loop so worker processes exit cleanly and their
shared-memory scratch segments are released.
"""

from __future__ import annotations

import asyncio
import enum
import itertools
import threading
import time
import traceback
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from .config import ServerConfig


class JobCancelled(Exception):
    """Raised by a service at a cancellation checkpoint."""


class JobStatus(str, enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


TERMINAL = (JobStatus.DONE, JobStatus.FAILED, JobStatus.CANCELLED)


@dataclass
class Job:
    """One unit of control-plane work and everything it produced."""

    id: str
    kind: str
    request: Dict[str, Any]
    status: JobStatus = JobStatus.QUEUED
    created_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    #: Append-only event feed ({seq, time, type, ...}); list appends are
    #: atomic under the GIL, so job threads write and the event loop
    #: reads without extra locking.
    events: List[Dict[str, Any]] = field(default_factory=list)
    cancel_event: threading.Event = field(default_factory=threading.Event)
    _event_seq: "itertools.count" = field(default_factory=itertools.count)

    @property
    def is_terminal(self) -> bool:
        return self.status in TERMINAL

    def post_event(self, event_type: str, **data) -> None:
        self.events.append(
            {
                "seq": next(self._event_seq),
                "time": time.time(),
                "type": event_type,
                **data,
            }
        )

    def summary(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "kind": self.kind,
            "status": self.status.value,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }

    def detail(self) -> Dict[str, Any]:
        payload = self.summary()
        payload.update(
            {
                "request": self.request,
                "error": self.error,
                "result": self.result,
                "events": len(self.events),
            }
        )
        return payload


class JobContext:
    """What a service sees of its job (thread side)."""

    def __init__(self, job: Job):
        self.job = job

    def check_cancelled(self) -> None:
        """Cancellation checkpoint; call between work units."""
        if self.job.cancel_event.is_set():
            raise JobCancelled(self.job.id)

    def progress(self, message: str, **data) -> None:
        self.job.post_event("progress", message=message, **data)


class JobManager:
    """Owns the job store, the worker threads, and shutdown order."""

    def __init__(self, config: ServerConfig):
        self.config = config
        self.jobs: Dict[str, Job] = {}
        self.accepting = True
        self._executor = ThreadPoolExecutor(
            max_workers=config.max_concurrency,
            thread_name_prefix="repro-job",
        )
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._tasks: set = set()
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # ------------------------------------------------------------------
    # lifecycle hooks (wired into the app's lifespan)
    # ------------------------------------------------------------------
    async def startup(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._semaphore = asyncio.Semaphore(self.config.max_concurrency)

    async def shutdown(self) -> None:
        """Graceful drain; see the module docstring for the order."""
        self.accepting = False
        for job in self.jobs.values():
            if job.status is JobStatus.QUEUED:
                job.cancel_event.set()
        if self._tasks:
            done, pending = await asyncio.wait(
                set(self._tasks), timeout=self.config.drain_timeout
            )
            if pending:
                for job in self.jobs.values():
                    if not job.is_terminal:
                        job.cancel_event.set()
                await asyncio.wait(pending, timeout=self.config.drain_timeout)
        self._executor.shutdown(wait=True, cancel_futures=True)
        # Retire the fabric off the loop: drain blocks on worker joins.
        from ..analysis.parallel import drain_pool

        await asyncio.get_running_loop().run_in_executor(None, drain_pool)

    # ------------------------------------------------------------------
    # submission + execution
    # ------------------------------------------------------------------
    def submit(
        self,
        kind: str,
        request: Dict[str, Any],
        runner: Callable[[JobContext], Dict[str, Any]],
    ) -> Job:
        """Register a job and schedule it; returns immediately."""
        from .asgi import HTTPError

        if not self.accepting:
            raise HTTPError(503, "server is shutting down")
        self._evict_terminal()
        job = Job(id=uuid.uuid4().hex[:12], kind=kind, request=request)
        self.jobs[job.id] = job
        job.post_event("status", status=job.status.value)
        task = asyncio.get_running_loop().create_task(
            self._drive(job, runner)
        )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return job

    async def _drive(self, job: Job, runner) -> None:
        async with self._semaphore:
            if job.cancel_event.is_set():
                self._finish(job, JobStatus.CANCELLED)
                return
            job.status = JobStatus.RUNNING
            job.started_at = time.time()
            job.post_event("status", status=job.status.value)
            context = JobContext(job)
            try:
                job.result = await asyncio.get_running_loop().run_in_executor(
                    self._executor, runner, context
                )
            except JobCancelled:
                self._finish(job, JobStatus.CANCELLED)
            except Exception:  # noqa: BLE001 - job bodies report, not raise
                job.error = traceback.format_exc()
                self._finish(job, JobStatus.FAILED)
            else:
                self._finish(job, JobStatus.DONE)

    def _finish(self, job: Job, status: JobStatus) -> None:
        job.status = status
        job.finished_at = time.time()
        job.post_event("status", status=status.value)

    def _evict_terminal(self) -> None:
        """Bound the store: oldest terminal jobs fall out first."""
        overflow = len(self.jobs) - self.config.max_retained_jobs + 1
        if overflow <= 0:
            return
        terminal = sorted(
            (job for job in self.jobs.values() if job.is_terminal),
            key=lambda job: job.finished_at or job.created_at,
        )
        for job in terminal[:overflow]:
            del self.jobs[job.id]

    # ------------------------------------------------------------------
    # queries + cancellation
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Job:
        from .asgi import HTTPError

        try:
            return self.jobs[job_id]
        except KeyError:
            raise HTTPError(404, f"no such job {job_id!r}") from None

    def cancel(self, job: Job) -> bool:
        """Request cancellation; False when the job already finished."""
        if job.is_terminal:
            return False
        job.cancel_event.set()
        job.post_event("cancel_requested")
        return True

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {status.value: 0 for status in JobStatus}
        for job in self.jobs.values():
            counts[job.status.value] += 1
        return counts

    # ------------------------------------------------------------------
    # event streaming
    # ------------------------------------------------------------------
    async def follow_events(self, job: Job, after: int = -1):
        """Yield events (dicts) past ``after`` until the job settles.

        Terminal jobs replay and return; live jobs are followed with a
        short poll — cheap at control-plane rates and loop-agnostic.
        """
        index = 0
        while True:
            while index < len(job.events):
                event = job.events[index]
                index += 1
                if event["seq"] > after:
                    yield event
            if job.is_terminal and index >= len(job.events):
                return
            await asyncio.sleep(0.05)
