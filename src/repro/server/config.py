"""Server configuration: validated settings sourced from REPRO_SERVE_*.

Per-job execution settings travel inside each request's validated
model (see :mod:`repro.server.models`); this module only holds the
process-level knobs of the control plane itself.  Execution *defaults*
(engine, shadow, fastpath, interprocedural) are captured once at app
creation in :class:`ExecutionDefaults` so that a running job can never
observe another job's configuration through the environment.
"""

from __future__ import annotations

import os
from typing import Optional

from pydantic import BaseModel, ConfigDict, Field


class ServerConfig(BaseModel):
    """Process-level settings for ``repro serve``."""

    model_config = ConfigDict(extra="forbid")

    host: str = "127.0.0.1"
    port: int = Field(default=8321, ge=0, le=65535)
    #: Concurrent job threads.  Jobs are GIL-bound Python; real
    #: parallelism comes from each job's fabric workers, so a small
    #: thread pool is the right shape.
    max_concurrency: int = Field(default=2, ge=1, le=32)
    #: Terminal jobs retained for ``GET /jobs/{id}`` before eviction.
    max_retained_jobs: int = Field(default=256, ge=8)
    #: Upper bound a fuzz-campaign request may ask for.
    fuzz_iteration_cap: int = Field(default=2000, ge=1)
    #: Upper bound on per-job fabric workers (``jobs`` in requests).
    worker_cap: int = Field(default=8, ge=1)
    #: Seconds the graceful shutdown waits for running jobs before
    #: cancelling them (the fabric drain happens after either way).
    drain_timeout: float = Field(default=30.0, gt=0)


_ENV_FIELDS = {
    "REPRO_SERVE_HOST": ("host", str),
    "REPRO_SERVE_PORT": ("port", int),
    "REPRO_SERVE_CONCURRENCY": ("max_concurrency", int),
    "REPRO_SERVE_RETAINED_JOBS": ("max_retained_jobs", int),
    "REPRO_SERVE_FUZZ_CAP": ("fuzz_iteration_cap", int),
    "REPRO_SERVE_WORKER_CAP": ("worker_cap", int),
    "REPRO_SERVE_DRAIN_TIMEOUT": ("drain_timeout", float),
}


def config_from_env(**overrides) -> ServerConfig:
    """A ServerConfig from REPRO_SERVE_* plus explicit overrides."""
    values = {}
    for env_name, (field, cast) in _ENV_FIELDS.items():
        raw = os.environ.get(env_name)
        if raw is None:
            continue
        try:
            values[field] = cast(raw)
        except ValueError:
            raise SystemExit(
                f"invalid {env_name}={raw!r}: expected {cast.__name__}"
            ) from None
    values.update(
        {key: value for key, value in overrides.items() if value is not None}
    )
    return ServerConfig(**values)


class ExecutionDefaults(BaseModel):
    """Process execution defaults, resolved once at app creation.

    Jobs construct Sessions from these explicit values (plus their
    request's overrides) instead of reading ``REPRO_*`` at run time, so
    concurrent jobs cannot contaminate each other through the process
    environment.
    """

    model_config = ConfigDict(extra="forbid")

    engine: str
    shadow: str
    fastpath: bool
    interprocedural: bool
    jobs: int = 1

    @classmethod
    def capture(cls) -> "ExecutionDefaults":
        from ..dataflow.summaries import interprocedural_default
        from ..runtime.compiler import engine_default
        from ..runtime.fastpath import fastpath_enabled_default
        from ..shadow import shadow_backend_default

        return cls(
            engine=engine_default(),
            shadow=shadow_backend_default(),
            fastpath=fastpath_enabled_default(),
            interprocedural=interprocedural_default(),
        )


def resolved(value: Optional[object], default: object) -> object:
    """Request override if given, else the captured process default."""
    return default if value is None else value
