"""Validated request/response models for the control plane.

Everything a job needs is carried in its request model — the (tool ×
engine × shadow × fastpath) execution config included — so sessions
are constructed from validated data instead of process environment
variables.  Invalid configs are rejected at submission time with a
422; a job that validated can only fail for runtime reasons.
"""

from __future__ import annotations

from typing import Any, Dict, List, Literal, Optional

from pydantic import (
    BaseModel,
    ConfigDict,
    Field,
    field_validator,
    model_validator,
)

JobKind = Literal["run", "sweep", "fuzz"]
JobStatusName = Literal["queued", "running", "done", "failed", "cancelled"]

SWEEP_TARGETS = ("table2", "table3", "table4", "table5", "fig10", "fig11")


class ExecutionConfig(BaseModel):
    """The (tool × engine × shadow × fastpath) cell a run job executes in.

    ``None`` fields fall back to the defaults the server captured at
    startup (:class:`repro.server.config.ExecutionDefaults`), never to
    a live environment read.
    """

    model_config = ConfigDict(extra="forbid")

    tool: str = "GiantSan"
    engine: Optional[Literal["tree", "compiled"]] = None
    shadow: Optional[Literal["bytearray", "numpy"]] = None
    fastpath: Optional[bool] = None
    interprocedural: Optional[bool] = None
    telemetry: bool = True

    @field_validator("tool")
    @classmethod
    def _known_tool(cls, value: str) -> str:
        from ..sanitizers import SANITIZER_FACTORIES

        if value not in SANITIZER_FACTORIES:
            known = ", ".join(sorted(SANITIZER_FACTORIES))
            raise ValueError(f"unknown tool {value!r}; known tools: {known}")
        return value


class ProgramSpec(BaseModel):
    """What to execute: a corpus reference or an inline JSON IR program.

    Corpus references: ``"demo"``, ``"callheavy"``, ``"spec:<name>"``
    (a Table 2 proxy), or ``"juliet:<case_id>"``.  Inline programs use
    the JSON IR documented in ``docs/SERVICE.md`` and are lowered
    through :mod:`repro.server.programs`.
    """

    model_config = ConfigDict(extra="forbid")

    corpus: Optional[str] = None
    ir: Optional[Dict[str, Any]] = None
    args: Optional[List[int]] = None

    @model_validator(mode="after")
    def _exactly_one_source(self) -> "ProgramSpec":
        if (self.corpus is None) == (self.ir is None):
            raise ValueError("provide exactly one of 'corpus' and 'ir'")
        if self.corpus is not None:
            _validate_corpus_ref(self.corpus)
        if self.ir is not None:
            # lower now: malformed IR is a submission-time 422, not a
            # failed job
            from .programs import load_program

            load_program(self.ir)
        return self


def _validate_corpus_ref(ref: str) -> None:
    from ..workloads import SPEC_BY_NAME

    if ref in ("demo", "callheavy"):
        return
    kind, _, name = ref.partition(":")
    if kind == "spec":
        if name not in SPEC_BY_NAME:
            known = ", ".join(sorted(SPEC_BY_NAME))
            raise ValueError(
                f"unknown spec program {name!r}; known programs: {known}"
            )
        return
    if kind == "juliet":
        if not name:
            raise ValueError("juliet reference needs a case id")
        # case existence is checked at run time: generating the suite
        # is too heavy for the submission path
        return
    raise ValueError(
        f"unknown corpus reference {ref!r}; expected 'demo', 'callheavy', "
        "'spec:<name>', or 'juliet:<case_id>'"
    )


class RunJobRequest(BaseModel):
    """Run one IR program under one execution config."""

    model_config = ConfigDict(extra="forbid")

    program: ProgramSpec
    config: ExecutionConfig = Field(default_factory=ExecutionConfig)
    max_instructions: int = Field(default=50_000_000, ge=1, le=500_000_000)


class SweepJobRequest(BaseModel):
    """Regenerate one of the paper's tables/figures."""

    model_config = ConfigDict(extra="forbid")

    target: Literal[SWEEP_TARGETS]  # type: ignore[valid-type]
    scale: Optional[int] = Field(default=None, ge=1, le=64)
    jobs: int = Field(default=1, ge=1)
    engine: Optional[Literal["tree", "compiled"]] = None
    shadow: Optional[Literal["bytearray", "numpy"]] = None


class FuzzJobRequest(BaseModel):
    """A bounded differential fuzz campaign."""

    model_config = ConfigDict(extra="forbid")

    iterations: int = Field(default=100, ge=1)
    seed: int = 0
    bug_probability: float = Field(default=0.55, ge=0.0, le=1.0)
    jobs: int = Field(default=1, ge=1)
    shrink: bool = True
    audit_elisions: bool = False


class JobSummary(BaseModel):
    """The list/submission view of a job."""

    id: str
    kind: JobKind
    status: JobStatusName
    created_at: float
    started_at: Optional[float] = None
    finished_at: Optional[float] = None


class JobDetail(JobSummary):
    """The ``GET /jobs/{id}`` view: summary plus request echo/outcome."""

    request: Dict[str, Any]
    error: Optional[str] = None
    result: Optional[Dict[str, Any]] = None
    events: int = 0
