"""In-process ASGI test client (the httpx/starlette TestClient niche).

The client owns a private event loop on a background thread; the app,
its lifespan, and every submitted job live on that loop, so a
synchronous test can POST a job, keep polling ``GET /jobs/{id}`` with
ordinary blocking calls, and watch the job progress between requests —
exactly the shape the httpx ``TestClient`` provides, without the
dependency.

Use as a context manager: entry runs lifespan startup, exit runs the
graceful shutdown path (so every test also exercises the drain logic).
"""

from __future__ import annotations

import asyncio
import json as jsonlib
import threading
from typing import Any, Dict, List, Optional, Tuple

from .asgi import App, LifespanManager


class ClientResponse:
    """A buffered response as seen by a test."""

    def __init__(self, status: int, headers: Dict[str, str], body: bytes):
        self.status_code = status
        self.headers = headers
        self.content = body

    @property
    def text(self) -> str:
        return self.content.decode("utf-8")

    def json(self) -> Any:
        return jsonlib.loads(self.content)

    def events(self) -> List[Dict[str, Any]]:
        """Parse a ``text/event-stream`` body into event dicts."""
        events = []
        for block in self.text.split("\n\n"):
            for line in block.splitlines():
                if line.startswith("data: "):
                    events.append(jsonlib.loads(line[len("data: "):]))
        return events


class TestClient:
    """Drive an :class:`repro.server.asgi.App` without a socket."""

    __test__ = False  # keep pytest from collecting this as a test class

    def __init__(self, app: App, timeout: float = 120.0):
        self.app = app
        self.timeout = timeout
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-testclient", daemon=True
        )
        self._lifespan: Optional[LifespanManager] = None

    # ------------------------------------------------------------------
    def __enter__(self) -> "TestClient":
        self._thread.start()
        self._lifespan = self._call(self._make_lifespan())
        self._call(self._lifespan.startup())
        return self

    def __exit__(self, *exc_info) -> None:
        try:
            if self._lifespan is not None:
                self._call(self._lifespan.shutdown())
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=self.timeout)
            self._loop.close()

    async def _make_lifespan(self) -> LifespanManager:
        return LifespanManager(self.app)

    def _call(self, coroutine):
        future = asyncio.run_coroutine_threadsafe(coroutine, self._loop)
        return future.result(timeout=self.timeout)

    # ------------------------------------------------------------------
    def request(
        self,
        method: str,
        path: str,
        json: Any = None,
        body: bytes = b"",
    ) -> ClientResponse:
        if json is not None:
            body = jsonlib.dumps(json).encode("utf-8")
        return self._call(self._request(method.upper(), path, body))

    def get(self, path: str) -> ClientResponse:
        return self.request("GET", path)

    def post(self, path: str, json: Any = None, body: bytes = b"") -> ClientResponse:
        return self.request("POST", path, json=json, body=body)

    def delete(self, path: str) -> ClientResponse:
        return self.request("DELETE", path)

    async def _request(
        self, method: str, path: str, body: bytes
    ) -> ClientResponse:
        path, _, query = path.partition("?")
        scope = {
            "type": "http",
            "asgi": {"version": "3.0"},
            "http_version": "1.1",
            "method": method,
            "path": path,
            "query_string": query.encode("latin-1"),
            "headers": [(b"host", b"testserver")],
        }
        incoming = [{"type": "http.request", "body": body, "more_body": False}]

        async def receive():
            if incoming:
                return incoming.pop(0)
            return {"type": "http.disconnect"}

        status_headers: List[Tuple[int, Dict[str, str]]] = []
        chunks: List[bytes] = []

        async def send(message):
            if message["type"] == "http.response.start":
                status_headers.append(
                    (
                        message["status"],
                        {
                            key.decode("latin-1"): value.decode("latin-1")
                            for key, value in message.get("headers", [])
                        },
                    )
                )
            elif message["type"] == "http.response.body":
                chunks.append(message.get("body", b""))

        await self.app(scope, receive, send)
        if not status_headers:
            raise RuntimeError(f"app sent no response for {method} {path}")
        status, headers = status_headers[0]
        return ClientResponse(status, headers, b"".join(chunks))

    # ------------------------------------------------------------------
    def wait_for_job(
        self, job_id: str, timeout: float = 60.0, poll: float = 0.02
    ) -> Dict[str, Any]:
        """Poll ``GET /jobs/{id}`` until the job settles; returns detail."""
        import time

        deadline = time.monotonic() + timeout
        while True:
            detail = self.get(f"/jobs/{job_id}").json()
            if detail["status"] in ("done", "failed", "cancelled"):
                return detail
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {detail['status']} after {timeout}s"
                )
            time.sleep(poll)
