"""Job bodies: the synchronous work each job kind executes."""

from .runner import execute_run_job
from .sweeps import execute_sweep_job
from .fuzzing import execute_fuzz_job

__all__ = ["execute_run_job", "execute_sweep_job", "execute_fuzz_job"]
