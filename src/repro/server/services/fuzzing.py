"""The fuzz-job service: a bounded differential campaign as a job.

The campaign is split into small case spans; spans run through the
shared fabric (``jobs > 1``) or inline, with a cancellation checkpoint
and a progress event between batches.  Spans merge in ascending order,
so a completed campaign's summary is byte-identical to the
``repro fuzz`` CLI at the same seed/iterations — and a cancelled one
reports exactly the prefix it finished.

Fuzz Sessions resolve process defaults (engine/shadow) at run time, so
the body holds the environment lease like the sweep service does.
"""

from __future__ import annotations

import time
from typing import Any, Dict

from ..config import ExecutionDefaults
from ..jobs import JobContext
from ..models import FuzzJobRequest
from .common import env_lease

#: Cases per span on the inline path: small enough that cancellation
#: and progress stay responsive, large enough to amortize bookkeeping.
INLINE_SPAN_CASES = 8


def _spans(iterations: int, jobs: int):
    from ...analysis.parallel import chunk_ranges, steal_spans

    if jobs <= 1:
        return chunk_ranges(
            iterations, max(1, -(-iterations // INLINE_SPAN_CASES))
        )
    return steal_spans(iterations, jobs)


def execute_fuzz_job(
    context: JobContext,
    request: FuzzJobRequest,
    defaults: ExecutionDefaults,
) -> Dict[str, Any]:
    from ...analysis.parallel import parallel_map
    from ...fuzz.driver import FuzzSummary, fuzz_worker

    started = time.perf_counter()
    summary = FuzzSummary()
    spans = _spans(request.iterations, request.jobs)
    batch_size = max(request.jobs, 1) * 4
    with env_lease(context):
        for start in range(0, len(spans), batch_size):
            context.check_cancelled()
            batch = spans[start:start + batch_size]
            payloads = [
                (
                    request.seed,
                    lo,
                    hi,
                    request.bug_probability,
                    request.shrink,
                    request.audit_elisions,
                )
                for lo, hi in batch
            ]
            for partial in parallel_map(
                fuzz_worker,
                payloads,
                jobs=request.jobs,
                shard_keys=[("fuzz", lo) for lo, _ in batch],
            ):
                summary.merge(partial)
            context.progress(
                "fuzz progress",
                cases=summary.cases,
                total=request.iterations,
                divergences=len(summary.findings),
            )
    return {
        "seed": request.seed,
        "iterations": request.iterations,
        "cases": summary.cases,
        "buggy_cases": summary.buggy_cases,
        "invariant_checks": summary.invariant_checks,
        "divergences": len(summary.findings),
        "findings": summary.findings,
        "wall_seconds": time.perf_counter() - started,
    }
