"""The sweep-job service: regenerate a paper table/figure as a job.

Table 2 — the acceptance workload — runs in program-sized chunks
through the shared fabric with a cancellation checkpoint between
chunks, so ``DELETE /jobs/{id}`` takes effect mid-sweep instead of
after the final row.  The other targets reuse their study runners
whole (they are seconds-scale).  Results include the rendered text
exactly as the CLI prints it, so a sweep job is byte-comparable to
``python -m repro <target>``.

Sweep workers resolve ``REPRO_*`` process defaults (and the fabric is
keyed on them), so the whole body holds the environment lease; see
:mod:`repro.server.services.common`.
"""

from __future__ import annotations

import time
from typing import Any, Dict

from ..config import ExecutionDefaults
from ..jobs import JobContext
from ..models import SweepJobRequest
from .common import env_lease


def _run_table2(context: JobContext, request: SweepJobRequest) -> Dict[str, Any]:
    from ...analysis import (
        PERFORMANCE_TOOLS,
        OverheadStudy,
        overhead_to_rows,
        render_table2,
    )
    from ...analysis.parallel import overhead_worker, parallel_map
    from ...runtime.cost_model import DEFAULT_COST_MODEL
    from ...workloads.spec import SPEC_TABLE2_ROWS

    tools = list(PERFORMANCE_TOOLS)
    rows = []
    # chunk size: a couple of fills of the worker fleet between
    # cancellation checkpoints; jobs=1 checkpoints every other program
    chunk = max(request.jobs, 1) * 2
    programs = list(SPEC_TABLE2_ROWS)
    for start in range(0, len(programs), chunk):
        context.check_cancelled()
        batch = programs[start:start + chunk]
        rows.extend(
            parallel_map(
                overhead_worker,
                [
                    (spec.name, tools, request.scale, DEFAULT_COST_MODEL)
                    for spec in batch
                ],
                request.jobs,
                shard_keys=[spec.name for spec in batch],
            )
        )
        context.progress(
            "table2 progress", completed=len(rows), total=len(programs)
        )
    study = OverheadStudy(rows=rows, tools=tools)
    return {
        "rendered": render_table2(study),
        "rows": overhead_to_rows(study),
        "geomeans": study.geometric_means(),
    }


def _run_simple_target(
    context: JobContext, request: SweepJobRequest
) -> Dict[str, Any]:
    from ... import analysis

    context.check_cancelled()
    if request.target == "table3":
        study = analysis.run_juliet_study(jobs=request.jobs)
        return {"rendered": analysis.render_table3(study)}
    if request.target == "table4":
        study = analysis.run_linux_flaw_study(jobs=request.jobs)
        return {"rendered": analysis.render_table4(study)}
    if request.target == "table5":
        study = analysis.run_magma_study(jobs=request.jobs)
        return {"rendered": analysis.render_table5(study)}
    if request.target == "fig10":
        study = analysis.run_figure10_study(
            scale=request.scale, jobs=request.jobs
        )
        return {"rendered": analysis.render_figure10(study)}
    study = analysis.run_figure11_study(jobs=request.jobs)
    return {"rendered": analysis.render_figure11(study)}


def execute_sweep_job(
    context: JobContext,
    request: SweepJobRequest,
    defaults: ExecutionDefaults,
) -> Dict[str, Any]:
    started = time.perf_counter()
    overrides = {
        "REPRO_ENGINE": request.engine,
        "REPRO_SHADOW": request.shadow,
    }
    with env_lease(context, overrides):
        if request.target == "table2":
            payload = _run_table2(context, request)
        else:
            payload = _run_simple_target(context, request)
        from ...analysis.parallel import fabric_stats

        stats = fabric_stats()
    payload.update(
        {
            "target": request.target,
            "wall_seconds": time.perf_counter() - started,
            "fabric": stats,
        }
    )
    return payload
