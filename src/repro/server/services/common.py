"""Shared service plumbing: env leases and telemetry aggregation.

**Environment lease.**  Run jobs construct their Session from the
validated request model plus the defaults captured at app creation —
they never read ``REPRO_*`` at run time and can execute concurrently.
The sweep and fuzz services reuse the existing study runners, whose
worker Sessions *do* resolve process defaults (and whose fabric is
keyed on the ``REPRO_*`` environment), so any job that needs the
environment — to read it or to override it — must hold the process-wide
lease for the duration.  That serializes sweeps/fuzz campaigns against
each other while leaving run jobs fully concurrent, and it means a
sweep's ``engine=compiled`` override can never leak into a neighbour
job's sessions.

**Telemetry aggregation.**  Each run job's snapshot is merged into a
per-tool process aggregate via the explicit
:func:`repro.telemetry.merge_snapshots` API; ``GET /stats`` serves the
totals.  Registries themselves stay scoped to one Session — the
aggregate only ever sees immutable snapshots.
"""

from __future__ import annotations

import contextlib
import os
import threading
from typing import Dict, Optional

from ...telemetry import TelemetrySnapshot, merge_snapshots

#: Serializes every environment-dependent job (see module docstring).
_ENV_LEASE = threading.RLock()


def acquire_env_lease(context) -> None:
    """Take the lease, honouring cancellation while waiting."""
    while not _ENV_LEASE.acquire(timeout=0.2):
        context.check_cancelled()


def release_env_lease() -> None:
    _ENV_LEASE.release()


@contextlib.contextmanager
def env_lease(context, overrides: Optional[Dict[str, Optional[str]]] = None):
    """Hold the lease, with optional ``REPRO_*`` overrides restored on exit."""
    acquire_env_lease(context)
    saved: Dict[str, Optional[str]] = {}
    try:
        for key, value in (overrides or {}).items():
            if value is None:
                continue
            saved[key] = os.environ.get(key)
            os.environ[key] = str(value)
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        release_env_lease()


class TelemetryAggregate:
    """Per-tool merged snapshots across every telemetry-enabled run job."""

    def __init__(self):
        self._lock = threading.Lock()
        self._per_tool: Dict[str, TelemetrySnapshot] = {}
        self.runs = 0

    def merge(self, snapshot: TelemetrySnapshot) -> None:
        with self._lock:
            self.runs += 1
            previous = self._per_tool.get(snapshot.tool)
            self._per_tool[snapshot.tool] = (
                snapshot
                if previous is None
                else merge_snapshots([previous, snapshot])
            )

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "runs": self.runs,
                "tools": {
                    tool: snapshot.as_dict()
                    for tool, snapshot in sorted(self._per_tool.items())
                },
            }
