"""The run-job service: one IR program, one (tool × engine × shadow ×
fastpath) cell, executed through a Session built from the validated
request — not from environment variables — so concurrent jobs cannot
contaminate each other's configuration.

The result payload carries the full observable surface of the run:
return value, cycle/instruction counts, CheckStats, the structured
error list, the rendered ASan-style error reports (byte-identical to a
direct :class:`~repro.runtime.session.Session` run of the same
program), and the telemetry snapshot when the request asked for one.
"""

from __future__ import annotations

from typing import Any, Dict

from ...reporting import format_all_reports
from ...runtime.session import Session
from ..config import ExecutionDefaults, resolved
from ..jobs import JobContext
from ..models import RunJobRequest
from ..programs import build_job_program
from .common import TelemetryAggregate


def build_session(
    config, defaults: ExecutionDefaults, max_instructions: int
) -> Session:
    """A Session for an :class:`ExecutionConfig`, env-independent."""
    return Session(
        config.tool,
        max_instructions=max_instructions,
        fastpath=resolved(config.fastpath, defaults.fastpath),
        engine=resolved(config.engine, defaults.engine),
        shadow=resolved(config.shadow, defaults.shadow),
        interprocedural=resolved(
            config.interprocedural, defaults.interprocedural
        ),
        telemetry=config.telemetry,
    )


def run_result_payload(session: Session, result) -> Dict[str, Any]:
    """The JSON-ready observable surface of one run."""
    return {
        "tool": result.tool,
        "return_value": result.return_value,
        "native_cycles": result.native_cycles,
        "total_cycles": result.total_cycles(),
        "instructions_executed": result.instructions_executed,
        "stats": result.stats.as_dict(),
        "protection_counts": {
            str(kind.value if hasattr(kind, "value") else kind): count
            for kind, count in result.protection_counts.items()
        },
        "errors": [
            {
                "kind": report.kind.value,
                "address": report.address,
                "size": report.size,
                "access": report.access.value,
                "detail": report.detail,
            }
            for report in result.errors.reports
        ],
        "reports": format_all_reports(session.sanitizer),
        "telemetry": (
            result.telemetry.as_dict() if result.telemetry is not None else None
        ),
    }


def execute_run_job(
    context: JobContext,
    request: RunJobRequest,
    defaults: ExecutionDefaults,
    aggregate: TelemetryAggregate,
) -> Dict[str, Any]:
    program, args = build_job_program(request.program)
    context.check_cancelled()
    context.progress("instrumenting and executing", tool=request.config.tool)
    session = build_session(
        request.config, defaults, request.max_instructions
    )
    result = session.run(program, args)
    if result.telemetry is not None:
        aggregate.merge(result.telemetry)
    payload = run_result_payload(session, result)
    context.progress(
        "run complete",
        errors=len(payload["errors"]),
        instructions=payload["instructions_executed"],
    )
    return payload
