"""Execution tracing: a bounded event log for debugging sanitizer runs.

Attach a :class:`Tracer` to any sanitizer and every allocation, free,
frame push/pop, and error report is recorded as a structured event.
The trace answers the questions a report alone cannot — "what was at
this address before?", "how many allocations separated the free from
the use?" — the same role compiler-rt's allocation stack traces play.

The log is a ring buffer, so tracing long runs is safe.  REPORT events
are retained outside the ring: chatty malloc/free traffic must never
evict the record of an actual error.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional

from .errors import ErrorReport
from .sanitizers.base import Sanitizer


class EventKind(enum.Enum):
    MALLOC = "malloc"
    FREE = "free"
    FRAME_PUSH = "frame-push"
    FRAME_POP = "frame-pop"
    GLOBAL = "global"
    REPORT = "report"


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event, with a monotonically increasing sequence."""

    sequence: int
    kind: EventKind
    address: int
    size: int
    detail: str = ""

    def __str__(self) -> str:
        return (
            f"#{self.sequence:06d} {self.kind.value:10s} "
            f"addr={self.address:#x} size={self.size}"
            + (f" ({self.detail})" if self.detail else "")
        )


class Tracer:
    """Wraps a sanitizer's lifecycle hooks to record events.

    Usage::

        san = GiantSan()
        tracer = Tracer.attach(san)
        ... run ...
        for event in tracer.events_near(report.address):
            print(event)
    """

    def __init__(self, capacity: int = 4096):
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        # reports live outside the ring: they are rare (bounded by the
        # sanitizer's error log) and must survive any amount of
        # allocation traffic
        self._reports: List[TraceEvent] = []
        self._sequence = 0
        # set by attach(); used by detach() to restore the hooks
        self._sanitizer: Optional[Sanitizer] = None
        self._originals: dict = {}
        self._original_report: Optional[Callable] = None

    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, sanitizer: Sanitizer, capacity: int = 4096) -> "Tracer":
        """Instrument ``sanitizer`` in place; returns the tracer.

        Attaching is idempotent: a sanitizer that already has a tracer
        returns that same tracer instead of double-wrapping the hooks
        (which would double-record every event).  Use :meth:`detach` to
        restore the original hooks before attaching a fresh tracer.
        """
        existing = getattr(sanitizer, "_tracer", None)
        if existing is not None:
            return existing
        tracer = cls(capacity=capacity)

        original_malloc = sanitizer.malloc
        original_free = sanitizer.free
        original_push = sanitizer.push_frame
        original_pop = sanitizer.pop_frame
        original_global = sanitizer.define_global
        original_report = sanitizer.log.report

        def traced_malloc(size):
            allocation = original_malloc(size)
            tracer.record(
                EventKind.MALLOC,
                allocation.base,
                size,
                f"allocation #{allocation.allocation_id}",
            )
            return allocation

        def traced_free(address):
            # Look the chunk up *before* freeing: the allocator knows the
            # size now, and afterwards the allocation is gone.
            allocation = sanitizer.allocator.lookup(address)
            size = allocation.requested_size if allocation is not None else 0
            reports_before = len(sanitizer.log.reports)
            try:
                result = original_free(address)
            except BaseException as exc:
                # halt_on_error (or a hook) raised mid-free: the trace
                # must still say the FREE failed, not that it succeeded
                tracer.record(
                    EventKind.FREE, address, size,
                    f"raised {type(exc).__name__}",
                )
                raise
            # Record only after the free ran: an invalid/double free that
            # reports must not appear in the trace as a successful FREE.
            fired = sanitizer.log.reports[reports_before:]
            outcome = fired[-1].kind.value if fired else "ok"
            tracer.record(EventKind.FREE, address, size, outcome)
            return result

        def traced_push(sizes, names=None):
            frame = original_push(sizes, names)
            tracer.record(
                EventKind.FRAME_PUSH, frame.base, frame.size,
                f"frame #{frame.frame_id}",
            )
            return frame

        def traced_pop():
            frame = original_pop()
            tracer.record(
                EventKind.FRAME_POP, frame.base, frame.size,
                f"frame #{frame.frame_id}",
            )
            return frame

        def traced_global(name, size):
            variable = original_global(name, size)
            tracer.record(EventKind.GLOBAL, variable.base, size, name)
            return variable

        def traced_report(report: ErrorReport):
            tracer.record(
                EventKind.REPORT, report.address, report.size,
                report.kind.value,
            )
            return original_report(report)

        sanitizer.malloc = traced_malloc
        sanitizer.free = traced_free
        sanitizer.push_frame = traced_push
        sanitizer.pop_frame = traced_pop
        sanitizer.define_global = traced_global
        sanitizer.log.report = traced_report
        tracer._sanitizer = sanitizer
        tracer._originals = {
            "malloc": original_malloc,
            "free": original_free,
            "push_frame": original_push,
            "pop_frame": original_pop,
            "define_global": original_global,
        }
        tracer._original_report = original_report
        sanitizer._tracer = tracer
        return tracer

    def detach(self) -> None:
        """Restore the sanitizer's original hooks; recorded events stay.

        No-op for a tracer that was never attached (or already detached).
        After detaching, :meth:`attach` may install a fresh tracer.
        """
        sanitizer = self._sanitizer
        if sanitizer is None:
            return
        for name, original in self._originals.items():
            setattr(sanitizer, name, original)
        sanitizer.log.report = self._original_report
        del sanitizer._tracer
        self._sanitizer = None
        self._originals = {}
        self._original_report = None

    # ------------------------------------------------------------------
    def record(
        self, kind: EventKind, address: int, size: int, detail: str = ""
    ) -> TraceEvent:
        event = TraceEvent(
            sequence=self._sequence,
            kind=kind,
            address=address,
            size=size,
            detail=detail,
        )
        self._sequence += 1
        if kind is EventKind.REPORT:
            self._reports.append(event)
        else:
            self._events.append(event)
        return event

    @property
    def events(self) -> List[TraceEvent]:
        """All retained events, merged back into sequence order."""
        merged = list(self._events) + self._reports
        merged.sort(key=lambda e: e.sequence)
        return merged

    def __len__(self) -> int:
        return len(self._events) + len(self._reports)

    def of_kind(self, kind: EventKind) -> List[TraceEvent]:
        return [e for e in self.events if e.kind is kind]

    def events_near(
        self, address: int, radius: int = 256
    ) -> List[TraceEvent]:
        """Events whose address range touches ``address +- radius``."""
        return [
            e
            for e in self.events
            if e.address - radius <= address <= e.address + max(e.size, 0) + radius
        ]

    def history_of(self, address: int) -> List[TraceEvent]:
        """Lifecycle events for the object containing ``address``.

        FREE events carry the freed chunk's requested size (looked up
        from the allocator at free time) but are still matched through
        the base address of a containing malloc/global event: an invalid
        free has no size, and base matching keeps the pairing exact even
        for those.
        """
        bases = set()
        containing: List[TraceEvent] = []
        for e in self.events:
            if e.kind in (EventKind.MALLOC, EventKind.GLOBAL):
                if e.address <= address < e.address + max(e.size, 1):
                    bases.add(e.address)
                    containing.append(e)
            elif e.kind is EventKind.FREE and e.address in bases:
                containing.append(e)
        return containing

    def render(self, events: Optional[List[TraceEvent]] = None) -> str:
        chosen = self.events if events is None else events
        if not chosen:
            return "(no events)"
        return "\n".join(str(e) for e in chosen)
