"""ASan's shadow encoding (Serebryany et al., USENIX ATC 2012).

A shadow byte of 0 marks a fully addressable ("good") segment; 1..7 mark
k-partial segments (only the first k bytes addressable); values >= 0x80
(negative as int8) are poison codes naming *why* the segment is
non-addressable.  The codes below follow compiler-rt's
``asan_internal_defs``.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ErrorKind
from ..memory.allocator import Allocation
from ..memory.layout import SEGMENT_SIZE, segment_index
from .shadow_memory import ShadowMemory

#: Fully addressable segment.
GOOD = 0x00

#: Poison codes (compiler-rt values).
HEAP_LEFT_REDZONE = 0xFA
HEAP_RIGHT_REDZONE = 0xFB
HEAP_FREED = 0xFD
STACK_LEFT_REDZONE = 0xF1
STACK_MID_REDZONE = 0xF2
STACK_RIGHT_REDZONE = 0xF3
STACK_AFTER_RETURN = 0xF5
GLOBAL_REDZONE = 0xF9
NULL_PAGE = 0xFE

#: Map from poison code to the error kind a report should carry.
ERROR_KIND_BY_CODE = {
    HEAP_LEFT_REDZONE: ErrorKind.HEAP_BUFFER_UNDERFLOW,
    HEAP_RIGHT_REDZONE: ErrorKind.HEAP_BUFFER_OVERFLOW,
    HEAP_FREED: ErrorKind.USE_AFTER_FREE,
    STACK_LEFT_REDZONE: ErrorKind.STACK_BUFFER_UNDERFLOW,
    STACK_MID_REDZONE: ErrorKind.STACK_BUFFER_OVERFLOW,
    STACK_RIGHT_REDZONE: ErrorKind.STACK_BUFFER_OVERFLOW,
    STACK_AFTER_RETURN: ErrorKind.USE_AFTER_RETURN,
    GLOBAL_REDZONE: ErrorKind.GLOBAL_BUFFER_OVERFLOW,
    NULL_PAGE: ErrorKind.NULL_DEREFERENCE,
}


def is_poison(code: int) -> bool:
    """True for the non-addressable poison codes (int8-negative range)."""
    return code >= 0x80


def is_partial(code: int) -> bool:
    """True for k-partial codes (1..7)."""
    return 1 <= code <= 7


def classify(code: int) -> ErrorKind:
    """Error kind implied by hitting ``code``; partial segments report as
    overflow of the object they terminate."""
    if is_poison(code):
        return ERROR_KIND_BY_CODE.get(code, ErrorKind.UNKNOWN)
    if is_partial(code):
        return ErrorKind.HEAP_BUFFER_OVERFLOW
    return ErrorKind.UNKNOWN


def addressable_prefix(code: int) -> int:
    """Number of addressable bytes at the start of a segment with ``code``."""
    if code == GOOD:
        return SEGMENT_SIZE
    if is_partial(code):
        return code
    return 0


def poison_allocation(shadow: ShadowMemory, allocation: Allocation) -> int:
    """Set shadow for a fresh heap allocation: good object + redzones.

    The object's interior segments become GOOD; a trailing partial
    segment gets its k code; left/right redzones get poison.  Chunks are
    segment-aligned so no two objects share a segment (paper footnote 2).
    Returns the shadow bytes written — including the slack double-write,
    which really does touch those segments twice.
    """
    written = _write_object_states(
        shadow, allocation.base, allocation.requested_size
    )
    slack = allocation.usable_size - allocation.requested_size
    if slack:
        # Rounded-up policies (BBC/LFP) leave the slack *addressable*:
        # that is precisely their false-negative source.
        written += _write_object_states(
            shadow, allocation.base, allocation.usable_size
        )
    left_segments = allocation.left_redzone >> 3
    if left_segments:
        shadow.fill(
            segment_index(allocation.chunk_base), left_segments, HEAP_LEFT_REDZONE
        )
        written += left_segments
    first_rz = segment_index(allocation.base + allocation.usable_size + 7)
    end_seg = segment_index(allocation.chunk_end)
    if end_seg > first_rz:
        shadow.fill(first_rz, end_seg - first_rz, HEAP_RIGHT_REDZONE)
        written += end_seg - first_rz
    return written


def _write_object_states(shadow: ShadowMemory, base: int, size: int) -> int:
    index = segment_index(base)
    full, tail = divmod(size, SEGMENT_SIZE)
    if full:
        shadow.fill(index, full, GOOD)
    if tail:
        shadow.store(index + full, tail)
    return full + (1 if tail else 0)


def poison_freed(shadow: ShadowMemory, allocation: Allocation) -> int:
    """Mark a freed object's whole usable region as HEAP_FREED; returns
    the shadow bytes written."""
    index = segment_index(allocation.base)
    count = (allocation.usable_size + SEGMENT_SIZE - 1) >> 3
    shadow.fill(index, count, HEAP_FREED)
    return count


def unpoison_chunk(shadow: ShadowMemory, allocation: Allocation) -> int:
    """Clear the whole chunk back to GOOD (on quarantine eviction the
    address range becomes reusable raw memory); returns the shadow bytes
    written."""
    index = segment_index(allocation.chunk_base)
    count = allocation.chunk_size >> 3
    shadow.fill(index, count, GOOD)
    return count


def check_small_access(
    shadow: ShadowMemory, address: int, width: int
) -> Optional[int]:
    """ASan's check for one <=8-byte access (paper Example 1).

    Returns the offending shadow code, or None when the access is safe.
    Exactly one shadow load when the access does not straddle a segment
    boundary; two otherwise.
    """
    code = shadow.load(ShadowMemory.index_of(address))
    offset = address & (SEGMENT_SIZE - 1)
    if offset + width <= SEGMENT_SIZE:
        if code != GOOD and offset + width > addressable_prefix(code):
            return code
        return None
    # Straddles two segments: the first must be fully good, the tail
    # checks against the second segment's prefix.
    if code != GOOD:
        return code
    tail = offset + width - SEGMENT_SIZE
    code2 = shadow.load(ShadowMemory.index_of(address) + 1)
    if code2 != GOOD and tail > addressable_prefix(code2):
        return code2
    return None
