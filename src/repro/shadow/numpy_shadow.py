"""Vectorized shadow plane: ``numpy.uint8`` kernels over the shadow array.

The reference :class:`~repro.shadow.shadow_memory.ShadowMemory` spends
its bulk time in three places: redzone fills, region addressability
scans, and (for GiantSan) folding-code construction.  This backend
reimplements each as a vectorized array op while keeping every
observable byte-identical:

* the ndarray is a **zero-copy alias** of the same ``bytearray`` the
  reference backend uses (``numpy.frombuffer`` of a writable buffer), so
  the sanitizers' inlined scalar probes (``shadow._shadow[i]`` in
  ``GiantSan._ci`` / ``ASan.check_access``) keep working unchanged and
  stay fast — Python-int loads, no ``numpy`` scalar boxing leaking into
  error reports;
* bulk fills broadcast one scalar instead of building/copying a fill
  pattern;
* region scans reduce to one elementwise comparison plus ``argmax``.
  Both shadow encodings are *monotone* — fully-addressable codes form
  the prefix ``[0, k)`` of the code space (ASan: ``code == 0``;
  GiantSan: ``code <= 64``) — so "first non-full segment" is
  ``(codes >= k).argmax()``, a two-pass SIMD sweep instead of a
  translate table walk.  Non-monotone flag tables (exotic test oracles)
  fall back to a fancy-indexing lookup, still byte-exact.

Small scans fall back to the reference ``translate``/``find`` path:
below a few dozen segments the numpy call overhead costs more than the
C-level search, and the alias makes the fallback free.

Construction of GiantSan's folding-degree sequences is exposed here as
:func:`expand_codes_array` (``np.repeat`` over the run-length
decomposition) and used by
:func:`repro.shadow.giantsan_encoding.object_codes` for large objects on
*both* backends — the bytes produced are identical, only the build cost
changes.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..memory.layout import SEGMENT_SIZE
from .folding import MAX_DEGREE
from .shadow_memory import SHADOW_BACKENDS, ShadowMemory

#: Scans shorter than this many segments take the reference
#: ``translate``/``find`` path: numpy's per-call overhead (~1µs) exceeds
#: the whole C-level search for small slices.  Results are identical on
#: either side of the threshold (property-tested).
SCAN_VECTOR_MIN = 48

#: Fills shorter than this take the reference fill-pattern path for the
#: same reason.
FILL_VECTOR_MIN = 32

#: Parsed predicate per ``full_flags`` table: ("threshold", k) when the
#: non-full codes are exactly ``[k, 256)``, ("table", ndarray) otherwise,
#: ("all_full", None) when every code is fully addressable.
_PREDICATES: Dict[bytes, Tuple[str, object]] = {}


def _not_full_predicate(full_flags: bytes) -> Tuple[str, object]:
    entry = _PREDICATES.get(full_flags)
    if entry is None:
        flags = bytes(full_flags)
        k = flags.find(1)
        if k < 0:
            entry = ("all_full", None)
        elif flags == b"\x00" * k + b"\x01" * (256 - k):
            entry = ("threshold", k)
        else:
            entry = ("table", np.frombuffer(flags, dtype=np.uint8).copy())
        _PREDICATES[full_flags] = entry
    return entry


class NumpyShadowMemory(ShadowMemory):
    """Shadow plane with vectorized bulk kernels.

    The ndarray and the inherited ``bytearray`` alias the same memory,
    so scalar paths (``load``/``store``/direct ``_shadow`` probes) are
    inherited unchanged and every mutation is visible through both
    views.
    """

    backend = "numpy"
    vectorized = True

    def __init__(self, memory_size: int):
        super().__init__(memory_size)
        # frombuffer over a writable buffer yields a *writable* ndarray
        # aliasing the bytearray: zero-copy interop in both directions.
        self._np = np.frombuffer(self._shadow, dtype=np.uint8)

    def fill(self, index: int, count: int, code: int) -> None:
        if count < FILL_VECTOR_MIN:
            ShadowMemory.fill(self, index, count, code)
            return
        self._range_check(index, count)
        self._np[index : index + count] = code & 0xFF

    def array_view(self, index: int, count: int) -> np.ndarray:
        """Zero-copy ``uint8`` ndarray slice (the vectorized analogue of
        :meth:`~repro.shadow.shadow_memory.ShadowMemory.view`)."""
        self._range_check(index, count)
        return self._np[index : index + count]

    def find_not_full(self, index: int, count: int, full_flags: bytes) -> int:
        if count < SCAN_VECTOR_MIN:
            return ShadowMemory.find_not_full(self, index, count, full_flags)
        self._range_check(index, count)
        kind, arg = _not_full_predicate(full_flags)
        if kind == "all_full":
            return -1
        codes = self._np[index : index + count]
        if kind == "threshold":
            flags = codes >= arg
        else:
            flags = arg[codes] != 0
        # argmax returns the first True, or 0 when no element is True.
        pos = int(flags.argmax())
        return pos if flags[pos] else -1


SHADOW_BACKENDS["numpy"] = NumpyShadowMemory


# ----------------------------------------------------------------------
# vectorized folding-code construction (GiantSan §4.1 / Figure 5)
# ----------------------------------------------------------------------
def expand_codes_array(runs, tail: int) -> bytes:
    """Expand ``(degree, run_length)`` pairs to shadow codes via
    ``np.repeat``.

    Byte-identical to the reference list-extend expansion in
    :mod:`repro.shadow.giantsan_encoding` (codes ``64 - degree`` per
    run, one ``72 - tail`` partial code appended for a ``tail``-byte
    remainder); property tests pin the equality across run shapes
    including the degree-``MAX_DEGREE`` cap.
    """
    parts = []
    if runs:
        for degree, run in runs:
            if not 0 <= degree <= MAX_DEGREE:
                raise ValueError(f"folding degree out of range: {degree}")
            if run < 0:
                raise ValueError(f"negative run length: {run}")
        degrees = np.array([64 - degree for degree, _ in runs], dtype=np.uint8)
        lengths = np.array([run for _, run in runs], dtype=np.int64)
        parts.append(np.repeat(degrees, lengths))
    if tail:
        if not 1 <= tail <= SEGMENT_SIZE - 1:
            raise ValueError(f"partial byte count out of range: {tail}")
        parts.append(np.array([72 - tail], dtype=np.uint8))
    if not parts:
        return b""
    codes = parts[0] if len(parts) == 1 else np.concatenate(parts)
    return codes.tobytes()
