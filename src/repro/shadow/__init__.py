"""Shadow memory and the two shadow encodings (ASan, GiantSan).

The shadow plane has two interchangeable backends — the reference
``bytearray`` plane and a vectorized ``numpy`` plane — selected through
:func:`make_shadow` / ``REPRO_SHADOW`` exactly like the execution-engine
switch.
"""

from .shadow_memory import (
    SHADOW_BACKENDS,
    ShadowMemory,
    make_shadow,
    resolve_shadow_backend,
    shadow_backend_default,
)
from .folding import (
    MAX_DEGREE,
    floor_log2,
    degree_for_remaining,
    fold_degrees,
    run_lengths,
    verify_degrees,
)
from . import asan_encoding, giantsan_encoding, oracle

__all__ = [
    "ShadowMemory",
    "SHADOW_BACKENDS",
    "make_shadow",
    "resolve_shadow_backend",
    "shadow_backend_default",
    "MAX_DEGREE",
    "floor_log2",
    "degree_for_remaining",
    "fold_degrees",
    "run_lengths",
    "verify_degrees",
    "asan_encoding",
    "giantsan_encoding",
    "oracle",
]
