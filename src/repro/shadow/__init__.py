"""Shadow memory and the two shadow encodings (ASan, GiantSan)."""

from .shadow_memory import ShadowMemory
from .folding import (
    MAX_DEGREE,
    floor_log2,
    degree_for_remaining,
    fold_degrees,
    run_lengths,
    verify_degrees,
)
from . import asan_encoding, giantsan_encoding, oracle

__all__ = [
    "ShadowMemory",
    "MAX_DEGREE",
    "floor_log2",
    "degree_for_remaining",
    "fold_degrees",
    "run_lengths",
    "verify_degrees",
    "asan_encoding",
    "giantsan_encoding",
    "oracle",
]
