"""Raw shadow memory: one shadow byte per 8-byte segment.

Both ASan and GiantSan map the application address ``a`` to the shadow
index ``a >> 3`` (paper §2.2).  This module stores the shadow array and
moves bytes; *what the bytes mean* is defined by the encoding modules
(:mod:`repro.shadow.asan_encoding`, :mod:`repro.shadow.giantsan_encoding`).

Two interchangeable backends implement the store:

* ``bytearray`` — this module's :class:`ShadowMemory`, the reference
  plane: plain ``bytearray`` with C-level ``translate``/``find`` bulk
  scans;
* ``numpy`` — :class:`repro.shadow.numpy_shadow.NumpyShadowMemory`, a
  ``numpy.uint8`` view over the *same* buffer with vectorized fills and
  comparison-reduction scans.

Select one per sanitizer with ``Session(shadow=...)``, process wide with
``REPRO_SHADOW``, or on the CLI with ``--shadow`` — exactly the switch
shape the execution engine uses.  Both backends are byte-identical in
every observable (codes, stats, error reports); the differential suite
runs the full engine × shadow matrix to prove it.
"""

from __future__ import annotations

import os
from typing import Optional

from ..memory.fillcache import fill_pattern
from ..memory.layout import SEGMENT_SHIFT, SEGMENT_SIZE


def shadow_backend_default() -> str:
    """Process-wide default shadow backend (``REPRO_SHADOW``)."""
    value = os.environ.get("REPRO_SHADOW", "bytearray").strip().lower()
    return value or "bytearray"


class ShadowMemory:
    """The shadow array for a simulated address space.

    Indices are *segment* indices, not byte addresses; use
    :meth:`index_of` to map an address.  All values are unsigned bytes
    (0..255); ASan's signed interpretation is applied by its encoding.
    """

    #: Registry name of this backend (subclasses override).
    backend = "bytearray"
    #: True when bulk kernels run as vectorized array ops.
    vectorized = False

    def __init__(self, memory_size: int):
        if memory_size % SEGMENT_SIZE:
            raise ValueError("memory size must be a multiple of the segment size")
        self._shadow = bytearray(memory_size >> SEGMENT_SHIFT)

    def __len__(self) -> int:
        return len(self._shadow)

    @staticmethod
    def index_of(address: int) -> int:
        """Shadow index of the segment covering ``address``."""
        return address >> SEGMENT_SHIFT

    def load(self, index: int) -> int:
        """Read one shadow byte (the unit the cost model charges for)."""
        return self._shadow[index]

    def store(self, index: int, code: int) -> None:
        """Write one shadow byte."""
        self._shadow[index] = code & 0xFF

    def _range_check(self, index: int, count: int) -> None:
        if count < 0:
            raise ValueError("count must be non-negative")
        if index < 0 or index + count > len(self._shadow):
            raise IndexError(
                f"shadow range [{index}, {index + count}) leaves the "
                f"shadow array of {len(self._shadow)} bytes"
            )

    def fill(self, index: int, count: int, code: int) -> None:
        """Set ``count`` consecutive shadow bytes to ``code``.

        Uses the shared fill-pattern cache, so poisoning an object is one
        precomputed slice write rather than a fresh ``bytes`` build.
        """
        self._range_check(index, count)
        self._shadow[index : index + count] = fill_pattern(code, count)

    def write_codes(self, index: int, codes: bytes) -> None:
        """Write a pre-computed code sequence (used by segment folding)."""
        self._range_check(index, len(codes))
        self._shadow[index : index + len(codes)] = codes

    def poison_codes(self, index: int, codes) -> None:
        """Write a precomputed code sequence from any bytes-like view.

        Unlike :meth:`write_codes` this is documented to accept a
        ``memoryview`` (or any buffer, including a ``numpy`` array),
        letting allocator hooks hand the cached poison tables straight
        through without a copy.
        """
        self._range_check(index, len(codes))
        self._shadow[index : index + len(codes)] = codes

    def region(self, index: int, count: int) -> bytes:
        """Snapshot of ``count`` shadow bytes starting at ``index``."""
        self._range_check(index, count)
        return bytes(self._shadow[index : index + count])

    def view(self, index: int, count: int) -> memoryview:
        """Zero-copy view of ``count`` shadow bytes starting at ``index``.

        The view aliases live shadow storage: later stores are visible
        through it.  Callers that need a stable snapshot (for example to
        compare before/after states) must use :meth:`region` instead.
        """
        self._range_check(index, count)
        return memoryview(self._shadow)[index : index + count]

    def codes_for_range(self, address: int, size: int) -> bytes:
        """Shadow bytes covering the byte range ``[address, address+size)``."""
        if size <= 0:
            return b""
        first = self.index_of(address)
        last = self.index_of(address + size - 1)
        return self.region(first, last - first + 1)

    # ------------------------------------------------------------------
    # bulk scanning primitive (backend-dispatched)
    # ------------------------------------------------------------------
    def find_not_full(self, index: int, count: int, full_flags: bytes) -> int:
        """Offset of the first non-fully-addressable segment, or -1.

        ``full_flags`` is a 256-entry table mapping fully-addressable
        codes to ``0`` and everything else to ``1`` (see
        :func:`repro.shadow.oracle.scan_tables`).  This is the one
        primitive every bulk region scan reduces to, so backends override
        it with their fastest whole-slice search: here a C-level
        ``translate`` + ``find``, in the numpy backend a comparison
        reduction.
        """
        self._range_check(index, count)
        return self._shadow[index : index + count].translate(full_flags).find(1)


#: Backend registry, engine-switch style.  The numpy backend registers
#: itself on import; :func:`resolve_shadow_backend` imports it lazily so
#: a bytearray-only process never pays the numpy import.
SHADOW_BACKENDS = {"bytearray": ShadowMemory}

_KNOWN_BACKENDS = ("bytearray", "numpy")


def resolve_shadow_backend(backend: Optional[str]) -> type:
    """Map a backend name (or None = process default) to its class."""
    name = (
        shadow_backend_default()
        if backend is None
        else str(backend).strip().lower()
    )
    if name == "numpy" and name not in SHADOW_BACKENDS:
        try:
            from . import numpy_shadow  # noqa: F401  (registers itself)
        except ImportError as exc:
            raise ValueError(
                "the numpy shadow backend needs the numpy package "
                f"(import failed: {exc})"
            ) from None
    try:
        return SHADOW_BACKENDS[name]
    except KeyError:
        known = ", ".join(_KNOWN_BACKENDS)
        raise ValueError(
            f"unknown shadow backend {name!r}; known backends: {known}"
        ) from None


def make_shadow(memory_size: int, backend: Optional[str] = None) -> ShadowMemory:
    """Construct a shadow plane on the selected backend."""
    return resolve_shadow_backend(backend)(memory_size)
