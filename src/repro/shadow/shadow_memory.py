"""Raw shadow memory: one shadow byte per 8-byte segment.

Both ASan and GiantSan map the application address ``a`` to the shadow
index ``a >> 3`` (paper §2.2).  This module stores the shadow array and
moves bytes; *what the bytes mean* is defined by the encoding modules
(:mod:`repro.shadow.asan_encoding`, :mod:`repro.shadow.giantsan_encoding`).
"""

from __future__ import annotations

from ..memory.fillcache import fill_pattern
from ..memory.layout import SEGMENT_SHIFT, SEGMENT_SIZE


class ShadowMemory:
    """The shadow array for a simulated address space.

    Indices are *segment* indices, not byte addresses; use
    :meth:`index_of` to map an address.  All values are unsigned bytes
    (0..255); ASan's signed interpretation is applied by its encoding.
    """

    def __init__(self, memory_size: int):
        if memory_size % SEGMENT_SIZE:
            raise ValueError("memory size must be a multiple of the segment size")
        self._shadow = bytearray(memory_size >> SEGMENT_SHIFT)

    def __len__(self) -> int:
        return len(self._shadow)

    @staticmethod
    def index_of(address: int) -> int:
        """Shadow index of the segment covering ``address``."""
        return address >> SEGMENT_SHIFT

    def load(self, index: int) -> int:
        """Read one shadow byte (the unit the cost model charges for)."""
        return self._shadow[index]

    def store(self, index: int, code: int) -> None:
        """Write one shadow byte."""
        self._shadow[index] = code & 0xFF

    def _range_check(self, index: int, count: int) -> None:
        if count < 0:
            raise ValueError("count must be non-negative")
        if index < 0 or index + count > len(self._shadow):
            raise IndexError(
                f"shadow range [{index}, {index + count}) leaves the "
                f"shadow array of {len(self._shadow)} bytes"
            )

    def fill(self, index: int, count: int, code: int) -> None:
        """Set ``count`` consecutive shadow bytes to ``code``.

        Uses the shared fill-pattern cache, so poisoning an object is one
        precomputed slice write rather than a fresh ``bytes`` build.
        """
        self._range_check(index, count)
        self._shadow[index : index + count] = fill_pattern(code, count)

    def write_codes(self, index: int, codes: bytes) -> None:
        """Write a pre-computed code sequence (used by segment folding)."""
        self._range_check(index, len(codes))
        self._shadow[index : index + len(codes)] = codes

    def poison_codes(self, index: int, codes) -> None:
        """Write a precomputed code sequence from any bytes-like view.

        Unlike :meth:`write_codes` this is documented to accept a
        ``memoryview`` (or any buffer), letting allocator hooks hand the
        cached poison tables straight through without a copy.
        """
        self._range_check(index, len(codes))
        self._shadow[index : index + len(codes)] = codes

    def region(self, index: int, count: int) -> bytes:
        """Snapshot of ``count`` shadow bytes starting at ``index``."""
        self._range_check(index, count)
        return bytes(self._shadow[index : index + count])

    def codes_for_range(self, address: int, size: int) -> bytes:
        """Shadow bytes covering the byte range ``[address, address+size)``."""
        if size <= 0:
            return b""
        first = self.index_of(address)
        last = self.index_of(address + size - 1)
        return self.region(first, last - first + 1)
