"""GiantSan's shadow encoding with folded segments (paper §4.1, Def. 1).

State codes in one unsigned shadow byte::

    m[p] = 64 - i   -> the p-th segment is an (i)-folded segment
    m[p] = 72 - k   -> the p-th segment is k-partial (first k bytes good)
    m[p] > 72       -> error codes (redzone, freed, stack poison, ...)

The encoding is *monotone*: a smaller code means more consecutive
addressable bytes follow the segment base.  The integer trick
``u = (v <= 64) << (67 - v)`` recovers the guaranteed addressable byte
count without a log2 (paper §4.2); it yields ``8 * 2^i`` for folded codes
and 0 for everything else.

Error codes reuse compiler-rt's poison values (0xF1..0xFE), which all
satisfy ``> 72``, so report classification is shared with the ASan
encoding module.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional

from ..errors import ErrorKind
from ..memory.allocator import Allocation
from ..memory.layout import SEGMENT_SIZE, segment_index
from . import asan_encoding
from .folding import MAX_DEGREE, run_lengths
from .shadow_memory import ShadowMemory

#: Code for a plain good segment: (0)-folded.
GOOD = 64

#: Boundary constants from Definition 1.
FOLDED_MAX_CODE = 64  # codes <= 64 are folded segments
PARTIAL_BASE = 72  # code 72 - k for a k-partial segment
ERROR_THRESHOLD = 72  # codes > 72 are error codes

#: Poison codes are shared with the ASan encoding (all > 72).
HEAP_LEFT_REDZONE = asan_encoding.HEAP_LEFT_REDZONE
HEAP_RIGHT_REDZONE = asan_encoding.HEAP_RIGHT_REDZONE
HEAP_FREED = asan_encoding.HEAP_FREED
STACK_LEFT_REDZONE = asan_encoding.STACK_LEFT_REDZONE
STACK_MID_REDZONE = asan_encoding.STACK_MID_REDZONE
STACK_RIGHT_REDZONE = asan_encoding.STACK_RIGHT_REDZONE
STACK_AFTER_RETURN = asan_encoding.STACK_AFTER_RETURN
GLOBAL_REDZONE = asan_encoding.GLOBAL_REDZONE
NULL_PAGE = asan_encoding.NULL_PAGE


def encode_folded(degree: int) -> int:
    """Shadow code for an (i)-folded segment.

    Degrees carry six bits (0..``MAX_DEGREE``), so emitted codes span
    [1, 64]; code 0 is reserved headroom and never produced.
    """
    if not 0 <= degree <= MAX_DEGREE:
        raise ValueError(f"folding degree out of range: {degree}")
    return FOLDED_MAX_CODE - degree


def encode_partial(k: int) -> int:
    """Shadow code for a k-partial segment (1 <= k <= 7)."""
    if not 1 <= k <= SEGMENT_SIZE - 1:
        raise ValueError(f"partial byte count out of range: {k}")
    return PARTIAL_BASE - k


def decode_degree(code: int) -> Optional[int]:
    """Folding degree for a folded code, else None."""
    return FOLDED_MAX_CODE - code if code <= FOLDED_MAX_CODE else None


def decode_partial(code: int) -> Optional[int]:
    """Addressable prefix length k for a partial code, else None."""
    if FOLDED_MAX_CODE < code <= PARTIAL_BASE - 1:
        return PARTIAL_BASE - code
    return None


def is_error_code(code: int) -> bool:
    """True for codes marking non-addressable segments (> 72)."""
    return code > ERROR_THRESHOLD


def guaranteed_bytes(code: int) -> int:
    """Addressable bytes guaranteed from the segment base.

    The branch-free form the paper uses: ``(v <= 64) << (67 - v)``.
    Folded codes yield ``8 * 2^degree``; partial and error codes yield 0.
    """
    return (1 << (67 - code)) if code <= FOLDED_MAX_CODE else 0


def addressable_prefix(code: int) -> int:
    """Addressable bytes at the start of the single segment with ``code``
    (caps folded guarantees at one segment; used by the oracle)."""
    if code <= FOLDED_MAX_CODE:
        return SEGMENT_SIZE
    partial = decode_partial(code)
    return partial if partial is not None else 0


def classify(code: int) -> ErrorKind:
    """Error kind implied by hitting ``code``."""
    if is_error_code(code) and code in asan_encoding.ERROR_KIND_BY_CODE:
        return asan_encoding.ERROR_KIND_BY_CODE[code]
    if decode_partial(code) is not None:
        return ErrorKind.HEAP_BUFFER_OVERFLOW
    return ErrorKind.UNKNOWN


#: Objects with at least this many good segments build their code
#: sequence through the vectorized ``np.repeat`` expansion; below it the
#: plain bytes-multiply loop wins (run counts are O(log n) either way,
#: the crossover is the numpy call overhead).  The produced bytes are
#: identical on both sides (property-tested), so the threshold is purely
#: a build-cost knob.
_VECTORIZE_MIN_SEGMENTS = 256


def _expand_codes(runs, tail: int) -> bytes:
    """Reference run expansion: degree runs then the partial tail."""
    codes = bytearray()
    for degree, run in runs:
        codes.extend(bytes([encode_folded(degree)]) * run)
    if tail:
        codes.append(encode_partial(tail))
    return bytes(codes)


@lru_cache(maxsize=4096)
def _object_codes_cached(size: int) -> bytes:
    good, tail = divmod(size, SEGMENT_SIZE)
    runs = run_lengths(good)
    if good >= _VECTORIZE_MIN_SEGMENTS:
        try:
            from .numpy_shadow import expand_codes_array
        except ImportError:
            return _expand_codes(runs, tail)
        return expand_codes_array(runs, tail)
    return _expand_codes(runs, tail)


def object_codes(size: int) -> bytes:
    """The shadow code sequence for an object of ``size`` bytes.

    ``size // 8`` good segments get folded codes (Figure 5); a trailing
    ``size % 8`` tail becomes a partial segment.  The sequence depends
    only on ``size`` and is immutable, so it is memoized: repeated
    malloc/free of the same size class poisons from a precomputed table.
    """
    if size < 0:
        raise ValueError("size must be non-negative")
    return _object_codes_cached(size)


def poison_object_shadow(shadow: ShadowMemory, base: int, size: int) -> int:
    """Write folded codes for an object at ``base``; returns shadow bytes
    written (the linear-time poisoning cost the paper notes in §4.1)."""
    codes = object_codes(size)
    shadow.write_codes(segment_index(base), codes)
    return len(codes)


def poison_object_shadow_fast(shadow: ShadowMemory, base: int, size: int) -> int:
    """Memoized-table variant of :func:`poison_object_shadow`; identical
    output, one precomputed slice write per call (the cached sequence is
    handed to the shadow through the zero-copy ``poison_codes`` path)."""
    codes = object_codes(size)
    shadow.poison_codes(segment_index(base), codes)
    return len(codes)


def poison_allocation(shadow: ShadowMemory, allocation: Allocation) -> int:
    """Shadow setup for a fresh heap allocation under GiantSan.

    Identical to ASan's poisoning except the object's interior receives
    folding degrees instead of uniform zeros (paper §4.5, "Shadow
    Poisoning").  Rounding slack from BBC/LFP-style policies is folded in
    as addressable, matching their semantics.  Returns the shadow bytes
    written, the quantity the telemetry shadow-traffic counters record.
    """
    written = poison_object_shadow_fast(
        shadow, allocation.base, allocation.usable_size
    )
    left_segments = allocation.left_redzone >> 3
    if left_segments:
        shadow.fill(
            segment_index(allocation.chunk_base), left_segments, HEAP_LEFT_REDZONE
        )
        written += left_segments
    first_rz = segment_index(allocation.base + allocation.usable_size + 7)
    end_seg = segment_index(allocation.chunk_end)
    if end_seg > first_rz:
        shadow.fill(first_rz, end_seg - first_rz, HEAP_RIGHT_REDZONE)
        written += end_seg - first_rz
    return written


def poison_freed(shadow: ShadowMemory, allocation: Allocation) -> int:
    """Mark a freed object's region as HEAP_FREED (quarantine entry);
    returns the shadow bytes written."""
    index = segment_index(allocation.base)
    count = (allocation.usable_size + SEGMENT_SIZE - 1) >> 3
    shadow.fill(index, count, HEAP_FREED)
    return count


def unpoison_chunk(shadow: ShadowMemory, allocation: Allocation) -> int:
    """Reset a recycled chunk's shadow to plain good segments; returns
    the shadow bytes written."""
    index = segment_index(allocation.chunk_base)
    count = allocation.chunk_size >> 3
    shadow.fill(index, count, GOOD)
    return count


def refold_region(shadow: ShadowMemory, base: int, size: int) -> None:
    """Rebuild folding for ``[base, base+size)`` treated as one object.

    Exposed for manual poisoning APIs (``__asan_unpoison`` analogue).
    """
    poison_object_shadow_fast(shadow, base, size)


def describe_codes(codes: List[int]) -> List[str]:
    """Human-readable rendering of shadow codes, for debugging/printing."""
    labels = []
    for code in codes:
        degree = decode_degree(code)
        if degree is not None:
            labels.append(f"({degree})")
            continue
        partial = decode_partial(code)
        if partial is not None:
            labels.append(f"{partial}-part")
            continue
        labels.append(f"err:{code:#x}")
    return labels
