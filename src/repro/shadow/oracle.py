"""Byte-exact addressability oracle.

The oracle walks shadow codes one segment at a time and decides whether a
region is fully addressable.  It is deliberately slow and obviously
correct: property tests compare every sanitizer's O(1)/O(n) check result
against it, and detection experiments use it as ground truth.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from ..memory.layout import SEGMENT_SIZE, segment_index, segment_offset
from . import asan_encoding, giantsan_encoding
from .shadow_memory import ShadowMemory

#: An oracle prefix function: addressable bytes at the start of one
#: segment given its shadow code.
PrefixFn = Callable[[int], int]


def region_is_addressable(
    shadow: ShadowMemory,
    start: int,
    end: int,
    prefix_of: PrefixFn,
) -> Tuple[bool, Optional[int]]:
    """Whether every byte in ``[start, end)`` is addressable.

    Returns ``(ok, faulting_address)``; ``faulting_address`` is the first
    non-addressable byte when ``ok`` is False.

    ``prefix_of`` interprets one shadow code as the length of the
    addressable prefix of its segment (encoding-specific).
    """
    if end <= start:
        return True, None
    address = start
    while address < end:
        index = segment_index(address)
        code = shadow.load(index)
        prefix = prefix_of(code)
        offset = segment_offset(address)
        if offset >= prefix:
            return False, address
        segment_end = (index + 1) * SEGMENT_SIZE
        addressable_until = index * SEGMENT_SIZE + prefix
        if addressable_until < min(end, segment_end):
            return False, addressable_until
        address = segment_end
    return True, None


def asan_region_is_addressable(
    shadow: ShadowMemory, start: int, end: int
) -> Tuple[bool, Optional[int]]:
    """Oracle specialized to the ASan encoding."""
    return region_is_addressable(
        shadow, start, end, asan_encoding.addressable_prefix
    )


def giantsan_region_is_addressable(
    shadow: ShadowMemory, start: int, end: int
) -> Tuple[bool, Optional[int]]:
    """Oracle specialized to the GiantSan encoding."""
    return region_is_addressable(
        shadow, start, end, giantsan_encoding.addressable_prefix
    )


def first_poison_code(
    shadow: ShadowMemory, start: int, end: int, prefix_of: PrefixFn
) -> Optional[int]:
    """Shadow code of the segment containing the first violation, or None."""
    ok, fault = region_is_addressable(shadow, start, end, prefix_of)
    if ok:
        return None
    return shadow.load(segment_index(fault))


# ----------------------------------------------------------------------
# bulk scanning (segment-folding analogue for the simulator itself)
# ----------------------------------------------------------------------
# The per-segment walk above is the reference semantics.  The bulk scans
# below answer the same question over a whole shadow *slice*: every code
# maps to a one-byte full/partial flag and the first non-full segment is
# located by the shadow backend's ``find_not_full`` primitive (C-level
# ``translate``/``find`` on the bytearray plane, a comparison reduction
# on the numpy plane).  Only that single segment then needs the per-code
# arithmetic, so a region of N segments costs O(N) C/SIMD-level work —
# zero-copy, straight over the live shadow storage — instead of N
# Python-level iterations.  Property tests cross-validate both backends
# against :func:`region_is_addressable` on randomized shadow states.

#: 256-entry tables per prefix function, built once and memoized.
_TABLE_CACHE: dict = {}


def scan_tables(prefix_of: PrefixFn):
    """``(prefix_table, full_flags)`` for one encoding's prefix function.

    ``prefix_table[code]`` is the addressable prefix (0..8) of a segment
    holding ``code``; ``full_flags`` maps fully-addressable codes to
    ``0x00`` and everything else to ``0x01`` so ``translate`` + ``find``
    can locate the first non-full segment of a slice.
    """
    tables = _TABLE_CACHE.get(prefix_of)
    if tables is None:
        prefixes = bytes(
            min(prefix_of(code), SEGMENT_SIZE) for code in range(256)
        )
        full_flags = bytes(
            0 if prefixes[code] >= SEGMENT_SIZE else 1 for code in range(256)
        )
        tables = (prefixes, full_flags)
        _TABLE_CACHE[prefix_of] = tables
    return tables


def scan_codes(
    codes: bytes,
    first_index: int,
    start: int,
    end: int,
    prefix_of: PrefixFn,
) -> Tuple[bool, Optional[int], int]:
    """Bulk equivalent of :func:`region_is_addressable` over a slice.

    ``codes`` must cover the segments of ``[start, end)`` starting at
    segment ``first_index``.  Returns ``(ok, faulting_address,
    segments_visited)`` where ``segments_visited`` is exactly the number
    of segments the reference walk would have examined (every full
    segment up to and including the stopping one).
    """
    if end <= start:
        return True, None, 0
    prefixes, full_flags = scan_tables(prefix_of)
    count = segment_index(end - 1) - first_index + 1
    pos = codes.translate(full_flags).find(1, 0, count)
    if pos < 0:
        return True, None, count
    # Every segment before ``pos`` is fully addressable; replay the
    # reference walk's arithmetic on the first non-full segment.
    index = first_index + pos
    segment_base = index * SEGMENT_SIZE
    address = start if pos == 0 else segment_base
    prefix = prefixes[codes[pos]]
    if address - segment_base >= prefix:
        return False, address, pos + 1
    segment_end = segment_base + SEGMENT_SIZE
    addressable_until = segment_base + prefix
    if addressable_until < min(end, segment_end):
        return False, addressable_until, pos + 1
    # The partial prefix covers everything still needed, which is only
    # possible when this is the region's last segment: done.
    return True, None, pos + 1


def scan_region(
    shadow: ShadowMemory,
    start: int,
    end: int,
    prefix_of: PrefixFn,
) -> Tuple[bool, Optional[int], int]:
    """Bulk equivalent of :func:`region_is_addressable`, zero-copy.

    Same contract as :func:`scan_codes`, but the slice search runs
    through the shadow backend's ``find_not_full`` primitive directly on
    live shadow storage — no snapshot is taken.  ``segments_visited`` is
    exactly the number of segments the reference walk would have
    examined, on every backend.
    """
    if end <= start:
        return True, None, 0
    prefixes, full_flags = scan_tables(prefix_of)
    first = segment_index(start)
    count = segment_index(end - 1) - first + 1
    pos = shadow.find_not_full(first, count, full_flags)
    if pos < 0:
        return True, None, count
    index = first + pos
    segment_base = index * SEGMENT_SIZE
    address = start if pos == 0 else segment_base
    prefix = prefixes[shadow.load(index)]
    if address - segment_base >= prefix:
        return False, address, pos + 1
    segment_end = segment_base + SEGMENT_SIZE
    addressable_until = segment_base + prefix
    if addressable_until < min(end, segment_end):
        return False, addressable_until, pos + 1
    return True, None, pos + 1


def bulk_region_is_addressable(
    shadow: ShadowMemory, start: int, end: int, prefix_of: PrefixFn
) -> Tuple[bool, Optional[int]]:
    """Drop-in fast replacement for :func:`region_is_addressable`."""
    ok, fault, _ = scan_region(shadow, start, end, prefix_of)
    return ok, fault
