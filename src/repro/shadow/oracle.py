"""Byte-exact addressability oracle.

The oracle walks shadow codes one segment at a time and decides whether a
region is fully addressable.  It is deliberately slow and obviously
correct: property tests compare every sanitizer's O(1)/O(n) check result
against it, and detection experiments use it as ground truth.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from ..memory.layout import SEGMENT_SIZE, segment_index, segment_offset
from . import asan_encoding, giantsan_encoding
from .shadow_memory import ShadowMemory

#: An oracle prefix function: addressable bytes at the start of one
#: segment given its shadow code.
PrefixFn = Callable[[int], int]


def region_is_addressable(
    shadow: ShadowMemory,
    start: int,
    end: int,
    prefix_of: PrefixFn,
) -> Tuple[bool, Optional[int]]:
    """Whether every byte in ``[start, end)`` is addressable.

    Returns ``(ok, faulting_address)``; ``faulting_address`` is the first
    non-addressable byte when ``ok`` is False.

    ``prefix_of`` interprets one shadow code as the length of the
    addressable prefix of its segment (encoding-specific).
    """
    if end <= start:
        return True, None
    address = start
    while address < end:
        index = segment_index(address)
        code = shadow.load(index)
        prefix = prefix_of(code)
        offset = segment_offset(address)
        if offset >= prefix:
            return False, address
        segment_end = (index + 1) * SEGMENT_SIZE
        addressable_until = index * SEGMENT_SIZE + prefix
        if addressable_until < min(end, segment_end):
            return False, addressable_until
        address = segment_end
    return True, None


def asan_region_is_addressable(
    shadow: ShadowMemory, start: int, end: int
) -> Tuple[bool, Optional[int]]:
    """Oracle specialized to the ASan encoding."""
    return region_is_addressable(
        shadow, start, end, asan_encoding.addressable_prefix
    )


def giantsan_region_is_addressable(
    shadow: ShadowMemory, start: int, end: int
) -> Tuple[bool, Optional[int]]:
    """Oracle specialized to the GiantSan encoding."""
    return region_is_addressable(
        shadow, start, end, giantsan_encoding.addressable_prefix
    )


def first_poison_code(
    shadow: ShadowMemory, start: int, end: int, prefix_of: PrefixFn
) -> Optional[int]:
    """Shadow code of the segment containing the first violation, or None."""
    ok, fault = region_is_addressable(shadow, start, end, prefix_of)
    if ok:
        return None
    return shadow.load(segment_index(fault))
