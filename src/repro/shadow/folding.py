"""Binary segment folding: the paper's core encoding trick (§4.1).

A "good" segment holds 8 addressable bytes.  Folding summarizes runs of
good segments: an ``(i)``-folded segment guarantees that it and the next
``2^i - 1`` segments are all good, i.e. at least ``8 * 2^i`` consecutive
addressable bytes start at its base.

For an object whose allocated region contains ``g`` good segments, the
j-th good segment receives degree ``floor(log2(g - j))`` — the largest
power-of-two run that still fits in the remaining good segments.  That
reproduces the paper's Figure 5 pattern: counting from the object's end
there is one (0)-folded, two (1)-folded, four (2)-folded segments, and the
head of the object absorbs the highest degree.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

#: Maximum folding degree.  The paper reserves six shadow bits for the
#: degree (§1: "six shadow bits are sufficient"), so degrees are
#: 0..63 and a degree-i segment encodes as code ``64 - i`` in [1, 64].
#: Code 0 is reserved headroom of the monotone encoding, never emitted.
#: :func:`degree_for_remaining` clamps to this cap, which only objects
#: with >= 2^63 good segments (2^66 bytes) could exceed.
MAX_DEGREE = 63


def floor_log2(value: int) -> int:
    """``floor(log2(value))`` for positive integers."""
    if value <= 0:
        raise ValueError(f"floor_log2 needs a positive value: {value}")
    return value.bit_length() - 1


def degree_for_remaining(remaining: int) -> int:
    """Folding degree of a good segment with ``remaining`` good segments
    (including itself) until the object's addressable region ends."""
    return min(floor_log2(remaining), MAX_DEGREE)


@lru_cache(maxsize=4096)
def _fold_runs(good_segments: int) -> Tuple[tuple, ...]:
    """Memoized (degree, run_length) pairs, keyed on the segment count.

    Allocator hooks recompute the folding for the same handful of object
    sizes on every malloc/free; the run decomposition depends only on the
    segment count, so an LRU turns poisoning into a table lookup.
    """
    runs: List[tuple] = []
    remaining = good_segments
    while remaining > 0:
        degree = degree_for_remaining(remaining)
        runs.append((degree, remaining - (1 << degree) + 1))
        remaining = (1 << degree) - 1
    return tuple(runs)


def fold_degrees(good_segments: int) -> List[int]:
    """Degrees for each of ``good_segments`` consecutive good segments.

    Runs in O(number of distinct degrees) internally; the returned list
    is what gets encoded into shadow memory.
    """
    if good_segments < 0:
        raise ValueError("good_segments must be non-negative")
    degrees: List[int] = []
    for degree, run_length in _fold_runs(good_segments):
        # All segments whose remaining count is still >= 2^degree share it.
        degrees.extend([degree] * run_length)
    return degrees


def run_lengths(good_segments: int) -> List[tuple]:
    """(degree, run_length) pairs for ``good_segments`` good segments,
    ordered from the object base; a compact form of :func:`fold_degrees`."""
    if good_segments <= 0:
        return []
    return list(_fold_runs(good_segments))


def verify_degrees(degrees: List[int]) -> bool:
    """Check the folding invariant: degree d at position j requires at
    least 2^d good segments remaining (len - j >= 2^d).

    Used by property tests; returns False on any violation.
    """
    total = len(degrees)
    return all((1 << d) <= total - j for j, d in enumerate(degrees))
