"""Process-parallel experiment runner on the persistent execution fabric.

The (proxy × sanitizer) matrices behind Tables 2-5 and Figures 10/11 are
embarrassingly parallel: every cell is an isolated Session over a freshly
built program.  This module fans work units out across the long-lived
worker processes of :class:`repro.analysis.fabric.ExecutionFabric` and
merges results back in deterministic submission order, so parallel runs
are byte-identical to ``--jobs 1`` runs.

Work units are dispatched *by name/index* into the canonical registries
(:data:`repro.workloads.spec.SPEC_BY_NAME` and friends) rather than by
pickling built programs: a worker rebuilds its program locally, which
keeps payloads tiny and sidesteps pickling closures.  Results travel
back as plain dataclasses (RunResult, CheckStats, ErrorLog) through each
worker's shared-memory scratch segment.

Callers pass ``jobs``: ``1`` (the default everywhere) runs inline with
no multiprocessing machinery at all; anything larger uses the shared
fabric.  Custom program lists that are not in the canonical registries
fall back to inline execution since workers cannot rebuild them.

The fabric persists across ``parallel_map`` calls — consecutive tables
of one sweep invocation reuse warm workers (and their instrumentation
memo / compiled-closure caches).  It is retired only when the worker
count or the ``REPRO_*`` environment changes, and that retirement is a
graceful *drain* (workers finish in-flight units and exit cleanly); the
hard ``terminate`` path is reserved for process exit.
"""

from __future__ import annotations

import atexit
import os
import threading
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from .fabric import DrainReport, ExecutionFabric

T = TypeVar("T")
U = TypeVar("U")

#: The shared fabric and the (worker count, REPRO_* environment) key it
#: was created under.  One ``repro`` sweep invocation runs many tables
#: back to back; recreating workers per table paid fork + cold caches
#: every time, which is what made ``--jobs 2`` lose to ``--jobs 1`` in
#: earlier BENCH_interpreter.json snapshots.
_FABRIC: Optional[ExecutionFabric] = None
_FABRIC_KEY: Optional[Tuple] = None

#: Serializes every touch of the shared fabric.  A fabric ``map`` is a
#: stateful conversation (scheduler, in-flight table, event queue);
#: interleaving two maps from different threads — which the server's
#: concurrent sweep/fuzz jobs would otherwise do — corrupts both.
#: Re-entrant so a worker function that (inline) calls ``parallel_map``
#: again on the same thread cannot deadlock against itself.
_FABRIC_LOCK = threading.RLock()


def default_jobs() -> int:
    """A sensible worker count for ``--jobs`` defaults.

    Uses the scheduler's CPU *affinity* mask (which reflects cgroup /
    container quotas and ``taskset`` pinning) rather than the raw
    ``cpu_count()``, which oversubscribes containerized runs; falls back
    to ``cpu_count()`` where affinity is unsupported (macOS, Windows).
    """
    try:
        return max(len(os.sched_getaffinity(0)), 1)
    except (AttributeError, OSError):
        return max(os.cpu_count() or 1, 1)


def _pool_key(processes: int) -> Tuple:
    """Fabric identity: worker count plus the REPRO_* environment.

    Fork workers inherit the parent's environment at creation time, so a
    fabric created under one configuration (engine, fastpath, shadow, …)
    must not serve a sweep running under another.
    """
    toggles = tuple(
        sorted(
            (key, value)
            for key, value in os.environ.items()
            if key.startswith("REPRO_")
        )
    )
    return (processes, toggles)


def drain_pool(timeout: float = 30.0) -> Optional[DrainReport]:
    """Gracefully retire the shared fabric (key-change invalidation).

    Workers finish any in-flight unit, then exit cleanly — nothing is
    killed unless a worker wedges past ``timeout``.  Returns the
    fabric's :class:`~repro.analysis.fabric.DrainReport` (None when no
    fabric was live) so callers can see — and re-queue — anything a
    non-clean drain dropped.
    """
    global _FABRIC, _FABRIC_KEY
    with _FABRIC_LOCK:
        report = None
        if _FABRIC is not None:
            report = _FABRIC.drain(timeout=timeout)
        _FABRIC = None
        _FABRIC_KEY = None
        return report


def shutdown_pool() -> None:
    """Hard-stop the shared fabric (atexit hook and test isolation)."""
    global _FABRIC, _FABRIC_KEY
    with _FABRIC_LOCK:
        if _FABRIC is not None:
            _FABRIC.terminate()
        _FABRIC = None
        _FABRIC_KEY = None


atexit.register(shutdown_pool)


def _shared_fabric(processes: int) -> ExecutionFabric:
    """The persistent fabric for ``processes`` workers, recreated only
    when the worker count or the REPRO_* environment changed."""
    global _FABRIC, _FABRIC_KEY
    key = _pool_key(processes)
    if _FABRIC is not None and _FABRIC_KEY == key and not _FABRIC._closed:
        return _FABRIC
    drain_pool()
    _FABRIC = ExecutionFabric(processes)
    _FABRIC_KEY = key
    return _FABRIC


def fabric_stats() -> Optional[dict]:
    """Aggregate counters of the live fabric (None when inline-only).

    Includes per-worker unit counts and instrumentation-memo hit/miss
    counters, which is how tests assert warm-cache reuse across
    consecutive tables.
    """
    with _FABRIC_LOCK:
        if _FABRIC is None or _FABRIC._closed:
            return None
        stats = _FABRIC.stats()
        stats["worker_stats"] = _FABRIC.worker_stats()
        return stats


def parallel_map(
    worker: Callable[[T], U],
    payloads: Sequence[T],
    jobs: Optional[int],
    shard_keys: Optional[Sequence] = None,
) -> List[U]:
    """Ordered map over ``payloads`` with up to ``jobs`` fabric workers.

    ``jobs`` of None/0/1 (or a single payload) runs inline.  Workers
    must be module-level functions and payloads picklable.  Results come
    back in submission order regardless of completion order, which is
    what makes parallel table sweeps deterministic.

    ``shard_keys`` (one per payload, typically the program name) pin
    units to home workers so repeated sweeps reuse warm per-worker
    caches; idle workers steal from the largest remaining shard.  When
    omitted, units round-robin by index.
    """
    payloads = list(payloads)
    jobs = max(int(jobs or 1), 1)
    if jobs == 1 or len(payloads) <= 1:
        return [worker(payload) for payload in payloads]
    # One map at a time: the fabric's dispatch state is a single
    # conversation, and the server runs parallel_map from several job
    # threads concurrently.
    with _FABRIC_LOCK:
        return _shared_fabric(jobs).map(
            worker, payloads, shard_keys=shard_keys
        )


def chunk_ranges(total: int, jobs: int) -> List[tuple]:
    """Split ``range(total)`` into at most ``jobs`` contiguous spans."""
    jobs = max(min(jobs, total), 1)
    base, extra = divmod(total, jobs)
    spans = []
    start = 0
    for worker_index in range(jobs):
        size = base + (1 if worker_index < extra else 0)
        if size:
            spans.append((start, start + size))
            start += size
    return spans


#: Spans per worker when slicing for the fabric: finer-grained than one
#: span per worker so work stealing has units to move when one slice
#: straggles.  Results stay byte-identical for any granularity because
#: spans are merged back in ascending submission order.
STEAL_GRANULARITY = 4


def steal_spans(total: int, jobs: int) -> List[tuple]:
    """Contiguous spans sized for work stealing: ``jobs * 4`` slices.

    ``jobs <= 1`` degrades to a single span (the inline path).
    """
    jobs = max(int(jobs or 1), 1)
    if jobs == 1:
        return chunk_ranges(total, 1)
    return chunk_ranges(total, jobs * STEAL_GRANULARITY)


# ----------------------------------------------------------------------
# module-level workers (must be importable for the fabric)
# ----------------------------------------------------------------------
def overhead_worker(payload):
    """One Table 2 row: run one SPEC proxy under every tool."""
    name, tools, scale, cost_model = payload
    from ..workloads.spec import SPEC_BY_NAME
    from .overhead import measure_program

    return measure_program(
        SPEC_BY_NAME[name], tools, scale=scale, cost_model=cost_model
    )


def figure10_worker(payload):
    """One Figure 10 bar: GiantSan check breakdown for one proxy."""
    name, scale = payload
    from ..workloads.spec import SPEC_BY_NAME
    from .figures import measure_check_breakdown

    return measure_check_breakdown(SPEC_BY_NAME[name], scale)


def figure11_worker(payload):
    """One Figure 11 cell: one traversal pattern at one size, all tools."""
    pattern_index, size, cost_model = payload
    from ..runtime import Session
    from ..workloads.traversals import FIGURE11_PATTERNS
    from .figures import FIGURE11_TOOLS, TraversalPoint

    pattern = FIGURE11_PATTERNS[pattern_index]
    program = pattern.build(size)
    points = []
    for tool in FIGURE11_TOOLS:
        result = Session(tool, cost_model=cost_model).run(program)
        points.append(
            TraversalPoint(
                pattern=pattern.name,
                size=size,
                tool=tool,
                cycles=result.total_cycles(cost_model),
            )
        )
    return points


def profile_worker(payload):
    """One ``repro profile`` row: telemetry run of one SPEC proxy."""
    name, tool, scale = payload
    from ..workloads.spec import SPEC_BY_NAME
    from .profile import profile_program

    return profile_program(SPEC_BY_NAME[name], tool, scale)


def juliet_worker(payload):
    """One contiguous slice of the Juliet suite under every tool.

    The suite is generated once per worker process (persistent fabric
    workers keep it across slices and tables) instead of being rebuilt
    from scratch for every slice, which made each unit pay O(total
    suite) generation work for an O(slice) run.
    """
    lo, hi, tools = payload
    from ..runtime import Session
    from ..workloads.juliet import juliet_suite_cached

    cases = juliet_suite_cached()[lo:hi]
    outcomes = []
    for offset, case in enumerate(cases):
        row = {
            tool: bool(Session(tool).run(case.program).errors)
            for tool in tools
        }
        outcomes.append((lo + offset, row))
    return outcomes


def linux_flaw_worker(payload):
    """One Table 4 row: run one CVE scenario under every tool."""
    scenario_index, tools = payload
    from ..runtime import Session
    from ..workloads.linux_flaw import TABLE4_SCENARIOS

    scenario = TABLE4_SCENARIOS[scenario_index]
    row = {
        tool: bool(Session(tool).run(scenario.build()).errors)
        for tool in tools
    }
    return scenario.cve_id, row


def magma_worker(payload):
    """One Table 5 row: one Magma project under every configuration."""
    (project_index,) = payload
    from ..runtime import Session
    from ..workloads.magma import (
        TABLE5_CONFIGS,
        TABLE5_PROJECTS,
        generate_project_cases,
    )

    project = TABLE5_PROJECTS[project_index]
    cases = generate_project_cases(project)
    per_config = {}
    for label, tool, kwargs in TABLE5_CONFIGS:
        count = 0
        for case in cases:
            if Session(tool, **kwargs).run(case.build()).errors:
                count += 1
        per_config[label] = count
    return project.name, per_config, project.total
