"""Process-parallel experiment runner.

The (proxy × sanitizer) matrices behind Tables 2-5 and Figures 10/11 are
embarrassingly parallel: every cell is an isolated Session over a freshly
built program.  This module fans work units out across worker processes
and merges results back in deterministic submission order, so parallel
runs are byte-identical to ``--jobs 1`` runs.

Work units are dispatched *by name/index* into the canonical registries
(:data:`repro.workloads.spec.SPEC_BY_NAME` and friends) rather than by
pickling built programs: a worker rebuilds its program locally, which
keeps payloads tiny and sidesteps pickling closures.  Results travel
back as plain dataclasses (RunResult, CheckStats, ErrorLog), which
pickle cleanly.

Callers pass ``jobs``: ``1`` (the default everywhere) runs inline with
no multiprocessing machinery at all; anything larger uses a process
pool.  Custom program lists that are not in the canonical registries
fall back to inline execution since workers cannot rebuild them.
"""

from __future__ import annotations

import atexit
import math
import multiprocessing
import os
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")
U = TypeVar("U")

#: The shared worker pool and the (process count, REPRO_* environment)
#: key it was created under.  One ``repro`` sweep invocation runs many
#: tables back to back; recreating a pool per table paid fork+teardown
#: every time, which is what made ``--jobs 2`` lose to ``--jobs 1`` in
#: earlier BENCH_interpreter.json snapshots.
_POOL = None
_POOL_KEY: Optional[Tuple] = None


def default_jobs() -> int:
    """A sensible worker count for ``--jobs`` defaults: the CPU count."""
    return max(os.cpu_count() or 1, 1)


def _pool_key(processes: int) -> Tuple:
    """Pool identity: worker count plus the REPRO_* environment.

    Fork workers inherit the parent's environment at creation time, so a
    pool created under one configuration (engine, fastpath, …) must not
    serve a sweep running under another.
    """
    toggles = tuple(
        sorted(
            (key, value)
            for key, value in os.environ.items()
            if key.startswith("REPRO_")
        )
    )
    return (processes, toggles)


def shutdown_pool() -> None:
    """Tear down the shared pool (atexit hook and test isolation)."""
    global _POOL, _POOL_KEY
    if _POOL is not None:
        _POOL.terminate()
        _POOL.join()
    _POOL = None
    _POOL_KEY = None


atexit.register(shutdown_pool)


def _shared_pool(processes: int):
    """The reusable pool for ``processes`` workers, recreated only when
    the worker count or the REPRO_* environment changed."""
    global _POOL, _POOL_KEY
    key = _pool_key(processes)
    if _POOL is not None and _POOL_KEY == key:
        return _POOL
    shutdown_pool()
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # platforms without fork: workers re-import
        context = multiprocessing.get_context()
    _POOL = context.Pool(processes=processes)
    _POOL_KEY = key
    return _POOL


def parallel_map(
    worker: Callable[[T], U], payloads: Sequence[T], jobs: Optional[int]
) -> List[U]:
    """Ordered map over ``payloads`` with up to ``jobs`` processes.

    ``jobs`` of None/0/1 (or a single payload) runs inline.  Workers
    must be module-level functions and payloads picklable.  Results come
    back in submission order regardless of completion order, which is
    what makes parallel table sweeps deterministic.

    Payloads are batched ``ceil(len / jobs)`` per worker (instead of one
    task per IPC round-trip) and dispatched onto a pool shared across
    calls, so consecutive tables of one sweep invocation reuse warm
    workers.
    """
    payloads = list(payloads)
    jobs = max(int(jobs or 1), 1)
    if jobs == 1 or len(payloads) <= 1:
        return [worker(payload) for payload in payloads]
    processes = min(jobs, len(payloads))
    chunksize = math.ceil(len(payloads) / processes)
    return _shared_pool(processes).map(worker, payloads, chunksize=chunksize)


def chunk_ranges(total: int, jobs: int) -> List[tuple]:
    """Split ``range(total)`` into at most ``jobs`` contiguous spans."""
    jobs = max(min(jobs, total), 1)
    base, extra = divmod(total, jobs)
    spans = []
    start = 0
    for worker_index in range(jobs):
        size = base + (1 if worker_index < extra else 0)
        if size:
            spans.append((start, start + size))
            start += size
    return spans


# ----------------------------------------------------------------------
# module-level workers (must be importable for the process pool)
# ----------------------------------------------------------------------
def overhead_worker(payload):
    """One Table 2 row: run one SPEC proxy under every tool."""
    name, tools, scale, cost_model = payload
    from ..workloads.spec import SPEC_BY_NAME
    from .overhead import measure_program

    return measure_program(
        SPEC_BY_NAME[name], tools, scale=scale, cost_model=cost_model
    )


def figure10_worker(payload):
    """One Figure 10 bar: GiantSan check breakdown for one proxy."""
    name, scale = payload
    from ..workloads.spec import SPEC_BY_NAME
    from .figures import measure_check_breakdown

    return measure_check_breakdown(SPEC_BY_NAME[name], scale)


def figure11_worker(payload):
    """One Figure 11 cell: one traversal pattern at one size, all tools."""
    pattern_index, size, cost_model = payload
    from ..runtime import Session
    from ..workloads.traversals import FIGURE11_PATTERNS
    from .figures import FIGURE11_TOOLS, TraversalPoint

    pattern = FIGURE11_PATTERNS[pattern_index]
    program = pattern.build(size)
    points = []
    for tool in FIGURE11_TOOLS:
        result = Session(tool, cost_model=cost_model).run(program)
        points.append(
            TraversalPoint(
                pattern=pattern.name,
                size=size,
                tool=tool,
                cycles=result.total_cycles(cost_model),
            )
        )
    return points


def profile_worker(payload):
    """One ``repro profile`` row: telemetry run of one SPEC proxy."""
    name, tool, scale = payload
    from ..workloads.spec import SPEC_BY_NAME
    from .profile import profile_program

    return profile_program(SPEC_BY_NAME[name], tool, scale)


def juliet_worker(payload):
    """One contiguous slice of the Juliet suite under every tool."""
    lo, hi, tools = payload
    from ..runtime import Session
    from ..workloads.juliet import generate_juliet_suite

    cases = generate_juliet_suite()[lo:hi]
    outcomes = []
    for offset, case in enumerate(cases):
        row = {
            tool: bool(Session(tool).run(case.program).errors)
            for tool in tools
        }
        outcomes.append((lo + offset, row))
    return outcomes


def linux_flaw_worker(payload):
    """One Table 4 row: run one CVE scenario under every tool."""
    scenario_index, tools = payload
    from ..runtime import Session
    from ..workloads.linux_flaw import TABLE4_SCENARIOS

    scenario = TABLE4_SCENARIOS[scenario_index]
    row = {
        tool: bool(Session(tool).run(scenario.build()).errors)
        for tool in tools
    }
    return scenario.cve_id, row


def magma_worker(payload):
    """One Table 5 row: one Magma project under every configuration."""
    (project_index,) = payload
    from ..runtime import Session
    from ..workloads.magma import (
        TABLE5_CONFIGS,
        TABLE5_PROJECTS,
        generate_project_cases,
    )

    project = TABLE5_PROJECTS[project_index]
    cases = generate_project_cases(project)
    per_config = {}
    for label, tool, kwargs in TABLE5_CONFIGS:
        count = 0
        for case in cases:
            if Session(tool, **kwargs).run(case.build()).errors:
                count += 1
        per_config[label] = count
    return project.name, per_config, project.total
