"""Overhead aggregation: the Table 2 computation.

Runs the SPEC proxies under a set of tool configurations, derives
per-program overhead ratios against the Native run, and aggregates with
the geometric mean exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..runtime import DEFAULT_COST_MODEL, CostModel, RunResult, Session
from ..workloads.spec import SPEC_TABLE2_ROWS, SpecProgram

#: The tool columns of Table 2's performance study.
PERFORMANCE_TOOLS = ["GiantSan", "ASan", "ASan--", "LFP"]

#: The ablation columns.
ABLATION_TOOLS = ["GiantSan-CacheOnly", "GiantSan-EliminationOnly"]


@dataclass
class ProgramOverheads:
    """One Table 2 row: native cycles and per-tool overhead ratios."""

    program: str
    native_cycles: float
    ratios: Dict[str, float] = field(default_factory=dict)
    results: Dict[str, RunResult] = field(default_factory=dict)

    def ratio_percent(self, tool: str) -> float:
        return self.ratios[tool] * 100.0


@dataclass
class OverheadStudy:
    """All rows plus the geometric means."""

    rows: List[ProgramOverheads]
    tools: List[str]

    def geometric_means(self) -> Dict[str, float]:
        from ..runtime import geometric_mean

        return {
            tool: geometric_mean([row.ratios[tool] for row in self.rows])
            for tool in self.tools
        }


def measure_program(
    spec: SpecProgram,
    tools: List[str],
    scale: Optional[int] = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> ProgramOverheads:
    """Run one SPEC proxy under Native plus ``tools``; returns ratios.

    The Native run supplies the baseline cycle count; every tool's ratio
    is its *total* simulated cycles over the Native total, mirroring the
    paper's wall-clock ratio column.
    """
    program = spec.build()
    args = [scale if scale is not None else spec.default_scale]
    native = Session("Native", cost_model=cost_model).run(program, args)
    baseline = native.total_cycles(cost_model)
    row = ProgramOverheads(program=spec.name, native_cycles=baseline)
    for tool in tools:
        result = Session(tool, cost_model=cost_model).run(program, args)
        row.ratios[tool] = result.total_cycles(cost_model) / baseline
        row.results[tool] = result
    return row


def run_overhead_study(
    tools: Optional[List[str]] = None,
    programs: Optional[List[SpecProgram]] = None,
    scale: Optional[int] = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    jobs: int = 1,
) -> OverheadStudy:
    """The full Table 2 sweep (24 programs by default).

    ``jobs > 1`` fans the per-program rows out across worker processes
    (row order and values are identical to the sequential run); custom
    ``programs`` outside the canonical registry always run inline.
    """
    from ..workloads.spec import SPEC_BY_NAME
    from .parallel import overhead_worker, parallel_map

    tools = tools or PERFORMANCE_TOOLS
    programs = programs or SPEC_TABLE2_ROWS
    if jobs > 1 and all(
        SPEC_BY_NAME.get(spec.name) is spec for spec in programs
    ):
        rows = parallel_map(
            overhead_worker,
            [(spec.name, tools, scale, cost_model) for spec in programs],
            jobs,
            # shard by program: consecutive tables touching the same
            # proxy land on the same warm fabric worker
            shard_keys=[spec.name for spec in programs],
        )
    else:
        rows = [
            measure_program(spec, tools, scale=scale, cost_model=cost_model)
            for spec in programs
        ]
    return OverheadStudy(rows=rows, tools=tools)
