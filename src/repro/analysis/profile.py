"""Telemetry profiling study: the backend of ``repro profile``.

Runs workloads with the telemetry registry enabled and aggregates the
counter snapshots into the table the paper's performance narrative
needs: the fast-check / slow-check split of ``CI(L, R)`` (§4.2), the
quasi-bound convergence steps against the ``ceil(log2(n/8))`` claim
(§4.3), shadow traffic, quarantine occupancy, and redzone volume.

The study also doubles as the CI wiring-regression detector:
:func:`wiring_problems` flags a run whose check counters are all zero —
the signature of a refactor that silently disconnected the counters the
overhead model feeds on.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import List, Optional

from ..sanitizers import SANITIZER_FACTORIES
from ..telemetry import TelemetrySnapshot
from ..workloads.spec import SPEC_TABLE2_ROWS, SpecProgram

#: Default tool for the profile sweep (the paper's subject).
DEFAULT_PROFILE_TOOL = "GiantSan"


def quasi_bound_limit(object_bytes: int) -> int:
    """The paper's §4.3 bound: at most ``ceil(log2(n/8))`` quasi-bound
    updates for a forward walk over an ``n``-byte object."""
    if object_bytes <= 8:
        return 0
    return math.ceil(math.log2(object_bytes / 8))


@dataclass
class ProgramProfile:
    """One profiled run: the snapshot plus its wall-clock cost."""

    program: str
    tool: str
    snapshot: TelemetrySnapshot
    seconds: float


@dataclass
class ProfileStudy:
    """All profiled rows for one tool."""

    tool: str
    rows: List[ProgramProfile]

    def totals(self) -> dict:
        """Counter sums across every row (split preserved)."""
        merged: dict = {}
        for row in self.rows:
            for name, value in row.snapshot.counters.items():
                merged[name] = merged.get(name, 0) + value
        return merged


def profile_program(
    spec: SpecProgram, tool: str = DEFAULT_PROFILE_TOOL,
    scale: Optional[int] = None,
) -> ProgramProfile:
    """Run one Table 2 proxy with telemetry on and snapshot it."""
    from ..runtime import Session

    program = spec.build()
    args = [scale if scale is not None else spec.default_scale]
    session = Session(tool, telemetry=True)
    started = time.perf_counter()
    result = session.run(program, args)
    elapsed = time.perf_counter() - started
    return ProgramProfile(
        program=spec.name,
        tool=tool,
        snapshot=result.telemetry,
        seconds=round(elapsed, 4),
    )


def run_profile_study(
    tool: str = DEFAULT_PROFILE_TOOL,
    programs: Optional[List[SpecProgram]] = None,
    scale: Optional[int] = None,
    jobs: int = 1,
) -> ProfileStudy:
    """Profile the Table 2 kernel sweep (or a subset) under one tool."""
    from ..workloads.spec import SPEC_BY_NAME
    from .parallel import parallel_map, profile_worker

    if tool not in SANITIZER_FACTORIES:
        known = ", ".join(sorted(SANITIZER_FACTORIES))
        raise ValueError(f"unknown tool {tool!r}; known tools: {known}")
    programs = programs or SPEC_TABLE2_ROWS
    if jobs > 1 and all(
        SPEC_BY_NAME.get(spec.name) is spec for spec in programs
    ):
        rows = parallel_map(
            profile_worker,
            [(spec.name, tool, scale) for spec in programs],
            jobs,
            shard_keys=[spec.name for spec in programs],
        )
    else:
        rows = [profile_program(spec, tool, scale) for spec in programs]
    return ProfileStudy(tool=tool, rows=rows)


def wiring_problems(study: ProfileStudy) -> List[str]:
    """Counter-wiring regressions: rows whose check telemetry is dead.

    Every tool that instruments checks must report a non-zero
    ``checks_executed``; tools with the O(1) region check (GiantSan and
    its ablations) must additionally show a live fast/slow split —
    all-zero split counters mean ``CI(L, R)`` stopped feeding the
    registry, which is exactly the regression CI should catch.
    """
    problems: List[str] = []
    sanitizer = SANITIZER_FACTORIES[study.tool]()
    instruments_checks = sanitizer.name != "Native"
    wants_split = sanitizer.capabilities.constant_time_region
    for row in study.rows:
        counters = row.snapshot.counters
        if not instruments_checks:
            continue
        if counters.get("checks_executed", 0) == 0:
            problems.append(
                f"{row.program}: checks_executed is 0 under {row.tool}"
            )
            continue
        if wants_split:
            fast, slow = row.snapshot.fast_slow_split
            if fast == 0 and slow == 0:
                problems.append(
                    f"{row.program}: fast/slow split counters are all "
                    f"zero under {row.tool}"
                )
    return problems


def render_profile(study: ProfileStudy) -> str:
    """The ``repro profile`` table layout."""
    lines = [
        f"Telemetry profile under {study.tool} "
        "(fast/slow = CI(L,R) split; conv = quasi-bound update steps)",
        f"{'Program':20s} {'checks':>9s} {'fast':>9s} {'slow':>8s} "
        f"{'fast%':>6s} {'qb-hit':>9s} {'qb-upd':>7s} {'conv':>5s} "
        f"{'shadow-ld':>10s} {'quar-peak':>10s} {'redzone':>9s} "
        f"{'sblk':>5s} {'sec':>7s}",
    ]
    for row in study.rows:
        snap = row.snapshot
        counters = snap.counters
        fast, slow = snap.fast_slow_split
        lines.append(
            f"{row.program:20s} {counters.get('checks_executed', 0):>9d} "
            f"{fast:>9d} {slow:>8d} {snap.fast_fraction * 100:>5.1f}% "
            f"{counters.get('quasi_bound_hits', 0):>9d} "
            f"{counters.get('quasi_bound_updates', 0):>7d} "
            f"{snap.convergence_max_steps:>5d} "
            f"{counters.get('shadow_bytes_loaded', 0):>10d} "
            f"{snap.quarantine_peak_bytes:>10d} "
            f"{counters.get('redzone_bytes_poisoned', 0):>9d} "
            f"{counters.get('superblock_loops', 0):>5d} "
            f"{row.seconds:>7.3f}"
        )
    totals = study.totals()
    fast = totals.get("fast_check_hits", 0)
    slow = totals.get("slow_path_entries", 0)
    split = fast + slow
    lines.append(
        f"{'Total':20s} {totals.get('checks_executed', 0):>9d} "
        f"{fast:>9d} {slow:>8d} "
        f"{(fast / split * 100 if split else 0.0):>5.1f}% "
        f"{totals.get('quasi_bound_hits', 0):>9d} "
        f"{totals.get('quasi_bound_updates', 0):>7d} "
        f"{max((r.snapshot.convergence_max_steps for r in study.rows), default=0):>5d} "
        f"{totals.get('shadow_bytes_loaded', 0):>10d} "
        f"{max((r.snapshot.quarantine_peak_bytes for r in study.rows), default=0):>10d} "
        f"{totals.get('redzone_bytes_poisoned', 0):>9d} "
        f"{totals.get('superblock_loops', 0):>5d} "
        f"{sum(r.seconds for r in study.rows):>7.3f}"
    )
    phases = _merged_phases(study)
    if phases:
        lines.append("")
        lines.append("phase profile (sampled wall time across the sweep):")
        lines.append(
            f"  {'phase':<18s} {'events':>10s} {'samples':>9s} "
            f"{'est. seconds':>13s}"
        )
        for name, stat in sorted(
            phases.items(), key=lambda kv: -kv[1]["estimated_seconds"]
        ):
            lines.append(
                f"  {name:<18s} {stat['events']:>10d} "
                f"{stat['samples']:>9d} {stat['estimated_seconds']:>13.4f}"
            )
    declines = _merged_declines(study)
    if declines:
        lines.append("")
        lines.append("superblock declines by reason:")
        for reason, count in sorted(declines.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {reason:<28s} {count:>10d}")
    return "\n".join(lines)


def _merged_phases(study: ProfileStudy) -> dict:
    merged: dict = {}
    for row in study.rows:
        for name, stat in row.snapshot.phases.items():
            into = merged.setdefault(
                name,
                {"events": 0, "samples": 0, "estimated_seconds": 0.0},
            )
            into["events"] += int(stat["events"])
            into["samples"] += int(stat["samples"])
            into["estimated_seconds"] += stat["estimated_seconds"]
    return merged


def _merged_declines(study: ProfileStudy) -> dict:
    merged: dict = {}
    for row in study.rows:
        for reason, count in row.snapshot.superblock_declines.items():
            merged[reason] = merged.get(reason, 0) + count
    return merged
