"""Text renderers that print each experiment in the paper's layout."""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir import CheckAccess, CheckCached, CheckRegion, walk
from ..passes import instrument
from ..runtime import Session
from ..sanitizers import SANITIZER_FACTORIES
from ..workloads.juliet import TABLE3_CWES
from ..workloads.magma import TABLE5_CONFIGS, TABLE5_PROJECTS
from ..workloads.patterns import TABLE1_PATTERNS
from .detection import (
    CveResults,
    JulietResults,
    MagmaResults,
)
from .figures import CheckBreakdown, FIG10_CATEGORIES, TraversalStudy
from .overhead import OverheadStudy


def _static_checks(program) -> int:
    return sum(
        1
        for f in program.functions.values()
        for i in walk(f.body)
        if isinstance(i, (CheckAccess, CheckRegion, CheckCached))
    )


def render_table1(n: int = 64) -> str:
    """Table 1: #checks under operation-level vs instruction-level
    protection, measured by actually instrumenting and running each
    pattern under GiantSan and ASan."""
    lines = [
        "Table 1: operation-level vs instruction-level protection",
        f"{'Analysis Method':24s} {'op-level static':>16s} "
        f"{'op-level dynamic':>17s} {'instr-level dynamic':>20s} "
        f"{'fast':>7s} {'slow':>7s}",
    ]
    for pattern in TABLE1_PATTERNS:
        program = pattern.build()
        giant = Session("GiantSan")
        iprog = instrument(program, tool=giant.sanitizer)
        static_checks = _static_checks(iprog.program)
        giant_run = Session("GiantSan").run(program)
        asan_run = Session("ASan").run(program)
        giant_checks = giant_run.stats.checks_executed
        asan_checks = (
            asan_run.stats.checks_executed + asan_run.stats.segments_scanned
        )
        lines.append(
            f"{pattern.analysis:24s} {static_checks:>16d} "
            f"{giant_checks:>17d} {asan_checks:>20d} "
            f"{giant_run.stats.fast_checks:>7d} "
            f"{giant_run.stats.slow_checks:>7d}"
        )
    lines.append(
        "(fast/slow: GiantSan CI(L,R) split — slow > 0 only when the "
        "folded segment cannot vouch for the whole region)"
    )
    return "\n".join(lines)


def render_table2(
    study: OverheadStudy, ablation: Optional[OverheadStudy] = None
) -> str:
    """Table 2: per-program overhead percentages plus geometric means."""
    tools = list(study.tools)
    header = f"{'Programs':20s} " + " ".join(f"{t:>26s}" for t in tools)
    if ablation:
        header += " | " + " ".join(f"{t:>26s}" for t in ablation.tools)
    lines = ["Table 2: runtime overhead (percent of native)", header]
    ablation_by_name = (
        {row.program: row for row in ablation.rows} if ablation else {}
    )
    for row in study.rows:
        cells = " ".join(
            f"{row.ratio_percent(tool):>25.2f}%" for tool in tools
        )
        line = f"{row.program:20s} {cells}"
        extra = ablation_by_name.get(row.program)
        if extra:
            line += " | " + " ".join(
                f"{extra.ratio_percent(tool):>25.2f}%"
                for tool in ablation.tools
            )
        lines.append(line)
    means = study.geometric_means()
    cells = " ".join(f"{means[tool] * 100:>25.2f}%" for tool in tools)
    line = f"{'Geometric Means.':20s} {cells}"
    if ablation:
        ab_means = ablation.geometric_means()
        line += " | " + " ".join(
            f"{ab_means[tool] * 100:>25.2f}%" for tool in ablation.tools
        )
    lines.append(line)
    return "\n".join(lines)


def render_table3(results: JulietResults) -> str:
    """Table 3: Juliet detection counts per CWE."""
    tools = list(results.detected)
    lines = [
        "Table 3: detection capability on the generated Juliet-style suite",
        f"{'CWE ID & Type':46s} "
        + " ".join(f"{t:>10s}" for t in tools)
        + f" {'Total':>7s}",
    ]
    for cwe, label in TABLE3_CWES:
        by_tool, total = results.row(cwe)
        lines.append(
            f"{cwe + ': ' + label:46s} "
            + " ".join(f"{by_tool[t]:>10d}" for t in tools)
            + f" {total:>7d}"
        )
    total_by_tool = {
        t: sum(results.detected[t].values()) for t in tools
    }
    grand_total = sum(results.totals.values())
    lines.append(
        f"{'Total':46s} "
        + " ".join(f"{total_by_tool[t]:>10d}" for t in tools)
        + f" {grand_total:>7d}"
    )
    fps = ", ".join(f"{t}={n}" for t, n in results.false_positives.items())
    lines.append(f"(false positives on non-buggy twins: {fps})")
    return "\n".join(lines)


def render_table4(results: CveResults) -> str:
    """Table 4: per-CVE detection matrix."""
    tools = list(next(iter(results.outcomes.values())))
    lines = [
        "Table 4: detection capability for Linux Flaw Project CVEs",
        f"{'Program':15s} {'CVE ID':18s} "
        + " ".join(f"{t:>10s}" for t in tools),
    ]
    for scenario in results.scenarios:
        row = results.outcomes[scenario.cve_id]
        marks = " ".join(
            f"{'yes' if row[t] else '-':>10s}" for t in tools
        )
        lines.append(f"{scenario.program_name:15s} {scenario.cve_id:18s} {marks}")
    return "\n".join(lines)


def render_table5(results: MagmaResults) -> str:
    """Table 5: Magma detections per redzone configuration."""
    labels = results.config_labels()
    lines = [
        "Table 5: detection in Magma-style corpora vs redzone size",
        f"{'Project':12s} "
        + " ".join(f"{label:>17s}" for label in labels)
        + f" {'Total':>7s}",
    ]
    for project in TABLE5_PROJECTS:
        if project.name not in results.detected:
            continue
        per_config = results.detected[project.name]
        lines.append(
            f"{project.name:12s} "
            + " ".join(f"{per_config[label]:>17d}" for label in labels)
            + f" {results.totals[project.name]:>7d}"
        )
    return "\n".join(lines)


def render_figure10(breakdowns: List[CheckBreakdown]) -> str:
    """Figure 10 as a text table of category fractions per program."""
    lines = [
        "Figure 10: proportion of memory accesses per protection category",
        f"{'Program':20s} "
        + " ".join(f"{c:>12s}" for c in FIG10_CATEGORIES)
        + f" {'optimized':>10s} {'elided':>8s}"
        + f" {'fast':>9s} {'slow':>7s} {'qb-hit':>8s}",
    ]
    for item in breakdowns:
        lines.append(
            f"{item.program:20s} "
            + " ".join(
                f"{item.fraction(c) * 100:>11.1f}%" for c in FIG10_CATEGORIES
            )
            + f" {item.optimized_fraction * 100:>9.1f}%"
            + f" {item.elided_fraction * 100:>7.1f}%"
            + f" {item.counts.get('fast_checks', 0):>9d}"
            + f" {item.counts.get('slow_checks', 0):>7d}"
            + f" {item.counts.get('cached_hits', 0):>8d}"
        )
    if breakdowns:
        mean_opt = sum(b.optimized_fraction for b in breakdowns) / len(
            breakdowns
        )
        mean_fast = sum(
            b.fast_only_share_of_unoptimized for b in breakdowns
        ) / len(breakdowns)
        lines.append(
            f"(mean optimized: {mean_opt * 100:.2f}%; fast-only share of "
            f"unoptimized: {mean_fast * 100:.2f}%;"
            " paper: 52.56% and 49.22%)"
        )
    return "\n".join(lines)


def render_figure11(study: TraversalStudy) -> str:
    """Figure 11 as a text table of cycles per tool and size."""
    lines = ["Figure 11: traversal cost (simulated cycles)"]
    patterns = sorted({p.pattern for p in study.points})
    tools = ["Native", "GiantSan", "ASan"]
    for pattern in patterns:
        lines.append(f"-- {pattern} traversal --")
        lines.append(
            f"{'size':>8s} " + " ".join(f"{t:>12s}" for t in tools)
        )
        sizes = sorted({p.size for p in study.points if p.pattern == pattern})
        for size in sizes:
            row = [f"{size:>8d}"]
            for tool in tools:
                match = [
                    p
                    for p in study.points
                    if (p.pattern, p.tool, p.size) == (pattern, tool, size)
                ]
                row.append(f"{match[0].cycles:>12.0f}" if match else " " * 12)
            lines.append(" ".join(row))
        lines.append(
            f"   ASan/GiantSan cycle ratio: "
            f"{study.speedup_vs_asan(pattern):.2f}x"
        )
    return "\n".join(lines)
