"""Persistent sharded execution fabric.

The per-sweep ``multiprocessing.Pool`` paid process spawn plus cold
instrumentation/compilation caches for every table, which is why
``--jobs 2`` trailed the single-process compiled engine on small boxes
(see BENCH_interpreter.json history).  This module replaces it with a
fabric of *long-lived* worker processes that a whole ``repro``
invocation shares:

* **Persistent workers.**  Workers survive across ``map`` calls, so the
  instrumentation memo cache (:mod:`repro.passes.instrument`) and the
  compiled closures memoized on the cached programs stay warm from one
  table to the next.  Only a worker-count or ``REPRO_*`` environment
  change retires a fabric — and that retirement *drains* (finish
  in-flight units, then exit) rather than terminating mid-unit.

* **Sharded dispatch with work stealing.**  Every work unit carries a
  shard key (typically the program name); a deterministic CRC of the key
  pins each shard to a home worker so repeated sweeps over the same
  programs land on the same warm caches.  An idle worker whose own
  shards are empty *steals* from the shard with the most pending units,
  so a straggler slice (magma/juliet) never serializes the sweep.
  Results are reassembled in submission order, which keeps parallel runs
  byte-identical to ``--jobs 1`` no matter who ran what.

* **Shared-memory result transport.**  Each worker owns a
  :class:`multiprocessing.shared_memory.SharedMemory` scratch segment,
  created before the fork so children inherit the mapping directly
  (no name re-attach, no resource-tracker churn).  Workers serialize
  results into their segment and post only ``(seq, length)`` over the
  event queue; the parent deserializes straight out of the shared
  buffer.  Oversized results fall back to inline queue transport.
  Since the scheduler keeps at most one unit in flight per worker and
  assigns the next unit only after consuming the previous result, the
  segment needs no further synchronization.

Work units are dispatched *by reference* (``module:qualname`` of a
module-level worker function) plus a small picklable payload, exactly
like the old pool — workers rebuild programs locally from the canonical
registries, so nothing heavyweight ever crosses the pipe.
"""

from __future__ import annotations

import importlib
import os
import pickle
import queue as queue_module
import signal
import traceback
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

#: Default size of each worker's shared-memory scratch segment.  Table
#: rows (RunResult bundles) pickle to a few hundred KiB at most; results
#: that outgrow the segment transparently fall back to queue transport.
DEFAULT_SCRATCH_BYTES = 1 << 20


def _scratch_bytes() -> int:
    try:
        return max(int(os.environ.get("REPRO_FABRIC_SHM_BYTES", "")), 4096)
    except ValueError:
        return DEFAULT_SCRATCH_BYTES


def worker_ref(func: Callable) -> str:
    """The ``module:qualname`` reference a work unit dispatches by."""
    return f"{func.__module__}:{func.__qualname__}"


def _resolve_worker(ref: str, _cache: Dict[str, Callable] = {}) -> Callable:
    """Import-resolve a worker reference (memoized per process)."""
    func = _cache.get(ref)
    if func is None:
        module_name, _, qualname = ref.partition(":")
        func = importlib.import_module(module_name)
        for part in qualname.split("."):
            func = getattr(func, part)
        _cache[ref] = func
    return func


def shard_slot(key, workers: int) -> int:
    """Deterministic home worker for a shard key.

    ``zlib.crc32`` over the key's ``repr`` — stable across processes and
    runs (unlike ``hash()`` under hash randomization), so consecutive
    sweeps pin the same programs to the same warm workers.
    """
    return zlib.crc32(repr(key).encode("utf-8")) % max(workers, 1)


class FabricError(RuntimeError):
    """A work unit raised inside a fabric worker."""


@dataclass
class DrainReport:
    """What a graceful :meth:`ExecutionFabric.drain` actually observed.

    A clean drain between maps loses nothing.  But a drain that hits a
    wedged worker used to terminate it and *silently discard* whatever
    unit that worker was executing — the caller had no way to know its
    sweep was missing results.  The report makes every loss explicit:

    * ``stuck_workers`` — workers that ignored ``stop`` past the
      timeout and had to be terminated;
    * ``lost_units`` — in-flight units those workers took down with
      them (``{worker, seq, ref}``), so a caller can re-queue them;
    * ``unclaimed_results`` — finished results still sitting in the
      event queue that no ``map`` call will ever collect (an aborted
      map's leftovers);
    * ``pending_units`` — scheduler units that were never dispatched.
    """

    stuck_workers: List[str] = field(default_factory=list)
    lost_units: List[dict] = field(default_factory=list)
    unclaimed_results: int = 0
    pending_units: int = 0

    @property
    def clean(self) -> bool:
        return not (
            self.stuck_workers
            or self.lost_units
            or self.unclaimed_results
            or self.pending_units
        )

    def as_dict(self) -> dict:
        return {
            "clean": self.clean,
            "stuck_workers": list(self.stuck_workers),
            "lost_units": [dict(unit) for unit in self.lost_units],
            "unclaimed_results": self.unclaimed_results,
            "pending_units": self.pending_units,
        }


class _Scheduler:
    """Pending units grouped by shard, with affinity-first dispatch.

    ``take(worker_id)`` prefers a shard homed on that worker; when the
    worker's own shards are dry it steals from the shard with the most
    pending units, which is exactly the straggler that would otherwise
    serialize the tail of the sweep.
    """

    def __init__(self, workers: int):
        self.workers = workers
        self._shards: Dict[object, List[tuple]] = {}
        self.steals = 0
        self.dispatched = 0

    def submit(self, units: Sequence[tuple], shard_keys: Sequence) -> None:
        for unit, key in zip(units, shard_keys):
            self._shards.setdefault(key, []).append(unit)

    @property
    def pending(self) -> int:
        return sum(len(units) for units in self._shards.values())

    def take(self, worker_id: int) -> Optional[tuple]:
        """The next unit for ``worker_id``, or None when none remain."""
        home = victim = None
        for key, units in self._shards.items():
            if not units:
                continue
            if shard_slot(key, self.workers) == worker_id:
                home = key
                break
            if victim is None or len(units) > len(self._shards[victim]):
                victim = key
        key = home if home is not None else victim
        if key is None:
            return None
        if home is None:
            self.steals += 1
        self.dispatched += 1
        unit = self._shards[key].pop(0)
        if not self._shards[key]:
            del self._shards[key]
        return unit


def _worker_main(worker_id: int, inbox, events, scratch) -> None:
    """The long-lived worker loop: run units until told to stop."""
    # A terminal Ctrl-C delivers SIGINT to the whole foreground process
    # group, which used to kill workers mid-unit *before* the parent's
    # cleanup ran — leaking /dev/shm scratch segments whose unlink raced
    # the dying children.  Workers ignore SIGINT; the parent owns
    # interrupt cleanup and retires them via ``stop`` or terminate().
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    units_executed = 0
    while True:
        message = inbox.get()
        kind = message[0]
        if kind == "stop":
            break
        if kind == "stat":
            from ..passes.instrument import instrumentation_cache_stats

            events.put(
                (
                    "stat",
                    worker_id,
                    {
                        "worker": worker_id,
                        "pid": os.getpid(),
                        "units_executed": units_executed,
                        "instrumentation_cache": instrumentation_cache_stats(),
                    },
                )
            )
            continue
        _, seq, ref, payload = message
        try:
            result = _resolve_worker(ref)(payload)
        except Exception:  # noqa: BLE001 - ship the traceback to the parent
            events.put(("error", worker_id, seq, traceback.format_exc()))
            continue
        finally:
            units_executed += 1
        data = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        if scratch is not None and len(data) <= scratch.size:
            scratch.buf[: len(data)] = data
            events.put(("result", worker_id, seq, len(data)))
        else:
            events.put(("result-inline", worker_id, seq, data))


class ExecutionFabric:
    """A persistent set of worker processes plus their dispatch state."""

    def __init__(self, workers: int):
        import multiprocessing

        self.workers = workers
        try:
            self._context = multiprocessing.get_context("fork")
            forked = True
        except ValueError:  # platforms without fork: workers re-import
            self._context = multiprocessing.get_context()
            forked = False
        self._events = self._context.Queue()
        self._inboxes = [self._context.SimpleQueue() for _ in range(workers)]
        # Shared-memory scratch only with fork: children must inherit
        # the mapping (attaching by name from a spawned child would
        # re-register the segment with the resource tracker).
        self._scratch = []
        if forked:
            try:
                from multiprocessing import shared_memory

                for _ in range(workers):
                    self._scratch.append(
                        shared_memory.SharedMemory(
                            create=True, size=_scratch_bytes()
                        )
                    )
            except Exception:  # no /dev/shm etc.: inline transport
                self._release_scratch()
        scratch = self._scratch or [None] * workers
        self._processes = [
            self._context.Process(
                target=_worker_main,
                args=(wid, self._inboxes[wid], self._events, scratch[wid]),
                daemon=True,
                name=f"repro-fabric-{wid}",
            )
            for wid in range(workers)
        ]
        for process in self._processes:
            process.start()
        self._idle = set(range(workers))
        self._scheduler = _Scheduler(workers)
        #: worker id -> the (seq, ref, payload) unit it is executing;
        #: drain() turns leftovers into the DrainReport's lost_units.
        self._inflight: Dict[int, tuple] = {}
        self._closed = False
        self.maps_completed = 0

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def map(
        self,
        worker: Callable,
        payloads: Sequence,
        shard_keys: Optional[Sequence] = None,
    ) -> List:
        """Ordered map over ``payloads`` across the fabric's workers."""
        if self._closed:
            raise RuntimeError("fabric has been shut down")
        payloads = list(payloads)
        if shard_keys is None:
            shard_keys = list(range(len(payloads)))
        if len(shard_keys) != len(payloads):
            raise ValueError("shard_keys must align with payloads")
        ref = worker_ref(worker)
        units = [
            (seq, ref, payload) for seq, payload in enumerate(payloads)
        ]
        self._scheduler.submit(units, shard_keys)
        results: Dict[int, object] = {}
        errors: List[str] = []
        for worker_id in sorted(self._idle):
            self._assign(worker_id)
        while len(results) + len(errors) < len(payloads):
            message = self._next_event()
            kind, worker_id = message[0], message[1]
            if kind == "result":
                seq, length = message[2], message[3]
                results[seq] = pickle.loads(
                    bytes(self._scratch[worker_id].buf[:length])
                )
            elif kind == "result-inline":
                seq, data = message[2], message[3]
                results[seq] = pickle.loads(data)
            elif kind == "error":
                errors.append(message[3])
            else:  # pragma: no cover - stat replies never interleave
                raise RuntimeError(f"unexpected fabric event {kind!r}")
            self._inflight.pop(worker_id, None)
            self._assign(worker_id)
        self.maps_completed += 1
        if errors:
            raise FabricError(
                f"{len(errors)} work unit(s) failed; first failure:\n"
                + errors[0]
            )
        return [results[seq] for seq in range(len(payloads))]

    def _assign(self, worker_id: int) -> None:
        unit = self._scheduler.take(worker_id)
        if unit is None:
            self._idle.add(worker_id)
            return
        self._idle.discard(worker_id)
        self._inflight[worker_id] = unit
        self._inboxes[worker_id].put(("run",) + unit)

    def _next_event(self, timeout: float = 1.0):
        """Next worker event, watching for silently-dead workers."""
        while True:
            try:
                return self._events.get(timeout=timeout)
            except queue_module.Empty:
                dead = [
                    process.name
                    for process in self._processes
                    if not process.is_alive()
                ]
                if dead:
                    self.terminate()
                    raise FabricError(
                        f"fabric worker(s) died mid-unit: {', '.join(dead)}"
                    )

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def worker_stats(self) -> List[dict]:
        """Per-worker counters (pid, units run, instrumentation cache).

        Only valid between ``map`` calls — workers must be idle so stat
        replies cannot interleave with results.
        """
        if self._closed:
            return []
        for inbox in self._inboxes:
            inbox.put(("stat",))
        stats = []
        while len(stats) < self.workers:
            message = self._next_event()
            if message[0] != "stat":  # pragma: no cover
                raise RuntimeError("stat reply interleaved with results")
            stats.append(message[2])
        return sorted(stats, key=lambda item: item["worker"])

    def stats(self) -> dict:
        """Aggregate dispatch counters for tests and telemetry."""
        return {
            "workers": self.workers,
            "maps_completed": self.maps_completed,
            "units_dispatched": self._scheduler.dispatched,
            "units_stolen": self._scheduler.steals,
            "units_inflight": len(self._inflight),
            "shared_memory": bool(self._scratch),
        }

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    def drain(self, timeout: float = 30.0) -> DrainReport:
        """Graceful shutdown: let every worker finish and exit cleanly.

        This is the *invalidation* path (worker count or ``REPRO_*``
        environment changed): no in-flight unit is killed unless its
        worker ignores ``stop`` past ``timeout``.  The returned
        :class:`DrainReport` accounts for everything a non-clean drain
        left behind — stuck workers, the in-flight units they dropped,
        results no map will ever claim, and never-dispatched units —
        instead of silently discarding them.
        """
        if self._closed:
            return DrainReport()
        self._closed = True
        report = DrainReport(pending_units=self._scheduler.pending)
        for inbox in self._inboxes:
            inbox.put(("stop",))
        stuck_ids = []
        for worker_id, process in enumerate(self._processes):
            process.join(timeout=timeout)
            if process.is_alive():
                report.stuck_workers.append(process.name)
                stuck_ids.append(worker_id)
                process.terminate()
                process.join()
        # Workers that exited cleanly posted any last result before
        # taking ``stop``; sweep those events so completed units are
        # counted as unclaimed rather than lost.
        while True:
            try:
                message = self._events.get(timeout=0.05)
            except queue_module.Empty:
                break
            if message[0] in ("result", "result-inline", "error"):
                self._inflight.pop(message[1], None)
                report.unclaimed_results += 1
        for worker_id in sorted(self._inflight):
            seq, ref, _payload = self._inflight[worker_id]
            report.lost_units.append(
                {
                    "worker": self._processes[worker_id].name,
                    "seq": seq,
                    "ref": ref,
                }
            )
        self._inflight.clear()
        self._release_scratch()
        return report

    def terminate(self) -> None:
        """Hard shutdown (atexit / worker-death recovery only)."""
        if self._closed:
            return
        self._closed = True
        for process in self._processes:
            process.terminate()
        for process in self._processes:
            process.join()
        self._inflight.clear()
        self._release_scratch()

    def _release_scratch(self) -> None:
        for segment in self._scratch:
            try:
                segment.close()
                segment.unlink()
            except Exception:  # pragma: no cover - already gone
                pass
        self._scratch = []

    @property
    def processes(self) -> list:
        """The worker ``Process`` objects (tests inspect exit codes)."""
        return list(self._processes)
