"""Result exporters: CSV and JSON for downstream plotting.

The paper's figures are plots; these exporters turn any study object
into machine-readable rows so matplotlib/R/gnuplot users can regenerate
them (`python -m repro table2` prints the human layout; this module is
the data side).
"""

from __future__ import annotations

import csv
import io
import json
from typing import List

from .detection import CveResults, JulietResults, MagmaResults
from .figures import CheckBreakdown, FIG10_CATEGORIES, TraversalStudy
from .overhead import OverheadStudy


def overhead_to_rows(study: OverheadStudy) -> List[dict]:
    rows = []
    for row in study.rows:
        record = {"program": row.program, "native_cycles": row.native_cycles}
        for tool, ratio in row.ratios.items():
            record[tool] = round(ratio, 6)
        rows.append(record)
    return rows


def juliet_to_rows(results: JulietResults) -> List[dict]:
    rows = []
    for cwe, total in sorted(results.totals.items()):
        record = {"cwe": cwe, "total": total,
                  "latent": results.latent.get(cwe, 0)}
        for tool, by_cwe in results.detected.items():
            record[tool] = by_cwe.get(cwe, 0)
        rows.append(record)
    return rows


def cve_to_rows(results: CveResults) -> List[dict]:
    rows = []
    for scenario in results.scenarios:
        record = {
            "program": scenario.program_name,
            "cve": scenario.cve_id,
            "description": scenario.description,
        }
        record.update(
            {tool: int(hit) for tool, hit in results.outcomes[scenario.cve_id].items()}
        )
        rows.append(record)
    return rows


def magma_to_rows(results: MagmaResults) -> List[dict]:
    rows = []
    for project, per_config in results.detected.items():
        record = {"project": project, "total": results.totals[project]}
        record.update(per_config)
        rows.append(record)
    return rows


def breakdown_to_rows(breakdowns: List[CheckBreakdown]) -> List[dict]:
    rows = []
    for item in breakdowns:
        record = {"program": item.program, "total": item.total}
        for category in FIG10_CATEGORIES:
            record[category] = item.counts.get(category, 0)
            record[f"{category}_fraction"] = round(item.fraction(category), 6)
        record["optimized_fraction"] = round(item.optimized_fraction, 6)
        for extra in ("fast_checks", "slow_checks", "cached_hits",
                      "cache_updates"):
            if extra in item.counts:
                record[extra] = item.counts[extra]
        rows.append(record)
    return rows


def traversal_to_rows(study: TraversalStudy) -> List[dict]:
    return [
        {
            "pattern": p.pattern,
            "size": p.size,
            "tool": p.tool,
            "cycles": round(p.cycles, 3),
        }
        for p in study.points
    ]


def telemetry_to_rows(study) -> List[dict]:
    """Flat per-program rows from a :class:`ProfileStudy` (CSV-friendly)."""
    rows = []
    for row in study.rows:
        snap = row.snapshot
        fast, slow = snap.fast_slow_split
        record = {
            "program": row.program,
            "tool": row.tool,
            "seconds": row.seconds,
            "fast_check_hits": fast,
            "slow_path_entries": slow,
            "fast_fraction": round(snap.fast_fraction, 6),
            "convergence_max_steps": snap.convergence_max_steps,
            "convergence_total_steps": snap.convergence_total_steps,
            "quarantine_peak_bytes": snap.quarantine_peak_bytes,
        }
        for name, value in sorted(snap.counters.items()):
            record.setdefault(name, value)
        rows.append(record)
    return rows


def profile_to_json(study) -> str:
    """Full structured export of a :class:`ProfileStudy` — the schema
    documented in docs/OBSERVABILITY.md.  Per-program sections keep the
    nested counter/convergence/phase/decline structure that the flat
    :func:`telemetry_to_rows` view drops."""
    payload = {
        "kind": "telemetry_profile",
        "tool": study.tool,
        "programs": [
            {
                "program": row.program,
                "seconds": row.seconds,
                "telemetry": row.snapshot.as_dict(),
            }
            for row in study.rows
        ],
        "totals": study.totals(),
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def to_csv(rows: List[dict]) -> str:
    """Rows as CSV text (columns from the union of keys, stable order)."""
    if not rows:
        return ""
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns, restval="")
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def to_json(rows: List[dict]) -> str:
    """Rows as pretty-printed JSON."""
    return json.dumps(rows, indent=2, sort_keys=False)
