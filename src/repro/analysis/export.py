"""Result exporters: CSV and JSON for downstream plotting.

The paper's figures are plots; these exporters turn any study object
into machine-readable rows so matplotlib/R/gnuplot users can regenerate
them (`python -m repro table2` prints the human layout; this module is
the data side).
"""

from __future__ import annotations

import csv
import io
import json
from typing import List

from .detection import CveResults, JulietResults, MagmaResults
from .figures import CheckBreakdown, FIG10_CATEGORIES, TraversalStudy
from .overhead import OverheadStudy


def overhead_to_rows(study: OverheadStudy) -> List[dict]:
    rows = []
    for row in study.rows:
        record = {"program": row.program, "native_cycles": row.native_cycles}
        for tool, ratio in row.ratios.items():
            record[tool] = round(ratio, 6)
        rows.append(record)
    return rows


def juliet_to_rows(results: JulietResults) -> List[dict]:
    rows = []
    for cwe, total in sorted(results.totals.items()):
        record = {"cwe": cwe, "total": total,
                  "latent": results.latent.get(cwe, 0)}
        for tool, by_cwe in results.detected.items():
            record[tool] = by_cwe.get(cwe, 0)
        rows.append(record)
    return rows


def cve_to_rows(results: CveResults) -> List[dict]:
    rows = []
    for scenario in results.scenarios:
        record = {
            "program": scenario.program_name,
            "cve": scenario.cve_id,
            "description": scenario.description,
        }
        record.update(
            {tool: int(hit) for tool, hit in results.outcomes[scenario.cve_id].items()}
        )
        rows.append(record)
    return rows


def magma_to_rows(results: MagmaResults) -> List[dict]:
    rows = []
    for project, per_config in results.detected.items():
        record = {"project": project, "total": results.totals[project]}
        record.update(per_config)
        rows.append(record)
    return rows


def breakdown_to_rows(breakdowns: List[CheckBreakdown]) -> List[dict]:
    rows = []
    for item in breakdowns:
        record = {"program": item.program, "total": item.total}
        for category in FIG10_CATEGORIES:
            record[category] = item.counts.get(category, 0)
            record[f"{category}_fraction"] = round(item.fraction(category), 6)
        record["optimized_fraction"] = round(item.optimized_fraction, 6)
        rows.append(record)
    return rows


def traversal_to_rows(study: TraversalStudy) -> List[dict]:
    return [
        {
            "pattern": p.pattern,
            "size": p.size,
            "tool": p.tool,
            "cycles": round(p.cycles, 3),
        }
        for p in study.points
    ]


def to_csv(rows: List[dict]) -> str:
    """Rows as CSV text (columns from the union of keys, stable order)."""
    if not rows:
        return ""
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns, restval="")
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def to_json(rows: List[dict]) -> str:
    """Rows as pretty-printed JSON."""
    return json.dumps(rows, indent=2, sort_keys=False)
