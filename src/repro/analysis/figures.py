"""Figure harnesses: the Fig. 10 check breakdown and Fig. 11 traversals.

Figure 10 classifies every dynamic memory access GiantSan protects into
Eliminated / Cached / FastOnly / FullCheck, with ASan's per-access checks
as the baseline denominator.  Figure 11 measures traversal cost for
Native / GiantSan / ASan over growing buffers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..runtime import DEFAULT_COST_MODEL, CostModel, Session
from ..workloads.spec import SPEC_TABLE2_ROWS, SpecProgram
from ..workloads.traversals import FIGURE11_PATTERNS, FIGURE11_SIZES

#: Figure 10 category names, in plot-stack order.
FIG10_CATEGORIES = ["full_check", "fast_only", "cached", "eliminated"]


@dataclass
class CheckBreakdown:
    """One Figure 10 bar: category fractions for one program."""

    program: str
    counts: Dict[str, int]

    @property
    def total(self) -> int:
        return sum(self.counts.get(c, 0) for c in FIG10_CATEGORIES)

    def fraction(self, category: str) -> float:
        total = self.total
        return self.counts.get(category, 0) / total if total else 0.0

    @property
    def optimized_fraction(self) -> float:
        """Eliminated + cached: the paper reports 52.56% on average."""
        return self.fraction("eliminated") + self.fraction("cached")

    @property
    def fast_only_share_of_unoptimized(self) -> float:
        """Among remaining checks, the fast-check-only share (49.22%)."""
        remaining = self.counts.get("fast_only", 0) + self.counts.get(
            "full_check", 0
        )
        if not remaining:
            return 0.0
        return self.counts.get("fast_only", 0) / remaining

    @property
    def elided_fraction(self) -> float:
        """Accesses whose checks the static analysis removed outright.

        Kept outside the four Figure 10 categories (whose fractions
        partition the checked accesses, as in the paper); this counts
        against checked + elided so the column reads as a share of all
        classified accesses.
        """
        elided = self.counts.get("elided", 0)
        denominator = self.total + elided
        return elided / denominator if denominator else 0.0


def measure_check_breakdown(
    spec: SpecProgram, scale: Optional[int] = None
) -> CheckBreakdown:
    """Run one proxy under GiantSan and collect Figure 10 categories."""
    program = spec.build()
    args = [scale if scale is not None else spec.default_scale]
    result = Session("GiantSan").run(program, args)
    counts = {
        category: result.protection_counts.get(category, 0)
        for category in FIG10_CATEGORIES + ["elided"]
    }
    # Telemetry companions to the category stack: the dynamic CI(L,R)
    # split and quasi-bound cache traffic behind the same run.  They sit
    # outside FIG10_CATEGORIES so fractions still partition the checked
    # accesses.
    counts["fast_checks"] = result.stats.fast_checks
    counts["slow_checks"] = result.stats.slow_checks
    counts["cached_hits"] = result.stats.cached_hits
    counts["cache_updates"] = result.stats.cache_updates
    return CheckBreakdown(program=spec.name, counts=counts)


def run_figure10_study(
    programs: Optional[List[SpecProgram]] = None,
    scale: Optional[int] = None,
    jobs: int = 1,
) -> List[CheckBreakdown]:
    from ..workloads.spec import SPEC_BY_NAME
    from .parallel import figure10_worker, parallel_map

    programs = programs or SPEC_TABLE2_ROWS
    if jobs > 1 and all(
        SPEC_BY_NAME.get(spec.name) is spec for spec in programs
    ):
        return parallel_map(
            figure10_worker,
            [(spec.name, scale) for spec in programs],
            jobs,
            shard_keys=[spec.name for spec in programs],
        )
    return [measure_check_breakdown(spec, scale) for spec in programs]


# ----------------------------------------------------------------------
# Figure 11
# ----------------------------------------------------------------------
@dataclass
class TraversalPoint:
    """One point of one Figure 11 series."""

    pattern: str
    size: int
    tool: str
    cycles: float


@dataclass
class TraversalStudy:
    points: List[TraversalPoint] = field(default_factory=list)

    def series(self, pattern: str, tool: str) -> List[TraversalPoint]:
        return [
            p for p in self.points if p.pattern == pattern and p.tool == tool
        ]

    def speedup_vs_asan(self, pattern: str) -> float:
        """Geometric-mean ASan/GiantSan cycle ratio for one pattern."""
        from ..runtime import geometric_mean

        ratios = []
        for size in sorted({p.size for p in self.points}):
            asan = [
                p
                for p in self.points
                if (p.pattern, p.tool, p.size) == (pattern, "ASan", size)
            ]
            giant = [
                p
                for p in self.points
                if (p.pattern, p.tool, p.size) == (pattern, "GiantSan", size)
            ]
            if asan and giant:
                ratios.append(asan[0].cycles / giant[0].cycles)
        return geometric_mean(ratios)


FIGURE11_TOOLS = ["Native", "GiantSan", "ASan"]


def run_figure11_study(
    sizes: Optional[List[int]] = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    jobs: int = 1,
) -> TraversalStudy:
    """The three traversal patterns over the buffer-size sweep."""
    from .parallel import figure11_worker, parallel_map

    sizes = sizes or FIGURE11_SIZES
    payloads = [
        (pattern_index, size, cost_model)
        for pattern_index in range(len(FIGURE11_PATTERNS))
        for size in sizes
    ]
    study = TraversalStudy()
    shard_keys = [
        ("fig11", pattern_index) for pattern_index, _, _ in payloads
    ]
    for points in parallel_map(
        figure11_worker, payloads, jobs, shard_keys=shard_keys
    ):
        study.points.extend(points)
    return study
