"""Detection-study runners: Tables 3, 4, and 5.

These run the generated corpora under each tool configuration and
aggregate detections exactly the way the paper's tables do.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..runtime import Session
from ..workloads.juliet import (
    JulietCase,
    TABLE3_CWES,
    generate_juliet_suite,  # noqa: F401  (re-exported study surface)
    juliet_suite_cached,
)
from ..workloads.linux_flaw import CveScenario, TABLE4_SCENARIOS
from ..workloads.magma import (
    TABLE5_CONFIGS,
    TABLE5_PROJECTS,
    generate_project_cases,
)

#: Tool columns of Tables 3 and 4.
DETECTION_TOOLS = ["GiantSan", "ASan", "ASan--", "LFP"]


@dataclass
class JulietResults:
    """Table 3: per-CWE detection counts for each tool."""

    detected: Dict[str, Dict[str, int]]
    totals: Dict[str, int]
    false_positives: Dict[str, int]
    latent: Dict[str, int]

    def row(self, cwe: str) -> Tuple[Dict[str, int], int]:
        return (
            {tool: self.detected[tool].get(cwe, 0) for tool in self.detected},
            self.totals.get(cwe, 0),
        )


def run_juliet_study(
    tools: Optional[List[str]] = None,
    cases: Optional[List[JulietCase]] = None,
    jobs: int = 1,
) -> JulietResults:
    """Run every Juliet case under every tool (Table 3).

    ``jobs > 1`` splits the generated suite into contiguous slices and
    aggregates the per-case outcomes in case order, so results match the
    sequential run exactly.  Explicit ``cases`` always run inline (the
    workers regenerate the canonical suite by index).
    """
    tools = tools or DETECTION_TOOLS
    use_parallel = jobs > 1 and cases is None
    cases = cases if cases is not None else juliet_suite_cached()
    detected: Dict[str, Dict[str, int]] = {t: defaultdict(int) for t in tools}
    totals: Dict[str, int] = defaultdict(int)
    latent: Dict[str, int] = defaultdict(int)
    false_positives: Dict[str, int] = {t: 0 for t in tools}
    if use_parallel:
        from .parallel import juliet_worker, parallel_map, steal_spans

        # finer-grained than one span per worker so stealing can rescue
        # a straggling slice; case-index keyed results keep the merge
        # byte-identical to the sequential run for any granularity
        payloads = [
            (lo, hi, tools) for lo, hi in steal_spans(len(cases), jobs)
        ]
        outcomes: Dict[int, Dict[str, bool]] = {}
        for slice_outcomes in parallel_map(
            juliet_worker,
            payloads,
            jobs,
            shard_keys=[("juliet", lo) for lo, _, _ in payloads],
        ):
            for index, row in slice_outcomes:
                outcomes[index] = row
        errored = lambda case_index, tool: outcomes[case_index][tool]
    else:
        errored = lambda case_index, tool: bool(
            Session(tool).run(cases[case_index].program).errors
        )
    for case_index, case in enumerate(cases):
        if case.buggy:
            totals[case.cwe] += 1
            if case.latent:
                latent[case.cwe] += 1
        for tool in tools:
            has_errors = errored(case_index, tool)
            if case.buggy and has_errors:
                detected[tool][case.cwe] += 1
            elif not case.buggy and has_errors:
                false_positives[tool] += 1
    return JulietResults(
        detected={t: dict(d) for t, d in detected.items()},
        totals=dict(totals),
        false_positives=false_positives,
        latent=dict(latent),
    )


@dataclass
class CveResults:
    """Table 4: per-CVE detection flags for each tool."""

    outcomes: Dict[str, Dict[str, bool]]  # cve_id -> tool -> detected
    scenarios: List[CveScenario] = field(default_factory=list)

    def misses(self, tool: str) -> List[str]:
        return [
            cve for cve, by_tool in self.outcomes.items() if not by_tool[tool]
        ]


def run_linux_flaw_study(
    tools: Optional[List[str]] = None,
    scenarios: Optional[List[CveScenario]] = None,
    jobs: int = 1,
) -> CveResults:
    """Run every CVE scenario under every tool (Table 4)."""
    tools = tools or DETECTION_TOOLS
    use_parallel = jobs > 1 and scenarios is None
    scenarios = scenarios if scenarios is not None else TABLE4_SCENARIOS
    outcomes: Dict[str, Dict[str, bool]] = {}
    if use_parallel:
        from .parallel import linux_flaw_worker, parallel_map

        payloads = [(index, tools) for index in range(len(scenarios))]
        for cve_id, row in parallel_map(
            linux_flaw_worker,
            payloads,
            jobs,
            shard_keys=[("cve", index) for index in range(len(scenarios))],
        ):
            outcomes[cve_id] = row
        return CveResults(outcomes=outcomes, scenarios=list(scenarios))
    for scenario in scenarios:
        row: Dict[str, bool] = {}
        for tool in tools:
            result = Session(tool).run(scenario.build())
            row[tool] = bool(result.errors)
        outcomes[scenario.cve_id] = row
    return CveResults(outcomes=outcomes, scenarios=list(scenarios))


@dataclass
class MagmaResults:
    """Table 5: per-project detection counts per configuration."""

    detected: Dict[str, Dict[str, int]]  # project -> config label -> count
    totals: Dict[str, int]

    def config_labels(self) -> List[str]:
        return [label for label, _, _ in TABLE5_CONFIGS]


def run_magma_study(projects=None, jobs: int = 1) -> MagmaResults:
    """Run the Magma corpora under the five redzone configurations."""
    use_parallel = jobs > 1 and projects is None
    projects = projects if projects is not None else TABLE5_PROJECTS
    if use_parallel:
        from .parallel import magma_worker, parallel_map

        payloads = [(index,) for index in range(len(projects))]
        detected = {}
        totals = {}
        for name, per_config, total in parallel_map(
            magma_worker,
            payloads,
            jobs,
            shard_keys=[
                ("magma", project.name) for project in projects
            ],
        ):
            detected[name] = per_config
            totals[name] = total
        return MagmaResults(detected=detected, totals=totals)
    detected: Dict[str, Dict[str, int]] = {}
    totals: Dict[str, int] = {}
    for project in projects:
        cases = generate_project_cases(project)
        totals[project.name] = project.total
        per_config: Dict[str, int] = {}
        for label, tool, kwargs in TABLE5_CONFIGS:
            count = 0
            for case in cases:
                result = Session(tool, **kwargs).run(case.build())
                if result.errors:
                    count += 1
            per_config[label] = count
        detected[project.name] = per_config
    return MagmaResults(detected=detected, totals=totals)
