"""Workload suites for every experiment in the paper's evaluation."""

from . import kernels
from .patterns import TABLE1_PATTERNS, Table1Pattern
from .spec import (
    SPEC_BY_NAME,
    SPEC_TABLE2_ROWS,
    SpecProgram,
    build_spec_program,
)
from .traversals import (
    FIGURE11_PATTERNS,
    FIGURE11_SIZES,
    TraversalPattern,
    forward_traversal,
    random_traversal,
    reverse_traversal,
)
from .callheavy import TABLE_BYTES, build_callheavy_program
from .juliet import (
    JulietCase,
    TABLE3_CWES,
    generate_juliet_suite,
    juliet_suite_cached,
)
from .linux_flaw import CveScenario, TABLE4_SCENARIOS, scenarios_by_program
from .magma import (
    MagmaCase,
    MagmaProject,
    TABLE5_CONFIGS,
    TABLE5_PROJECTS,
    generate_magma_suite,
    generate_project_cases,
)

__all__ = [
    "kernels",
    "TABLE1_PATTERNS",
    "Table1Pattern",
    "SPEC_BY_NAME",
    "SPEC_TABLE2_ROWS",
    "SpecProgram",
    "build_spec_program",
    "FIGURE11_PATTERNS",
    "FIGURE11_SIZES",
    "TraversalPattern",
    "forward_traversal",
    "random_traversal",
    "reverse_traversal",
    "TABLE_BYTES",
    "build_callheavy_program",
    "JulietCase",
    "TABLE3_CWES",
    "generate_juliet_suite",
    "juliet_suite_cached",
    "CveScenario",
    "TABLE4_SCENARIOS",
    "scenarios_by_program",
    "MagmaCase",
    "MagmaProject",
    "TABLE5_CONFIGS",
    "TABLE5_PROJECTS",
    "generate_magma_suite",
    "generate_project_cases",
]
