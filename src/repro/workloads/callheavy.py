"""A call-heavy workload: hot kernels behind function boundaries.

The Table 2 proxies keep hot loops in separate functions on purpose —
intraprocedural analyses cannot see through the calls, which models
LLVM's default behaviour.  This workload is the stress version of that
structure: almost every access happens on one side of a call boundary
while the fact that would justify eliding its check lives on the other
side.  It is the acceptance workload for the interprocedural summary
layer — with summaries enabled the dynamic check count must drop
measurably (callee effects no longer clobber caller facts, loops over
non-freeing calls promote, and callee prologue checks die from
caller-side coverage), while the execution semantics (checksum, error
log) stay identical.

The shapes, in order of appearance:

* ``digest`` / ``scale8`` — pointer-taking kernels the entry calls
  repeatedly; both are provably non-freeing, so with summaries a call
  to them is no barrier to fact survival or loop promotion.
* ``digest_twice`` — a wrapper whose summary folds its callee's access
  range transitively.
* ``countdown`` — bounded self-recursion; its conservative ⊤ summary
  pins the fall-back path inside the same program.
"""

from __future__ import annotations

from ..ir.builder import ProgramBuilder
from ..ir.nodes import V
from ..ir.program import Program

#: Bytes of the shared table every kernel walks.
TABLE_BYTES = 64


def build_callheavy_program() -> Program:
    """The call-heavy acceptance workload; entry takes ``scale``."""
    b = ProgramBuilder()
    with b.function("digest", params=["table"]) as k:
        k.assign("dacc", 0)
        with k.loop("di", 0, TABLE_BYTES // 4) as di:
            k.load("dv", "table", di * 4, 4)
            k.assign("dacc", V("dacc") + V("dv"))
        k.ret(V("dacc"))
    with b.function("scale8", params=["table"]) as k:
        with k.loop("si", 0, TABLE_BYTES // 8) as si:
            k.load("sv", "table", si * 8, 8)
            k.store("table", si * 8, 8, V("sv") * 2)
        k.ret(0)
    with b.function("digest_twice", params=["table"]) as k:
        k.call("digest", [V("table")], dst="first")
        k.call("digest", [V("table")], dst="second")
        k.ret(V("first") + V("second"))
    with b.function("countdown", params=["table", "d"]) as k:
        k.assign("cacc", 0)
        with k.if_(V("d").gt(0)):
            k.load("cv", "table", (V("d") - 1) * 8, 8)
            k.call("countdown", [V("table"), V("d") - 1], dst="csub")
            k.assign("cacc", V("cv") + V("csub"))
        k.ret(V("cacc"))
    with b.function("main", params=["scale"]) as f:
        f.malloc("table", TABLE_BYTES)
        f.memset("table", 0, TABLE_BYTES, 1)
        f.assign("acc", 0)
        with f.loop("rep", 0, V("scale")):
            # the same-offset reloads around each call are the facts the
            # intraprocedural pipeline must re-check every iteration
            f.load("x", "table", 0, 8)
            f.call("digest", [V("table")], dst="d1")
            f.load("y", "table", 8, 8)
            f.call("scale8", [V("table")])
            f.load("z", "table", 0, 8)
            f.assign("acc", V("acc") + V("d1") + V("x") + V("y") + V("z"))
        f.call("digest_twice", [V("table")], dst="d2")
        f.call("countdown", [V("table"), 4], dst="d3")
        f.ret(V("acc") + V("d2") + V("d3"))
    return b.build()
