"""Reusable IR kernel emitters the SPEC proxies are composed from.

Each helper emits one memory-access idiom into a FunctionBuilder.  The
idioms are chosen to span the optimization matrix of the paper:

=====================  ==========================================
kernel                 who benefits
=====================  ==========================================
affine_sweep           loop promotion (GiantSan), nothing (ASan--)
struct_walk            duplicate elimination (ASan-- and GiantSan)
indirect_access        history caching (GiantSan only)
pointer_chase          history caching, partially
string_ops             guardian region checks (O(1) vs linear)
alloc_churn            allocator hooks; no static optimization
dispatch_loop          mixed conditional accesses, hard to optimize
reverse_sweep          the §5.4 pathological case for GiantSan
=====================  ==========================================
"""

from __future__ import annotations

from ..ir.builder import FunctionBuilder
from ..ir.nodes import ExprLike, V

#: Multiplier/increment of the in-IR linear congruential generator used
#: for "random" index streams (kept tiny: all math is interpreted).
LCG_MUL = 1103515245
LCG_INC = 12345


def affine_sweep(
    f: FunctionBuilder,
    buf: str,
    count: ExprLike,
    stride: int = 4,
    width: int = 4,
    var: str = "i",
    value: ExprLike = None,
) -> None:
    """``for i in [0, count): buf[i*stride] = v`` — promotable to one CI."""
    with f.loop(var, 0, count) as i:
        f.compute(2.0)
        f.store(buf, i * stride, width, value if value is not None else i)


def affine_read_sweep(
    f: FunctionBuilder,
    buf: str,
    count: ExprLike,
    stride: int = 4,
    width: int = 4,
    var: str = "i",
    dst: str = "acc",
) -> None:
    """Reduction over an array; also promotable."""
    f.assign(dst, 0)
    with f.loop(var, 0, count) as i:
        f.load("_t", buf, i * stride, width)
        f.compute(2.0)
        f.assign(dst, V(dst) + V("_t"))


def stencil_sweep(
    f: FunctionBuilder,
    src: str,
    dst: str,
    count: ExprLike,
    var: str = "i",
) -> None:
    """3-point stencil ``dst[i] = src[i-1]+src[i]+src[i+1]`` over 4-byte
    cells, iterating [1, count-1) — the lbm/imagick access shape."""
    with f.loop(var, 1, count - 1) as i:
        f.load("_a", src, i * 4 - 4, 4)
        f.load("_b", src, i * 4, 4)
        f.load("_c", src, i * 4 + 4, 4)
        f.compute(6.0)  # collision/streaming arithmetic per cell
        f.store(dst, i * 4, 4, V("_a") + V("_b") + V("_c"))


def struct_walk(
    f: FunctionBuilder,
    buf: str,
    count: ExprLike,
    record_size: int = 32,
    var: str = "r",
) -> None:
    """Record-array walk touching several fields per record, with one
    field read twice (the must-alias dedupe target)."""
    with f.loop(var, 0, count) as r:
        base = r * record_size
        f.load("_k", buf, base, 4)
        f.load("_v", buf, base + 8, 8)
        f.compute(5.0)  # per-record logic
        f.store(buf, base + 16, 8, V("_v") + 1)
        f.store(buf, base, 4, V("_k") + 1)  # aliases the first load


def indirect_access(
    f: FunctionBuilder,
    idx: str,
    data: str,
    count: ExprLike,
    var: str = "i",
    width: int = 4,
) -> None:
    """``data[idx[i]]`` in a data-dependent (unbounded) loop: the
    history-caching showcase (Figure 8/9)."""
    with f.loop(var, 0, count, bounded=False) as i:
        f.load("_j", idx, i * 4, 4)
        f.compute(3.0)
        f.store(data, V("_j") * width, width, i)


def fill_indices(
    f: FunctionBuilder,
    idx: str,
    count: ExprLike,
    modulus: ExprLike,
    var: str = "k",
    scramble: bool = True,
) -> None:
    """Populate an index buffer with in-bounds pseudo-random indices."""
    f.assign("_seed", 99991)
    with f.loop(var, 0, count) as k:
        if scramble:
            f.assign("_seed", (V("_seed") * LCG_MUL + LCG_INC) & 0x7FFFFFFF)
            f.store(idx, k * 4, 4, V("_seed") % modulus)
        else:
            f.store(idx, k * 4, 4, k % modulus)


def pointer_chase(
    f: FunctionBuilder,
    nodes: str,
    hops: ExprLike,
    node_count: ExprLike,
    var: str = "h",
) -> None:
    """Follow ``cur = next[cur]`` for ``hops`` steps over an 8-byte next
    array prepared by :func:`fill_chase_links` — the mcf idiom."""
    f.assign("_cur", 0)
    with f.loop(var, 0, hops, bounded=False):
        f.compute(3.0)  # per-node work between hops
        f.load("_cur", nodes, V("_cur") * 8, 8)


def fill_chase_links(
    f: FunctionBuilder,
    nodes: str,
    node_count: ExprLike,
    var: str = "k",
) -> None:
    """next[k] = (k * 17 + 7) % node_count — a full-cycle permutation for
    typical sizes, giving non-local jumps."""
    with f.loop(var, 0, node_count) as k:
        f.store(nodes, k * 8, 8, (k * 17 + 7) % node_count)


def string_ops(
    f: FunctionBuilder,
    src: str,
    dst: str,
    length: ExprLike,
    repeats: ExprLike = 1,
    var: str = "s",
) -> None:
    """memset + memcpy rounds: guardian-function territory where ASan
    pays one shadow load per 8 bytes and GiantSan pays O(1)."""
    with f.loop(var, 0, repeats):
        f.memset(src, 0, length, 7)
        f.memcpy(dst, 0, src, 0, length)


def c_string_copy(
    f: FunctionBuilder,
    src: str,
    dst: str,
    length: ExprLike,
    repeats: ExprLike = 1,
    var: str = "s",
) -> None:
    """Terminate src at length-1 then strcpy it repeatedly."""
    f.store(src, length - 1, 1, 0)
    with f.loop(var, 0, repeats):
        f.strcpy(dst, 0, src, 0)


def alloc_churn(
    f: FunctionBuilder,
    count: ExprLike,
    size: int = 48,
    var: str = "a",
) -> None:
    """malloc/touch/free cycles: stresses poisoning and quarantine."""
    with f.loop(var, 0, count):
        f.malloc("_tmp", size)
        f.compute(8.0)  # constructor logic
        f.store("_tmp", 0, 8, 1)
        f.store("_tmp", size - 8, 8, 2)
        f.free("_tmp")


def dispatch_loop(
    f: FunctionBuilder,
    code: str,
    heap: str,
    count: ExprLike,
    heap_cells: ExprLike,
    var: str = "pc",
) -> None:
    """Bytecode-interpreter shape (perlbench/gcc): load an opcode, branch,
    touch operands at data-dependent offsets."""
    with f.loop(var, 0, count, bounded=False) as pc:
        f.load("_op", code, pc * 4, 4)
        f.compute(5.0)  # decode + dispatch logic
        f.assign("_slot", V("_op") % heap_cells)
        with f.if_((V("_op") & 3).eq(0)):
            f.load("_x", heap, V("_slot") * 8, 8)
        with f.else_():
            f.store(heap, V("_slot") * 8, 8, V("_op"))


def scattered_access(
    f: FunctionBuilder,
    ptr_table: str,
    count: ExprLike,
    var: str = "o",
    field_count: int = 2,
    tail_offset: int = None,
) -> None:
    """Dereference a different object each iteration through a pointer
    table: the base pointer is re-loaded per iteration, so no tool can
    merge, promote, or cache these checks — every access pays a direct
    check (the FastOnly/FullCheck population of Figure 10).

    ``tail_offset`` additionally touches the object's last field; on
    objects whose segment count is not a power of two that access lies
    beyond the head segment's folding guarantee and exercises GiantSan's
    slow check (the FullCheck category)."""
    with f.loop(var, 0, count, bounded=False) as o:
        f.load("_obj", ptr_table, o * 8, 8)
        f.compute(3.0)
        for field in range(field_count):
            f.store("_obj", field * 8, 8, o)
        if tail_offset is not None:
            f.store("_obj", tail_offset, 8, o)


def build_pointer_table(
    f: FunctionBuilder,
    ptr_table: str,
    count: ExprLike,
    object_size: int = 32,
    var: str = "k",
) -> None:
    """Allocate ``count`` small objects and record their addresses."""
    with f.loop(var, 0, count) as k:
        f.malloc("_o", object_size)
        f.store(ptr_table, k * 8, 8, V("_o"))


def reverse_sweep(
    f: FunctionBuilder,
    buf: str,
    end_ptr: str,
    count: ExprLike,
    var: str = "i",
    width: int = 4,
) -> None:
    """Walk a buffer from its highest address down through a pointer
    anchored at the end: every access has a negative offset, hitting
    GiantSan's no-quasi-lower-bound limitation (§5.4, Figure 11c)."""
    f.ptr_add(end_ptr, buf, count * width)
    with f.loop(var, 1, count + 1, bounded=False) as i:
        f.compute(2.0)
        f.load("_r", end_ptr, 0 - i * width, width)
