"""Juliet-style CWE test-case generator (Table 3).

NIST's Juliet Test Suite pairs each buggy program with a non-buggy twin;
a tool passes a case by reporting on the buggy version (no false
negative) and staying silent on the good one (no false positive).  We
generate the same structure parametrically: every CWE family enumerates
buffer sizes, bug distances, access widths, and trigger mechanisms
(direct access, loop, intrinsic), which exercises distinct shadow-state
shapes (partial segments, redzone hits, freed poison, ...).

The paper's Table 3 counts per CWE; our totals are scaled down but the
per-tool detection *pattern* is the experiment: the three shadow-memory
tools detect everything that actually triggers, while LFP misses stack
cases and overflows inside its size-class slack.  A few "latent" cases
(buggy code whose bug does not trigger at runtime, e.g. an uninitialized
index that happens to be in bounds) reproduce the paper's remark that
the cases missed by GiantSan/ASan/ASan-- never actually overflow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..ir.builder import ProgramBuilder
from ..ir.nodes import V
from ..ir.program import Program


@dataclass(frozen=True)
class JulietCase:
    """One generated test case (one half of a buggy/good pair)."""

    case_id: str
    cwe: str
    program: Program
    buggy: bool
    #: True for "buggy" sources whose defect cannot trigger at runtime
    #: (nobody is expected to report these; they still count in Total).
    latent: bool = False


#: CWE identifiers in Table 3 order.
TABLE3_CWES = [
    ("CWE121", "Stack Buffer Overflow"),
    ("CWE122", "Heap Buffer Overflow"),
    ("CWE124", "Buffer Underwrite"),
    ("CWE126", "Buffer Overread"),
    ("CWE127", "Buffer Underread"),
    ("CWE416", "Use After Free"),
    ("CWE476", "NULL Pointer Dereference"),
    ("CWE761", "Free Pointer Not at Start of Buffer"),
]

#: Buffer sizes deliberately off the low-fat size classes (as Juliet's
#: ad-hoc sizes are), so LFP's rounding slack swallows small overflows.
_SIZES = [10, 23, 50, 76, 100, 600]
#: Overflow distances, small like Juliet's (one element or a few bytes).
_DISTANCES = [1, 2, 4]
#: Overread distances are more varied in Juliet (looping reads run far
#: past the end), which is why LFP catches most CWE126 cases (352/449).
_READ_DISTANCES = [4, 32, 64]
_METHODS = ["direct", "loop", "intrinsic"]


def _buffer_program(
    region: str,
    size: int,
    access_offset: int,
    width: int,
    write: bool,
    method: str,
) -> Program:
    """A program that touches ``buf[access_offset .. +width)``.

    ``region`` selects heap or stack allocation; ``method`` selects a
    direct access, a loop ending at the target offset, or an intrinsic
    spanning ``[0, access_offset + width)``.
    """
    b = ProgramBuilder()
    with b.function("main") as f:
        if region == "heap":
            f.malloc("buf", size)
        else:
            f.stack_alloc("buf", size)
        if method == "direct":
            if write:
                f.store("buf", access_offset, width, 1)
            else:
                f.load("x", "buf", access_offset, width)
        elif method == "loop":
            start = min(0, access_offset)
            end = max(access_offset + width, width)
            with f.loop("i", start, end, step=1, bounded=False) as i:
                if write:
                    f.store("buf", i, 1, 0)
                else:
                    f.load("x", "buf", i, 1)
        else:  # intrinsic
            length = access_offset + width
            if write:
                f.memset("buf", 0, length)
            else:
                f.malloc("sink", max(length, 8))
                f.memcpy("sink", 0, "buf", 0, length)
        if region == "heap":
            f.free("buf")
    return b.build()


def _uaf_program(size: int, write: bool, delay_allocs: int) -> Program:
    b = ProgramBuilder()
    with b.function("main") as f:
        f.malloc("buf", size)
        f.free("buf")
        for k in range(delay_allocs):
            f.malloc(f"other{k}", 32)
        if write:
            f.store("buf", 0, 8, 7)
        else:
            f.load("x", "buf", 0, 8)
    return b.build()


def _null_program(offset: int, write: bool) -> Program:
    b = ProgramBuilder()
    with b.function("main") as f:
        f.assign("p", 0)
        if write:
            f.store("p", offset, 8, 1)
        else:
            f.load("x", "p", offset, 8)
    return b.build()


def _bad_free_program(size: int, free_offset: int) -> Program:
    b = ProgramBuilder()
    with b.function("main") as f:
        f.malloc("buf", size)
        f.ptr_add("mid", "buf", free_offset)
        f.free("mid" if free_offset else "buf")
    return b.build()


def _latent_overread_program(size: int) -> Program:
    """CWE126 flavour that never triggers: an uninitialized index (which
    reads as 0 in the simulated memory) stays in bounds."""
    b = ProgramBuilder()
    with b.function("main") as f:
        f.malloc("idxbuf", 8)
        f.malloc("buf", size)
        f.load("j", "idxbuf", 0, 4)  # uninitialized: loads 0
        f.load("x", "buf", V("j"), 4)  # in bounds at runtime
        f.free("buf")
        f.free("idxbuf")
    return b.build()


def _pair(cases: List[JulietCase], case_id: str, cwe: str,
          buggy_program: Program, good_program: Program) -> None:
    cases.append(JulietCase(case_id + "_bad", cwe, buggy_program, True))
    cases.append(JulietCase(case_id + "_good", cwe, good_program, False))


def generate_cwe121() -> List[JulietCase]:
    """Stack buffer overflow (write past a stack buffer)."""
    cases: List[JulietCase] = []
    for size in _SIZES:
        for dist in _DISTANCES:
            for method in _METHODS:
                case_id = f"CWE121_s{size}_d{dist}_{method}"
                bad = _buffer_program("stack", size, size + dist - 1, 1, True, method)
                good = _buffer_program("stack", size, size - 1, 1, True, method)
                _pair(cases, case_id, "CWE121", bad, good)
    return cases


def generate_cwe122() -> List[JulietCase]:
    """Heap buffer overflow (write past a heap buffer)."""
    cases: List[JulietCase] = []
    for size in _SIZES:
        for dist in _DISTANCES:
            for method in _METHODS:
                case_id = f"CWE122_s{size}_d{dist}_{method}"
                bad = _buffer_program("heap", size, size + dist - 1, 1, True, method)
                good = _buffer_program("heap", size, size - 1, 1, True, method)
                _pair(cases, case_id, "CWE122", bad, good)
    return cases


def generate_cwe124() -> List[JulietCase]:
    """Buffer underwrite (write before the buffer start)."""
    cases: List[JulietCase] = []
    for size in _SIZES:
        for dist in _DISTANCES:
            for region in ("heap",):
                case_id = f"CWE124_s{size}_d{dist}_{region}"
                bad = _buffer_program(region, size, -dist, 4, True, "direct")
                good = _buffer_program(region, size, 0, 4, True, "direct")
                _pair(cases, case_id, "CWE124", bad, good)
    return cases


def generate_cwe126() -> List[JulietCase]:
    """Buffer overread, including latent never-triggering variants."""
    cases: List[JulietCase] = []
    for size in _SIZES:
        # short overreads through a direct access or an intrinsic (land
        # in LFP's slack for off-class sizes)
        for dist in _DISTANCES:
            for method in ("direct", "intrinsic"):
                case_id = f"CWE126_s{size}_d{dist}_{method}"
                bad = _buffer_program("heap", size, size + dist - 1, 1, False, method)
                good = _buffer_program("heap", size, size - 1, 1, False, method)
                _pair(cases, case_id, "CWE126", bad, good)
        # scanning overreads that run well past the end: the sequential
        # walk crosses the size-class boundary, so LFP catches these —
        # which is why its CWE126 row is mostly detections (352/449)
        for dist in _READ_DISTANCES:
            case_id = f"CWE126_s{size}_d{dist}_loop"
            bad = _buffer_program("heap", size, size + dist - 1, 1, False, "loop")
            good = _buffer_program("heap", size, size - 1, 1, False, "loop")
            _pair(cases, case_id, "CWE126", bad, good)
    for size in (32, 64, 128, 256):
        cases.append(
            JulietCase(
                f"CWE126_latent_s{size}_bad",
                "CWE126",
                _latent_overread_program(size),
                buggy=True,
                latent=True,
            )
        )
    return cases


def generate_cwe127() -> List[JulietCase]:
    """Buffer underread."""
    cases: List[JulietCase] = []
    for size in _SIZES:
        for dist in _DISTANCES:
            case_id = f"CWE127_s{size}_d{dist}"
            bad = _buffer_program("heap", size, -dist, 4, False, "direct")
            good = _buffer_program("heap", size, 0, 4, False, "direct")
            _pair(cases, case_id, "CWE127", bad, good)
    return cases


def generate_cwe416() -> List[JulietCase]:
    """Use after free, with and without intervening allocations."""
    cases: List[JulietCase] = []
    for size in (16, 64, 256):
        for write in (False, True):
            for delay in (0, 2, 8):
                kind = "w" if write else "r"
                case_id = f"CWE416_s{size}_{kind}_delay{delay}"
                bad = _uaf_program(size, write, delay)
                good_builder = ProgramBuilder()
                with good_builder.function("main") as f:
                    f.malloc("buf", size)
                    if write:
                        f.store("buf", 0, 8, 7)
                    else:
                        f.load("x", "buf", 0, 8)
                    f.free("buf")
                _pair(cases, case_id, "CWE416", bad, good_builder.build())
    return cases


def generate_cwe476() -> List[JulietCase]:
    """NULL pointer dereference."""
    cases: List[JulietCase] = []
    for offset in (0, 8, 64, 1024):
        for write in (False, True):
            kind = "w" if write else "r"
            case_id = f"CWE476_o{offset}_{kind}"
            bad = _null_program(offset, write)
            good_builder = ProgramBuilder()
            with good_builder.function("main") as f:
                f.malloc("p", 1032)
                if write:
                    f.store("p", offset, 8, 1)
                else:
                    f.load("x", "p", offset, 8)
                f.free("p")
            _pair(cases, case_id, "CWE476", bad, good_builder.build())
    return cases


def generate_cwe761() -> List[JulietCase]:
    """free() of a pointer not at the start of the buffer."""
    cases: List[JulietCase] = []
    for size in (32, 64, 256):
        for offset in (8, 16, 32):
            if offset >= size:
                continue
            case_id = f"CWE761_s{size}_o{offset}"
            bad = _bad_free_program(size, offset)
            good = _bad_free_program(size, 0)
            _pair(cases, case_id, "CWE761", bad, good)
    return cases


def generate_cwe415() -> List[JulietCase]:
    """Double free (extended suite; not a Table 3 row)."""
    cases: List[JulietCase] = []
    for size in (16, 64, 256):
        for delay in (0, 4):
            case_id = f"CWE415_s{size}_delay{delay}"
            bad_builder = ProgramBuilder()
            with bad_builder.function("main") as f:
                f.malloc("buf", size)
                f.free("buf")
                for k in range(delay):
                    f.malloc(f"pad{k}", 32)
                f.free("buf")
            good_builder = ProgramBuilder()
            with good_builder.function("main") as f:
                f.malloc("buf", size)
                f.free("buf")
            _pair(cases, case_id, "CWE415",
                  bad_builder.build(), good_builder.build())
    return cases


def generate_cwe590() -> List[JulietCase]:
    """Free of memory not on the heap (extended suite)."""
    cases: List[JulietCase] = []
    for region in ("stack", "global"):
        for size in (32, 128):
            case_id = f"CWE590_{region}_s{size}"
            bad_builder = ProgramBuilder()
            with bad_builder.function("main") as f:
                if region == "stack":
                    f.stack_alloc("buf", size)
                else:
                    f.global_alloc("buf", size)
                f.free("buf")
            good_builder = ProgramBuilder()
            with good_builder.function("main") as f:
                f.malloc("buf", size)
                f.free("buf")
            _pair(cases, case_id, "CWE590",
                  bad_builder.build(), good_builder.build())
    return cases


#: Extended CWE families beyond Table 3's eight.
EXTENDED_CWES = [
    ("CWE415", "Double Free"),
    ("CWE590", "Free of Memory not on the Heap"),
]


def generate_extended_suite() -> List[JulietCase]:
    """The extra CWE families (separate so Table 3 stays faithful)."""
    return generate_cwe415() + generate_cwe590()


_GENERATORS = {
    "CWE121": generate_cwe121,
    "CWE122": generate_cwe122,
    "CWE124": generate_cwe124,
    "CWE126": generate_cwe126,
    "CWE127": generate_cwe127,
    "CWE416": generate_cwe416,
    "CWE476": generate_cwe476,
    "CWE761": generate_cwe761,
}


def generate_juliet_suite(cwes: Optional[List[str]] = None) -> List[JulietCase]:
    """All generated cases, in Table 3 CWE order."""
    selected = cwes or [cwe for cwe, _ in TABLE3_CWES]
    cases: List[JulietCase] = []
    for cwe in selected:
        cases.extend(_GENERATORS[cwe]())
    return cases


#: Per-process cache of the canonical (all-CWE) suite.  Cases are frozen
#: and their programs are never mutated at runtime (the instrumenter
#: clones), so sharing one generation across Table 3 slices is safe.
_SUITE_CACHE: Optional[List[JulietCase]] = None


def juliet_suite_cached() -> List[JulietCase]:
    """The canonical suite, generated once per process.

    Fabric workers run many Table 3 slices back to back; regenerating
    the whole suite per slice made every unit pay O(total) generation
    work for an O(slice) run.  Callers must not mutate the returned
    list; slice it instead.
    """
    global _SUITE_CACHE
    if _SUITE_CACHE is None:
        _SUITE_CACHE = generate_juliet_suite()
    return _SUITE_CACHE
