"""Magma-style fuzzing corpora for the redzone experiment (Table 5).

Magma replays crashing inputs through instrumented builds; Table 5 counts
how many of each project's cases a configuration reports.  What separates
the columns is the *overflow jump distance*:

* **near** jumps (a few bytes) land in any redzone — every configuration
  catches them;
* **mid** jumps (hundreds of bytes) clear a 16-byte redzone and land
  inside a neighbouring object, but stay within a 512-byte redzone —
  caught by ``rz=512`` builds and by GiantSan's anchor-based check even
  at ``rz=16``;
* **far** jumps (kilobytes — the CVE-2018-14883 shape in php) clear even
  512-byte redzones; only GiantSan's anchored ``CI(base, access_end)``
  spans the gap.
* **latent** cases crash for non-memory reasons (or need state the
  replay lacks): nobody reports them, they only count in Total.

Each generated case allocates the victim buffer and a large neighbour so
that bypassing jumps genuinely land in allocated memory under *every*
redzone setting (the bump allocator keeps chunks adjacent).

Counts are the paper's Table 5 scaled down ~1/32 per project.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from ..ir.builder import ProgramBuilder
from ..ir.program import Program

#: Jump distances per case kind (bytes past the end of the victim).
NEAR_JUMPS = [1, 4, 8, 12]
MID_JUMPS = [80, 160, 320, 480]
FAR_JUMPS = [1600, 2400, 3200]

#: The neighbour object must be big enough that every jump lands inside
#: it under both redzone settings.
NEIGHBOUR_SIZE = 8192


@dataclass(frozen=True)
class MagmaCase:
    case_id: str
    project: str
    kind: str  # near | mid | far | latent
    build: Callable[[], Program]


@dataclass(frozen=True)
class MagmaProject:
    """One Table 5 row: per-kind case counts (scaled from the paper)."""

    name: str
    loc: str
    near: int
    mid: int = 0
    far: int = 0
    latent: int = 0

    @property
    def total(self) -> int:
        return self.near + self.mid + self.far + self.latent


#: Table 5 rows, counts scaled ~1/32 from the paper's.
TABLE5_PROJECTS: List[MagmaProject] = [
    MagmaProject("php", "1.3M", near=49, mid=13, far=2, latent=33),
    MagmaProject("libpng", "86K", near=30),
    MagmaProject("libtiff", "91K", near=40),
    MagmaProject("libxml2", "284K", near=40, latent=1),
    MagmaProject("openssl", "535K", near=3, latent=44),
    MagmaProject("sqlite3", "367K", near=24),
    MagmaProject("poppler", "43K", near=30, latent=1),
]


def _overflow_case(size: int, jump: int) -> Callable[[], Program]:
    """Victim buffer + big neighbour; one write past the victim's end."""

    def build() -> Program:
        b = ProgramBuilder()
        with b.function("main") as f:
            f.malloc("victim", size)
            f.malloc("neighbour", NEIGHBOUR_SIZE)
            f.store("victim", size + jump - 1, 1, 0x58)
            f.free("neighbour")
            f.free("victim")
        return b.build()

    return build


def _latent_case(size: int) -> Callable[[], Program]:
    """A replay that performs only in-bounds work (no memory bug fires)."""

    def build() -> Program:
        b = ProgramBuilder()
        with b.function("main") as f:
            f.malloc("buf", size)
            with f.loop("i", 0, size // 8) as i:
                f.store("buf", i * 8, 8, i)
            f.free("buf")
        return b.build()

    return build


def generate_project_cases(project: MagmaProject) -> List[MagmaCase]:
    """Deterministic case list for one project."""
    cases: List[MagmaCase] = []
    sizes = [24, 50, 100, 200, 600]
    for index in range(project.near):
        size = sizes[index % len(sizes)]
        jump = NEAR_JUMPS[index % len(NEAR_JUMPS)]
        cases.append(
            MagmaCase(
                f"{project.name}_near_{index}", project.name, "near",
                _overflow_case(size, jump),
            )
        )
    for index in range(project.mid):
        size = sizes[index % len(sizes)]
        jump = MID_JUMPS[index % len(MID_JUMPS)]
        cases.append(
            MagmaCase(
                f"{project.name}_mid_{index}", project.name, "mid",
                _overflow_case(size, jump),
            )
        )
    for index in range(project.far):
        size = sizes[index % len(sizes)]
        jump = FAR_JUMPS[index % len(FAR_JUMPS)]
        cases.append(
            MagmaCase(
                f"{project.name}_far_{index}", project.name, "far",
                _overflow_case(size, jump),
            )
        )
    for index in range(project.latent):
        cases.append(
            MagmaCase(
                f"{project.name}_latent_{index}", project.name, "latent",
                _latent_case(64 + 8 * (index % 16)),
            )
        )
    return cases


def generate_magma_suite() -> List[MagmaCase]:
    """All projects' cases, Table 5 order."""
    cases: List[MagmaCase] = []
    for project in TABLE5_PROJECTS:
        cases.extend(generate_project_cases(project))
    return cases


#: The five configurations Table 5 compares.  Values are (tool name,
#: sanitizer kwargs) for :class:`repro.runtime.session.Session`.
TABLE5_CONFIGS = [
    ("ASan-- (rz=16)", "ASan--", {"redzone": 16}),
    ("ASan-- (rz=512)", "ASan--", {"redzone": 512}),
    ("ASan (rz=16)", "ASan", {"redzone": 16}),
    ("ASan (rz=512)", "ASan", {"redzone": 512}),
    ("GiantSan (rz=16)", "GiantSan", {"redzone": 16}),
]
