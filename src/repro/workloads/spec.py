"""Synthetic proxies for the 24 SPEC CPU2017 programs of Table 2.

The real benchmark cannot run in this substrate, so each proxy models the
*memory-access character* that determines a sanitizer's overhead on that
program — the mix of promotable affine sweeps, dedupe-able structure
accesses, cache-friendly data-dependent indices, allocator churn, and
string intrinsics.  The mixes follow the workload descriptions in the
SPEC documentation and the per-program behaviour visible in the paper's
Table 2 / Figure 10 (e.g. lbm/namd/mcf are dominated by loops the paper
reports as >80% optimizable; perlbench and gcc are interpreter-like and
stay expensive for every tool).

Structure matters for fidelity: hot loops live in *separate functions
receiving buffer pointers as parameters*, exactly as in the originals.
Static analyses are intra-procedural (like LLVM's), so a callee cannot
see the allocation size — which keeps ASan--'s provably-safe elimination
honest while GiantSan's promotion/caching (which only need the pointer)
still apply.

Every proxy is a function ``build() -> Program`` whose entry takes one
``scale`` argument multiplying the iteration counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..ir.builder import ProgramBuilder
from ..ir.nodes import V
from ..ir.program import Program
from . import kernels


@dataclass(frozen=True)
class SpecProgram:
    """One Table 2 row: a named proxy and its default scale argument."""

    name: str
    build: Callable[[], Program]
    default_scale: int = 8
    description: str = ""


# ----------------------------------------------------------------------
# interpreter-like: perlbench, gcc (dispatch + strings + churn)
# ----------------------------------------------------------------------
def _perlbench() -> Program:
    b = ProgramBuilder()
    with b.function("run_ops", params=["code", "heap"]) as k:
        kernels.dispatch_loop(k, "code", "heap", 512, 256, var="pc")
    with b.function("run_strings", params=["sbuf", "dbuf"]) as k:
        kernels.c_string_copy(k, "sbuf", "dbuf", 256, repeats=4, var="s1")
        kernels.reverse_sweep(k, "sbuf", "_send", 64, var="rv1")
        kernels.alloc_churn(k, 8, size=40, var="a1")
    with b.function("touch_svs", params=["svs"]) as k:
        kernels.scattered_access(k, "svs", 96, var="o1", tail_offset=32)
    with b.function("main", params=["scale"]) as f:
        f.malloc("code", 4096)
        f.malloc("heap", 2048)
        f.malloc("sbuf", 256)
        f.malloc("dbuf", 256)
        f.malloc("svs", 768)
        kernels.fill_indices(f, "code", 1024, 256, var="k0")
        kernels.build_pointer_table(f, "svs", 96, object_size=40, var="k1")
        with f.loop("rep", 0, V("scale")):
            f.call("run_ops", [V("code"), V("heap")])
            f.call("run_strings", [V("sbuf"), V("dbuf")])
            f.call("touch_svs", [V("svs")])
    return b.build()


def _gcc() -> Program:
    b = ProgramBuilder()
    with b.function("walk_ast", params=["ast"]) as k:
        kernels.struct_walk(k, "ast", 256, var="r1")
    with b.function("run_passes", params=["code", "pool"]) as k:
        kernels.dispatch_loop(k, "code", "pool", 384, 256, var="pc")
        kernels.alloc_churn(k, 12, size=64, var="a1")
    with b.function("touch_nodes", params=["nodes"]) as k:
        kernels.scattered_access(k, "nodes", 128, var="o1", tail_offset=40)
    with b.function("main", params=["scale"]) as f:
        f.malloc("ast", 8192)
        f.malloc("code", 4096)
        f.malloc("pool", 2048)
        f.malloc("nodes", 1024)
        kernels.fill_indices(f, "code", 1024, 256, var="k0")
        kernels.build_pointer_table(f, "nodes", 128, object_size=48, var="k1")
        with f.loop("rep", 0, V("scale")):
            f.call("walk_ast", [V("ast")])
            f.call("run_passes", [V("code"), V("pool")])
            f.call("touch_nodes", [V("nodes")])
    return b.build()


# ----------------------------------------------------------------------
# pointer chasing: mcf, omnetpp
# ----------------------------------------------------------------------
def _mcf() -> Program:
    b = ProgramBuilder()
    with b.function("simplex", params=["arcs", "nodes"]) as k:
        kernels.pointer_chase(k, "arcs", 768, 1024, var="h1")
        kernels.struct_walk(k, "nodes", 256, var="r1")
    with b.function("main", params=["scale"]) as f:
        f.malloc("arcs", 8192)
        f.malloc("nodes", 8192)
        kernels.fill_chase_links(f, "arcs", 1024, var="k0")
        with f.loop("rep", 0, V("scale")):
            f.call("simplex", [V("arcs"), V("nodes")])
    return b.build()


def _omnetpp() -> Program:
    b = ProgramBuilder()
    with b.function("schedule", params=["queue", "events", "msgs"]) as k:
        kernels.pointer_chase(k, "queue", 384, 512, var="h1")
        kernels.alloc_churn(k, 24, size=56, var="a1")
        kernels.scattered_access(k, "msgs", 96, var="o1", tail_offset=48)
        kernels.struct_walk(k, "events", 128, var="r1")
    with b.function("main", params=["scale"]) as f:
        f.malloc("queue", 4096)
        f.malloc("events", 8192)
        f.malloc("msgs", 768)
        kernels.fill_chase_links(f, "queue", 512, var="k0")
        kernels.build_pointer_table(f, "msgs", 96, object_size=56, var="k1")
        with f.loop("rep", 0, V("scale")):
            f.call("schedule", [V("queue"), V("events"), V("msgs")])
    return b.build()


# ----------------------------------------------------------------------
# numeric affine: namd, lbm, nab, parest, imagick
# ----------------------------------------------------------------------
def _namd() -> Program:
    b = ProgramBuilder()
    with b.function("forces_kernel", params=["forces", "coords"]) as k:
        kernels.affine_read_sweep(k, "coords", 1024, stride=8, width=8,
                                  var="i1", dst="acc1")
        kernels.affine_sweep(k, "forces", 1024, stride=8, width=8,
                             var="i2", value=V("acc1"))
        kernels.struct_walk(k, "coords", 192, record_size=40, var="r1")
    with b.function("main", params=["scale"]) as f:
        f.malloc("forces", 8192)
        f.malloc("coords", 8192)
        with f.loop("rep", 0, V("scale")):
            f.call("forces_kernel", [V("forces"), V("coords")])
    return b.build()


def _lbm() -> Program:
    b = ProgramBuilder()
    with b.function("stream_collide", params=["src", "dst"]) as k:
        kernels.stencil_sweep(k, "src", "dst", 2048, var="i1")
    with b.function("main", params=["scale"]) as f:
        f.malloc("src", 8192)
        f.malloc("dst", 8192)
        with f.loop("rep", 0, V("scale")):
            f.call("stream_collide", [V("src"), V("dst")])
            f.call("stream_collide", [V("dst"), V("src")])
    return b.build()


def _nab() -> Program:
    b = ProgramBuilder()
    with b.function("energy", params=["atoms", "grid"]) as k:
        kernels.affine_read_sweep(k, "atoms", 2048, var="i1", dst="acc1")
        kernels.affine_sweep(k, "grid", 2048, var="i2", value=V("acc1"))
        kernels.string_ops(k, "atoms", "grid", 4096, repeats=1, var="s1")
    with b.function("main", params=["scale"]) as f:
        f.malloc("atoms", 8192)
        f.malloc("grid", 8192)
        with f.loop("rep", 0, V("scale")):
            f.call("energy", [V("atoms"), V("grid")])
    return b.build()


def _parest() -> Program:
    b = ProgramBuilder()
    with b.function("matvec", params=["matrix", "colidx", "vector"]) as k:
        kernels.affine_read_sweep(k, "matrix", 1024, stride=8, width=8,
                                  var="i1", dst="acc1")
        kernels.indirect_access(k, "colidx", "vector", 512, var="i2")
    with b.function("main", params=["scale"]) as f:
        f.malloc("matrix", 16384)
        f.malloc("colidx", 4096)
        f.malloc("vector", 2048)
        kernels.fill_indices(f, "colidx", 1024, 256, var="k0")
        with f.loop("rep", 0, V("scale")):
            f.call("matvec", [V("matrix"), V("colidx"), V("vector")])
    return b.build()


def _imagick() -> Program:
    b = ProgramBuilder()
    with b.function("filter_pass", params=["img", "out"]) as k:
        kernels.stencil_sweep(k, "img", "out", 2048, var="i1")
        kernels.string_ops(k, "img", "out", 8192, repeats=1, var="s1")
    with b.function("main", params=["scale"]) as f:
        f.malloc("img", 16384)
        f.malloc("out", 16384)
        with f.loop("rep", 0, V("scale")):
            f.call("filter_pass", [V("img"), V("out")])
    return b.build()


# ----------------------------------------------------------------------
# search trees / boards: deepsjeng, leela, povray, xalancbmk
# ----------------------------------------------------------------------
def _deepsjeng() -> Program:
    b = ProgramBuilder()
    with b.function("search", params=["board", "hash", "moves", "tt"]) as k:
        kernels.affine_read_sweep(k, "board", 128, var="i1", dst="acc1")
        kernels.indirect_access(k, "moves", "hash", 384, var="i2", width=8)
        kernels.scattered_access(k, "tt", 64, var="o1", tail_offset=16)
        kernels.struct_walk(k, "board", 32, var="r1")
    with b.function("main", params=["scale"]) as f:
        f.malloc("board", 1024)
        f.malloc("hash", 8192)
        f.malloc("moves", 2048)
        f.malloc("tt", 512)
        kernels.fill_indices(f, "moves", 512, 1024, var="k0")
        kernels.build_pointer_table(f, "tt", 64, object_size=24, var="k1")
        with f.loop("rep", 0, V("scale")):
            f.call("search", [V("board"), V("hash"), V("moves"), V("tt")])
    return b.build()


def _leela() -> Program:
    b = ProgramBuilder()
    with b.function("playout", params=["board", "tree"]) as k:
        kernels.pointer_chase(k, "tree", 256, 1024, var="h1")
        kernels.affine_sweep(k, "board", 361, var="i1")
        kernels.struct_walk(k, "tree", 128, var="r1")
    with b.function("main", params=["scale"]) as f:
        f.malloc("board", 2048)
        f.malloc("tree", 8192)
        kernels.fill_chase_links(f, "tree", 1024, var="k0")
        with f.loop("rep", 0, V("scale")):
            f.call("playout", [V("board"), V("tree")])
    return b.build()


def _povray() -> Program:
    b = ProgramBuilder()
    with b.function("trace", params=["objects", "rays", "shapes"]) as k:
        kernels.indirect_access(k, "rays", "objects", 512, var="i1", width=8)
        kernels.struct_walk(k, "objects", 192, var="r1")
        kernels.scattered_access(k, "shapes", 128, var="o1", field_count=3, tail_offset=72)
        kernels.alloc_churn(k, 8, size=96, var="a1")
    with b.function("main", params=["scale"]) as f:
        f.malloc("objects", 8192)
        f.malloc("rays", 4096)
        f.malloc("shapes", 1024)
        kernels.fill_indices(f, "rays", 1024, 256, var="k0")
        kernels.build_pointer_table(f, "shapes", 128, object_size=80, var="k1")
        with f.loop("rep", 0, V("scale")):
            f.call("trace", [V("objects"), V("rays"), V("shapes")])
    return b.build()


def _xalancbmk() -> Program:
    b = ProgramBuilder()
    with b.function("transform", params=["dom", "text", "out", "attrs"]) as k:
        kernels.pointer_chase(k, "dom", 192, 512, var="h1")
        kernels.scattered_access(k, "attrs", 64, var="o1", tail_offset=24)
        kernels.c_string_copy(k, "text", "out", 512, repeats=4, var="s1")
        kernels.string_ops(k, "text", "out", 1024, repeats=2, var="s2")
    with b.function("main", params=["scale"]) as f:
        f.malloc("dom", 8192)
        f.malloc("text", 1024)
        f.malloc("out", 1024)
        f.malloc("attrs", 512)
        kernels.fill_chase_links(f, "dom", 512, var="k0")
        kernels.build_pointer_table(f, "attrs", 64, object_size=32, var="k1")
        with f.loop("rep", 0, V("scale")):
            f.call("transform", [V("dom"), V("text"), V("out"), V("attrs")])
    return b.build()


# ----------------------------------------------------------------------
# compression: xz
# ----------------------------------------------------------------------
def _xz() -> Program:
    b = ProgramBuilder()
    with b.function("find_matches", params=["window", "matches"]) as k:
        kernels.indirect_access(k, "matches", "window", 512, var="i1")
        kernels.affine_read_sweep(k, "window", 1024, var="i2", dst="acc1")
        kernels.string_ops(k, "window", "matches", 2048, repeats=1, var="s1")
    with b.function("main", params=["scale"]) as f:
        f.malloc("window", 16384)
        f.malloc("matches", 4096)
        kernels.fill_indices(f, "matches", 1024, 4096, var="k0")
        with f.loop("rep", 0, V("scale")):
            f.call("find_matches", [V("window"), V("matches")])
    return b.build()


_BUILDERS: Dict[str, Callable[[], Program]] = {
    "perlbench": _perlbench,
    "gcc": _gcc,
    "mcf": _mcf,
    "namd": _namd,
    "parest": _parest,
    "povray": _povray,
    "lbm": _lbm,
    "omnetpp": _omnetpp,
    "xalancbmk": _xalancbmk,
    "deepsjeng": _deepsjeng,
    "imagick": _imagick,
    "leela": _leela,
    "xz": _xz,
    "nab": _nab,
}

#: The 24 Table 2 rows.  The rate (_r) and speed (_s) variants share a
#: proxy kernel but run at different scales, mirroring how SPEC's speed
#: runs use larger inputs of the same program.
SPEC_TABLE2_ROWS: List[SpecProgram] = [
    SpecProgram("500.perlbench_r", _perlbench, 6, "Perl interpreter"),
    SpecProgram("502.gcc_r", _gcc, 6, "C compiler"),
    SpecProgram("505.mcf_r", _mcf, 8, "network simplex"),
    SpecProgram("508.namd_r", _namd, 8, "molecular dynamics"),
    SpecProgram("510.parest_r", _parest, 8, "finite elements"),
    SpecProgram("511.povray_r", _povray, 8, "ray tracing"),
    SpecProgram("519.lbm_r", _lbm, 8, "lattice Boltzmann"),
    SpecProgram("520.omnetpp_r", _omnetpp, 8, "discrete event sim"),
    SpecProgram("523.xalancbmk_r", _xalancbmk, 8, "XML transform"),
    SpecProgram("531.deepsjeng_r", _deepsjeng, 8, "chess search"),
    SpecProgram("538.imagick_r", _imagick, 8, "image manipulation"),
    SpecProgram("541.leela_r", _leela, 8, "Go MCTS"),
    SpecProgram("557.xz_r", _xz, 8, "LZMA compression"),
    SpecProgram("600.perlbench_s", _perlbench, 9, "Perl interpreter"),
    SpecProgram("602.gcc_s", _gcc, 9, "C compiler"),
    SpecProgram("605.mcf_s", _mcf, 12, "network simplex"),
    SpecProgram("619.lbm_s", _lbm, 12, "lattice Boltzmann"),
    SpecProgram("620.omnetpp_s", _omnetpp, 12, "discrete event sim"),
    SpecProgram("623.xalancbmk_s", _xalancbmk, 12, "XML transform"),
    SpecProgram("631.deepsjeng_s", _deepsjeng, 12, "chess search"),
    SpecProgram("638.imagick_s", _imagick, 12, "image manipulation"),
    SpecProgram("641.leela_s", _leela, 12, "Go MCTS"),
    SpecProgram("644.nab_s", _nab, 12, "molecular modelling"),
    SpecProgram("657.xz_s", _xz, 12, "LZMA compression"),
]

SPEC_BY_NAME: Dict[str, SpecProgram] = {p.name: p for p in SPEC_TABLE2_ROWS}


def build_spec_program(name: str) -> Program:
    """Build the proxy program for one Table 2 row."""
    return SPEC_BY_NAME[name].build()
