"""Buffer traversal patterns for the Figure 11 limitation study (§5.4).

Three ways to visit every 4-byte cell of a buffer once:

* **forward** — ascending offsets through the base pointer.  The
  quasi-bound converges in ``ceil(log2(n/8))`` updates; almost every
  check is a cache hit.
* **random** — an in-IR LCG permutes the visit order.  Hits dominate
  once the bound covers the object, so GiantSan still wins (the paper
  measures a bigger win here because ASan's shadow loads miss hardware
  caches under random access; our flat cost model notes this in
  EXPERIMENTS.md).
* **reverse** — descending offsets through a pointer anchored at the
  buffer *end*: every access has a negative offset, and GiantSan keeps
  no quasi-lower-bound, so each access runs a dedicated underflow CI —
  the §5.4 deterioration (GiantSan slower than ASan here).

All loops are data-dependent (``bounded=False``) so no tool can promote
them away; this isolates the per-access check cost as Figure 11 does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from ..ir.builder import ProgramBuilder
from ..ir.nodes import V
from ..ir.program import Program

#: Buffer sizes (bytes) swept by the Figure 11 experiment: 1KB..16KB.
FIGURE11_SIZES = [1024, 2048, 4096, 8192, 16384]


def forward_traversal(size: int) -> Program:
    """Figure 11a: lowest to highest address."""
    cells = size // 4
    b = ProgramBuilder()
    with b.function("walk", params=["y", "n"]) as f:
        with f.loop("i", 0, V("n"), bounded=False) as i:
            f.load("t", "y", i * 4, 4)
            f.compute(2.0)
    with b.function("main") as m:
        m.malloc("buf", size)
        m.call("walk", [V("buf"), cells])
    return b.build()


def random_traversal(size: int) -> Program:
    """Figure 11b: visit cells in LCG-scrambled order."""
    cells = size // 4
    b = ProgramBuilder()
    with b.function("walk", params=["y", "n"]) as f:
        f.assign("seed", 12345)
        with f.loop("i", 0, V("n"), bounded=False):
            f.assign("seed", (V("seed") * 1103515245 + 12345) & 0x7FFFFFFF)
            f.assign("j", V("seed") % V("n"))
            f.load("t", "y", V("j") * 4, 4)
            f.compute(2.0)
    with b.function("main") as m:
        m.malloc("buf", size)
        m.call("walk", [V("buf"), cells])
    return b.build()


def reverse_traversal(size: int) -> Program:
    """Figure 11c: highest to lowest address via a decrementing pointer.

    The working pointer is re-derived every iteration (the classic
    ``p--`` idiom), so the quasi-bound has nothing stable to anchor to:
    GiantSan pays a fresh anchor-enhanced CI per access — the "extra
    instructions" §5.4 blames for being slower than ASan here — while
    walking forward the same loop shape would have cached.
    """
    cells = size // 4
    b = ProgramBuilder()
    with b.function("walk", params=["y", "n"]) as f:
        with f.loop("i", 1, V("n") + 1, bounded=False) as i:
            f.ptr_add("p", "y", (V("n") - i) * 4)
            f.load("t", "p", 0, 4)
            f.compute(2.0)
    with b.function("main") as m:
        m.malloc("buf", size)
        m.call("walk", [V("buf"), cells])
    return b.build()


@dataclass(frozen=True)
class TraversalPattern:
    name: str
    build: Callable[[int], Program]


FIGURE11_PATTERNS: List[TraversalPattern] = [
    TraversalPattern("forward", forward_traversal),
    TraversalPattern("random", random_traversal),
    TraversalPattern("reverse", reverse_traversal),
]
