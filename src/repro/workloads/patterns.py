"""The four memory-operation patterns of Table 1.

Each pattern returns a program whose hot function matches the paper's
example code; the Table 1 harness instruments it per tool and counts the
*static* and *dynamic* checks, reproducing the operation-level vs
instruction-level comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from ..ir.builder import ProgramBuilder
from ..ir.nodes import V
from ..ir.program import Program


@dataclass(frozen=True)
class Table1Pattern:
    """One Table 1 row."""

    name: str
    analysis: str
    example: str
    build: Callable[[], Program]
    #: N used when the pattern is parametric.
    n: int = 64


def constant_propagation_pattern(n: int = 64) -> Program:
    """``p[0] + p[10] + p[20]`` — mergeable via constant propagation."""
    b = ProgramBuilder()
    with b.function("kernel", params=["p"]) as f:
        f.load("a", "p", 0, 4)
        f.load("b", "p", 40, 4)
        f.load("c", "p", 80, 4)
        f.assign("sum", V("a") + V("b") + V("c"))
    with b.function("main") as m:
        m.malloc("buf", 128)
        m.call("kernel", [V("buf")])
    return b.build()


def predefined_semantics_pattern(n: int = 64) -> Program:
    """``memset(p, 0, N)`` — one operation, Θ(N) instruction checks."""
    b = ProgramBuilder()
    with b.function("kernel", params=["p", "N"]) as f:
        f.memset("p", 0, V("N"))
    with b.function("main") as m:
        m.malloc("buf", 8 * n)
        m.call("kernel", [V("buf"), 8 * n])
    return b.build()


def loop_bound_pattern(n: int = 64) -> Program:
    """``for (i = 0; i < N; i++) p[i] = foo(i)`` — SCEV promotable."""
    b = ProgramBuilder()
    with b.function("kernel", params=["p", "N"]) as f:
        with f.loop("i", 0, V("N")) as i:
            f.store("p", i * 4, 4, i)
    with b.function("main") as m:
        m.malloc("buf", 4 * n)
        m.call("kernel", [V("buf"), n])
    return b.build()


def must_alias_pattern(n: int = 64) -> Program:
    """``p[0] = 10; for (i : vec) p[i] = foo(i)`` — slow check once, then
    cached fast checks (Table 1's fourth row)."""
    b = ProgramBuilder()
    with b.function("kernel", params=["p", "vec", "N"]) as f:
        f.store("p", 0, 4, 10)
        with f.loop("i", 0, V("N"), bounded=False) as i:
            f.load("e", "vec", i * 4, 4)
            f.store("p", V("e") * 4, 4, i)
    with b.function("main") as m:
        m.malloc("buf", 4 * n)
        m.malloc("vec", 4 * n)
        with m.loop("k", 0, n) as k:
            m.store("vec", k * 4, 4, k)
        m.call("kernel", [V("buf"), V("vec"), n])
    return b.build()


TABLE1_PATTERNS: List[Table1Pattern] = [
    Table1Pattern(
        name="constant-propagation",
        analysis="Constant Propagation",
        example="p[0] + p[10] + p[20]",
        build=constant_propagation_pattern,
    ),
    Table1Pattern(
        name="predefined-semantics",
        analysis="Predefined Semantics",
        example="memset(p, 0, N)",
        build=predefined_semantics_pattern,
    ),
    Table1Pattern(
        name="loop-bound",
        analysis="Loop Bound Analysis",
        example="for (i = 0; i < N; i++) p[i] = foo(i)",
        build=loop_bound_pattern,
    ),
    Table1Pattern(
        name="must-alias",
        analysis="Must-alias Analysis",
        example="p[0] = 10; for (i : vec) p[i] = foo(i)",
        build=must_alias_pattern,
    ),
]
