"""CVE-shaped scenarios from the Linux Flaw Project (Table 4).

Each entry reconstructs the *memory-error shape* of one CVE the paper
evaluates — the program, buffer sizes, and access pattern are reduced to
the faulting path described in the CVE report.  Detection then depends
only on the bug mechanics (overflow distance vs redzone/slack, stack vs
heap, temporal vs spatial), which is what Table 4 compares across tools.

Where a CVE row in Table 4 shows an LFP miss, the scenario encodes the
reason: CVE-2017-12858 (libzip) is a use-after-free reached through a
*second* pointer (LFP's per-base table recovers a stale region),
CVE-2017-9165 (autotrace) overflows by a couple of bytes inside LFP's
rounding slack, and CVE-2017-14409 (mp3gain) is a stack buffer overflow
(LFP leaves the stack unguarded).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from ..ir.builder import ProgramBuilder
from ..ir.nodes import V
from ..ir.program import Program


@dataclass(frozen=True)
class CveScenario:
    """One Table 4 row."""

    program_name: str
    cve_id: str
    description: str
    build: Callable[[], Program]


def _heap_overflow(size: int, distance: int, width: int = 1) -> Callable[[], Program]:
    def build() -> Program:
        b = ProgramBuilder()
        with b.function("main") as f:
            f.malloc("buf", size)
            f.store("buf", size + distance - width, width, 0x41)
            f.free("buf")
        return b.build()

    return build


def _heap_overread(size: int, distance: int) -> Callable[[], Program]:
    def build() -> Program:
        b = ProgramBuilder()
        with b.function("main") as f:
            f.malloc("buf", size)
            f.load("x", "buf", size + distance - 1, 1)
            f.free("buf")
        return b.build()

    return build


def _scan_overread(size: int, overrun: int) -> Callable[[], Program]:
    """A parser loop that runs past the end (the libtiff/zziplib shape)."""

    def build() -> Program:
        b = ProgramBuilder()
        with b.function("main") as f:
            f.malloc("buf", size)
            f.assign("acc", 0)
            with f.loop("i", 0, size + overrun, bounded=False) as i:
                f.load("t", "buf", i, 1)
                f.assign("acc", V("acc") + V("t"))
            f.free("buf")
        return b.build()

    return build


def _stack_overflow(size: int, distance: int) -> Callable[[], Program]:
    def build() -> Program:
        b = ProgramBuilder()
        with b.function("main") as f:
            f.stack_alloc("buf", size)
            with f.loop("i", 0, size + distance, bounded=False) as i:
                f.store("buf", i, 1, 0x42)
        return b.build()

    return build


def _use_after_free_via_alias() -> Callable[[], Program]:
    """libzip CVE-2017-12858: the zip source keeps an aliased pointer to
    a freed entry; the access goes through the alias."""

    def build() -> Program:
        b = ProgramBuilder()
        with b.function("main") as f:
            f.malloc("entry", 96)
            f.ptr_add("alias", "entry", 16)
            f.free("entry")
            f.load("x", "alias", 0, 8)
        return b.build()

    return build


def _strcpy_overflow(dst_size: int, src_len: int) -> Callable[[], Program]:
    """lame CVE-2015-9101 shape: strcpy of an oversized string."""

    def build() -> Program:
        b = ProgramBuilder()
        with b.function("main") as f:
            f.malloc("src", src_len + 8)
            f.memset("src", 0, src_len, 0x41)
            f.store("src", src_len, 1, 0)
            f.malloc("dst", dst_size)
            f.strcpy("dst", 0, "src", 0)
            f.free("dst")
            f.free("src")
        return b.build()

    return build


#: The 28 CVEs of Table 4, grouped by program as in the paper.
TABLE4_SCENARIOS: List[CveScenario] = [
    CveScenario("libzip", "CVE-2017-12858",
                "use-after-free via aliased entry pointer",
                _use_after_free_via_alias()),
    CveScenario("autotrace", "CVE-2017-9164",
                "heap overread parsing a bitmap header",
                _heap_overread(54, 4)),
    CveScenario("autotrace", "CVE-2017-9165",
                "2-byte heap overflow inside LFP's rounding slack",
                _heap_overflow(78, 2)),
] + [
    # pixel-conversion overflows write a whole row past the end: the
    # distance always exceeds LFP's slack, so every tool catches these
    CveScenario("autotrace", f"CVE-2017-{9166 + k}",
                "heap overflow in pixel conversion",
                _heap_overflow(64 + 16 * k, 20 + k))
    for k in range(8)
] + [
    # resample overreads scan past the end of class-exact rows
    CveScenario("imageworsener", f"CVE-2017-{9204 + k}",
                "heap overread in image resample",
                _scan_overread(96 + 32 * k, 6 + k))
    for k in range(4)
] + [
    CveScenario("lame", "CVE-2015-9101",
                "strcpy heap overflow in id3 handling",
                _strcpy_overflow(48, 80)),
    CveScenario("zziplib", "CVE-2017-5976",
                "heap overread of zip extra field",
                _scan_overread(64, 10)),
    CveScenario("zziplib", "CVE-2017-5977",
                "heap overread of zip central directory",
                _heap_overread(128, 6)),
    CveScenario("libtiff", "CVE-2016-10270",
                "heap overread in TIFFReadDirEntry",
                _scan_overread(192, 12)),
    CveScenario("libtiff", "CVE-2016-10271",
                "heap overflow in tiffcrop",
                _heap_overflow(128, 24)),
    CveScenario("libtiff", "CVE-2016-10095",
                "overflow copying a directory entry into a fixed buffer",
                _heap_overflow(64, 16)),
    CveScenario("potrace", "CVE-2017-7263",
                "far heap overread (bypasses 16-byte in-band redzones)",
                _heap_overread(256, 40)),
    CveScenario("mp3gain", "CVE-2017-14407",
                "overread scanning an APE tag buffer",
                _scan_overread(64, 8)),
    CveScenario("mp3gain", "CVE-2017-14408",
                "heap overflow in tag handling",
                _heap_overflow(96, 12)),
    CveScenario("mp3gain", "CVE-2017-14409",
                "8-byte stack overflow (unprotected by LFP)",
                _stack_overflow(32, 8)),
]


def scenarios_by_program() -> dict:
    grouped: dict = {}
    for scenario in TABLE4_SCENARIOS:
        grouped.setdefault(scenario.program_name, []).append(scenario)
    return grouped
