"""Simulated process memory: arenas, allocator, quarantine, stack."""

from .layout import (
    SEGMENT_SIZE,
    SEGMENT_SHIFT,
    OBJECT_ALIGNMENT,
    DEFAULT_REDZONE,
    MIN_REDZONE,
    ArenaLayout,
    align_up,
    align_down,
    is_aligned,
    segment_index,
    segment_offset,
    segments_spanned,
)
from .address_space import AddressSpace
from .allocator import (
    Allocation,
    AllocationState,
    HeapAllocator,
    exact_size_policy,
    power_of_two_policy,
    low_fat_policy,
)
from .globals import GlobalAllocator, GlobalVariable
from .quarantine import Quarantine
from .stack import StackAllocator, StackFrame, StackVariable

__all__ = [
    "SEGMENT_SIZE",
    "SEGMENT_SHIFT",
    "OBJECT_ALIGNMENT",
    "DEFAULT_REDZONE",
    "MIN_REDZONE",
    "ArenaLayout",
    "align_up",
    "align_down",
    "is_aligned",
    "segment_index",
    "segment_offset",
    "segments_spanned",
    "AddressSpace",
    "Allocation",
    "AllocationState",
    "HeapAllocator",
    "exact_size_policy",
    "power_of_two_policy",
    "low_fat_policy",
    "GlobalAllocator",
    "GlobalVariable",
    "Quarantine",
    "StackAllocator",
    "StackFrame",
    "StackVariable",
]
