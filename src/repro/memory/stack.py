"""Simulated stack with poisoned frame slots.

ASan-style stack instrumentation places each addressable local variable in
its own 8-byte-aligned slot separated by poisoned gaps, so stack buffer
overflows hit shadow poison.  Frames are pushed/popped LIFO; popping a
frame leaves its whole extent poisoned, which is how use-after-return is
caught while the address range stays un-recycled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..errors import AllocationError
from .layout import OBJECT_ALIGNMENT, align_up
from .address_space import AddressSpace


@dataclass
class StackVariable:
    """One local variable placed in a stack frame."""

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size


@dataclass
class StackFrame:
    """One function frame: a contiguous extent holding its variables."""

    frame_id: int
    base: int
    size: int
    variables: List[StackVariable] = field(default_factory=list)

    @property
    def end(self) -> int:
        return self.base + self.size


class StackAllocator:
    """LIFO frame allocator over the stack arena.

    The gap between consecutive variables inside a frame acts as a stack
    redzone (default 16 bytes, mirroring ASan's inter-variable poison).
    """

    def __init__(
        self,
        space: AddressSpace,
        redzone: int = 16,
        alignment: int = OBJECT_ALIGNMENT,
    ):
        self.space = space
        self.redzone = max(redzone, 0)
        self.alignment = alignment
        self._base = space.layout.stack_base
        self._limit = space.layout.stack_end
        self._cursor = self._base
        self._frames: List[StackFrame] = []
        self._saved_cursors: List[int] = []
        self._next_frame_id = 1

    def push_frame(self, sizes: List[int], names: List[str] = None) -> StackFrame:
        """Create a frame with one variable per entry in ``sizes``."""
        if names is None:
            names = [f"var{i}" for i in range(len(sizes))]
        if len(names) != len(sizes):
            raise ValueError("names and sizes must have equal length")
        frame_base = align_up(self._cursor + self.redzone, self.alignment)
        cursor = frame_base
        variables = []
        for name, size in zip(names, sizes):
            if size <= 0:
                raise AllocationError(f"stack variable {name} has size {size}")
            variables.append(StackVariable(name=name, base=cursor, size=size))
            cursor = align_up(cursor + size + self.redzone, self.alignment)
        if cursor > self._limit:
            raise AllocationError("stack arena exhausted")
        frame = StackFrame(
            frame_id=self._next_frame_id,
            base=frame_base,
            size=cursor - frame_base,
            variables=variables,
        )
        self._next_frame_id += 1
        self._frames.append(frame)
        self._saved_cursors.append(self._cursor)
        self._cursor = cursor
        return frame

    def pop_frame(self) -> StackFrame:
        """Pop the most recent frame; its extent stays poisoned by the
        sanitizer until a later frame reuses the addresses."""
        if not self._frames:
            raise AllocationError("pop_frame on an empty stack")
        frame = self._frames.pop()
        self._cursor = self._saved_cursors.pop()
        return frame

    @property
    def depth(self) -> int:
        return len(self._frames)

    @property
    def current_frame(self) -> StackFrame:
        if not self._frames:
            raise AllocationError("no active stack frame")
        return self._frames[-1]
