"""Byte-accurate simulated address space.

This is the substrate the sanitizers protect: a flat range of bytes split
into heap / stack / globals arenas (see :mod:`repro.memory.layout`).  It
stores real data so workloads can compute with loaded values (the paper's
``y[j] = x[i]`` pattern needs genuine loads), and it performs *no* safety
checking of its own beyond arena bounds — safety is the sanitizers' job.
"""

from __future__ import annotations

import struct
from typing import Iterable

from ..errors import AddressSpaceError
from .fillcache import fill_pattern
from .layout import ArenaLayout

_STRUCT_BY_WIDTH = {1: "<B", 2: "<H", 4: "<I", 8: "<Q"}
_MASK_BY_WIDTH = {1: 0xFF, 2: 0xFFFF, 4: 0xFFFFFFFF, 8: 0xFFFFFFFFFFFFFFFF}

#: Precompiled codecs; ``struct.Struct`` methods skip the per-call format
#: parse and are also what the compiled engine inlines for loads/stores.
CODEC_BY_WIDTH = {
    width: struct.Struct(fmt) for width, fmt in _STRUCT_BY_WIDTH.items()
}


class AddressSpace:
    """A flat, byte-addressable memory with arena bookkeeping.

    Addresses are plain integers.  ``load``/``store`` move little-endian
    integers of width 1, 2, 4, or 8; ``read_bytes``/``write_bytes`` move
    raw ranges (used by the memset/memcpy intrinsics).
    """

    def __init__(self, layout: ArenaLayout = None):
        self.layout = layout or ArenaLayout()
        self._size = self.layout.total_size
        self._mem = bytearray(self._size)

    def __len__(self) -> int:
        return self._size

    def _bounds_check(self, address: int, size: int) -> None:
        if address < 0 or address + size > self._size:
            raise AddressSpaceError(
                f"access [{address:#x}, {address + size:#x}) leaves the "
                f"simulated address space of {self._size:#x} bytes"
            )

    def load(self, address: int, width: int) -> int:
        """Load a ``width``-byte little-endian unsigned integer."""
        codec = CODEC_BY_WIDTH.get(width)
        if codec is None:
            raise ValueError(f"unsupported load width: {width}")
        if address < 0 or address + width > self._size:
            self._bounds_check(address, width)
        return codec.unpack_from(self._mem, address)[0]

    def store(self, address: int, width: int, value: int) -> None:
        """Store a ``width``-byte little-endian unsigned integer."""
        codec = CODEC_BY_WIDTH.get(width)
        if codec is None:
            raise ValueError(f"unsupported store width: {width}")
        if address < 0 or address + width > self._size:
            self._bounds_check(address, width)
        codec.pack_into(self._mem, address, value & _MASK_BY_WIDTH[width])

    def read_bytes(self, address: int, size: int) -> bytes:
        """Copy ``size`` raw bytes out of memory."""
        if size < 0:
            raise ValueError("size must be non-negative")
        self._bounds_check(address, size)
        return bytes(self._mem[address : address + size])

    def write_bytes(self, address: int, data: bytes) -> None:
        """Copy raw bytes into memory."""
        self._bounds_check(address, len(data))
        self._mem[address : address + len(data)] = data

    def fill(self, address: int, size: int, byte: int) -> None:
        """memset: set ``size`` bytes to ``byte``."""
        if size < 0:
            raise ValueError("size must be non-negative")
        self._bounds_check(address, size)
        self._mem[address : address + size] = fill_pattern(byte & 0xFF, size)

    def copy(self, dst: int, src: int, size: int) -> None:
        """memmove-style copy that tolerates overlap."""
        if size < 0:
            raise ValueError("size must be non-negative")
        self._bounds_check(src, size)
        self._bounds_check(dst, size)
        self._mem[dst : dst + size] = bytes(self._mem[src : src + size])

    def find_byte(self, address: int, byte: int, limit: int) -> int:
        """Offset of the first occurrence of ``byte`` in ``[address,
        address+limit)``, or -1 when absent (strlen support)."""
        self._bounds_check(address, limit)
        index = self._mem.find(bytes([byte & 0xFF]), address, address + limit)
        return -1 if index < 0 else index - address

    def arena_of(self, address: int) -> str:
        """Arena name for ``address`` (delegates to the layout)."""
        return self.layout.arena_of(address)

    def snapshot(self, addresses: Iterable[int]) -> bytes:
        """Bytes at the given addresses, for debugging and tests."""
        return bytes(self._mem[a] for a in addresses)
