"""Simulated heap allocator with redzones, mirroring compiler-rt's design.

Every allocation is carved as ``[left redzone][object][right redzone]``.
Objects are 8-byte aligned (paper §4.1), and the redzone width is
configurable — the paper evaluates 16-byte and 512-byte redzones for ASan
and shows GiantSan needs only 1 byte thanks to anchor-based checks.

The allocator is policy-parameterized: baselines like LFP round the
*usable* size up to a size class, which is exactly what produces their
false negatives (accesses inside the rounding slack hit allocated-but-
unrequested bytes instead of a redzone).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..errors import AllocationError
from .layout import OBJECT_ALIGNMENT, align_up
from .address_space import AddressSpace


class AllocationState(enum.Enum):
    LIVE = "live"
    QUARANTINED = "quarantined"
    RECYCLED = "recycled"


@dataclass
class Allocation:
    """Bookkeeping for one heap object and its redzones."""

    allocation_id: int
    base: int
    requested_size: int
    usable_size: int
    left_redzone: int
    right_redzone: int
    state: AllocationState = AllocationState.LIVE

    @property
    def end(self) -> int:
        """One past the last *requested* byte."""
        return self.base + self.requested_size

    @property
    def usable_end(self) -> int:
        """One past the last *usable* byte (== end unless a rounding
        policy granted slack, as in LFP/BBC)."""
        return self.base + self.usable_size

    @property
    def chunk_base(self) -> int:
        return self.base - self.left_redzone

    @property
    def chunk_end(self) -> int:
        return self.usable_end + self.right_redzone

    @property
    def chunk_size(self) -> int:
        return self.chunk_end - self.chunk_base

    def contains(self, address: int) -> bool:
        """True when ``address`` lies in the requested object region."""
        return self.base <= address < self.end


#: A size policy maps the requested size to the usable size the allocator
#: actually reserves.  The default is exact (aligned) sizing.
SizePolicy = Callable[[int], int]


def exact_size_policy(requested: int) -> int:
    """Reserve exactly the requested bytes (redzone starts right after,
    up to 8-byte alignment of the *chunk*, not the object end)."""
    return requested


def power_of_two_policy(requested: int) -> int:
    """BBC-style rounding: usable size is the next power of two.

    This is the policy whose slack swallows overflows like ``p[700]`` on a
    600-byte buffer (paper §2.1).
    """
    if requested <= 1:
        return 1
    return 1 << (requested - 1).bit_length()


def low_fat_policy(requested: int) -> int:
    """LFP-style size classes: powers of two plus 1.25/1.5/1.75 midpoints.

    LFP improves on BBC by allowing more size classes, shrinking — but not
    eliminating — the rounding slack.
    """
    if requested <= 16:
        return 16
    power = 1 << (requested.bit_length() - 1)
    for numerator in (4, 5, 6, 7, 8):
        candidate = power * numerator // 4
        if requested <= candidate:
            return candidate
    return power * 2


class HeapAllocator:
    """First-fit heap allocator over the heap arena of an address space.

    Freed chunks are returned through :meth:`release_chunk` (normally by
    the quarantine once its budget evicts them) and recycled by exact
    chunk size, which matches compiler-rt's size-class freelists closely
    enough for the paper's experiments.
    """

    def __init__(
        self,
        space: AddressSpace,
        redzone: int = 16,
        size_policy: SizePolicy = exact_size_policy,
    ):
        if redzone < 0:
            raise ValueError("redzone must be non-negative")
        self.space = space
        self.redzone = redzone
        self.size_policy = size_policy
        self._cursor = space.layout.heap_base
        self._limit = space.layout.heap_end
        self._free_lists: Dict[int, List[int]] = {}
        self._live: Dict[int, Allocation] = {}
        self._by_id: Dict[int, Allocation] = {}
        self._next_id = 1
        self.total_allocated = 0
        self.peak_in_use = 0
        self._in_use = 0

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def malloc(self, size: int) -> Allocation:
        """Allocate ``size`` bytes; returns the :class:`Allocation`.

        The base address is always 8-byte aligned and the chunk is padded
        so neighbouring chunks never share a shadow segment.
        """
        if size < 0:
            raise AllocationError(f"negative allocation size: {size}")
        usable = self.size_policy(max(size, 1))
        if usable < size:
            raise AllocationError(
                f"size policy shrank the request: {size} -> {usable}"
            )
        left = align_up(max(self.redzone, 0), OBJECT_ALIGNMENT) if self.redzone else 0
        # Right redzone absorbs the alignment padding after the object, so
        # the chunk end is segment aligned and chunks never share segments.
        right_start = usable
        chunk_size = align_up(left + right_start + max(self.redzone, 1), OBJECT_ALIGNMENT)
        chunk_base = self._acquire_chunk(chunk_size)
        base = chunk_base + left
        allocation = Allocation(
            allocation_id=self._next_id,
            base=base,
            requested_size=size,
            usable_size=usable,
            left_redzone=left,
            right_redzone=chunk_base + chunk_size - (base + usable),
        )
        self._next_id += 1
        self._live[base] = allocation
        self._by_id[allocation.allocation_id] = allocation
        self.total_allocated += size
        self._in_use += allocation.chunk_size
        self.peak_in_use = max(self.peak_in_use, self._in_use)
        return allocation

    def _acquire_chunk(self, chunk_size: int) -> int:
        free = self._free_lists.get(chunk_size)
        if free:
            return free.pop()
        base = self._cursor
        if base + chunk_size > self._limit:
            raise AllocationError(
                f"heap arena exhausted: need {chunk_size} bytes, "
                f"{self._limit - base} remain"
            )
        self._cursor += chunk_size
        return base

    # ------------------------------------------------------------------
    # deallocation
    # ------------------------------------------------------------------
    def free(self, address: int) -> Allocation:
        """Mark the allocation based at ``address`` as freed.

        The chunk is *not* reusable until :meth:`release_chunk` is called
        (the quarantine owns that decision).  Raises
        :class:`AllocationError` for invalid or double frees — callers
        that want a report instead should use :meth:`lookup` first.
        """
        allocation = self._live.get(address)
        if allocation is None or allocation.state is not AllocationState.LIVE:
            raise AllocationError(f"invalid free of address {address:#x}")
        allocation.state = AllocationState.QUARANTINED
        del self._live[address]
        return allocation

    def release_chunk(self, allocation: Allocation) -> None:
        """Return a quarantined chunk to the freelist for reuse."""
        if allocation.state is not AllocationState.QUARANTINED:
            raise AllocationError(
                f"allocation {allocation.allocation_id} is not quarantined"
            )
        allocation.state = AllocationState.RECYCLED
        self._in_use -= allocation.chunk_size
        self._free_lists.setdefault(allocation.chunk_size, []).append(
            allocation.chunk_base
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def lookup(self, address: int) -> Optional[Allocation]:
        """The live allocation whose base is exactly ``address``."""
        return self._live.get(address)

    def find_containing(self, address: int) -> Optional[Allocation]:
        """The live allocation whose requested region contains ``address``.

        Linear in the number of live objects; used only for diagnostics
        and report enrichment, never on the hot check path.
        """
        for allocation in self._live.values():
            if allocation.contains(address):
                return allocation
        return None

    def by_id(self, allocation_id: int) -> Optional[Allocation]:
        return self._by_id.get(allocation_id)

    @property
    def live_allocations(self) -> List[Allocation]:
        return list(self._live.values())

    @property
    def bytes_in_use(self) -> int:
        return self._in_use
