"""Arena layout constants and alignment helpers for the simulated memory.

The simulated process uses a single flat address range partitioned into
arenas, mirroring how ASan lays out heap, stack and globals in distinct
address regions.  All sanitizers in this package share these constants so
their shadow mappings agree.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Size of one shadow segment in bytes (ASan and GiantSan both use 8).
SEGMENT_SIZE = 8

#: log2(SEGMENT_SIZE); shadow index of address ``a`` is ``a >> SEGMENT_SHIFT``.
SEGMENT_SHIFT = 3

#: Object alignment guaranteed by the allocator (paper §4.1: 8-byte aligned).
OBJECT_ALIGNMENT = 8

#: Default redzone placed after (and before) each heap object, in bytes.
#: The paper's default configuration uses 16 (Table 2 caption).
DEFAULT_REDZONE = 16

#: Minimal redzone usable by GiantSan's anchor-based enhancement (§4.4.1).
MIN_REDZONE = 1

#: Default quarantine budget in bytes (compiler-rt default is 256 MiB; we
#: scale it to the simulated arena size).
DEFAULT_QUARANTINE_BYTES = 1 << 20

#: Null page: the first page is never allocatable so null dereferences trap.
NULL_GUARD_SIZE = 4096


def align_up(value: int, alignment: int = OBJECT_ALIGNMENT) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    if alignment <= 0 or alignment & (alignment - 1):
        raise ValueError(f"alignment must be a positive power of two: {alignment}")
    return (value + alignment - 1) & ~(alignment - 1)


def align_down(value: int, alignment: int = OBJECT_ALIGNMENT) -> int:
    """Round ``value`` down to the previous multiple of ``alignment``."""
    if alignment <= 0 or alignment & (alignment - 1):
        raise ValueError(f"alignment must be a positive power of two: {alignment}")
    return value & ~(alignment - 1)


def is_aligned(value: int, alignment: int = OBJECT_ALIGNMENT) -> bool:
    """True when ``value`` is a multiple of ``alignment``."""
    return value & (alignment - 1) == 0


def segment_index(address: int) -> int:
    """Shadow segment index covering ``address``."""
    return address >> SEGMENT_SHIFT


def segment_offset(address: int) -> int:
    """Offset of ``address`` inside its segment (``address % 8``)."""
    return address & (SEGMENT_SIZE - 1)


def segments_spanned(address: int, size: int) -> int:
    """Number of shadow segments the region ``[address, address+size)`` touches."""
    if size <= 0:
        return 0
    first = segment_index(address)
    last = segment_index(address + size - 1)
    return last - first + 1


@dataclass(frozen=True)
class ArenaLayout:
    """Address-range plan for the simulated process.

    The heap, stack, and globals arenas are carved out of one contiguous
    byte buffer; ``total_size`` bytes of backing store and
    ``total_size >> SEGMENT_SHIFT`` shadow bytes are allocated up front.
    """

    heap_size: int = 1 << 22
    stack_size: int = 1 << 20
    globals_size: int = 1 << 18

    # Derived bounds (``heap_base`` .. ``total_size``) are materialized
    # once in ``__post_init__`` rather than exposed as properties: the
    # bounds checks on every load/store read them, so recomputing the
    # arena sums per access was a measurable fraction of sweep wall-clock.

    def __post_init__(self) -> None:
        for name in ("heap_size", "stack_size", "globals_size"):
            value = getattr(self, name)
            if value <= 0 or not is_aligned(value, SEGMENT_SIZE):
                raise ValueError(f"{name} must be positive and 8-byte aligned")
        assign = object.__setattr__
        assign(self, "heap_base", NULL_GUARD_SIZE)
        assign(self, "heap_end", NULL_GUARD_SIZE + self.heap_size)
        assign(self, "stack_base", self.heap_end)
        assign(self, "stack_end", self.stack_base + self.stack_size)
        assign(self, "globals_base", self.stack_end)
        assign(self, "globals_end", self.globals_base + self.globals_size)
        assign(self, "total_size", self.globals_end)

    def arena_of(self, address: int) -> str:
        """Name of the arena containing ``address``.

        Returns one of ``"null"``, ``"heap"``, ``"stack"``, ``"globals"``,
        or ``"wild"`` for addresses outside every arena.
        """
        if 0 <= address < NULL_GUARD_SIZE:
            return "null"
        if self.heap_base <= address < self.heap_end:
            return "heap"
        if self.stack_base <= address < self.stack_end:
            return "stack"
        if self.globals_base <= address < self.globals_end:
            return "globals"
        return "wild"
