"""Cached single-byte fill patterns.

``bytes([code]) * count`` shows up on every memset intrinsic and on every
shadow poison/unpoison event; allocating a fresh pattern per call makes
malloc/free churn generate garbage proportional to object size.  This
module keeps one pattern buffer per byte value (there are at most 256)
and hands out zero-copy ``memoryview`` slices of it, so a fill becomes
one precomputed slice write.

Patterns above :data:`FILL_CACHE_MAX` bytes are built on demand and not
retained: huge fills (arena-wide initialization) happen once, and caching
them would pin megabytes per byte value.  The cache as a whole is bounded
by :data:`FILL_CACHE_TOTAL_MAX`: buffers are kept in LRU order and the
coldest are evicted when the total resident bytes exceed the budget, so a
workload that sweeps many byte values with large fills cannot pin
``256 * FILL_CACHE_MAX`` bytes forever.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Union

#: Largest pattern kept resident per byte value (64 KiB).
FILL_CACHE_MAX = 1 << 16

#: Total resident budget across all byte values (1 MiB).  Eviction is
#: LRU and always leaves at least the most-recently-used pattern.
FILL_CACHE_TOTAL_MAX = 1 << 20

_PATTERNS: "OrderedDict[int, bytes]" = OrderedDict()
_RESIDENT_BYTES = 0


def fill_pattern(code: int, count: int) -> Union[bytes, memoryview]:
    """A read-only bytes-like of ``count`` copies of ``code & 0xFF``.

    The result aliases a shared cached buffer — treat it as immutable and
    consume it immediately (slice assignment, ``write_codes``, …).
    """
    global _RESIDENT_BYTES
    code &= 0xFF
    if count <= 0:
        return b""
    if count > FILL_CACHE_MAX:
        return bytes([code]) * count
    pattern = _PATTERNS.get(code)
    if pattern is None or len(pattern) < count:
        # Grow in doubling steps so repeated slightly-larger requests do
        # not rebuild the buffer each time.
        size = 256
        while size < count:
            size <<= 1
        if pattern is not None:
            _RESIDENT_BYTES -= len(pattern)
        pattern = bytes([code]) * size
        _PATTERNS[code] = pattern
        _RESIDENT_BYTES += size
        _PATTERNS.move_to_end(code)
        while _RESIDENT_BYTES > FILL_CACHE_TOTAL_MAX and len(_PATTERNS) > 1:
            _, evicted = _PATTERNS.popitem(last=False)
            _RESIDENT_BYTES -= len(evicted)
    else:
        _PATTERNS.move_to_end(code)
    if len(pattern) == count:
        return pattern
    return memoryview(pattern)[:count]


def fill_cache_stats() -> dict:
    """Current cache occupancy (introspection / regression tests)."""
    return {
        "patterns": len(_PATTERNS),
        "resident_bytes": _RESIDENT_BYTES,
        "budget": FILL_CACHE_TOTAL_MAX,
    }


def clear_fill_patterns() -> None:
    """Drop all cached patterns (test isolation hook)."""
    global _RESIDENT_BYTES
    _PATTERNS.clear()
    _RESIDENT_BYTES = 0
