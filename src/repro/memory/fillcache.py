"""Cached single-byte fill patterns.

``bytes([code]) * count`` shows up on every memset intrinsic and on every
shadow poison/unpoison event; allocating a fresh pattern per call makes
malloc/free churn generate garbage proportional to object size.  This
module keeps one grow-only pattern buffer per byte value (there are at
most 256) and hands out zero-copy ``memoryview`` slices of it, so a fill
becomes one precomputed slice write.

Patterns above :data:`FILL_CACHE_MAX` bytes are built on demand and not
retained: huge fills (arena-wide initialization) happen once, and caching
them would pin megabytes per byte value.
"""

from __future__ import annotations

from typing import Dict, Union

#: Largest pattern kept resident per byte value (64 KiB).
FILL_CACHE_MAX = 1 << 16

_PATTERNS: Dict[int, bytes] = {}


def fill_pattern(code: int, count: int) -> Union[bytes, memoryview]:
    """A read-only bytes-like of ``count`` copies of ``code & 0xFF``.

    The result aliases a shared cached buffer — treat it as immutable and
    consume it immediately (slice assignment, ``write_codes``, …).
    """
    code &= 0xFF
    if count <= 0:
        return b""
    if count > FILL_CACHE_MAX:
        return bytes([code]) * count
    pattern = _PATTERNS.get(code)
    if pattern is None or len(pattern) < count:
        # Grow in doubling steps so repeated slightly-larger requests do
        # not rebuild the buffer each time.
        size = 256
        while size < count:
            size <<= 1
        pattern = bytes([code]) * size
        _PATTERNS[code] = pattern
    if len(pattern) == count:
        return pattern
    return memoryview(pattern)[:count]


def clear_fill_patterns() -> None:
    """Drop all cached patterns (test isolation hook)."""
    _PATTERNS.clear()
