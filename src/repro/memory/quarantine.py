"""FIFO memory quarantine for temporal-error detection.

Freed chunks stay non-addressable for a while before being recycled, so a
use-after-free lands on a "freed" shadow state instead of a reallocated
object (paper §2.2).  Like compiler-rt, the quarantine has a byte budget:
when it overflows, the oldest chunks are evicted and become reusable —
which is why quarantine bypassing is possible "with a small probability"
(paper §5.4).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List

from .allocator import Allocation


class Quarantine:
    """Bounded FIFO of freed allocations awaiting recycling."""

    def __init__(
        self,
        budget_bytes: int,
        on_evict: Callable[[Allocation], None],
    ):
        if budget_bytes < 0:
            raise ValueError("quarantine budget must be non-negative")
        self.budget_bytes = budget_bytes
        self._on_evict = on_evict
        self._queue: Deque[Allocation] = deque()
        self._held_bytes = 0
        self.total_quarantined = 0
        self.total_evicted = 0

    def push(self, allocation: Allocation) -> List[Allocation]:
        """Quarantine a freed allocation; returns any evicted chunks.

        Eviction calls the ``on_evict`` hook (which unpoisons shadow and
        returns the chunk to the allocator freelist) before returning.
        """
        self._queue.append(allocation)
        self._held_bytes += allocation.chunk_size
        self.total_quarantined += 1
        evicted: List[Allocation] = []
        while self._held_bytes > self.budget_bytes and self._queue:
            oldest = self._queue.popleft()
            self._held_bytes -= oldest.chunk_size
            self.total_evicted += 1
            self._on_evict(oldest)
            evicted.append(oldest)
        return evicted

    def drain(self) -> List[Allocation]:
        """Evict everything (used at session teardown)."""
        evicted = list(self._queue)
        self._queue.clear()
        self._held_bytes = 0
        for allocation in evicted:
            self.total_evicted += 1
            self._on_evict(allocation)
        return evicted

    @property
    def held_bytes(self) -> int:
        return self._held_bytes

    def __len__(self) -> int:
        return len(self._queue)
