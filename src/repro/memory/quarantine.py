"""FIFO memory quarantine for temporal-error detection.

Freed chunks stay non-addressable for a while before being recycled, so a
use-after-free lands on a "freed" shadow state instead of a reallocated
object (paper §2.2).  Like compiler-rt, the quarantine has a byte budget:
when it overflows, the oldest chunks are evicted and become reusable —
which is why quarantine bypassing is possible "with a small probability"
(paper §5.4).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List

from .allocator import Allocation


class Quarantine:
    """Bounded FIFO of freed allocations awaiting recycling."""

    def __init__(
        self,
        budget_bytes: int,
        on_evict: Callable[[Allocation], None],
    ):
        if budget_bytes < 0:
            raise ValueError("quarantine budget must be non-negative")
        self.budget_bytes = budget_bytes
        self._on_evict = on_evict
        self._queue: Deque[Allocation] = deque()
        self._held_bytes = 0
        self.total_quarantined = 0
        self.total_evicted = 0
        #: High-water mark of held bytes, sampled at each push before the
        #: budget trims the queue (the telemetry occupancy metric).
        self.peak_held_bytes = 0

    def _evict_oldest(self) -> Allocation:
        """Evict the queue head, keeping the accounting exception-safe.

        The ``on_evict`` hook runs *before* any counter moves: if it
        raises, the chunk is restored to the queue head and the
        quarantine state is exactly what it was before the attempt.
        """
        oldest = self._queue.popleft()
        try:
            self._on_evict(oldest)
        except BaseException:
            self._queue.appendleft(oldest)
            raise
        self._held_bytes -= oldest.chunk_size
        self.total_evicted += 1
        return oldest

    def push(self, allocation: Allocation) -> List[Allocation]:
        """Quarantine a freed allocation; returns any evicted chunks.

        Eviction calls the ``on_evict`` hook (which unpoisons shadow and
        returns the chunk to the allocator freelist) before returning.
        A single chunk larger than the whole budget is deliberately
        self-evicting: it enters the queue and is immediately recycled,
        matching compiler-rt (an oversized chunk never lingers, so a
        dangling pointer to it may go undetected — §5.4's bypass odds).
        """
        self._queue.append(allocation)
        self._held_bytes += allocation.chunk_size
        if self._held_bytes > self.peak_held_bytes:
            self.peak_held_bytes = self._held_bytes
        self.total_quarantined += 1
        evicted: List[Allocation] = []
        while self._held_bytes > self.budget_bytes and self._queue:
            evicted.append(self._evict_oldest())
        return evicted

    def drain(self) -> List[Allocation]:
        """Evict everything (used at session teardown).

        Chunks are evicted head-first one at a time, so a raising
        ``on_evict`` hook leaves the un-evicted remainder still queued
        and every counter consistent with the queue contents.
        """
        evicted: List[Allocation] = []
        while self._queue:
            evicted.append(self._evict_oldest())
        return evicted

    @property
    def held_bytes(self) -> int:
        return self._held_bytes

    def __len__(self) -> int:
        return len(self._queue)
