"""Global-variable allocator: a bump allocator over the globals arena.

ASan instruments global variables by padding each with a redzone at
compile time; they live for the whole execution (no free).  This mirrors
that: globals are carved once, 8-byte aligned, separated by redzone
gaps, and never recycled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..errors import AllocationError
from .layout import OBJECT_ALIGNMENT, align_up
from .address_space import AddressSpace


@dataclass
class GlobalVariable:
    """One global: a named, immortal region."""

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size


class GlobalAllocator:
    """Carves globals out of the globals arena, with redzone gaps."""

    def __init__(
        self,
        space: AddressSpace,
        redzone: int = 16,
        alignment: int = OBJECT_ALIGNMENT,
    ):
        self.space = space
        self.redzone = max(redzone, 0)
        self.alignment = alignment
        self._cursor = space.layout.globals_base
        self._limit = space.layout.globals_end
        self._variables: List[GlobalVariable] = []

    def define(self, name: str, size: int) -> GlobalVariable:
        """Define one global of ``size`` bytes; returns its record."""
        if size <= 0:
            raise AllocationError(f"global {name!r} has size {size}")
        base = align_up(self._cursor + self.redzone, self.alignment)
        end = align_up(base + size, self.alignment)
        if end + self.redzone > self._limit:
            raise AllocationError("globals arena exhausted")
        variable = GlobalVariable(name=name, base=base, size=size)
        self._variables.append(variable)
        self._cursor = end
        return variable

    @property
    def variables(self) -> List[GlobalVariable]:
        return list(self._variables)
