"""Fluent builder for IR programs.

Workloads construct programs through this API, e.g. the paper's Figure 8a::

    b = ProgramBuilder()
    with b.function("foo", params=["p", "N"]) as f:
        f.load("x", "p", 0, 8)
        f.load("y", "p", 8, 8)
        with f.loop("i", 0, V("N")) as i:
            f.load("j", "x", i * 4, 4)
            f.store("y", V("j") * 4, 4, i)
        f.memset("x", 0, V("N") * 4)
    program = b.build(entry="foo")
"""

from __future__ import annotations

import contextlib
from typing import List, Optional, Union

from ..errors import AccessType
from .nodes import (
    Assign,
    Call,
    Compute,
    GlobalAlloc,
    Const,
    Expr,
    ExprLike,
    Free,
    If,
    Instr,
    Load,
    Loop,
    Malloc,
    Memcpy,
    Memset,
    PtrAdd,
    Return,
    StackAlloc,
    Store,
    Strcpy,
    Var,
    as_expr,
)
from .program import Function, Program


class FunctionBuilder:
    """Accumulates instructions for one function; supports nested blocks."""

    def __init__(self, name: str, params: Optional[List[str]] = None):
        self.function = Function(name=name, params=list(params or []))
        self._blocks: List[List[Instr]] = [self.function.body]

    # ------------------------------------------------------------------
    def _emit(self, instr: Instr) -> Instr:
        self._blocks[-1].append(instr)
        return instr

    # ------------------------------------------------------------------
    # plain instructions
    # ------------------------------------------------------------------
    def assign(self, dst: str, expr: ExprLike) -> Var:
        self._emit(Assign(dst, as_expr(expr)))
        return Var(dst)

    def compute(self, cycles: float) -> None:
        """Charge pure-compute native cycles (no memory traffic)."""
        self._emit(Compute(cycles))

    def malloc(self, dst: str, size: ExprLike) -> Var:
        self._emit(Malloc(dst, as_expr(size)))
        return Var(dst)

    def stack_alloc(self, dst: str, size: int) -> Var:
        self._emit(StackAlloc(dst, size))
        return Var(dst)

    def global_alloc(self, dst: str, size: int) -> Var:
        self._emit(GlobalAlloc(dst, size))
        return Var(dst)

    def free(self, ptr: str) -> None:
        self._emit(Free(ptr))

    def ptr_add(self, dst: str, base: str, offset: ExprLike) -> Var:
        self._emit(PtrAdd(dst, base, as_expr(offset)))
        return Var(dst)

    def load(self, dst: str, base: str, offset: ExprLike, width: int = 8) -> Var:
        self._emit(Load(dst, base, as_expr(offset), width))
        return Var(dst)

    def store(
        self, base: str, offset: ExprLike, width: int, value: ExprLike
    ) -> None:
        self._emit(Store(base, as_expr(offset), width, as_expr(value)))

    def memset(
        self, base: str, offset: ExprLike, length: ExprLike, byte: ExprLike = 0
    ) -> None:
        self._emit(Memset(base, as_expr(offset), as_expr(length), as_expr(byte)))

    def memcpy(
        self,
        dst_base: str,
        dst_offset: ExprLike,
        src_base: str,
        src_offset: ExprLike,
        length: ExprLike,
    ) -> None:
        self._emit(
            Memcpy(
                dst_base,
                as_expr(dst_offset),
                src_base,
                as_expr(src_offset),
                as_expr(length),
            )
        )

    def strcpy(
        self,
        dst_base: str,
        dst_offset: ExprLike,
        src_base: str,
        src_offset: ExprLike,
    ) -> None:
        self._emit(
            Strcpy(dst_base, as_expr(dst_offset), src_base, as_expr(src_offset))
        )

    def call(
        self, func: str, args: Optional[List[ExprLike]] = None, dst: Optional[str] = None
    ) -> Optional[Var]:
        self._emit(Call(func, [as_expr(a) for a in (args or [])], dst))
        return Var(dst) if dst else None

    def ret(self, expr: Optional[ExprLike] = None) -> None:
        self._emit(Return(as_expr(expr) if expr is not None else None))

    # ------------------------------------------------------------------
    # control flow blocks
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def loop(
        self,
        var: str,
        start: ExprLike,
        end: ExprLike,
        step: int = 1,
        bounded: bool = True,
        reverse: bool = False,
    ):
        """``for (var = start; var < end; var += step)``; yields Var(var).

        ``reverse=True`` iterates from ``end - step`` down to ``start``
        (the paper's reverse-traversal pattern, Figure 11c).
        ``bounded=False`` forbids SCEV promotion, modelling loops whose
        trip count is not statically computable.
        """
        node = Loop(
            var=var,
            start=as_expr(start),
            end=as_expr(end),
            body=[],
            step=step,
            bounded=bounded,
            reverse=reverse,
        )
        self._emit(node)
        self._blocks.append(node.body)
        try:
            yield Var(var)
        finally:
            self._blocks.pop()

    @contextlib.contextmanager
    def if_(self, cond: Expr):
        node = If(cond=cond, then=[], orelse=[])
        self._emit(node)
        self._blocks.append(node.then)
        try:
            yield
        finally:
            self._blocks.pop()

    @contextlib.contextmanager
    def else_(self):
        """Attach an else-block to the most recent If in the current block."""
        current = self._blocks[-1]
        for instr in reversed(current):
            if isinstance(instr, If):
                self._blocks.append(instr.orelse)
                try:
                    yield
                finally:
                    self._blocks.pop()
                return
        raise ValueError("else_ used without a preceding if_")


class ProgramBuilder:
    """Top-level builder collecting functions into a Program."""

    def __init__(self) -> None:
        self._program = Program()

    @contextlib.contextmanager
    def function(self, name: str, params: Optional[List[str]] = None):
        fb = FunctionBuilder(name, params)
        yield fb
        self._program.add(fb.function)

    def build(self, entry: str = "main") -> Program:
        self._program.entry = entry
        self._program.validate()
        return self._program
