"""Mini-IR the instrumentation pipeline operates on.

Programs are trees of instructions over integer-valued locals.  Pointers
are plain integers at runtime; *statically* every pointer-typed local has
a provenance (which allocation it derives from, at which offset), which
is what the must-alias and loop-bound passes consume — mirroring how the
paper's LLVM passes reason about ``getelementptr`` chains.

Expressions are immutable and support operator overloading, so workloads
read naturally::

    f.store("y", V("j") * 4, 4, V("i"))     # y[j] = i

Check instructions (``CheckAccess``/``CheckRegion``/``CheckCached``) are
*inserted by the instrumenter*, never written by hand in workloads; the
interpreter executes them against the active sanitizer runtime.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from ..errors import AccessType


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------
class Expr:
    """Base class for IR expressions (immutable, hashable)."""

    def _wrap(self, other) -> "Expr":
        return other if isinstance(other, Expr) else Const(int(other))

    def __add__(self, other):
        return BinOp("+", self, self._wrap(other))

    def __radd__(self, other):
        return BinOp("+", self._wrap(other), self)

    def __sub__(self, other):
        return BinOp("-", self, self._wrap(other))

    def __rsub__(self, other):
        return BinOp("-", self._wrap(other), self)

    def __mul__(self, other):
        return BinOp("*", self, self._wrap(other))

    def __rmul__(self, other):
        return BinOp("*", self._wrap(other), self)

    def __floordiv__(self, other):
        return BinOp("//", self, self._wrap(other))

    def __mod__(self, other):
        return BinOp("%", self, self._wrap(other))

    def __lshift__(self, other):
        return BinOp("<<", self, self._wrap(other))

    def __rshift__(self, other):
        return BinOp(">>", self, self._wrap(other))

    def __and__(self, other):
        return BinOp("&", self, self._wrap(other))

    def __or__(self, other):
        return BinOp("|", self, self._wrap(other))

    def __xor__(self, other):
        return BinOp("^", self, self._wrap(other))

    def __neg__(self):
        return BinOp("-", Const(0), self)

    # comparisons build condition expressions (not Python bools)
    def lt(self, other):
        return BinOp("<", self, self._wrap(other))

    def le(self, other):
        return BinOp("<=", self, self._wrap(other))

    def gt(self, other):
        return BinOp(">", self, self._wrap(other))

    def ge(self, other):
        return BinOp(">=", self, self._wrap(other))

    def eq(self, other):
        return BinOp("==", self, self._wrap(other))

    def ne(self, other):
        return BinOp("!=", self, self._wrap(other))


@dataclass(frozen=True)
class Const(Expr):
    """Integer literal."""

    value: int

    def __repr__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Var(Expr):
    """Reference to a local variable."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary operation; comparison ops yield 0/1."""

    op: str
    left: Expr
    right: Expr

    def __repr__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


def V(name: str) -> Var:
    """Shorthand variable constructor used throughout the workloads."""
    return Var(name)


def C(value: int) -> Const:
    """Shorthand constant constructor."""
    return Const(value)


ExprLike = Union[Expr, int]


def as_expr(value: ExprLike) -> Expr:
    """Coerce an int (or pass through an Expr)."""
    return value if isinstance(value, Expr) else Const(int(value))


# ----------------------------------------------------------------------
# protection classification (Figure 10 categories)
# ----------------------------------------------------------------------
class Protection(enum.Enum):
    """How the instrumentation ended up protecting a memory access site."""

    UNPROTECTED = "unprotected"  # native / removed entirely
    DIRECT = "direct"  # per-execution check remains at the site
    ELIMINATED = "eliminated"  # covered by a merged/promoted check
    CACHED = "cached"  # guarded through a quasi-bound cache
    ELIDED = "elided"  # statically proven in-bounds, check removed


# ----------------------------------------------------------------------
# instructions
# ----------------------------------------------------------------------
@dataclass
class Instr:
    """Base class for instructions."""


@dataclass
class Assign(Instr):
    dst: str
    expr: Expr


@dataclass
class Load(Instr):
    """``dst = *(base + offset)`` with ``width`` bytes."""

    dst: str
    base: str
    offset: Expr
    width: int = 8
    site_id: int = -1
    protection: Protection = Protection.DIRECT


@dataclass
class Store(Instr):
    """``*(base + offset) = value`` with ``width`` bytes."""

    base: str
    offset: Expr
    width: int
    value: Expr
    site_id: int = -1
    protection: Protection = Protection.DIRECT


@dataclass
class Malloc(Instr):
    dst: str
    size: Expr


@dataclass
class Free(Instr):
    ptr: str


@dataclass
class PtrAdd(Instr):
    """``dst = base + offset`` where base is a pointer-typed local."""

    dst: str
    base: str
    offset: Expr


@dataclass
class Memset(Instr):
    base: str
    offset: Expr
    length: Expr
    byte: Expr = field(default_factory=lambda: Const(0))
    site_id: int = -1
    protection: Protection = Protection.DIRECT


@dataclass
class Memcpy(Instr):
    dst_base: str
    dst_offset: Expr
    src_base: str
    src_offset: Expr
    length: Expr
    site_id: int = -1
    protection: Protection = Protection.DIRECT


@dataclass
class Strcpy(Instr):
    """C-string copy; length discovered at runtime (guardian territory)."""

    dst_base: str
    dst_offset: Expr
    src_base: str
    src_offset: Expr
    site_id: int = -1
    protection: Protection = Protection.DIRECT


@dataclass
class Compute(Instr):
    """Pure ALU/FPU work worth ``cycles`` native cycles.

    Stands in for the arithmetic real programs interleave between memory
    accesses (one interpreter step regardless of the amount), so proxies
    can model realistic compute-to-memory ratios without interpretive
    cost.
    """

    cycles: float = 1.0


@dataclass
class Loop(Instr):
    """``for (var = start; var < end; var += step) body``.

    ``bounded`` marks whether SCEV-style analysis may assume the trip
    count is computable before entry (False models data-dependent
    ``while`` loops, where only history caching helps).
    """

    var: str
    start: Expr
    end: Expr
    body: List[Instr]
    step: int = 1
    bounded: bool = True
    reverse: bool = False


@dataclass
class If(Instr):
    cond: Expr
    then: List[Instr]
    orelse: List[Instr] = field(default_factory=list)


@dataclass
class Call(Instr):
    func: str
    args: List[Expr] = field(default_factory=list)
    dst: Optional[str] = None


@dataclass
class Return(Instr):
    expr: Optional[Expr] = None


# ----------------------------------------------------------------------
# check instructions (inserted by instrumentation only)
# ----------------------------------------------------------------------
@dataclass
class CheckAccess(Instr):
    """Instruction-level guard of ``base[offset .. offset+width)``."""

    base: str
    offset: Expr
    width: int
    access: AccessType
    site_id: int = -1


@dataclass
class CheckRegion(Instr):
    """Operation-level guard of ``base[start .. end)``.

    ``use_anchor`` passes the base pointer as the anchor so anchor-capable
    tools widen the region to start at the object base.
    """

    base: str
    start: Expr
    end: Expr
    access: AccessType
    use_anchor: bool = True
    site_id: int = -1


@dataclass
class CheckCached(Instr):
    """History-cached guard of ``base[offset .. offset+width)``."""

    cache_id: int
    base: str
    offset: Expr
    width: int
    access: AccessType
    site_id: int = -1


@dataclass
class CacheFinalize(Instr):
    """Post-loop ``CI(base, base + ub)`` (Figure 9 line 14): catches
    deallocation races the cached fast path skipped."""

    cache_id: int
    base: str
    access: AccessType = AccessType.READ


@dataclass
class CheckElided(Instr):
    """A statically elided check, retained in audit builds only.

    Normal builds delete elided checks outright.  With the elision audit
    enabled the instrumenter wraps them instead; the interpreter replays
    ``inner`` against the shadow oracle without charging cycles or
    perturbing statistics, and any error the replay reports exposes an
    unsound elision.
    """

    inner: Instr  # the CheckAccess/CheckRegion that was elided
    reason: str = ""

    @property
    def site_id(self) -> int:
        return getattr(self.inner, "site_id", -1)


@dataclass
class StackAlloc(Instr):
    """Declare a stack buffer local to the enclosing function."""

    dst: str
    size: int


@dataclass
class GlobalAlloc(Instr):
    """Define a global buffer (immortal, redzone-padded)."""

    dst: str
    size: int


MEMORY_INSTRS: Tuple[type, ...] = (Load, Store, Memset, Memcpy, Strcpy)
CHECK_INSTRS: Tuple[type, ...] = (
    CheckAccess,
    CheckRegion,
    CheckCached,
    CacheFinalize,
)
