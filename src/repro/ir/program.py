"""Program and Function containers plus structural utilities.

A :class:`Program` is a set of functions with a designated entry point.
Utilities here walk instruction trees (checks, passes, and the printer
all need that) and validate structural invariants before execution.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from .nodes import (
    Call,
    If,
    Instr,
    Loop,
    MEMORY_INSTRS,
    StackAlloc,
)


@dataclass
class Function:
    """One function: parameters, stack buffers, and a body."""

    name: str
    params: List[str] = field(default_factory=list)
    body: List[Instr] = field(default_factory=list)

    def stack_buffers(self) -> List[StackAlloc]:
        """Top-level stack buffers of the function (frame contents)."""
        return [i for i in self.body if isinstance(i, StackAlloc)]


@dataclass
class Program:
    """A whole program; ``entry`` names the function execution starts in."""

    functions: Dict[str, Function] = field(default_factory=dict)
    entry: str = "main"

    def add(self, function: Function) -> None:
        if function.name in self.functions:
            raise ValueError(f"duplicate function: {function.name}")
        self.functions[function.name] = function

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(f"no function named {name!r}") from None

    def clone(self) -> "Program":
        """Deep copy, so instrumentation never mutates the source program."""
        return copy.deepcopy(self)

    def validate(self) -> None:
        """Check structural invariants; raises ValueError on the first
        violation (unknown call targets, empty entry, bad widths)."""
        if self.entry not in self.functions:
            raise ValueError(f"entry function {self.entry!r} is missing")
        for function in self.functions.values():
            for instr in walk(function.body):
                if isinstance(instr, Call) and instr.func not in self.functions:
                    raise ValueError(
                        f"{function.name} calls unknown function {instr.func!r}"
                    )
                width = getattr(instr, "width", None)
                if width is not None and width not in (1, 2, 4, 8):
                    raise ValueError(f"unsupported access width {width}")


def child_blocks(instr: Instr) -> List[List[Instr]]:
    """The nested instruction lists of a control-flow instruction."""
    if isinstance(instr, Loop):
        return [instr.body]
    if isinstance(instr, If):
        return [instr.then, instr.orelse]
    return []


def walk(block: List[Instr]) -> Iterator[Instr]:
    """Depth-first iteration over every instruction in a block tree."""
    for instr in block:
        yield instr
        for child in child_blocks(instr):
            yield from walk(child)


def walk_with_depth(
    block: List[Instr], depth: int = 0
) -> Iterator[Tuple[Instr, int]]:
    """Like :func:`walk` but yields loop-nesting depth alongside."""
    for instr in block:
        yield instr, depth
        extra = 1 if isinstance(instr, Loop) else 0
        for child in child_blocks(instr):
            yield from walk_with_depth(child, depth + extra)


def transform_blocks(
    block: List[Instr],
    fn: Callable[[List[Instr]], List[Instr]],
) -> List[Instr]:
    """Rebuild a block tree bottom-up, applying ``fn`` to every block.

    ``fn`` receives a block whose nested blocks are already transformed
    and returns the replacement block.  Passes use this to insert or
    remove check instructions without hand-writing recursion.
    """
    rebuilt: List[Instr] = []
    for instr in block:
        if isinstance(instr, Loop):
            instr.body = transform_blocks(instr.body, fn)
        elif isinstance(instr, If):
            instr.then = transform_blocks(instr.then, fn)
            instr.orelse = transform_blocks(instr.orelse, fn)
        rebuilt.append(instr)
    return fn(rebuilt)


def memory_sites(program: Program) -> List[Instr]:
    """All memory-touching instructions in the program, in walk order."""
    sites: List[Instr] = []
    for function in program.functions.values():
        for instr in walk(function.body):
            if isinstance(instr, MEMORY_INSTRS):
                sites.append(instr)
    return sites


def assign_site_ids(program: Program) -> int:
    """Give every memory instruction a stable ``site_id``; returns count."""
    next_id = 0
    for instr in memory_sites(program):
        instr.site_id = next_id
        next_id += 1
    return next_id
