"""Textual dump of (instrumented) IR, for debugging and documentation.

The printed form mirrors the paper's Figure 8 listings: check instances
appear as ``CI(base + start, base + end)`` lines so one can eyeball what
each tool's pipeline produced.
"""

from __future__ import annotations

from typing import List

from .nodes import (
    Assign,
    CacheFinalize,
    Call,
    Compute,
    GlobalAlloc,
    CheckAccess,
    CheckCached,
    CheckElided,
    CheckRegion,
    Free,
    If,
    Instr,
    Load,
    Loop,
    Malloc,
    Memcpy,
    Memset,
    PtrAdd,
    Return,
    StackAlloc,
    Store,
    Strcpy,
)
from .program import Function, Program


def _line(instr: Instr) -> str:
    if isinstance(instr, Assign):
        return f"{instr.dst} = {instr.expr}"
    if isinstance(instr, Load):
        return f"{instr.dst} = load{instr.width} {instr.base}[{instr.offset}]"
    if isinstance(instr, Store):
        return f"store{instr.width} {instr.base}[{instr.offset}] = {instr.value}"
    if isinstance(instr, Malloc):
        return f"{instr.dst} = malloc({instr.size})"
    if isinstance(instr, StackAlloc):
        return f"{instr.dst} = alloca({instr.size})"
    if isinstance(instr, GlobalAlloc):
        return f"{instr.dst} = global({instr.size})"
    if isinstance(instr, Free):
        return f"free({instr.ptr})"
    if isinstance(instr, PtrAdd):
        return f"{instr.dst} = {instr.base} + {instr.offset}"
    if isinstance(instr, Memset):
        return f"memset({instr.base} + {instr.offset}, {instr.byte}, {instr.length})"
    if isinstance(instr, Memcpy):
        return (
            f"memcpy({instr.dst_base} + {instr.dst_offset}, "
            f"{instr.src_base} + {instr.src_offset}, {instr.length})"
        )
    if isinstance(instr, Strcpy):
        return (
            f"strcpy({instr.dst_base} + {instr.dst_offset}, "
            f"{instr.src_base} + {instr.src_offset})"
        )
    if isinstance(instr, Compute):
        return f"compute({instr.cycles})"
    if isinstance(instr, Call):
        args = ", ".join(str(a) for a in instr.args)
        prefix = f"{instr.dst} = " if instr.dst else ""
        return f"{prefix}call {instr.func}({args})"
    if isinstance(instr, Return):
        return f"return {instr.expr}" if instr.expr is not None else "return"
    if isinstance(instr, CheckAccess):
        return (
            f"CHECK {instr.base}[{instr.offset} .. {instr.offset}+{instr.width})"
            f" [{instr.access.value}]"
        )
    if isinstance(instr, CheckRegion):
        anchor = " anchored" if instr.use_anchor else ""
        return (
            f"CI({instr.base} + {instr.start}, {instr.base} + {instr.end})"
            f" [{instr.access.value}]{anchor}"
        )
    if isinstance(instr, CheckCached):
        return (
            f"CI_cached#{instr.cache_id} {instr.base}"
            f"[{instr.offset} .. +{instr.width}) [{instr.access.value}]"
        )
    if isinstance(instr, CacheFinalize):
        return f"CI({instr.base}, {instr.base} + ub#{instr.cache_id})"
    if isinstance(instr, CheckElided):
        return f"ELIDED[{instr.reason}] {{ {_line(instr.inner)} }}"
    return repr(instr)


def _render(block: List[Instr], indent: int, out: List[str]) -> None:
    pad = "  " * indent
    for instr in block:
        if isinstance(instr, Loop):
            arrow = "down to" if instr.reverse else "to"
            bound = "" if instr.bounded else "  # unbounded"
            out.append(
                f"{pad}for {instr.var} = {instr.start} {arrow} {instr.end}"
                f" step {instr.step}:{bound}"
            )
            _render(instr.body, indent + 1, out)
        elif isinstance(instr, If):
            out.append(f"{pad}if {instr.cond}:")
            _render(instr.then, indent + 1, out)
            if instr.orelse:
                out.append(f"{pad}else:")
                _render(instr.orelse, indent + 1, out)
        else:
            out.append(pad + _line(instr))


def format_function(function: Function) -> str:
    lines = [f"def {function.name}({', '.join(function.params)}):"]
    _render(function.body, 1, lines)
    return "\n".join(lines)


def format_program(program: Program) -> str:
    return "\n\n".join(
        format_function(f) for f in program.functions.values()
    )
