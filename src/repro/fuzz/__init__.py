"""Differential fuzzing and invariant checking for the sanitizer matrix.

Layout:

* :mod:`~repro.fuzz.generator` — seeded random IR programs with
  ground-truth :class:`~repro.fuzz.generator.BugSpec` verdicts;
* :mod:`~repro.fuzz.expectations` — each tool's expected verdict
  (encoding every principled false-negative surface);
* :mod:`~repro.fuzz.driver` — the all-tools × fastpath-on/off runner;
* :mod:`~repro.fuzz.invariants` — the post-event
  :class:`~repro.fuzz.invariants.ShadowInvariantChecker`;
* :mod:`~repro.fuzz.shrinker` — greedy reduction of diverging cases.
"""

from .driver import (
    CaseReport,
    Divergence,
    FuzzSummary,
    fuzz_span,
    fuzz_worker,
    run_case,
)
from .expectations import ALL_TOOLS, Expectation, expected_verdict
from .generator import BugSpec, FuzzCase, build_case, case_seed_for, generate_case
from .invariants import InvariantViolation, ShadowInvariantChecker
from .shrinker import shrink_case

__all__ = [
    "ALL_TOOLS",
    "BugSpec",
    "CaseReport",
    "Divergence",
    "Expectation",
    "FuzzCase",
    "FuzzSummary",
    "InvariantViolation",
    "ShadowInvariantChecker",
    "build_case",
    "case_seed_for",
    "expected_verdict",
    "fuzz_span",
    "fuzz_worker",
    "generate_case",
    "run_case",
    "shrink_case",
]
