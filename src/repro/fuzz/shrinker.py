"""Greedy case reduction: keep the divergence, drop everything else.

The shrinker minimizes a diverging :class:`~repro.fuzz.generator.FuzzCase`
while preserving its *divergence signature* — the set of
``(tool, kind)`` pairs the driver reported.  Moves, in order:

1. drop the injected bug entirely (benign-op findings shrink fastest);
2. drop one spec op at a time (dropping a buffer declaration drops its
   dependent ops too, so candidates stay well-formed);
3. halve numeric knobs — loop trip counts and region lengths — until
   they stop mattering.

Every candidate is re-run through the full differential matrix, so
shrinking is bounded by ``max_runs`` driver invocations; on a budget
blow-out the best case so far is returned.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from .expectations import ALL_TOOLS
from .generator import (
    FuzzCase,
    LoopWalk,
    NonAffineWalk,
    RegionCopy,
    RegionFill,
    drop_op,
)


def _shrunk_numbers(op):
    """Candidate replacements for one op's numeric knobs (may be empty)."""
    candidates = []
    if isinstance(op, (LoopWalk, NonAffineWalk)) and op.count > 1:
        candidates.append(replace(op, count=op.count // 2))
    if isinstance(op, RegionFill) and op.length > 1:
        candidates.append(replace(op, length=op.length // 2))
    if isinstance(op, RegionCopy) and op.length > 1:
        candidates.append(replace(op, length=op.length // 2))
    return candidates


def shrink_case(
    case: FuzzCase,
    tools: Sequence[str] = ALL_TOOLS,
    max_runs: int = 120,
) -> FuzzCase:
    """Smallest case found that still shows the original signature."""
    from .driver import divergence_signature, run_case

    runs = 0

    def signature(candidate: FuzzCase) -> frozenset:
        nonlocal runs
        runs += 1
        return divergence_signature(run_case(candidate, tools=tools))

    target = signature(case)
    if not target:
        return case

    def still_diverges(candidate: FuzzCase) -> bool:
        return runs < max_runs and target <= signature(candidate)

    current = case
    if current.bug is not None and still_diverges(replace(current, bug=None)):
        current = replace(current, bug=None)

    progress = True
    while progress and runs < max_runs:
        progress = False
        for index in range(len(current.ops)):
            candidate = drop_op(current, index)
            if still_diverges(candidate):
                current = candidate
                progress = True
                break

    progress = True
    while progress and runs < max_runs:
        progress = False
        for index, op in enumerate(current.ops):
            for shrunk in _shrunk_numbers(op):
                ops = list(current.ops)
                ops[index] = shrunk
                candidate = replace(current, ops=tuple(ops))
                if still_diverges(candidate):
                    current = candidate
                    progress = True
                    break
            if progress:
                break
    return current
