"""Per-tool expected verdicts for generated ground-truth bugs.

Every tool in the matrix has a *principled* false-negative surface that
the paper itself describes; the differential driver must not flag those
as divergences.  This module encodes each surface explicitly:

* **size-policy slack** — an access past the requested size but inside
  the tool's usable size is invisible to every tool (LFP's size classes,
  HWASan's 16-byte granule rounding, and the minimum-1-byte allocation
  for zero-size requests).
* **redzone bypass** — ASan/ASan-- protect only the touched bytes, so a
  single access that jumps far past the object end may land on valid
  memory (§4.4.1).  GiantSan's anchors and LFP's bounds make the same
  jump a guaranteed catch.
* **heap-only protection** — LFP does not guard stack or global objects
  and only catches temporal bugs through an exactly-freed base pointer.
* **tag semantics** — HWASan detects use-after-return, but classifies it
  spatially (a popped frame is indistinguishable from a tag mismatch).

Everything outside those surfaces is a MUST (guaranteed detection) or a
MUST_NOT (guaranteed silence); the residue is FREE (either verdict is
explainable, so the driver checks nothing beyond fastpath equivalence).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..memory.allocator import low_fat_policy
from .generator import BugSpec

#: The full differential matrix.
ALL_TOOLS = ("Native", "GiantSan", "ASan", "ASan--", "LFP", "HWASan")

MUST = "must"          # the tool must report at least one error
MUST_NOT = "must_not"  # the tool must stay silent
FREE = "free"          # either outcome is explainable


@dataclass(frozen=True)
class Expectation:
    """Expected verdict for one (tool, bug) pair.

    ``temporal`` further constrains a MUST: True requires at least one
    temporal-kind report, False at least one spatial-kind report, None
    accepts any report.
    """

    status: str
    reason: str = ""
    temporal: Optional[bool] = None


def tool_usable_size(tool: str, arena: str, requested: int) -> int:
    """Bytes the tool actually treats as addressable from the base.

    This is the slack rule: accesses ending at or before this are
    invisible to the tool by design.
    """
    if tool == "HWASan":
        # granule tags cover ceil(size/16) granules for every arena
        return (max(requested, 1) + 15) & ~15 if arena == "heap" else (
            (requested + 15) & ~15
        )
    if arena != "heap":
        return requested
    effective = max(requested, 1)
    if tool == "LFP":
        return low_fat_policy(effective)
    return effective  # exact policy: allocator still reserves >= 1 byte


def _spatial_expectation(tool: str, bug: BugSpec) -> Expectation:
    """Overflow-family bugs: single access, loop, or region op."""
    usable = tool_usable_size(tool, bug.arena, bug.size)
    if bug.kind == "underflow":
        if tool == "LFP":
            if bug.arena != "heap":
                return Expectation(MUST_NOT, "LFP: stack/globals unprotected")
            return Expectation(MUST, "bounds test start < base", temporal=False)
        if tool == "HWASan":
            # the landing granule carries the free tag, which the runtime
            # reads as a temporal error: assert detection only
            return Expectation(MUST, "untagged left padding")
        return Expectation(MUST, "left redzone poison", temporal=False)

    # overflow / loop_overflow / memset_overflow / memcpy_overflow
    if bug.access_end <= usable:
        return Expectation(
            MUST_NOT, f"inside {tool} usable size {usable} (slack)"
        )
    if tool == "LFP":
        if bug.arena != "heap":
            return Expectation(MUST_NOT, "LFP: stack/globals unprotected")
        return Expectation(MUST, "beyond size class", temporal=False)
    if tool == "HWASan":
        return Expectation(MUST, "granule tag mismatch past the object")
    if tool in ("ASan", "ASan--") and bug.far and not bug.via_loop:
        # a single access jumping past the 16-byte redzone may land on
        # unrelated valid memory: the paper's redzone-bypass caveat
        return Expectation(FREE, "redzone bypass possible on far jump")
    return Expectation(MUST, "redzone/partial-segment poison", temporal=False)


def expected_verdict(tool: str, bug: Optional[BugSpec]) -> Expectation:
    """The oracle: what ``tool`` must/must-not report for ``bug``."""
    if bug is None:
        return Expectation(MUST_NOT, "clean program")
    if tool == "Native":
        return Expectation(MUST_NOT, "native runs unchecked")

    kind = bug.kind
    if kind in (
        "overflow",
        "underflow",
        "loop_overflow",
        "memset_overflow",
        "memcpy_overflow",
    ):
        return _spatial_expectation(tool, bug)

    if kind == "uaf":
        if tool == "LFP":
            return Expectation(
                MUST, "freed base pointer, no intervening reuse", temporal=True
            )
        return Expectation(MUST, "freed shadow/tag state", temporal=True)

    if kind == "uaf_interior":
        if tool == "LFP":
            return Expectation(
                MUST_NOT, "interior pointer re-derives a region"
            )
        return Expectation(MUST, "freed shadow/tag state", temporal=True)

    if kind == "double_free":
        # LFP evicts instantly (no quarantine), so the second free is
        # diagnosed INVALID_FREE rather than DOUBLE_FREE — still temporal
        return Expectation(MUST, "second free of the same base", temporal=True)

    if kind == "invalid_free":
        return Expectation(MUST, "free of a non-base pointer", temporal=True)

    if kind == "uar":
        if tool == "LFP":
            return Expectation(MUST_NOT, "LFP: stack unprotected")
        if tool == "HWASan":
            # detected via the FREE tag, but classified as a stack
            # overflow: tags cannot distinguish pop from gap
            return Expectation(MUST, "popped frame retagged")
        return Expectation(MUST, "stack-after-return poison", temporal=True)

    raise ValueError(f"unknown bug kind {kind!r}")


def verdict_matches(
    expectation: Expectation,
    reported: bool,
    any_temporal: bool,
    any_spatial: bool,
) -> Optional[str]:
    """None when the observed verdict satisfies the expectation, else a
    short human-readable explanation of the mismatch."""
    if expectation.status == FREE:
        return None
    if expectation.status == MUST_NOT:
        if reported:
            return f"unexpected report ({expectation.reason})"
        return None
    # MUST
    if not reported:
        return f"missed detection ({expectation.reason})"
    if expectation.temporal is True and not any_temporal:
        return "detected, but no temporal-kind report"
    if expectation.temporal is False and not any_spatial:
        return "detected, but no spatial-kind report"
    return None
