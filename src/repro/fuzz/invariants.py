"""ShadowInvariantChecker: structural assertions after every heap/frame event.

Attached to a sanitizer the same way :class:`repro.trace.Tracer` is —
by wrapping its lifecycle hooks in place — the checker re-verifies,
after every ``malloc``/``free``/``push_frame``/``pop_frame``/
``define_global``:

* **the folding invariant** — every live GiantSan object's shadow
  decodes to a degree sequence accepted by
  :func:`repro.shadow.folding.verify_degrees`, and matches the canonical
  :func:`~repro.shadow.giantsan_encoding.object_codes` byte-for-byte;
* **ASan encoding well-formedness** — live objects are GOOD segments
  plus one correct partial tail; redzones and freed chunks carry the
  right poison codes;
* **quarantine byte accounting** — ``held_bytes`` equals the sum of the
  queued chunks' sizes, the quarantined/evicted counters add up, and the
  budget is respected at rest;
* **shadow / address-space consistency** — live chunks are disjoint,
  inside the heap arena, and the allocator's ``bytes_in_use`` matches
  the live+quarantined chunk bytes; stack frames stay LIFO inside the
  stack arena; HWASan granule tags match the tagged base pointers.

Violations either raise :class:`InvariantViolation` (session usage) or
accumulate in ``checker.violations`` (fuzz-driver usage).
"""

from __future__ import annotations

from typing import List, Optional

from ..memory.allocator import AllocationState
from ..memory.layout import SEGMENT_SIZE, segment_index
from ..sanitizers.asan import ASan
from ..sanitizers.base import Sanitizer
from ..sanitizers.giantsan import GiantSan
from ..sanitizers.hwasan import HWASan, pointer_tag, untag
from ..shadow import asan_encoding, giantsan_encoding
from ..shadow.folding import verify_degrees


class InvariantViolation(AssertionError):
    """A structural invariant failed after an allocator/frame event."""


class ShadowInvariantChecker:
    """Verifies sanitizer-internal invariants after lifecycle events."""

    def __init__(self, sanitizer: Sanitizer, raise_on_violation: bool = False):
        self.san = sanitizer
        self.raise_on_violation = raise_on_violation
        self.violations: List[str] = []
        self.checks_run = 0

    # ------------------------------------------------------------------
    @classmethod
    def attach(
        cls, sanitizer: Sanitizer, raise_on_violation: bool = False
    ) -> "ShadowInvariantChecker":
        """Wrap ``sanitizer``'s lifecycle hooks in place."""
        checker = cls(sanitizer, raise_on_violation=raise_on_violation)

        def wrap(hook_name):
            original = getattr(sanitizer, hook_name)

            def checked(*args, **kwargs):
                result = original(*args, **kwargs)
                checker.verify(hook_name)
                return result

            return checked

        for hook in (
            "malloc",
            "free",
            "push_frame",
            "pop_frame",
            "define_global",
        ):
            setattr(sanitizer, hook, wrap(hook))
        return checker

    # ------------------------------------------------------------------
    def verify(self, event: str = "") -> None:
        """Run every applicable invariant; record/raise failures."""
        self.checks_run += 1
        failures: List[str] = []
        failures += self._check_quarantine()
        failures += self._check_allocator()
        failures += self._check_stack()
        if isinstance(self.san, GiantSan):
            failures += self._check_giantsan_shadow()
        elif isinstance(self.san, ASan):
            failures += self._check_asan_shadow()
        elif isinstance(self.san, HWASan):
            failures += self._check_hwasan_tags()
        for failure in failures:
            message = f"[{event or 'manual'}] {failure}"
            self.violations.append(message)
            if self.raise_on_violation:
                raise InvariantViolation(message)

    # ------------------------------------------------------------------
    # quarantine + allocator + stack (every tool)
    # ------------------------------------------------------------------
    def _check_quarantine(self) -> List[str]:
        quarantine = self.san.quarantine
        failures = []
        queued = list(quarantine._queue)
        actual = sum(a.chunk_size for a in queued)
        if quarantine.held_bytes != actual:
            failures.append(
                f"quarantine held_bytes={quarantine.held_bytes} != "
                f"sum(chunk_size)={actual}"
            )
        expected_total = quarantine.total_evicted + len(queued)
        if quarantine.total_quarantined != expected_total:
            failures.append(
                f"quarantine total_quarantined={quarantine.total_quarantined}"
                f" != evicted({quarantine.total_evicted}) + queued"
                f"({len(queued)})"
            )
        if quarantine.held_bytes > quarantine.budget_bytes:
            failures.append(
                f"quarantine over budget at rest: held="
                f"{quarantine.held_bytes} budget={quarantine.budget_bytes}"
            )
        for allocation in queued:
            if allocation.state is not AllocationState.QUARANTINED:
                failures.append(
                    f"queued allocation #{allocation.allocation_id} in state"
                    f" {allocation.state.value}"
                )
        return failures

    def _check_allocator(self) -> List[str]:
        allocator = self.san.allocator
        layout = self.san.layout
        failures = []
        live = allocator.live_allocations
        queued = list(self.san.quarantine._queue)
        expected_in_use = sum(a.chunk_size for a in live) + sum(
            a.chunk_size for a in queued
        )
        if allocator.bytes_in_use != expected_in_use:
            failures.append(
                f"allocator bytes_in_use={allocator.bytes_in_use} != "
                f"live+quarantined chunk bytes {expected_in_use}"
            )
        chunks = sorted(
            ((untag(a.base) - a.left_redzone, a) for a in live + queued),
            key=lambda pair: pair[0],
        )
        previous_end = layout.heap_base
        for chunk_base, allocation in chunks:
            chunk_end = chunk_base + allocation.chunk_size
            if chunk_base < layout.heap_base or chunk_end > layout.heap_end:
                failures.append(
                    f"allocation #{allocation.allocation_id} chunk "
                    f"[{chunk_base:#x},{chunk_end:#x}) outside the heap arena"
                )
            if chunk_base < previous_end:
                failures.append(
                    f"allocation #{allocation.allocation_id} chunk overlaps "
                    f"its predecessor (base {chunk_base:#x} < {previous_end:#x})"
                )
            previous_end = max(previous_end, chunk_end)
        return failures

    def _check_stack(self) -> List[str]:
        stack = self.san.stack
        layout = self.san.layout
        failures = []
        previous_end = layout.stack_base
        for frame in stack._frames:
            if frame.base < previous_end:
                failures.append(
                    f"frame #{frame.frame_id} base {frame.base:#x} below the "
                    f"previous frame end {previous_end:#x} (LIFO broken)"
                )
            if frame.end > layout.stack_end:
                failures.append(
                    f"frame #{frame.frame_id} escapes the stack arena"
                )
            for variable in frame.variables:
                raw = untag(variable.base)
                if raw < frame.base or raw + variable.size > frame.end:
                    failures.append(
                        f"stack var {variable.name} outside frame "
                        f"#{frame.frame_id}"
                    )
            previous_end = frame.end
        return failures

    # ------------------------------------------------------------------
    # shadow encodings
    # ------------------------------------------------------------------
    def _object_segments(self, base: int, usable: int):
        first = segment_index(base)
        count = (usable + SEGMENT_SIZE - 1) >> 3
        return first, count

    def _check_giantsan_shadow(self) -> List[str]:
        enc = giantsan_encoding
        shadow = self.san.shadow
        failures = []
        for allocation in self.san.allocator.live_allocations:
            expected = enc.object_codes(allocation.usable_size)
            first, count = self._object_segments(
                allocation.base, allocation.usable_size
            )
            actual = bytes(shadow.view(first, count))
            if actual != expected:
                failures.append(
                    f"GiantSan object #{allocation.allocation_id} shadow "
                    f"{actual.hex()} != canonical {expected.hex()}"
                )
                continue
            degrees = []
            for code in actual:
                degree = enc.decode_degree(code)
                if degree is None:
                    break  # trailing partial segment
                degrees.append(degree)
            if not verify_degrees(degrees):
                failures.append(
                    f"GiantSan object #{allocation.allocation_id} violates "
                    f"the folding invariant: degrees={degrees}"
                )
            failures += self._check_redzones(allocation, enc)
        for allocation in self.san.quarantine._queue:
            first, count = self._object_segments(
                allocation.base, allocation.usable_size
            )
            codes = shadow.view(first, count)
            if any(code != enc.HEAP_FREED for code in codes):
                failures.append(
                    f"quarantined object #{allocation.allocation_id} not "
                    f"fully freed-poisoned"
                )
        return failures

    def _check_asan_shadow(self) -> List[str]:
        enc = asan_encoding
        shadow = self.san.shadow
        failures = []
        for allocation in self.san.allocator.live_allocations:
            full, tail = divmod(allocation.usable_size, SEGMENT_SIZE)
            expected = bytes([enc.GOOD] * full + ([tail] if tail else []))
            first, count = self._object_segments(
                allocation.base, allocation.usable_size
            )
            actual = bytes(shadow.view(first, count))
            if actual != expected:
                failures.append(
                    f"ASan object #{allocation.allocation_id} shadow "
                    f"{actual.hex()} != canonical {expected.hex()}"
                )
            failures += self._check_redzones(allocation, enc)
        for allocation in self.san.quarantine._queue:
            first, count = self._object_segments(
                allocation.base, allocation.usable_size
            )
            codes = shadow.view(first, count)
            if any(code != enc.HEAP_FREED for code in codes):
                failures.append(
                    f"quarantined object #{allocation.allocation_id} not "
                    f"fully freed-poisoned"
                )
        return failures

    def _check_redzones(self, allocation, enc) -> List[str]:
        """Left/right redzone segments must carry heap poison codes."""
        shadow = self.san.shadow
        failures = []
        left_segments = allocation.left_redzone >> 3
        if left_segments:
            codes = shadow.view(
                segment_index(allocation.chunk_base), left_segments
            )
            if any(code != enc.HEAP_LEFT_REDZONE for code in codes):
                failures.append(
                    f"object #{allocation.allocation_id} left redzone not "
                    f"poisoned"
                )
        first_rz = segment_index(
            allocation.base + allocation.usable_size + SEGMENT_SIZE - 1
        )
        end_seg = segment_index(allocation.chunk_end)
        if end_seg > first_rz:
            codes = shadow.view(first_rz, end_seg - first_rz)
            if any(code != enc.HEAP_RIGHT_REDZONE for code in codes):
                failures.append(
                    f"object #{allocation.allocation_id} right redzone not "
                    f"poisoned"
                )
        return failures

    def _check_hwasan_tags(self) -> List[str]:
        san = self.san
        failures = []
        for allocation in san.allocator.live_allocations:
            tag = pointer_tag(allocation.base)
            if tag == 0:
                failures.append(
                    f"live HWASan allocation #{allocation.allocation_id} "
                    f"carries the free tag"
                )
                continue
            raw = untag(allocation.base)
            first = raw >> 4
            count = (allocation.usable_size + 15) >> 4
            granules = san._tags[first : first + count]
            if any(actual != tag for actual in granules):
                failures.append(
                    f"allocation #{allocation.allocation_id} granule tags "
                    f"diverge from pointer tag {tag:#04x}"
                )
        return failures


def maybe_attach(
    sanitizer: Sanitizer, enabled: bool, raise_on_violation: bool = True
) -> Optional[ShadowInvariantChecker]:
    """Session-config helper: attach a checker when ``enabled``."""
    if not enabled:
        return None
    return ShadowInvariantChecker.attach(
        sanitizer, raise_on_violation=raise_on_violation
    )
