"""Differential driver: one case, every tool, both execution paths.

For each generated case the driver runs the same program under every
tool in :data:`~repro.fuzz.expectations.ALL_TOOLS`, with the superblock
fast path ON and OFF, and cross-checks four ways:

1. **fastpath** — the ON/OFF observables (cycles, instruction counts,
   CheckStats, protection categories, return value, error log) must be
   byte-identical per tool;
2. **oracle** — the reference-path verdict must satisfy the case's
   ground-truth :func:`~repro.fuzz.expectations.expected_verdict`;
3. **invariant** — the :class:`~repro.fuzz.invariants.ShadowInvariantChecker`
   attached to every run must record zero violations;
4. **cross-tool** — bug-free cases must return the same checksum under
   every tool (all tools interpret the same program over zeroed memory);
5. **interproc** — for the summary-consuming tools (GiantSan, ASan--)
   the program is re-run with the interprocedural layer disabled, and
   the two pipelines must agree semantically: same reported-at-all
   verdict, same ground-truth match, same clean-run checksum.  (Error
   lists and counts legitimately differ — check placement is the thing
   being varied.)

With ``audit_elisions`` enabled, each tool additionally runs in audit
instrumentation mode: checks the static dataflow analysis elided are
kept as ``CheckElided`` markers and replayed against the shadow oracle.
A replay that fires means the elision proof was unsound for a concrete
execution — an ``elision`` divergence.  The audited run must also match
the normal run's observables (replay rollback is required to be
invisible), modulo the marker instructions themselves.

Anything that trips becomes a :class:`Divergence`; the CLI shrinks those
cases to minimal reproducers (see :mod:`repro.fuzz.shrinker`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..runtime.session import Session
from .expectations import ALL_TOOLS, expected_verdict, verdict_matches
from .generator import FuzzCase, build_case, case_seed_for, generate_case
from .invariants import ShadowInvariantChecker

#: Generated programs are tiny; a tight budget turns any accidental
#: interpreter runaway into a visible crash-divergence instead of a hang.
CASE_MAX_INSTRUCTIONS = 2_000_000

#: Tools whose pipelines consume interprocedural summaries — the only
#: ones where the summaries-on/off differential can differ at all.
INTERPROC_TOOLS = ("GiantSan", "ASan--")


@dataclass(frozen=True)
class Divergence:
    """One explained-away-able-by-nobody discrepancy."""

    case_seed: int
    tool: str  # "*" for cross-tool findings
    kind: str  # fastpath | oracle | invariant | cross-tool | elision | crash
    detail: str

    def render(self) -> str:
        return f"seed={self.case_seed} tool={self.tool} [{self.kind}] {self.detail}"


@dataclass
class CaseReport:
    """Everything the driver learned about one case."""

    case: FuzzCase
    divergences: List[Divergence]
    invariant_checks: int = 0

    @property
    def clean(self) -> bool:
        return not self.divergences


def observables(result) -> dict:
    """The fastpath-equivalence surface (same as the directed suite)."""
    return {
        "native_cycles": result.native_cycles,
        "instructions": result.instructions_executed,
        "return_value": result.return_value,
        "stats": result.stats.as_dict(),
        "protection": dict(result.protection_counts),
        "errors": [(e.kind, e.address) for e in result.errors],
    }


def _run_one(
    program, tool: str, fastpath: bool, check_invariants: bool
) -> Tuple[object, Optional[ShadowInvariantChecker]]:
    session = Session(
        tool,
        fastpath=fastpath,
        memoize=False,
        max_instructions=CASE_MAX_INSTRUCTIONS,
    )
    checker = (
        ShadowInvariantChecker.attach(session.sanitizer)
        if check_invariants
        else None
    )
    return session.run(program), checker


def _audit_elisions(
    program, tool: str, case: FuzzCase, baseline_obs: dict
) -> List[Divergence]:
    """Replay every elision decision against the shadow oracle."""
    session = Session(
        tool,
        fastpath=False,
        memoize=False,
        max_instructions=CASE_MAX_INSTRUCTIONS,
        audit_elisions=True,
    )
    result = session.run(program)
    divergences: List[Divergence] = []
    for failure in result.elision_audit_failures:
        divergences.append(
            Divergence(
                case.seed, tool, "elision",
                f"site {failure.site_id}: replay fired "
                f"{failure.report.kind.value}; static proof was: "
                f"{failure.reason}",
            )
        )
    audited = observables(result)
    # marker instructions execute, so instruction counts legitimately
    # differ; everything else must be untouched by the replay rollback
    for key in ("native_cycles", "return_value", "stats", "protection",
                "errors"):
        if audited[key] != baseline_obs[key]:
            divergences.append(
                Divergence(
                    case.seed, tool, "elision",
                    f"audit run perturbed observable {key!r}",
                )
            )
    return divergences


def _interproc_differential(
    program, tool: str, case: FuzzCase, baseline
) -> List[Divergence]:
    """Summaries-on vs summaries-off semantic equivalence.

    Check placement legitimately differs between the two pipelines
    (that is the point), and with ``halt_on_error=False`` a promoted
    pre-loop region check can report a loop overflow once where
    per-iteration checks report it each trip — so error *lists* and
    instruction counts are not comparable.  What must agree is the
    semantic surface: whether anything was reported at all, the ground
    truth verdict, and the checksum of a clean execution.
    """
    session = Session(
        tool,
        fastpath=False,
        memoize=False,
        max_instructions=CASE_MAX_INSTRUCTIONS,
        interprocedural=False,
    )
    plain = session.run(program)
    divergences: List[Divergence] = []
    if bool(plain.errors) != bool(baseline.errors):
        divergences.append(
            Divergence(
                case.seed, tool, "interproc",
                f"summaries flipped the verdict: with={bool(baseline.errors)} "
                f"without={bool(plain.errors)}",
            )
        )
    elif not plain.errors and plain.return_value != baseline.return_value:
        divergences.append(
            Divergence(
                case.seed, tool, "interproc",
                f"clean-run checksum differs: with={baseline.return_value} "
                f"without={plain.return_value}",
            )
        )
    expectation = expected_verdict(tool, case.bug)
    mismatch = verdict_matches(
        expectation,
        reported=bool(plain.errors),
        any_temporal=any(e.kind.is_temporal for e in plain.errors),
        any_spatial=any(e.kind.is_spatial for e in plain.errors),
    )
    if mismatch is not None:
        divergences.append(
            Divergence(
                case.seed, tool, "interproc",
                f"summaries-off run misses ground truth: {mismatch}",
            )
        )
    return divergences


def run_case(
    case: FuzzCase,
    tools: Sequence[str] = ALL_TOOLS,
    check_invariants: bool = True,
    audit_elisions: bool = False,
) -> CaseReport:
    """Run ``case`` through the full differential matrix."""
    divergences: List[Divergence] = []
    invariant_checks = 0
    program = build_case(case)
    returns: Dict[str, int] = {}
    for tool in tools:
        try:
            off, checker_off = _run_one(program, tool, False, check_invariants)
            on, checker_on = _run_one(program, tool, True, check_invariants)
            if audit_elisions:
                divergences.extend(
                    _audit_elisions(program, tool, case, observables(off))
                )
            if tool in INTERPROC_TOOLS:
                divergences.extend(
                    _interproc_differential(program, tool, case, off)
                )
        except Exception as exc:  # noqa: BLE001 - any crash is a finding
            divergences.append(
                Divergence(
                    case.seed, tool, "crash",
                    f"{type(exc).__name__}: {exc}",
                )
            )
            continue

        obs_off, obs_on = observables(off), observables(on)
        if obs_off != obs_on:
            diff_keys = sorted(
                key for key in obs_off if obs_off[key] != obs_on[key]
            )
            divergences.append(
                Divergence(
                    case.seed, tool, "fastpath",
                    f"on/off observables differ in {diff_keys}",
                )
            )

        for checker in (checker_off, checker_on):
            if checker is None:
                continue
            invariant_checks += checker.checks_run
            for violation in checker.violations:
                divergences.append(
                    Divergence(case.seed, tool, "invariant", violation)
                )

        expectation = expected_verdict(tool, case.bug)
        errors = off.errors
        mismatch = verdict_matches(
            expectation,
            reported=bool(errors),
            any_temporal=any(e.kind.is_temporal for e in errors),
            any_spatial=any(e.kind.is_spatial for e in errors),
        )
        if mismatch is not None:
            seen = ", ".join(sorted({e.kind.value for e in errors})) or "none"
            bug_kind = case.bug.kind if case.bug else "none"
            divergences.append(
                Divergence(
                    case.seed, tool, "oracle",
                    f"{mismatch}; bug={bug_kind}, reports=[{seen}]",
                )
            )
        returns[tool] = off.return_value

    if case.bug is None and len(set(returns.values())) > 1:
        divergences.append(
            Divergence(
                case.seed, "*", "cross-tool",
                f"clean-case return values differ: {returns}",
            )
        )
    return CaseReport(case, divergences, invariant_checks)


def divergence_signature(report: CaseReport) -> frozenset:
    """What the shrinker must preserve: the set of (tool, kind) pairs."""
    return frozenset((d.tool, d.kind) for d in report.divergences)


# ----------------------------------------------------------------------
# batch running + the process-pool worker
# ----------------------------------------------------------------------
@dataclass
class FuzzSummary:
    """Aggregated outcome of a fuzzing run."""

    cases: int = 0
    buggy_cases: int = 0
    invariant_checks: int = 0
    findings: List[dict] = None  # [{seed, tool, kind, detail, repro}]

    def __post_init__(self):
        if self.findings is None:
            self.findings = []

    def merge(self, other: "FuzzSummary") -> None:
        self.cases += other.cases
        self.buggy_cases += other.buggy_cases
        self.invariant_checks += other.invariant_checks
        self.findings.extend(other.findings)


def fuzz_span(
    seed: int,
    start: int,
    stop: int,
    bug_probability: float = 0.55,
    shrink: bool = True,
    tools: Sequence[str] = ALL_TOOLS,
    audit_elisions: bool = False,
) -> FuzzSummary:
    """Fuzz case indices ``[start, stop)`` for the base ``seed``."""
    from .shrinker import shrink_case  # local: avoids an import cycle

    summary = FuzzSummary()
    for index in range(start, stop):
        case = generate_case(
            case_seed_for(seed, index), bug_probability=bug_probability
        )
        summary.cases += 1
        if case.bug is not None:
            summary.buggy_cases += 1
        report = run_case(case, tools=tools, audit_elisions=audit_elisions)
        summary.invariant_checks += report.invariant_checks
        if report.clean:
            continue
        reduced = shrink_case(case, tools=tools) if shrink else case
        for divergence in report.divergences:
            summary.findings.append(
                {
                    "seed": divergence.case_seed,
                    "tool": divergence.tool,
                    "kind": divergence.kind,
                    "detail": divergence.detail,
                    "repro": reduced.describe(),
                }
            )
    return summary


def fuzz_worker(payload) -> FuzzSummary:
    """Module-level worker for :func:`repro.analysis.parallel.parallel_map`."""
    seed, start, stop, bug_probability, shrink, audit_elisions = payload
    return fuzz_span(
        seed,
        start,
        stop,
        bug_probability=bug_probability,
        shrink=shrink,
        audit_elisions=audit_elisions,
    )
