"""Seeded random IR program generator with ground-truth verdicts.

A fuzz case is generated in two layers:

* **spec ops** — a flat list of frozen dataclasses (buffer declarations,
  in-bounds accesses, loop walks, region operations, frees, helper
  calls).  Every numeric parameter is resolved at generation time, so a
  case is fully described by its op tuple and can be rebuilt, shrunk,
  and pickled without re-running the RNG.
* **an optional injected bug** — at most one deliberate violation per
  case, described by a :class:`BugSpec` that *is* the ground truth: the
  differential driver derives each tool's expected verdict from it (see
  :mod:`repro.fuzz.expectations`).

The bug always targets a dedicated ``victim`` object that the benign ops
never touch, so op shuffling cannot mask or duplicate the violation, and
the benign ops never free enough memory to trigger quarantine eviction
(total heap per case stays far below the default budget), so
use-after-free ground truth is deterministic.

``build_case`` translates the spec into a real
:class:`~repro.ir.program.Program` through the fluent builder; it is a
dumb translator with no randomness of its own.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple, Union

from ..ir.builder import ProgramBuilder
from ..ir.nodes import V
from ..ir.program import Program

#: Arena names as :meth:`AddressSpace.arena_of` reports them.
ARENAS = ("heap", "stack", "globals")

#: Bug kinds the generator can inject (ground-truth vocabulary).
BUG_KINDS = (
    "overflow",        # access starting at/after the object end
    "underflow",       # access starting before the object base
    "loop_overflow",   # affine loop whose last iteration runs off the end
    "uaf",             # access through the freed base pointer
    "uaf_interior",    # access through a derived interior pointer
    "double_free",     # free the same base twice
    "invalid_free",    # free an interior (non-base) pointer
    "uar",             # use a stack address after the frame popped
    "memset_overflow",  # region fill longer than the object
    "memcpy_overflow",  # region copy overflowing the destination
)

#: Cap on per-case heap usage: far below the 1 MiB default quarantine
#: budget so freed victim chunks provably stay quarantined.
MAX_CASE_HEAP_BYTES = 512 * 1024

#: The one "giant" allocation size the generator mixes in.
GIANT_SIZE = 64 * 1024

_HEAP_SIZES = (0, 1, 5, 7, 8, 13, 16, 17, 24, 40, 64, 96, 100, 256, 1000, 4096)
_STACK_SIZES = (1, 5, 8, 13, 16, 24, 40, 64, 100, 256, 1024)
_GLOBAL_SIZES = (1, 5, 8, 16, 24, 64, 100, 256, 1024)
_WIDTHS = (1, 2, 4, 8)


# ----------------------------------------------------------------------
# spec ops
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BufferDecl:
    """Declare one buffer (heap malloc / stack slot / global)."""

    var: str
    size: int
    arena: str = "heap"


@dataclass(frozen=True)
class SingleAccess:
    """One in-bounds load or store at a fixed offset."""

    buf: str
    offset: int
    width: int
    store: bool
    value: int = 0


@dataclass(frozen=True)
class LoopWalk:
    """``for i in [0, count): access buf[start + i*stride]``.

    ``step`` > 1 strides the loop induction variable itself (the offsets
    visited stay within ``start + (count-1)*stride + width``);
    ``reverse`` walks the same index set descending; ``bounded=False``
    forbids SCEV promotion, exercising the history-caching path.
    """

    buf: str
    loop_var: str
    count: int
    start: int
    stride: int
    width: int
    store: bool
    step: int = 1
    reverse: bool = False
    bounded: bool = True


@dataclass(frozen=True)
class NonAffineWalk:
    """``for i in [0, count): access buf[(i*mult + add) % modulo]``.

    Never fastpath-eligible; exercises the decline path and per-access
    checks with scattered offsets.
    """

    buf: str
    loop_var: str
    count: int
    mult: int
    add: int
    modulo: int
    width: int
    store: bool


@dataclass(frozen=True)
class RegionFill:
    """In-bounds ``memset(buf + offset, byte, length)``."""

    buf: str
    offset: int
    length: int
    byte: int


@dataclass(frozen=True)
class RegionCopy:
    """In-bounds ``memcpy(dst + dst_off, src + src_off, length)``."""

    dst: str
    dst_off: int
    src: str
    src_off: int
    length: int


@dataclass(frozen=True)
class FreeBuf:
    """Free a heap buffer (benign: freed buffers are never re-accessed)."""

    buf: str


@dataclass(frozen=True)
class HelperCall:
    """Call a helper that walks its own stack buffer (frame traffic)."""

    name: str
    size: int
    count: int


@dataclass(frozen=True)
class KernelCall:
    """Call a pointer-taking kernel that walks the caller's buffer.

    The interprocedural shapes: the kernel's accesses show up in its
    function summary, so callers can elide checks the callee repeats
    (and vice versa).  ``alias_second`` passes the same buffer for both
    pointer parameters — the arg-aliasing shape the parameter-alias
    kill rule exists for.  ``free_in_callee`` has the kernel free its
    first parameter before returning; the caller's buffer is dead
    afterwards and the generator never touches it again.
    """

    name: str
    buf: str
    count: int
    width: int
    store: bool
    alias_second: bool = False
    free_in_callee: bool = False


@dataclass(frozen=True)
class RecursiveCall:
    """Call a bounded self-recursive walker over the caller's buffer.

    Recursive functions get the conservative ⊤ summary, so this shape
    pins the fall-back path: analyses must treat the call as opaque and
    reports must stay byte-identical with summaries on or off.
    """

    name: str
    buf: str
    depth: int
    width: int
    store: bool


SpecOp = Union[
    BufferDecl,
    SingleAccess,
    LoopWalk,
    NonAffineWalk,
    RegionFill,
    RegionCopy,
    FreeBuf,
    HelperCall,
    KernelCall,
    RecursiveCall,
]


# ----------------------------------------------------------------------
# ground truth
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BugSpec:
    """Ground truth for the one injected violation.

    ``offset`` is the access start relative to the victim's base;
    the faulting extent is ``[offset, offset + width)`` for access bugs
    and ``[offset, offset + length)`` for region bugs.  ``via_loop``
    marks violations reached contiguously from inside the object (a
    loop's trailing iterations), which no redzone-jumping caveats apply
    to.  For free-family bugs ``offset`` is the freed pointer's offset
    from the base.
    """

    kind: str
    arena: str = "heap"
    size: int = 0
    offset: int = 0
    width: int = 1
    length: int = 0
    store: bool = False
    via_loop: bool = False

    @property
    def access_end(self) -> int:
        """End of the faulting access, relative to the victim base."""
        extent = self.length if self.length else self.width
        return self.offset + extent

    @property
    def far(self) -> bool:
        """True when the access start jumps past the object end by more
        than a small-redzone width (the §4.4.1 redzone-bypass shape)."""
        return self.kind == "overflow" and self.offset > self.size + 8


@dataclass(frozen=True)
class FuzzCase:
    """One generated program: spec ops plus optional ground-truth bug."""

    seed: int
    ops: Tuple[SpecOp, ...]
    bug: Optional[BugSpec] = None

    def describe(self) -> str:
        lines = [f"seed={self.seed}"]
        for op in self.ops:
            lines.append(f"  {op!r}")
        lines.append(f"  bug={self.bug!r}")
        return "\n".join(lines)


def case_seed_for(seed: int, index: int) -> int:
    """Per-case RNG seed; independent of worker chunking."""
    return (seed * 1_000_003 + index * 7_919 + 1) & 0xFFFFFFFF


# ----------------------------------------------------------------------
# generation
# ----------------------------------------------------------------------
def _pick_size(rng: random.Random, arena: str) -> int:
    if arena == "heap":
        if rng.random() < 0.04:
            return GIANT_SIZE
        return rng.choice(_HEAP_SIZES)
    if arena == "stack":
        return rng.choice(_STACK_SIZES)
    return rng.choice(_GLOBAL_SIZES)


def _gen_loop_walk(
    rng: random.Random, buf: str, size: int, tag: int
) -> Optional[LoopWalk]:
    width = rng.choice(_WIDTHS)
    if size < width:
        return None
    stride = width * rng.choice((1, 1, 1, 2))
    roll = rng.random()
    if roll < 0.08:
        count = 0  # zero-trip: prime fastpath decline candidate
    elif roll < 0.16:
        count = rng.randint(1, 3)  # below MIN_TRIP_COUNT
    else:
        count = rng.randint(4, 64)
    if count:
        max_count = (size - width) // stride + 1
        count = min(count, max_count)
    max_start = size - width - (count - 1) * stride if count else size - width
    start = rng.randint(0, max_start) if max_start > 0 else 0
    return LoopWalk(
        buf=buf,
        loop_var=f"i{tag}",
        count=count,
        start=start,
        stride=stride,
        width=width,
        store=rng.random() < 0.5,
        step=rng.choice((1, 1, 1, 2)),
        reverse=rng.random() < 0.25,
        bounded=rng.random() < 0.8,
    )


def _gen_nonaffine(
    rng: random.Random, buf: str, size: int, tag: int
) -> Optional[NonAffineWalk]:
    width = rng.choice((1, 2))
    if size < width:
        return None
    return NonAffineWalk(
        buf=buf,
        loop_var=f"i{tag}",
        count=rng.randint(4, 32),
        mult=rng.randint(1, 13),
        add=rng.randint(0, 7),
        modulo=size - width + 1,
        width=width,
        store=rng.random() < 0.5,
    )


def _gen_ops(rng: random.Random) -> Tuple[SpecOp, ...]:
    ops: List[SpecOp] = []
    buffers: List[Tuple[str, int, str]] = []
    heap_bytes = 0
    for index in range(rng.randint(1, 4)):
        arena = rng.choices(ARENAS, weights=(6, 2, 2))[0]
        size = _pick_size(rng, arena)
        if arena == "heap" and heap_bytes + size > MAX_CASE_HEAP_BYTES:
            size = 16
        if arena == "heap":
            heap_bytes += size
        var = f"buf{index}"
        ops.append(BufferDecl(var, size, arena))
        buffers.append((var, size, arena))

    freed: set = set()
    tag = 0
    for _ in range(rng.randint(2, 10)):
        tag += 1
        live = [(v, s, a) for v, s, a in buffers if v not in freed]
        choice = rng.random()
        if choice < 0.07:
            heap_live = [(v, s, a) for v, s, a in live if a == "heap"]
            if heap_live:
                var, _, _ = rng.choice(heap_live)
                ops.append(FreeBuf(var))
                freed.add(var)
            continue
        if choice < 0.15:
            ops.append(
                HelperCall(
                    name=f"helper{tag}",
                    size=rng.choice((8, 16, 64, 256)),
                    count=rng.randint(4, 16),
                )
            )
            continue
        if not live:
            continue
        var, size, arena = rng.choice(live)
        if choice < 0.22:
            width = rng.choice((1, 2, 4))
            if size >= width:
                alias = rng.random() < 0.3
                free_in = arena == "heap" and rng.random() < 0.25
                ops.append(
                    KernelCall(
                        name=f"kernel{tag}",
                        buf=var,
                        count=rng.randint(1, min(16, size // width)),
                        width=width,
                        store=rng.random() < 0.5,
                        alias_second=alias,
                        free_in_callee=free_in,
                    )
                )
                if free_in:
                    freed.add(var)
            continue
        if choice < 0.27:
            width = rng.choice((1, 2, 4))
            if size >= width:
                ops.append(
                    RecursiveCall(
                        name=f"rec{tag}",
                        buf=var,
                        depth=min(6, size // width),
                        width=width,
                        store=rng.random() < 0.5,
                    )
                )
            continue
        if choice < 0.45:
            walk = _gen_loop_walk(rng, var, size, tag)
            if walk is not None:
                ops.append(walk)
        elif choice < 0.55:
            walk = _gen_nonaffine(rng, var, size, tag)
            if walk is not None:
                ops.append(walk)
        elif choice < 0.75:
            width = rng.choice(_WIDTHS)
            if size >= width:
                ops.append(
                    SingleAccess(
                        buf=var,
                        offset=rng.randint(0, size - width),
                        width=width,
                        store=rng.random() < 0.5,
                        value=rng.randint(0, 1 << 31),
                    )
                )
        elif choice < 0.9:
            if size >= 1:
                offset = rng.randint(0, size - 1)
                length = rng.randint(0, size - offset)
                ops.append(
                    RegionFill(
                        buf=var,
                        offset=offset,
                        length=length,
                        byte=rng.randint(0, 255),
                    )
                )
        else:
            others = [
                (v, s) for v, s, a in live if v != var and s >= 1
            ]
            if others and size >= 1:
                src, src_size = rng.choice(others)
                length = rng.randint(0, min(size, src_size))
                ops.append(
                    RegionCopy(
                        dst=var,
                        dst_off=rng.randint(0, size - length)
                        if size > length
                        else 0,
                        src=src,
                        src_off=rng.randint(0, src_size - length)
                        if src_size > length
                        else 0,
                        length=length,
                    )
                )
    return tuple(ops)


def _gen_bug(rng: random.Random) -> BugSpec:
    kind = rng.choices(
        BUG_KINDS, weights=(22, 12, 12, 12, 5, 8, 6, 8, 8, 7)
    )[0]
    store = rng.random() < 0.5
    if kind == "overflow":
        arena = rng.choices(ARENAS, weights=(6, 3, 3))[0]
        size = _pick_size(rng, arena)
        if arena == "heap" and rng.random() < 0.2:
            gap = rng.choice((64, 200))  # far jump: redzone bypass shape
            width = rng.choice(_WIDTHS)
        else:
            gap = rng.randint(0, 7)
            width = rng.choice([w for w in _WIDTHS if w <= 8 - gap])
        return BugSpec(
            kind=kind, arena=arena, size=size,
            offset=size + gap, width=width, store=store,
        )
    if kind == "underflow":
        arena = rng.choices(ARENAS, weights=(6, 3, 3))[0]
        size = _pick_size(rng, arena)
        delta = rng.randint(1, 8)
        return BugSpec(
            kind=kind, arena=arena, size=size,
            offset=-delta, width=rng.choice(_WIDTHS), store=store,
        )
    if kind == "loop_overflow":
        arena = rng.choices(ARENAS, weights=(6, 3, 3))[0]
        width = rng.choice(_WIDTHS)
        size = width * rng.randint(4, 40)
        # one extra trailing iteration: end = size + width <= size + 8
        return BugSpec(
            kind=kind, arena=arena, size=size,
            offset=size, width=width, store=store, via_loop=True,
        )
    if kind in ("uaf", "uaf_interior"):
        size = max(_pick_size(rng, "heap"), 16 if kind == "uaf_interior" else 1)
        width = rng.choice(_WIDTHS)
        low = 8 if kind == "uaf_interior" else 0
        offset = rng.randint(low, max(low, size - width))
        return BugSpec(
            kind=kind, arena="heap", size=size,
            offset=offset, width=width, store=store,
        )
    if kind == "double_free":
        return BugSpec(kind=kind, arena="heap", size=_pick_size(rng, "heap"))
    if kind == "invalid_free":
        return BugSpec(
            kind=kind, arena="heap",
            size=max(_pick_size(rng, "heap"), 16),
            offset=rng.choice((1, 8)),
        )
    if kind == "uar":
        size = rng.choice((8, 16, 64))
        width = rng.choice(_WIDTHS)
        return BugSpec(
            kind=kind, arena="stack", size=size,
            offset=rng.randint(0, size - width), width=width, store=store,
        )
    if kind == "memset_overflow":
        size = max(_pick_size(rng, "heap"), 1)
        return BugSpec(
            kind=kind, arena="heap", size=size,
            offset=0, length=size + rng.randint(1, 8), store=True,
        )
    # memcpy_overflow: destination overflow, source sized to fit
    size = max(_pick_size(rng, "heap"), 1)
    return BugSpec(
        kind="memcpy_overflow", arena="heap", size=size,
        offset=0, length=size + rng.randint(1, 8), store=True,
    )


def generate_case(case_seed: int, bug_probability: float = 0.55) -> FuzzCase:
    """Generate one reproducible case from its seed."""
    rng = random.Random(case_seed)
    ops = _gen_ops(rng)
    bug = _gen_bug(rng) if rng.random() < bug_probability else None
    return FuzzCase(seed=case_seed, ops=ops, bug=bug)


# ----------------------------------------------------------------------
# translation to IR
# ----------------------------------------------------------------------
def _emit_decl(f, op: BufferDecl) -> None:
    if op.arena == "heap":
        f.malloc(op.var, op.size)
    elif op.arena == "stack":
        f.stack_alloc(op.var, op.size)
    else:
        f.global_alloc(op.var, op.size)


def _emit_access(f, buf: str, offset, width: int, store: bool, value, tag: str):
    """One access; loads accumulate into the checksum variable ``acc``."""
    if store:
        f.store(buf, offset, width, value)
    else:
        f.load(f"t{tag}", buf, offset, width)
        f.assign("acc", V("acc") + V(f"t{tag}"))


def _emit_op(f, op: SpecOp, tag: str) -> None:
    if isinstance(op, BufferDecl):
        _emit_decl(f, op)
    elif isinstance(op, SingleAccess):
        _emit_access(f, op.buf, op.offset, op.width, op.store, op.value, tag)
    elif isinstance(op, LoopWalk):
        with f.loop(
            op.loop_var, 0, op.count, step=op.step,
            bounded=op.bounded, reverse=op.reverse,
        ) as i:
            _emit_access(
                f, op.buf, i * op.stride + op.start, op.width,
                op.store, i + 1, tag,
            )
    elif isinstance(op, NonAffineWalk):
        with f.loop(op.loop_var, 0, op.count) as i:
            _emit_access(
                f, op.buf, (i * op.mult + op.add) % op.modulo, op.width,
                op.store, i, tag,
            )
    elif isinstance(op, RegionFill):
        f.memset(op.buf, op.offset, op.length, op.byte)
    elif isinstance(op, RegionCopy):
        f.memcpy(op.dst, op.dst_off, op.src, op.src_off, op.length)
    elif isinstance(op, FreeBuf):
        f.free(op.buf)
    elif isinstance(op, HelperCall):
        f.call(op.name, [])
    elif isinstance(op, KernelCall):
        args = [V(op.buf), V(op.buf)] if op.alias_second else [V(op.buf)]
        f.call(op.name, args, dst=f"k{tag}")
        f.assign("acc", V("acc") + V(f"k{tag}"))
    elif isinstance(op, RecursiveCall):
        f.call(op.name, [V(op.buf), op.depth], dst=f"r{tag}")
        f.assign("acc", V("acc") + V(f"r{tag}"))
    else:  # pragma: no cover - defensive
        raise TypeError(f"unknown spec op {op!r}")


def _emit_helper(builder: ProgramBuilder, op: HelperCall) -> None:
    with builder.function(op.name) as h:
        h.stack_alloc("hbuf", op.size)
        limit = min(op.count, op.size)
        with h.loop("hi", 0, limit) as hi:
            h.store("hbuf", hi, 1, hi + 1)
        h.ret(0)


def _emit_kernel(builder: ProgramBuilder, op: KernelCall) -> None:
    """The callee for one KernelCall op (accesses precede any free)."""
    params = ["p", "q"] if op.alias_second else ["p"]
    with builder.function(op.name, params=params) as k:
        k.assign("kacc", 0)
        with k.loop("ki", 0, op.count) as ki:
            if op.store:
                k.store("p", ki * op.width, op.width, ki + 1)
            else:
                k.load("kv", "p", ki * op.width, op.width)
                k.assign("kacc", V("kacc") + V("kv"))
        if op.alias_second:
            k.load("kq", "q", 0, op.width)
            k.assign("kacc", V("kacc") + V("kq"))
        if op.free_in_callee:
            k.free("p")
        k.ret(V("kacc"))


def _emit_recursive(builder: ProgramBuilder, op: RecursiveCall) -> None:
    """The callee for one RecursiveCall op: ``rec(p, d)`` touches
    ``p[(d-1)*width]`` then recurses with ``d - 1`` until ``d == 0``."""
    with builder.function(op.name, params=["p", "d"]) as r:
        r.assign("racc", 0)
        with r.if_(V("d").gt(0)):
            if op.store:
                r.store("p", (V("d") - 1) * op.width, op.width, V("d"))
            else:
                r.load("rv", "p", (V("d") - 1) * op.width, op.width)
            r.call(op.name, [V("p"), V("d") - 1], dst="rsub")
            if op.store:
                r.assign("racc", V("rsub"))
            else:
                r.assign("racc", V("rv") + V("rsub"))
        r.ret(V("racc"))


def _emit_bug(builder: ProgramBuilder, f, bug: BugSpec) -> None:
    tag = "bug"
    if bug.kind == "uar":
        with builder.function("uar_helper") as h:
            h.stack_alloc("ubuf", bug.size)
            h.store("ubuf", 0, 1, 1)
            h.ret(V("ubuf"))
        f.call("uar_helper", [], dst="victim")
        _emit_access(f, "victim", bug.offset, bug.width, bug.store, 7, tag)
        return

    decl = BufferDecl("victim", bug.size, bug.arena)
    _emit_decl(f, decl)
    if bug.kind in ("overflow", "underflow"):
        _emit_access(f, "victim", bug.offset, bug.width, bug.store, 7, tag)
    elif bug.kind == "loop_overflow":
        count = bug.size // bug.width + 1  # last iteration runs off the end
        with f.loop("ibug", 0, count) as i:
            _emit_access(
                f, "victim", i * bug.width, bug.width, bug.store, i, tag
            )
    elif bug.kind == "uaf":
        f.free("victim")
        _emit_access(f, "victim", bug.offset, bug.width, bug.store, 7, tag)
    elif bug.kind == "uaf_interior":
        f.ptr_add("vptr", "victim", 8)
        f.free("victim")
        _emit_access(f, "vptr", bug.offset - 8, bug.width, bug.store, 7, tag)
    elif bug.kind == "double_free":
        f.free("victim")
        f.free("victim")
    elif bug.kind == "invalid_free":
        f.ptr_add("vptr", "victim", bug.offset)
        f.free("vptr")
    elif bug.kind == "memset_overflow":
        f.memset("victim", bug.offset, bug.length, 0xAB)
    elif bug.kind == "memcpy_overflow":
        f.malloc("bugsrc", bug.length)
        f.memcpy("victim", bug.offset, "bugsrc", 0, bug.length)
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown bug kind {bug.kind!r}")


def build_case(case: FuzzCase) -> Program:
    """Translate a spec case into an executable IR program."""
    builder = ProgramBuilder()
    for op in case.ops:
        if isinstance(op, HelperCall):
            _emit_helper(builder, op)
        elif isinstance(op, KernelCall):
            _emit_kernel(builder, op)
        elif isinstance(op, RecursiveCall):
            _emit_recursive(builder, op)
    with builder.function("main") as f:
        f.assign("acc", 0)
        for index, op in enumerate(case.ops):
            _emit_op(f, op, str(index))
        if case.bug is not None:
            _emit_bug(builder, f, case.bug)
        f.ret(V("acc"))
    return builder.build(entry="main")


def drop_op(case: FuzzCase, index: int) -> FuzzCase:
    """Case with op ``index`` removed (and its buffer's dependents, if a
    declaration is dropped) — the shrinker's main reduction move."""
    target = case.ops[index]
    ops = list(case.ops)
    del ops[index]
    if isinstance(target, BufferDecl):
        ops = [
            op
            for op in ops
            if target.var not in (
                getattr(op, "buf", None),
                getattr(op, "dst", None),
                getattr(op, "src", None),
            )
        ]
    return replace(case, ops=tuple(ops))
