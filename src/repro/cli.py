"""Command-line interface: regenerate the paper's experiments.

Usage (installed as ``python -m repro``)::

    python -m repro list                         # experiments available
    python -m repro table1
    python -m repro table2 --scale 2 --ablation
    python -m repro table3
    python -m repro table4
    python -m repro table5
    python -m repro fig10 --scale 2
    python -m repro fig11
    python -m repro bench --jobs 4               # timed Table 2 sweep
    python -m repro profile --tool GiantSan      # telemetry counters
    python -m repro serve --port 8321            # REST control plane
    python -m repro demo                         # quickstart bug report

Experiment sweeps accept ``--jobs N`` to fan cells out across worker
processes; results are identical to ``--jobs 1``.  They also accept
``--engine {tree,compiled}`` to pick the execution engine (identical
observables, the compiled engine is just faster); the default honours
``REPRO_ENGINE``.  Likewise ``--shadow {bytearray,numpy}`` picks the
shadow-plane backend (identical observables, the numpy plane vectorizes
bulk scans and poisoning); the default honours ``REPRO_SHADOW``.
"""

from __future__ import annotations

import argparse
import signal
import sys
from typing import List, Optional


def _cmd_table1(args) -> str:
    from .analysis import render_table1

    return render_table1()


def _cmd_table2(args) -> str:
    from .analysis import (
        ABLATION_TOOLS,
        PERFORMANCE_TOOLS,
        overhead_to_rows,
        render_table2,
        run_overhead_study,
        to_csv,
        to_json,
    )

    tools = list(PERFORMANCE_TOOLS)
    if args.ablation:
        tools += ABLATION_TOOLS
    study = run_overhead_study(tools=tools, scale=args.scale, jobs=args.jobs)
    if args.format == "csv":
        return to_csv(overhead_to_rows(study)).rstrip()
    if args.format == "json":
        return to_json(overhead_to_rows(study))
    return render_table2(study)


def _cmd_table3(args) -> str:
    from .analysis import render_table3, run_juliet_study

    return render_table3(run_juliet_study(jobs=args.jobs))


def _cmd_table4(args) -> str:
    from .analysis import render_table4, run_linux_flaw_study

    return render_table4(run_linux_flaw_study(jobs=args.jobs))


def _cmd_table5(args) -> str:
    from .analysis import render_table5, run_magma_study

    return render_table5(run_magma_study(jobs=args.jobs))


def _cmd_fig10(args) -> str:
    from .analysis import render_figure10, run_figure10_study

    return render_figure10(run_figure10_study(scale=args.scale, jobs=args.jobs))


def _cmd_fig11(args) -> str:
    from .analysis import render_figure11, run_figure11_study

    return render_figure11(run_figure11_study(jobs=args.jobs))


def _cmd_bench(args) -> str:
    """Time the full Table 2 sweep; the wall-clock benchmark entry point."""
    import time

    from .analysis import PERFORMANCE_TOOLS, run_overhead_study
    from .runtime import geometric_mean

    started = time.perf_counter()
    study = run_overhead_study(
        tools=list(PERFORMANCE_TOOLS), scale=args.scale, jobs=args.jobs
    )
    elapsed = time.perf_counter() - started
    lines = [
        f"table2 sweep: {len(study.rows)} programs x "
        f"{len(study.tools) + 1} tools, jobs={args.jobs}",
        f"wall-clock: {elapsed:.2f}s",
    ]
    for tool, mean in study.geometric_means().items():
        lines.append(f"  geomean {tool}: {mean * 100.0:.1f}%")
    return "\n".join(lines)


def _cmd_profile(args) -> str:
    """Telemetry profile: fast/slow split, quasi-bound convergence, phases."""
    from .analysis import (
        profile_to_json,
        render_profile,
        run_profile_study,
        telemetry_to_rows,
        to_csv,
        wiring_problems,
    )
    from .workloads import SPEC_BY_NAME

    if args.program is not None and args.program not in SPEC_BY_NAME:
        known = ", ".join(sorted(SPEC_BY_NAME))
        raise SystemExit(
            f"unknown program {args.program!r}; known programs: {known}"
        )
    programs = (
        [SPEC_BY_NAME[args.program]] if args.program is not None else None
    )
    try:
        study = run_profile_study(
            tool=args.tool, programs=programs, scale=args.scale,
            jobs=args.jobs,
        )
    except ValueError as exc:  # unknown tool
        raise SystemExit(str(exc))
    if args.format == "csv":
        output = to_csv(telemetry_to_rows(study)).rstrip()
    elif args.format == "json":
        output = profile_to_json(study)
    else:
        output = render_profile(study)
    if args.assert_checks:
        problems = wiring_problems(study)
        if problems:
            print(output)
            print("telemetry wiring regression:")
            for problem in problems:
                print(f"  {problem}")
            raise SystemExit(1)
    return output


def _cmd_fuzz(args) -> str:
    """Differential fuzzing sweep: all tools, fastpath on and off."""
    from .analysis.parallel import parallel_map, steal_spans
    from .fuzz.driver import FuzzSummary, fuzz_worker, run_case
    from .fuzz.generator import case_seed_for, generate_case

    if args.repro is not None:
        case = generate_case(args.repro, bug_probability=args.bug_probability)
        report = run_case(case, audit_elisions=args.audit_elisions)
        lines = [case.describe(), ""]
        if report.clean:
            lines.append(
                f"case clean ({report.invariant_checks} invariant checks)"
            )
            return "\n".join(lines)
        for divergence in report.divergences:
            lines.append(divergence.render())
        print("\n".join(lines))
        raise SystemExit(1)

    # steal-friendly spans: finer than one per worker so a case that
    # shrinks slowly doesn't serialize the sweep; ascending-span merge
    # keeps the summary byte-identical to --jobs 1 at any granularity
    spans = steal_spans(args.iterations, args.jobs)
    payloads = [
        (
            args.seed,
            start,
            stop,
            args.bug_probability,
            not args.no_shrink,
            args.audit_elisions,
        )
        for start, stop in spans
    ]
    summary = FuzzSummary()
    for partial in parallel_map(
        fuzz_worker,
        payloads,
        jobs=args.jobs,
        shard_keys=[("fuzz", start) for start, _ in spans],
    ):
        summary.merge(partial)
    audited = " + elision audit" if args.audit_elisions else ""
    lines = [
        f"fuzzed {summary.cases} cases (seed={args.seed}, "
        f"{summary.buggy_cases} with injected bugs) under all tools, "
        f"fastpath on+off{audited}",
        f"invariant checks passed: {summary.invariant_checks}",
        f"divergences: {len(summary.findings)}",
    ]
    if not summary.findings:
        return "\n".join(lines)
    seen_repro = set()
    for finding in summary.findings:
        lines.append(
            f"  seed={finding['seed']} tool={finding['tool']} "
            f"[{finding['kind']}] {finding['detail']}"
        )
        if finding["seed"] not in seen_repro:
            seen_repro.add(finding["seed"])
            lines.append("  minimized reproducer:")
            lines.extend(
                f"    {line}" for line in finding["repro"].splitlines()
            )
    print("\n".join(lines))
    raise SystemExit(1)


def _analyze_corpus(args) -> list:
    """``[(name, program, expected_buggy)]`` for the selected corpus.

    ``expected_buggy`` is None for the SPEC proxies (clean by design)
    and the generated Juliet case's ground truth otherwise — the CI
    static-analysis job asserts zero findings on the clean half.
    """
    if args.corpus == "callheavy":
        from .workloads import build_callheavy_program

        return [("callheavy", build_callheavy_program(), None)]
    if args.corpus == "juliet":
        from .workloads import juliet_suite_cached

        cases = juliet_suite_cached()
        if args.program is not None:
            cases = [c for c in cases if c.case_id == args.program]
            if not cases:
                raise SystemExit(f"unknown juliet case {args.program!r}")
        return [(c.case_id, c.program, c.buggy) for c in cases]
    from .workloads import SPEC_BY_NAME, SPEC_TABLE2_ROWS, build_spec_program

    if args.program is not None and args.program not in SPEC_BY_NAME:
        known = ", ".join(sorted(SPEC_BY_NAME))
        raise SystemExit(
            f"unknown program {args.program!r}; known programs: {known}"
        )
    names = (
        [args.program]
        if args.program is not None
        else [p.name for p in SPEC_TABLE2_ROWS]
    )
    return [(name, build_spec_program(name), None) for name in names]


def _cmd_analyze(args) -> str:
    """Static dataflow analysis over a corpus (no execution)."""
    import json

    from .dataflow import render_whole_program, whole_program_data
    from .passes.instrument import instrument
    from .reporting import format_static_findings
    from .sanitizers import SANITIZER_FACTORIES

    try:
        factory = SANITIZER_FACTORIES[args.tool]
    except KeyError:
        known = ", ".join(sorted(SANITIZER_FACTORIES))
        raise SystemExit(f"unknown tool {args.tool!r}; known tools: {known}")
    interproc = not args.no_interproc
    corpus = _analyze_corpus(args)
    rows = []
    findings_all = []
    elisions_all = []
    timings_total: dict = {}
    whole_sections = []
    for name, program, expected_buggy in corpus:
        ip = instrument(
            program, tool=factory(), interprocedural=interproc
        )
        row = {
            "name": name,
            "elided": len(ip.stats.elisions),
            "cross_call_elided": ip.stats.notes.get(
                "cross_call_eliminated", 0
            ),
            "eliminated": ip.stats.eliminated,
            "remaining_checks": ip.stats.remaining_checks,
            "findings": [
                {
                    "function": f.function,
                    "kind": f.kind,
                    "site_id": f.site_id,
                    "detail": f.detail,
                    "always_executes": f.always_executes,
                }
                for f in ip.stats.findings
            ],
        }
        if expected_buggy is not None:
            row["expected_buggy"] = expected_buggy
        rows.append(row)
        findings_all.extend(ip.stats.findings)
        elisions_all.extend(ip.stats.elisions)
        for pass_name, micros in ip.stats.pass_timings().items():
            timings_total[pass_name] = (
                timings_total.get(pass_name, 0) + micros
            )
        if args.whole_program:
            data = whole_program_data(program, interprocedural=interproc)
            if args.format == "json":
                row["whole_program"] = data
            else:
                whole_sections.append(
                    (name, render_whole_program(program, data))
                )
    if args.format == "json":
        payload = {
            "tool": args.tool,
            "corpus": args.corpus,
            "interprocedural": interproc,
            "programs": rows,
            "totals": {
                "elided": sum(r["elided"] for r in rows),
                "cross_call_elided": sum(
                    r["cross_call_elided"] for r in rows
                ),
                "eliminated": sum(r["eliminated"] for r in rows),
                "findings": sum(len(r["findings"]) for r in rows),
            },
            "pass_timings_us": timings_total,
        }
        return json.dumps(payload, indent=2, sort_keys=True)
    mode = "interprocedural" if interproc else "intraprocedural"
    lines = [f"static analysis under {args.tool} ({mode}):", ""]
    lines.append(
        f"{'program':<24} {'elided':>7} {'x-call':>7} {'findings':>9}"
    )
    for row in rows:
        lines.append(
            f"{row['name']:<24} {row['elided']:>7} "
            f"{row['cross_call_elided']:>7} {len(row['findings']):>9}"
        )
    lines.append("")
    lines.append(format_static_findings(findings_all))
    for name, section in whole_sections:
        lines.append("")
        lines.append(f"=== {name} ===")
        lines.append(section)
    if args.elisions and elisions_all:
        lines.append("")
        lines.append("elided checks:")
        for record in elisions_all:
            lines.append(
                f"  {record.function} site {record.site_id}: {record.reason}"
            )
    if args.stats:
        lines.append("")
        lines.append("pass timings (summed over programs):")
        lines.append(f"  {'pass':<32} {'wall time':>12}")
        for pass_name, micros in sorted(
            timings_total.items(), key=lambda item: -item[1]
        ):
            lines.append(f"  {pass_name:<32} {micros:>9} us")
    return "\n".join(lines)


def _cmd_serve(args) -> str:
    """Run the sanitizer-as-a-service control plane (REST over HTTP)."""
    from .server import create_app
    from .server.config import config_from_env
    from .server.http import run

    config = config_from_env(
        host=args.host, port=args.port, max_concurrency=args.concurrency
    )
    app = create_app(config)
    print(
        f"repro control plane on http://{config.host}:{config.port} "
        f"(jobs: {config.max_concurrency} concurrent, "
        f"worker cap {config.worker_cap})"
    )
    print(
        "endpoints: POST /jobs/run  POST /jobs/sweep  POST /jobs/fuzz  "
        "GET /jobs  GET /healthz  GET /stats"
    )
    sys.stdout.flush()
    run(app, config.host, config.port)
    return "server stopped"


def _cmd_demo(args) -> str:
    from . import ProgramBuilder, Session
    from .reporting import format_all_reports

    builder = ProgramBuilder()
    with builder.function("main") as f:
        f.malloc("buf", 100)
        with f.loop("i", 0, 26, bounded=False) as i:
            f.store("buf", i * 4, 4, i)
        f.free("buf")
    session = Session(args.tool)
    session.run(builder.build())
    return format_all_reports(session.sanitizer)


_COMMANDS = {
    "table1": (_cmd_table1, "Table 1: op-level vs instruction-level checks"),
    "table2": (_cmd_table2, "Table 2: SPEC proxy overheads"),
    "table3": (_cmd_table3, "Table 3: Juliet-style detection"),
    "table4": (_cmd_table4, "Table 4: Linux Flaw CVE detection"),
    "table5": (_cmd_table5, "Table 5: Magma redzone study"),
    "fig10": (_cmd_fig10, "Figure 10: check-type breakdown"),
    "fig11": (_cmd_fig11, "Figure 11: traversal patterns"),
    "bench": (_cmd_bench, "Time the Table 2 sweep (wall-clock benchmark)"),
    "profile": (_cmd_profile, "Telemetry profile: fast/slow split + phases"),
    "fuzz": (_cmd_fuzz, "Differential fuzz: all tools, fastpath on+off"),
    "analyze": (_cmd_analyze, "Static dataflow analysis: findings + elisions"),
    "serve": (_cmd_serve, "Run the REST control plane (jobs over HTTP)"),
    "demo": (_cmd_demo, "Detect a bug and print an ASan-style report"),
}

#: Subcommands whose runners accept a ``--jobs`` worker count.
_PARALLEL_COMMANDS = (
    "table2",
    "table3",
    "table4",
    "table5",
    "fig10",
    "fig11",
    "bench",
    "profile",
    "fuzz",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GiantSan reproduction: regenerate the paper's "
        "tables and figures.",
    )
    subparsers = parser.add_subparsers(dest="command")
    subparsers.add_parser("list", help="list available experiments")
    for name, (_, help_text) in _COMMANDS.items():
        sub = subparsers.add_parser(name, help=help_text)
        if name in ("table2", "fig10", "bench", "profile"):
            sub.add_argument(
                "--scale",
                type=int,
                default=None,
                help="iteration-scale override (default: per-program)",
            )
        if name in _PARALLEL_COMMANDS:
            sub.add_argument(
                "--jobs",
                type=int,
                default=1,
                help="worker processes for the sweep (default 1: inline)",
            )
        if name == "serve":
            sub.add_argument(
                "--host",
                default=None,
                help="bind address (default: REPRO_SERVE_HOST or 127.0.0.1)",
            )
            sub.add_argument(
                "--port",
                type=int,
                default=None,
                help="bind port (default: REPRO_SERVE_PORT or 8321)",
            )
            sub.add_argument(
                "--concurrency",
                type=int,
                default=None,
                help="concurrent job threads "
                "(default: REPRO_SERVE_CONCURRENCY or 2)",
            )
        if name in _PARALLEL_COMMANDS or name in ("demo", "serve"):
            sub.add_argument(
                "--engine",
                choices=["tree", "compiled"],
                default=None,
                help="execution engine (default: REPRO_ENGINE or tree); "
                "observables are identical, compiled is faster",
            )
            sub.add_argument(
                "--shadow",
                choices=["bytearray", "numpy"],
                default=None,
                help="shadow-plane backend (default: REPRO_SHADOW or "
                "bytearray); observables are identical, numpy vectorizes "
                "bulk shadow scans and poisoning",
            )
        if name == "table2":
            sub.add_argument(
                "--ablation",
                action="store_true",
                help="also run the CacheOnly/EliminationOnly columns",
            )
            sub.add_argument(
                "--format",
                choices=["table", "csv", "json"],
                default="table",
                help="output format (default: the paper's table layout)",
            )
        if name == "profile":
            sub.add_argument(
                "--tool",
                default="GiantSan",
                help="sanitizer to profile (default GiantSan)",
            )
            sub.add_argument(
                "--program",
                default=None,
                help="profile one Table 2 proxy instead of all of them",
            )
            sub.add_argument(
                "--format",
                choices=["table", "csv", "json"],
                default="table",
                help="output format (default: text table)",
            )
            sub.add_argument(
                "--assert-checks",
                action="store_true",
                help="exit nonzero if check counters are dead (CI smoke: "
                "all-zero fast/slow split means telemetry came unwired)",
            )
        if name == "fuzz":
            sub.add_argument(
                "--iterations",
                type=int,
                default=200,
                help="number of generated cases (default 200)",
            )
            sub.add_argument(
                "--seed",
                type=int,
                default=0,
                help="base seed; case i uses case_seed_for(seed, i)",
            )
            sub.add_argument(
                "--bug-probability",
                type=float,
                default=0.55,
                help="fraction of cases with an injected bug (default 0.55)",
            )
            sub.add_argument(
                "--repro",
                type=int,
                default=None,
                metavar="CASE_SEED",
                help="re-run one case by its *case* seed and print it",
            )
            sub.add_argument(
                "--no-shrink",
                action="store_true",
                help="report diverging cases without minimizing them",
            )
            sub.add_argument(
                "--audit-elisions",
                action="store_true",
                help="replay every statically elided check against the "
                "shadow oracle; any fired replay is a divergence",
            )
        if name == "analyze":
            sub.add_argument(
                "--tool",
                default="GiantSan",
                help="instrument for this tool's pipeline (default GiantSan)",
            )
            sub.add_argument(
                "--program",
                default=None,
                help="analyze one Table 2 proxy instead of all of them",
            )
            sub.add_argument(
                "--stats",
                action="store_true",
                help="also print the per-pass wall-time table",
            )
            sub.add_argument(
                "--elisions",
                action="store_true",
                help="list every elided check with its static proof",
            )
            sub.add_argument(
                "--format",
                choices=["text", "json"],
                default="text",
                help="output format (default: text tables)",
            )
            sub.add_argument(
                "--corpus",
                choices=["spec", "juliet", "callheavy"],
                default="spec",
                help="program corpus: the Table 2 SPEC proxies, the "
                "generated Juliet suite, or the call-heavy "
                "interprocedural workload (default spec)",
            )
            sub.add_argument(
                "--whole-program",
                action="store_true",
                help="also print each program's call graph and "
                "per-function summaries",
            )
            sub.add_argument(
                "--no-interproc",
                action="store_true",
                help="disable the interprocedural summary layer "
                "(call sites clobber every dataflow fact, as before)",
            )
        if name == "demo":
            sub.add_argument(
                "--tool",
                default="GiantSan",
                help="sanitizer to run the demo under (default GiantSan)",
            )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command in (None, "list"):
        lines = ["available experiments:"]
        for name, (_, help_text) in _COMMANDS.items():
            lines.append(f"  {name:8s} {help_text}")
        print("\n".join(lines))
        return 0
    handler, _ = _COMMANDS[args.command]
    if getattr(args, "engine", None) or getattr(args, "shadow", None):
        # exported via the environment (not threaded through every
        # runner) so Sessions in pool workers pick it up too
        import os

        if getattr(args, "engine", None):
            os.environ["REPRO_ENGINE"] = args.engine
        if getattr(args, "shadow", None):
            os.environ["REPRO_SHADOW"] = args.shadow
    if args.command in _PARALLEL_COMMANDS:
        # SIGTERM as SystemExit so the finally block (and atexit) run:
        # fabric workers get retired and their shared-memory scratch
        # unlinked even when a supervisor kills the sweep.
        _install_sigterm_exit()
    interrupted = False
    try:
        print(handler(args))
    except BrokenPipeError:  # e.g. `python -m repro table2 | head`
        try:
            sys.stdout.close()
        except Exception:
            pass
    except KeyboardInterrupt:
        # Workers ignore SIGINT (fabric.py), so they are still running
        # their units right now; the hard stop below is what retires
        # them and releases /dev/shm.
        interrupted = True
        print("\ninterrupted - retiring fabric workers", file=sys.stderr)
    finally:
        from .analysis.parallel import drain_pool, shutdown_pool

        if interrupted:
            shutdown_pool()
        else:
            # clean exits (including SystemExit from fuzz findings)
            # drain gracefully; a no-op when no fabric was created
            drain_pool()
    return 130 if interrupted else 0


def _install_sigterm_exit() -> None:
    """Route SIGTERM through SystemExit so cleanup handlers run."""

    def _exit(signum, frame):
        raise SystemExit(143)

    try:
        signal.signal(signal.SIGTERM, _exit)
    except ValueError:  # pragma: no cover - non-main-thread embedding
        pass


if __name__ == "__main__":
    sys.exit(main())
