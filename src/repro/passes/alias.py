"""Pointer provenance and must-alias analysis.

The paper adopts LLVM's intra-procedural must-alias analysis to merge
checks on aliased pointers (§4.4.2, "Aliased Check Elimination").  Our
IR makes this tractable: a pointer local derives from an allocation site
(``Malloc``/``StackAlloc``), a parameter, or another pointer plus an
offset.  Two access expressions must-alias when they share a provenance
root and syntactically equal offsets (after constant folding).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..ir.nodes import (
    Assign,
    GlobalAlloc,
    BinOp,
    Call,
    Const,
    Expr,
    Instr,
    Load,
    Loop,
    If,
    Malloc,
    PtrAdd,
    StackAlloc,
    Var,
)
from ..ir.program import Function, walk
from .constprop import fold


@dataclass(frozen=True)
class Provenance:
    """A pointer's origin: a root object plus a symbolic byte offset."""

    root: str
    offset: Expr

    def shifted(self, extra: Expr) -> "Provenance":
        return Provenance(self.root, fold(BinOp("+", self.offset, extra)))


class ProvenanceMap:
    """Flow-insensitive (single-assignment-biased) provenance for one
    function.

    Workload pointers are effectively SSA; when a variable is re-bound to
    a *different* provenance we drop it from the map entirely, which is
    always safe (passes treat unknown provenance as "may alias anything"
    and skip the optimization).

    With interprocedural ``summaries``, a call whose callee definitely
    returns a fresh heap allocation roots its destination at
    ``callret:{id(call)}`` — a brand-new object the caller's analyses
    can track like any allocation site.
    """

    def __init__(self, function: Function, summaries=None):
        self._map: Dict[str, Provenance] = {}
        self._poisoned: set = set()
        self._summaries = summaries
        for name in function.params:
            self._set(name, Provenance(f"param:{name}", Const(0)))
        for instr in walk(function.body):
            self._visit(instr)

    def _set(self, name: str, provenance: Provenance) -> None:
        if name in self._poisoned:
            return
        existing = self._map.get(name)
        if existing is not None and existing != provenance:
            del self._map[name]
            self._poisoned.add(name)
            return
        self._map[name] = provenance

    def _visit(self, instr: Instr) -> None:
        if isinstance(instr, Malloc):
            self._set(instr.dst, Provenance(f"alloc:{id(instr)}", Const(0)))
        elif isinstance(instr, StackAlloc):
            self._set(instr.dst, Provenance(f"stack:{id(instr)}", Const(0)))
        elif isinstance(instr, GlobalAlloc):
            self._set(instr.dst, Provenance(f"global:{id(instr)}", Const(0)))
        elif isinstance(instr, PtrAdd):
            base = self._map.get(instr.base)
            if base is not None and instr.base not in self._poisoned:
                self._set(instr.dst, base.shifted(instr.offset))
            else:
                self._poisoned.add(instr.dst)
                self._map.pop(instr.dst, None)
        elif isinstance(instr, Assign):
            if isinstance(instr.expr, Var):
                source = self._map.get(instr.expr.name)
                if source is not None:
                    self._set(instr.dst, source)
                    return
            # assigning a non-pointer expression clears pointer facts
            self._map.pop(instr.dst, None)
        elif isinstance(instr, Load):
            self._map.pop(instr.dst, None)
        elif isinstance(instr, Call):
            if instr.dst:
                summary = (
                    self._summaries.get(instr.func)
                    if self._summaries is not None
                    else None
                )
                if (
                    summary is not None
                    and not summary.recursive
                    and summary.returns_fresh is not None
                ):
                    self._set(
                        instr.dst,
                        Provenance(f"callret:{id(instr)}", Const(0)),
                    )
                else:
                    self._map.pop(instr.dst, None)

    def provenance(self, var: str) -> Optional[Provenance]:
        return self._map.get(var)

    def same_object(self, a: str, b: str) -> bool:
        """True when both pointers provably reference the same object."""
        pa, pb = self._map.get(a), self._map.get(b)
        return pa is not None and pb is not None and pa.root == pb.root

    def must_alias(
        self, base_a: str, offset_a: Expr, base_b: str, offset_b: Expr
    ) -> bool:
        """True when base_a+offset_a and base_b+offset_b are provably the
        same address (same root, syntactically equal total offsets)."""
        pa, pb = self._map.get(base_a), self._map.get(base_b)
        if pa is None or pb is None or pa.root != pb.root:
            return False
        total_a = fold(BinOp("+", pa.offset, offset_a))
        total_b = fold(BinOp("+", pb.offset, offset_b))
        return total_a == total_b
