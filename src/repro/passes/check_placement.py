"""Baseline check placement: one guard per memory instruction.

This is the stage every tool starts from (paper §4.4.2: "GiantSan first
scans all instructions and intrinsic functions that manipulate the memory
to generate the instruction-level checks").  Styles:

* ``instruction`` — ASan-shaped ``CheckAccess`` guards (check exactly the
  touched bytes);
* ``region`` — anchored ``CheckRegion`` guards of ``[base, off+width)``
  form, GiantSan's anchor-based enhancement (§4.4.1) and LFP's
  pointer-derived bounds both use this shape;
* ``none`` — native execution, sites marked unprotected.

Intrinsics (memset/memcpy/strcpy) are guarded *inside* the runtime
(guardian functions), so placement only tags their protection.
"""

from __future__ import annotations

from typing import List

from ..ir.nodes import (
    BinOp,
    CheckAccess,
    CheckRegion,
    Const,
    Instr,
    Load,
    Memcpy,
    Memset,
    Protection,
    Store,
    Strcpy,
)
from ..ir.nodes import AccessType
from ..ir.program import Program, transform_blocks, walk
from .base import Pass, PassStats


class CheckPlacement(Pass):
    """Insert the baseline guards for a given placement style."""

    name = "check-placement"

    def __init__(self, style: str):
        if style not in ("instruction", "region", "none"):
            raise ValueError(f"unknown placement style: {style}")
        self.style = style

    def run(self, program: Program, stats: PassStats) -> None:
        for function in program.functions.values():
            function.body = transform_blocks(function.body, self._place_block)
        stats.baseline_checks = sum(
            1
            for f in program.functions.values()
            for i in walk(f.body)
            if isinstance(i, (CheckAccess, CheckRegion))
        )
        if self.style == "none":
            for function in program.functions.values():
                for instr in walk(function.body):
                    if isinstance(instr, (Load, Store, Memset, Memcpy, Strcpy)):
                        instr.protection = Protection.UNPROTECTED

    # ------------------------------------------------------------------
    def _place_block(self, block: List[Instr]) -> List[Instr]:
        if self.style == "none":
            return block
        result: List[Instr] = []
        for instr in block:
            guard = self._guard_for(instr)
            if guard is not None:
                result.append(guard)
            result.append(instr)
        return result

    def _guard_for(self, instr: Instr):
        if isinstance(instr, Load):
            return self._make(instr.base, instr.offset, instr.width,
                              AccessType.READ, instr.site_id)
        if isinstance(instr, Store):
            return self._make(instr.base, instr.offset, instr.width,
                              AccessType.WRITE, instr.site_id)
        return None

    def _make(self, base: str, offset, width: int, access, site_id: int):
        if self.style == "instruction":
            return CheckAccess(
                base=base, offset=offset, width=width, access=access,
                site_id=site_id,
            )
        end = BinOp("+", offset, Const(width))
        return CheckRegion(
            base=base, start=offset, end=end, access=access,
            use_anchor=True, site_id=site_id,
        )
