"""Redundant-check elimination and constant-offset merging (§4.4.2).

Two transformations:

* **Cross-block elimination** — a check covered, on *every* incoming
  path, by equal-or-wider must-aliased checks is dropped.  This runs the
  :class:`~repro.dataflow.available.AvailableCheckAnalysis` must-
  analysis to fixpoint over the lowered CFG, so a check after an ``If``
  whose both arms performed a wider check dies, and a check dominated by
  an earlier one is recognized across any nesting — strictly subsuming
  the old straight-line-window deduplication (ASan--'s core
  optimization, also used by GiantSan).

* **Constant-offset merging** — for region-capable tools, checks on the
  same object with constant offsets collapse into a single region check
  covering their span: Figure 8's ``CI(p, p+4); CI(p, p+8)`` becoming
  ``CI(p, p+8)``; Table 1's ``p[0] + p[10] + p[20]`` costing one check.
  Merging groups are keyed by provenance root when it is known, and by
  the base pointer's *current value* otherwise (a freshly loaded ``p``
  used for ``p->a`` then ``p->b``), the latter killed whenever the base
  variable is redefined.

Elimination must not let a check justify its own removal through a loop
back edge (delete it and the "available" fact it generated disappears
with it).  The pass therefore iterates a shrinking candidate set: start
from every covered check, re-run the analysis with the candidates
generating *no* facts, and keep only the ones still covered — at the
fixpoint every deleted check is covered by kept checks alone.

**Interprocedural mode** (``interprocedural=True``) widens both sides
of the elimination across calls, driven by an
:class:`~repro.dataflow.interproc.InterproceduralContext`:

* call sites stop killing everything — the summary-aware analysis
  kills only summarized may-free effects and *generates* the callee's
  must-checked ranges (see :mod:`repro.dataflow.available`);
* functions are processed **top-down** (callers before callees), and
  each finalized call site records its surviving coverage, translated
  to parameter-relative offsets, into the callee's entry seed — the
  pointwise intersection over all sites.  A callee prologue check
  covered by the seed is redundant on every possible invocation and
  dies.

Eliminations that only the interprocedural facts justify (classified
by re-running the fixpoint without them) are recorded as
``ElisionRecord``s and, under ``audit=True``, wrapped in
:class:`~repro.ir.nodes.CheckElided` instead of deleted, so the fuzz
driver's ``--audit-elisions`` mode replays them against the shadow
oracle exactly like safe-access elisions.  Intraprocedurally justified
removals keep today's delete-outright behavior, byte for byte.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..ir.nodes import (
    Call,
    CheckAccess,
    CheckElided,
    CheckRegion,
    Const,
    Free,
    GlobalAlloc,
    If,
    Instr,
    Load,
    Loop,
    Malloc,
    Memcpy,
    Memset,
    Protection,
    StackAlloc,
    Store,
    Strcpy,
    Var,
)
from ..ir.program import Program, transform_blocks, walk
from .alias import ProvenanceMap
from .base import ElisionRecord, Pass, PassStats
from .constprop import fold

#: Instructions that end a merging window.
_BARRIERS = (Call, Free, Loop, If, Malloc, StackAlloc, GlobalAlloc)


class CrossBlockCheckElimination(Pass):
    """Remove checks covered on all paths by must-aliased checks."""

    name = "cross-block-check-elimination"

    def __init__(
        self, audit: bool = False, interprocedural: bool = False
    ):
        self.audit = audit
        self.interprocedural = interprocedural

    def run(self, program: Program, stats: PassStats) -> None:
        from .. import dataflow  # lazy: dataflow lazily imports passes

        sites = _site_map(program)
        ctx = None
        functions = list(program.functions.values())
        if self.interprocedural:
            ctx = dataflow.InterproceduralContext(program)
            # callers first, so every call site is finalized before its
            # callee's entry seed is consumed
            functions = [
                program.functions[name] for name in ctx.graph.top_down()
            ]
        for function in functions:
            summaries = ctx.summaries if ctx is not None else None
            pmap = ProvenanceMap(function, summaries=summaries)
            seeds = (
                ctx.seeds_for(function.name) if ctx is not None else None
            )
            doomed, solution, analysis, cfg = self._converge(
                function, pmap, summaries=summaries, entry_facts=seeds
            )
            cross_call: Set[int] = set()
            if ctx is not None and doomed:
                # which removals did the interprocedural facts enable?
                base, _, _, _ = self._converge(
                    function, ProvenanceMap(function)
                )
                cross_call = doomed - base
            if ctx is not None:
                self._note_call_sites(ctx, cfg, solution, analysis)
            if not doomed:
                continue
            removed = [0]
            audited = [0]

            def prune(block: List[Instr]) -> List[Instr]:
                kept: List[Instr] = []
                for instr in block:
                    if id(instr) not in doomed:
                        kept.append(instr)
                        continue
                    removed[0] += 1
                    site = sites.get(getattr(instr, "site_id", -1))
                    if site is not None:
                        site.protection = Protection.ELIMINATED
                    if id(instr) in cross_call:
                        audited[0] += 1
                        record = self._cross_call_record(
                            function, instr, pmap
                        )
                        stats.elisions.append(record)
                        if self.audit:
                            kept.append(
                                CheckElided(
                                    inner=instr, reason=record.reason
                                )
                            )
                return kept

            function.body = transform_blocks(function.body, prune)
            stats.eliminated += removed[0]
            stats.bump(
                "cross_block_eliminated", removed[0] - audited[0]
            )
            if audited[0]:
                stats.bump("cross_call_eliminated", audited[0])

    @staticmethod
    def _cross_call_record(function, check, pmap) -> ElisionRecord:
        prov = pmap.provenance(check.base)
        root = prov.root if prov is not None else f"v:{check.base}"
        return ElisionRecord(
            function=function.name,
            site_id=getattr(check, "site_id", -1),
            root=root,
            reason=(
                "covered across calls: interprocedural facts "
                f"(summaries/entry seeds) prove {root} already "
                "validated on every path"
            ),
        )

    @staticmethod
    def _note_call_sites(ctx, cfg, solution, analysis) -> None:
        """Record each reachable call site's surviving coverage,
        translated parameter-relative, into the callee's entry seed."""
        from .. import dataflow

        for block in cfg.blocks:
            if block.index not in solution.in_states:
                continue  # unreachable sites never execute: no note
            for instr, state in solution.replay(block):
                if not isinstance(instr, Call):
                    continue
                callee = ctx.program.functions.get(instr.func)
                if callee is None or instr.func in ctx.graph.recursive:
                    continue
                translated: Dict[object, tuple] = {}
                for index, pname in enumerate(callee.params):
                    arg = (
                        instr.args[index]
                        if index < len(instr.args)
                        else None
                    )
                    if not isinstance(arg, Var):
                        continue
                    key, base_off = analysis._key_for(arg.name)
                    ranges = state.get(key, ())
                    if not ranges:
                        continue
                    translated[f"param:{pname}"] = dataflow.normalize(
                        [
                            (lo - base_off, hi - base_off)
                            for lo, hi in ranges
                        ]
                    )
                ctx.note_call_site(instr.func, translated)

    # ------------------------------------------------------------------
    def _converge(
        self,
        function,
        pmap: ProvenanceMap,
        summaries=None,
        entry_facts=None,
    ) -> Tuple[Set[int], object, object, object]:
        """``(doomed, solution, analysis, cfg)`` at the elimination
        fixpoint.

        ``doomed`` is the final set of check ids that are safe to
        delete together — iterates ``D_{k+1} = covered(suppress=D_k) ∩
        D_k`` to a fixpoint (monotonically shrinking, hence
        terminating): at the end, every member is covered even when no
        member generates facts, i.e. by surviving checks only.  The
        returned solution is the last fixpoint solve (suppressing
        exactly the doomed set, or a superset when it converged to
        empty — an under-approximation, which is the sound direction
        for the call-site notes built from it).
        """
        from .. import dataflow  # lazy: dataflow lazily imports passes

        cfg = dataflow.lower_function(function)
        doomed: Optional[Set[int]] = None
        while True:
            analysis = dataflow.AvailableCheckAnalysis(
                function,
                pmap,
                suppressed=doomed or set(),
                summaries=summaries,
                entry_facts=entry_facts,
            )
            solution = dataflow.solve(cfg, analysis)
            covered: Set[int] = set()
            for block in cfg.blocks:
                if block.index not in solution.in_states:
                    continue
                for instr, state in solution.replay(block):
                    if not isinstance(instr, (CheckAccess, CheckRegion)):
                        continue
                    span = analysis.coverage(instr)
                    if span is None:
                        continue
                    key, lo, hi = span
                    if dataflow.covers(state.get(key, ()), lo, hi):
                        covered.add(id(instr))
            new = covered if doomed is None else (covered & doomed)
            if new == doomed or not new:
                return new, solution, analysis, cfg
            doomed = new


#: Historical name: the window-based deduplication this pass subsumes.
AliasedCheckElimination = CrossBlockCheckElimination


class ConstantOffsetMerging(Pass):
    """Collapse same-object constant-offset region checks into one.

    Only valid for tools whose region checks are O(1) at any size
    (GiantSan); merging for ASan would trade N cheap checks for one scan
    of the same total cost.
    """

    name = "constant-offset-merging"

    def run(self, program: Program, stats: PassStats) -> None:
        sites = _site_map(program)
        for function in program.functions.values():
            pmap = ProvenanceMap(function)
            function.body = transform_blocks(
                function.body, lambda block: self._merge(block, pmap, stats, sites)
            )

    def _merge(
        self, block: List[Instr], pmap: ProvenanceMap, stats: PassStats, sites
    ) -> List[Instr]:
        result: List[Instr] = []
        #: group key -> (result index of the anchor check, anchor's own
        #: relative base offset, merged min_off, merged max_off)
        groups: Dict[object, Tuple[int, int, int, int]] = {}
        for instr in block:
            if isinstance(instr, _BARRIERS):
                groups.clear()
                result.append(instr)
                continue
            span = self._const_span(instr, pmap)
            if span is None:
                # a redefinition changes what the base pointer *value*
                # refers to; facts keyed by that value die with it
                dst = getattr(instr, "dst", None)
                if isinstance(dst, str):
                    groups.pop(("v", dst), None)
                result.append(instr)
                continue
            key, base_off, low, high = span
            if key in groups:
                index, anchor_off, cur_low, cur_high = groups[key]
                merged_low = min(cur_low, low)
                merged_high = max(cur_high, high)
                anchor_check: CheckRegion = result[index]  # type: ignore[assignment]
                # offsets are group-relative; rebase onto the anchor
                # check's own base pointer before storing them
                anchor_check.start = Const(merged_low - anchor_off)
                anchor_check.end = Const(merged_high - anchor_off)
                groups[key] = (index, anchor_off, merged_low, merged_high)
                stats.eliminated += 1
                if isinstance(key, tuple):
                    stats.bump("value_keyed_merged")
                site = sites.get(instr.site_id)
                if site is not None:
                    site.protection = Protection.ELIMINATED
                continue  # drop: folded into the anchor check
            groups[key] = (len(result), base_off, low, high)
            result.append(instr)
        return result

    @staticmethod
    def _const_span(
        instr: Instr, pmap: ProvenanceMap
    ) -> Optional[Tuple[object, int, int, int]]:
        """(group key, base_offset, start, end) for constant spans.

        The key is the provenance root when the base's provenance and
        offset are statically known (offsets root-relative), or
        ``("v", base)`` — the base pointer's current value — otherwise
        (offsets relative to that value).
        """
        if not isinstance(instr, CheckRegion):
            return None
        start = fold(instr.start)
        end = fold(instr.end)
        if not isinstance(start, Const) or not isinstance(end, Const):
            return None
        prov = pmap.provenance(instr.base)
        if prov is not None and isinstance(prov.offset, Const):
            base_off = prov.offset.value
            return (
                prov.root,
                base_off,
                base_off + start.value,
                base_off + end.value,
            )
        return ("v", instr.base), 0, start.value, end.value


def _site_map(program: Program) -> Dict[int, Instr]:
    """site_id -> memory instruction, for protection tagging."""
    mapping: Dict[int, Instr] = {}
    for function in program.functions.values():
        for instr in walk(function.body):
            if isinstance(instr, (Load, Store, Memset, Memcpy, Strcpy)):
                if instr.site_id >= 0:
                    mapping[instr.site_id] = instr
    return mapping
