"""Aliased-check elimination and constant-offset check merging (§4.4.2).

Two transformations run within straight-line windows of each block
(windows end at calls, frees, and control flow, where addressability
facts may change):

* **Duplicate elimination** — a check made redundant by an earlier
  must-aliased check in the window is dropped (this is ASan--'s core
  optimization, also used by GiantSan).
* **Constant-offset merging** — for region-capable tools, checks on the
  same object with constant offsets collapse into a single region check
  covering their span: Figure 8's ``CI(p, p+4); CI(p, p+8)`` becoming
  ``CI(p, p+8)``; Table 1's ``p[0] + p[10] + p[20]`` costing one check.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.nodes import (
    BinOp,
    Call,
    GlobalAlloc,
    CheckAccess,
    CheckRegion,
    Const,
    Expr,
    Free,
    If,
    Instr,
    Load,
    Loop,
    Malloc,
    Memcpy,
    Memset,
    Protection,
    StackAlloc,
    Store,
    Strcpy,
    Var,
)
from ..ir.program import Program, transform_blocks, walk
from .alias import ProvenanceMap
from .base import Pass, PassStats
from .constprop import fold

#: Instructions that end a merging window.
_BARRIERS = (Call, Free, Loop, If, Malloc, StackAlloc, GlobalAlloc)


def _total_offset(pmap: ProvenanceMap, base: str, offset: Expr) -> Optional[Tuple[str, Expr]]:
    """(root, folded total offset) for base+offset, or None if unknown."""
    prov = pmap.provenance(base)
    if prov is None:
        return None
    return prov.root, fold(BinOp("+", prov.offset, offset))


class AliasedCheckElimination(Pass):
    """Remove checks covered by an earlier must-aliased check."""

    name = "aliased-check-elimination"

    def run(self, program: Program, stats: PassStats) -> None:
        sites = _site_map(program)
        for function in program.functions.values():
            pmap = ProvenanceMap(function)
            function.body = transform_blocks(
                function.body, lambda block: self._process(block, pmap, stats, sites)
            )

    def _process(
        self, block: List[Instr], pmap: ProvenanceMap, stats: PassStats, sites
    ) -> List[Instr]:
        seen: Dict[tuple, bool] = {}
        result: List[Instr] = []
        for instr in block:
            if isinstance(instr, _BARRIERS):
                seen.clear()
                result.append(instr)
                continue
            key = self._key(instr, pmap)
            if key is not None:
                if key in seen:
                    stats.eliminated += 1
                    site = sites.get(getattr(instr, "site_id", -1))
                    if site is not None:
                        site.protection = Protection.ELIMINATED
                    continue  # drop the redundant check
                seen[key] = True
            result.append(instr)
        return result

    @staticmethod
    def _key(instr: Instr, pmap: ProvenanceMap) -> Optional[tuple]:
        # the access direction is irrelevant: location-based checks test
        # addressability, which reads and writes share
        if isinstance(instr, CheckAccess):
            total = _total_offset(pmap, instr.base, instr.offset)
            if total is None:
                return None
            return ("access", total[0], total[1], instr.width)
        if isinstance(instr, CheckRegion):
            start = _total_offset(pmap, instr.base, instr.start)
            end = _total_offset(pmap, instr.base, instr.end)
            if start is None or end is None:
                return None
            return ("region", start[0], start[1], end[1])
        return None


class ConstantOffsetMerging(Pass):
    """Collapse same-object constant-offset region checks into one.

    Only valid for tools whose region checks are O(1) at any size
    (GiantSan); merging for ASan would trade N cheap checks for one scan
    of the same total cost.
    """

    name = "constant-offset-merging"

    def run(self, program: Program, stats: PassStats) -> None:
        sites = _site_map(program)
        for function in program.functions.values():
            pmap = ProvenanceMap(function)
            function.body = transform_blocks(
                function.body, lambda block: self._merge(block, pmap, stats, sites)
            )

    def _merge(
        self, block: List[Instr], pmap: ProvenanceMap, stats: PassStats, sites
    ) -> List[Instr]:
        result: List[Instr] = []
        #: root -> (result index of the anchor check, anchor's own
        #: root-relative base offset, merged min_off, merged max_off)
        groups: Dict[str, Tuple[int, int, int, int]] = {}
        for instr in block:
            if isinstance(instr, _BARRIERS):
                groups.clear()
                result.append(instr)
                continue
            span = self._const_span(instr, pmap)
            if span is None:
                result.append(instr)
                continue
            root, base_off, low, high = span
            if root in groups:
                index, anchor_off, cur_low, cur_high = groups[root]
                merged_low = min(cur_low, low)
                merged_high = max(cur_high, high)
                anchor_check: CheckRegion = result[index]  # type: ignore[assignment]
                # offsets are root-relative; rebase onto the anchor check's
                # own base pointer before storing them in the instruction
                anchor_check.start = Const(merged_low - anchor_off)
                anchor_check.end = Const(merged_high - anchor_off)
                groups[root] = (index, anchor_off, merged_low, merged_high)
                stats.eliminated += 1
                site = sites.get(instr.site_id)
                if site is not None:
                    site.protection = Protection.ELIMINATED
                continue  # drop: folded into the anchor check
            groups[root] = (len(result), base_off, low, high)
            result.append(instr)
        return result

    @staticmethod
    def _const_span(
        instr: Instr, pmap: ProvenanceMap
    ) -> Optional[Tuple[str, int, int, int]]:
        """(root, base_offset, abs_start, abs_end) for constant spans."""
        if not isinstance(instr, CheckRegion):
            return None
        prov = pmap.provenance(instr.base)
        if prov is None or not isinstance(prov.offset, Const):
            return None
        start = fold(instr.start)
        end = fold(instr.end)
        if not isinstance(start, Const) or not isinstance(end, Const):
            return None
        return (
            prov.root,
            prov.offset.value,
            prov.offset.value + start.value,
            prov.offset.value + end.value,
        )


def _site_map(program: Program) -> Dict[int, Instr]:
    """site_id -> memory instruction, for protection tagging."""
    mapping: Dict[int, Instr] = {}
    for function in program.functions.values():
        for instr in walk(function.body):
            if isinstance(instr, (Load, Store, Memset, Memcpy, Strcpy)):
                if instr.site_id >= 0:
                    mapping[instr.site_id] = instr
    return mapping
