"""SCEV-style affine analysis of loop index expressions.

LLVM's scalar evolution lets the paper turn N per-iteration checks into
one region check (§4.4.2, "Check-in-Loop Promotion").  Here we recognize
offsets of the form ``a * var + b`` with loop-invariant ``a``/``b`` and
compute symbolic min/max offsets over the loop's trip range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

from ..ir.nodes import BinOp, Const, Expr, Loop, Var, as_expr
from .constprop import assigned_vars, fold


@dataclass(frozen=True)
class Affine:
    """``coefficient * var + offset`` with a constant coefficient and a
    loop-invariant (but possibly symbolic) offset expression."""

    coefficient: int
    offset: Expr


def _is_invariant(expr: Expr, killed: Set[str]) -> bool:
    """True when ``expr`` references no variable assigned in the loop."""
    if isinstance(expr, Const):
        return True
    if isinstance(expr, Var):
        return expr.name not in killed
    if isinstance(expr, BinOp):
        return _is_invariant(expr.left, killed) and _is_invariant(
            expr.right, killed
        )
    return False


def affine_of(expr: Expr, var: str, killed: Set[str]) -> Optional[Affine]:
    """Decompose ``expr`` as ``a * var + b`` or return None.

    ``killed`` is the set of variables assigned inside the loop; any
    appearance of one of them (other than ``var`` itself) defeats the
    analysis, exactly as SCEV bails on non-affine recurrences.
    """
    if isinstance(expr, Var):
        if expr.name == var:
            return Affine(1, Const(0))
        if expr.name not in killed:
            return Affine(0, expr)
        return None
    if isinstance(expr, Const):
        return Affine(0, expr)
    if isinstance(expr, BinOp):
        left = affine_of(expr.left, var, killed)
        right = affine_of(expr.right, var, killed)
        if left is None or right is None:
            return None
        if expr.op == "+":
            return Affine(
                left.coefficient + right.coefficient,
                fold(BinOp("+", left.offset, right.offset)),
            )
        if expr.op == "-":
            return Affine(
                left.coefficient - right.coefficient,
                fold(BinOp("-", left.offset, right.offset)),
            )
        if expr.op == "*":
            # one side must be a pure constant for affinity
            if left.coefficient == 0 and isinstance(left.offset, Const):
                scale = left.offset.value
                return Affine(
                    right.coefficient * scale,
                    fold(BinOp("*", Const(scale), right.offset)),
                )
            if right.coefficient == 0 and isinstance(right.offset, Const):
                scale = right.offset.value
                return Affine(
                    left.coefficient * scale,
                    fold(BinOp("*", left.offset, Const(scale))),
                )
            return None
        if expr.op == "<<":
            if right.coefficient == 0 and isinstance(right.offset, Const):
                scale = 1 << right.offset.value
                return Affine(
                    left.coefficient * scale,
                    fold(BinOp("*", left.offset, Const(scale))),
                )
            return None
    return None


@dataclass
class TripRange:
    """Symbolic [first, last] values of the induction variable."""

    first: Expr
    last: Expr


def trip_range(loop: Loop, killed: Set[str]) -> Optional[TripRange]:
    """The induction variable's value range, when statically computable.

    Requires: the loop is marked ``bounded``, start/end are invariant,
    and the step is 1 (non-unit steps would need divisibility reasoning
    to stay exact; the paper's SCEV handles them, we conservatively
    decline and fall back to caching).
    """
    if not loop.bounded or loop.step != 1:
        return None
    body_killed = killed - {loop.var}
    if not _is_invariant(loop.start, body_killed) or not _is_invariant(
        loop.end, body_killed
    ):
        return None
    last = fold(BinOp("-", loop.end, Const(1)))
    return TripRange(first=fold(loop.start), last=last)


def offset_bounds(
    affine: Affine, trips: TripRange, width: int
) -> Optional[tuple]:
    """Symbolic ``(min_offset, end_offset)`` of the accessed byte range
    over the whole loop, i.e. the region one promoted check must cover."""
    a = affine.coefficient
    if a == 0:
        low = affine.offset
        high = fold(BinOp("+", affine.offset, Const(width)))
        return low, high
    at_first = fold(
        BinOp("+", BinOp("*", Const(a), trips.first), affine.offset)
    )
    at_last = fold(BinOp("+", BinOp("*", Const(a), trips.last), affine.offset))
    if a > 0:
        return at_first, fold(BinOp("+", at_last, Const(width)))
    return at_last, fold(BinOp("+", at_first, Const(width)))


def loop_killed_vars(loop: Loop) -> Set[str]:
    """Variables whose value may change across iterations."""
    return assigned_vars(loop.body) | {loop.var}


__all__ = [
    "Affine",
    "TripRange",
    "affine_of",
    "trip_range",
    "offset_bounds",
    "loop_killed_vars",
]
