"""The instrumenter: per-tool pass pipelines (paper Figure 4, left half).

Given a source program and a tool's :class:`Capabilities`, this builds
the instrumented program the interpreter executes.  The pipelines mirror
the paper's configurations:

=================  ===========  ===========  =========  ========
tool               placement    elimination  promotion  caching
=================  ===========  ===========  =========  ========
Native             none         —            —          —
ASan               instruction  —            —          —
ASan--             instruction  dedupe       hoist      —
LFP                region       —            —          —
GiantSan           region       dedupe+merge region     yes
GiantSan-CacheOnly region       —            —          yes
GiantSan-ElimOnly  region       dedupe+merge region     —
=================  ===========  ===========  =========  ========
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..ir.nodes import CheckAccess, CheckCached, CheckRegion
from ..ir.program import Program, assign_site_ids, walk
from ..sanitizers.base import Capabilities, Sanitizer
from .base import Pass, PassManager, PassStats
from .check_merging import AliasedCheckElimination, ConstantOffsetMerging
from .check_placement import CheckPlacement
from .constprop import ConstantPropagation
from .history_caching import HistoryCaching
from .loop_promotion import LoopCheckPromotion
from .safe_access import SafeAccessElimination


@dataclass
class InstrumentedProgram:
    """An instrumented program plus instrumentation-time statistics."""

    program: Program
    stats: PassStats
    style: str
    cache_count: int = 0

    @property
    def static_checks(self) -> int:
        return self.stats.remaining_checks


def placement_style(caps: Capabilities) -> str:
    """The baseline check shape a tool's runtime expects."""
    if caps.constant_time_region or caps.anchor_checks:
        return "region"
    return "instruction"


def build_pipeline(
    caps: Capabilities,
    protect: bool = True,
    audit_elisions: bool = False,
    interprocedural: bool = False,
) -> List[Pass]:
    """The pass list for a tool with the given capabilities.

    ``audit_elisions`` makes the static elision passes wrap elided
    checks in :class:`~repro.ir.nodes.CheckElided` markers (replayed
    against the shadow oracle at runtime) instead of deleting them.

    ``interprocedural`` turns on the summary-based analysis layer
    (:mod:`repro.dataflow.summaries`): call sites consume function
    summaries instead of clobbering every fact, the cross-block
    eliminator seeds callee entries from finalized caller coverage, and
    loop barriers ignore provably non-freeing calls.
    """
    passes: List[Pass] = [ConstantPropagation()]
    if not protect:
        passes.append(CheckPlacement("none"))
        return passes
    style = placement_style(caps)
    passes.append(CheckPlacement(style))
    if caps.check_elimination:
        passes.append(
            AliasedCheckElimination(
                audit=audit_elisions, interprocedural=interprocedural
            )
        )
        if caps.constant_time_region:
            passes.append(ConstantOffsetMerging())
            passes.append(
                LoopCheckPromotion(
                    "region", interprocedural=interprocedural
                )
            )
            # elide merged/promoted region checks the dataflow facts
            # prove in-bounds on a live object, before caching rewrites
            passes.append(
                SafeAccessElimination(
                    audit=audit_elisions, interprocedural=interprocedural
                )
            )
        else:
            # ASan--: provably-safe removal + invariant hoisting
            passes.append(
                SafeAccessElimination(
                    audit=audit_elisions, interprocedural=interprocedural
                )
            )
            passes.append(
                LoopCheckPromotion(
                    "hoist", interprocedural=interprocedural
                )
            )
    if caps.history_caching:
        passes.append(HistoryCaching())
    return passes


def _resolve_interprocedural(interprocedural: Optional[bool]) -> bool:
    """None means "follow the REPRO_INTERPROC process default"."""
    if interprocedural is not None:
        return interprocedural
    from ..dataflow.summaries import interprocedural_default

    return interprocedural_default()


def _resolve_config(
    tool: Optional[Sanitizer], caps: Optional[Capabilities]
) -> tuple:
    """``(capabilities, protect)`` for an instrumentation request."""
    if caps is None:
        if tool is None:
            raise ValueError("instrument() needs a sanitizer or capabilities")
        caps = tool.capabilities
    protect = tool is None or type(tool).__name__ != "NativeSanitizer"
    return caps, protect


def program_fingerprint(program: Program) -> str:
    """A structural fingerprint of a source program.

    Built from the recursive dataclass ``repr`` of every function body —
    which covers *all* instruction fields (widths, bounds flags, step,
    reverse, protections), unlike the debug printer.  Two programs with
    equal fingerprints instrument identically for the same config.
    """
    parts = [f"entry={program.entry}"]
    for name in sorted(program.functions):
        function = program.functions[name]
        parts.append(f"{name}({','.join(function.params)}):{function.body!r}")
    return "\n".join(parts)


#: Memoized instrumentation results, keyed by
#: (program fingerprint, capabilities, protect).  Instrumented programs
#: are immutable at runtime (the interpreter keeps all mutable state in
#: its own environment/caches), so sharing one instance across runs and
#: sessions is safe — the 5-tool Table 2 sweep instruments each proxy
#: once per configuration instead of once per run.
_MEMO: dict = {}
_MEMO_LIMIT = 256
#: Hit/miss counters for the memo, exposed through
#: :func:`instrumentation_cache_stats`.  The execution fabric reports
#: them per worker so tests (and telemetry consumers) can prove that
#: persistent workers actually reuse warm instrumentation across tables.
_MEMO_HITS = 0
_MEMO_MISSES = 0


def instrument_cached(
    source: Program,
    tool: Optional[Sanitizer] = None,
    caps: Optional[Capabilities] = None,
    audit_elisions: bool = False,
    interprocedural: Optional[bool] = None,
) -> InstrumentedProgram:
    """Like :func:`instrument`, memoized by (fingerprint, config)."""
    global _MEMO_HITS, _MEMO_MISSES
    caps, protect = _resolve_config(tool, caps)
    interproc = _resolve_interprocedural(interprocedural)
    key = (
        program_fingerprint(source),
        caps,
        protect,
        audit_elisions,
        interproc,
    )
    cached = _MEMO.get(key)
    if cached is None:
        _MEMO_MISSES += 1
        if len(_MEMO) >= _MEMO_LIMIT:
            _MEMO.clear()
        cached = instrument(
            source,
            tool=tool,
            caps=caps,
            audit_elisions=audit_elisions,
            interprocedural=interproc,
        )
        _MEMO[key] = cached
    else:
        _MEMO_HITS += 1
    return cached


def instrumentation_cache_stats() -> dict:
    """Memo traffic for this process: ``{hits, misses, entries}``."""
    return {
        "hits": _MEMO_HITS,
        "misses": _MEMO_MISSES,
        "entries": len(_MEMO),
    }


def clear_instrumentation_cache() -> None:
    """Drop all memoized instrumentation results (mainly for tests)."""
    global _MEMO_HITS, _MEMO_MISSES
    _MEMO.clear()
    _MEMO_HITS = 0
    _MEMO_MISSES = 0


def instrument(
    source: Program,
    tool: Optional[Sanitizer] = None,
    caps: Optional[Capabilities] = None,
    audit_elisions: bool = False,
    interprocedural: Optional[bool] = None,
) -> InstrumentedProgram:
    """Clone and instrument ``source`` for ``tool`` (or raw ``caps``)."""
    caps, protect = _resolve_config(tool, caps)
    program = source.clone()
    assign_site_ids(program)
    pipeline = build_pipeline(
        caps,
        protect=protect,
        audit_elisions=audit_elisions,
        interprocedural=_resolve_interprocedural(interprocedural),
    )
    stats = PassManager(pipeline).run(program)
    remaining = 0
    cache_ids = set()
    for function in program.functions.values():
        for instr in walk(function.body):
            if isinstance(instr, (CheckAccess, CheckRegion, CheckCached)):
                remaining += 1
            if isinstance(instr, CheckCached):
                cache_ids.add(instr.cache_id)
    stats.remaining_checks = remaining
    return InstrumentedProgram(
        program=program,
        stats=stats,
        style=placement_style(caps) if protect else "none",
        cache_count=len(cache_ids),
    )
