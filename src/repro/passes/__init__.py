"""Static analysis and instrumentation passes."""

from .base import Pass, PassManager, PassStats
from .constprop import ConstantPropagation, eval_const, fold
from .alias import Provenance, ProvenanceMap
from .loop_bounds import Affine, TripRange, affine_of, offset_bounds, trip_range
from .check_placement import CheckPlacement
from .check_merging import AliasedCheckElimination, ConstantOffsetMerging
from .loop_promotion import LoopCheckPromotion
from .history_caching import HistoryCaching
from .instrument import (
    InstrumentedProgram,
    build_pipeline,
    instrument,
    placement_style,
)

__all__ = [
    "Pass",
    "PassManager",
    "PassStats",
    "ConstantPropagation",
    "eval_const",
    "fold",
    "Provenance",
    "ProvenanceMap",
    "Affine",
    "TripRange",
    "affine_of",
    "offset_bounds",
    "trip_range",
    "CheckPlacement",
    "AliasedCheckElimination",
    "ConstantOffsetMerging",
    "LoopCheckPromotion",
    "HistoryCaching",
    "InstrumentedProgram",
    "build_pipeline",
    "instrument",
    "placement_style",
]
