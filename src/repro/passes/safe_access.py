"""Provably-safe check elimination (ASan--'s static removal).

ASan-- (Zhang et al. 2022) removes a check outright when the compiler can
prove the access stays inside its object: the object's size is a known
constant (a ``malloc`` with constant argument, or a stack buffer) and the
accessed offset range — constant, or affine over a constant-trip-count
loop — fits inside it.  This pass is the reason ASan-- beats stock ASan
on array-dominated programs like lbm even though its runtime checks are
identical.

The pass is deliberately *not* part of GiantSan's pipeline: GiantSan's
own elimination is check *merging* into O(1) region checks (§4.4.2), and
the paper's comparison keeps those designs distinct.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.nodes import (
    Call,
    CheckAccess,
    GlobalAlloc,
    CheckRegion,
    Const,
    Free,
    If,
    Instr,
    Load,
    Loop,
    Malloc,
    Memcpy,
    Memset,
    Protection,
    StackAlloc,
    Store,
    Strcpy,
)
from ..ir.program import Function, Program, walk
from .alias import ProvenanceMap
from .base import Pass, PassStats
from .constprop import eval_const, fold
from .loop_bounds import affine_of, loop_killed_vars, offset_bounds, trip_range


def _root_sizes(function: Function) -> Dict[str, int]:
    """Constant object sizes keyed by provenance root."""
    sizes: Dict[str, int] = {}
    for instr in walk(function.body):
        if isinstance(instr, Malloc):
            size = eval_const(instr.size)
            if size is not None:
                sizes[f"alloc:{id(instr)}"] = size
        elif isinstance(instr, StackAlloc):
            sizes[f"stack:{id(instr)}"] = instr.size
        elif isinstance(instr, GlobalAlloc):
            sizes[f"global:{id(instr)}"] = instr.size
    return sizes


class SafeAccessElimination(Pass):
    """Drop checks whose offset range provably fits the object."""

    name = "safe-access-elimination"

    def run(self, program: Program, stats: PassStats) -> None:
        sites = {
            i.site_id: i
            for f in program.functions.values()
            for i in walk(f.body)
            if isinstance(i, (Load, Store, Memset, Memcpy, Strcpy))
            and i.site_id >= 0
        }
        for function in program.functions.values():
            pmap = ProvenanceMap(function)
            sizes = _root_sizes(function)
            function.body = self._process(
                function.body, pmap, sizes, [], stats, sites
            )

    # ------------------------------------------------------------------
    def _process(
        self,
        block: List[Instr],
        pmap: ProvenanceMap,
        sizes: Dict[str, int],
        loop_stack: List[Loop],
        stats: PassStats,
        sites,
    ) -> List[Instr]:
        result: List[Instr] = []
        for instr in block:
            if isinstance(instr, Free):
                # the object's lifetime ends: in-bounds no longer implies
                # addressable, so the proof is dead for this root (and a
                # use-after-free must keep its check!)
                prov = pmap.provenance(instr.ptr)
                if prov is not None:
                    sizes.pop(prov.root, None)
                else:
                    sizes.clear()
                result.append(instr)
                continue
            if isinstance(instr, Call):
                # the callee may free anything it can reach
                sizes.clear()
                result.append(instr)
                continue
            if isinstance(instr, Loop):
                # a free (or call) anywhere in the body may precede a
                # check in a *later* iteration: invalidate up front
                for inner in walk(instr.body):
                    if isinstance(inner, Call):
                        sizes.clear()
                        break
                    if isinstance(inner, Free):
                        prov = pmap.provenance(inner.ptr)
                        if prov is not None:
                            sizes.pop(prov.root, None)
                        else:
                            sizes.clear()
                            break
                instr.body = self._process(
                    instr.body, pmap, sizes, loop_stack + [instr], stats, sites
                )
                result.append(instr)
                continue
            if isinstance(instr, If):
                instr.then = self._process(
                    instr.then, pmap, sizes, loop_stack, stats, sites
                )
                instr.orelse = self._process(
                    instr.orelse, pmap, sizes, loop_stack, stats, sites
                )
                result.append(instr)
                continue
            if isinstance(instr, (CheckAccess, CheckRegion)) and self._provably_safe(
                instr, pmap, sizes, loop_stack
            ):
                stats.eliminated += 1
                stats.bump("safe_access_removed")
                site = sites.get(instr.site_id)
                if site is not None:
                    site.protection = Protection.ELIMINATED
                continue
            result.append(instr)
        return result

    # ------------------------------------------------------------------
    def _provably_safe(
        self,
        check,
        pmap: ProvenanceMap,
        sizes: Dict[str, int],
        loop_stack: List[Loop],
    ) -> bool:
        prov = pmap.provenance(check.base)
        if prov is None:
            return False
        size = sizes.get(prov.root)
        if size is None:
            return False
        base_off = eval_const(prov.offset)
        if base_off is None:
            return False
        if isinstance(check, CheckAccess):
            span = self._offset_range(check.offset, check.width, loop_stack)
        else:
            start = self._offset_range(check.start, 0, loop_stack)
            end = self._offset_range(check.end, 0, loop_stack)
            span = None
            if start is not None and end is not None:
                span = (start[0], end[1])
        if span is None:
            return False
        low, high = span
        return 0 <= base_off + low and base_off + high <= size

    def _offset_range(
        self, offset, width: int, loop_stack: List[Loop]
    ) -> Optional[Tuple[int, int]]:
        """Constant [min, max_end) of ``offset .. offset+width`` over all
        enclosing constant-trip-count loops, or None."""
        constant = eval_const(offset)
        if constant is not None:
            return constant, constant + width
        # peel enclosing loops innermost-first, substituting each
        # induction variable's extremes
        expr = offset
        low_expr, high_expr = expr, expr
        for loop in reversed(loop_stack):
            killed = loop_killed_vars(loop)
            trips = trip_range(loop, killed)
            if trips is None:
                return None
            low_affine = affine_of(low_expr, loop.var, killed)
            high_affine = affine_of(high_expr, loop.var, killed)
            if low_affine is None or high_affine is None:
                return None
            low_expr = offset_bounds(low_affine, trips, 0)[0]
            high_expr = offset_bounds(high_affine, trips, 0)[1]
            low_const = eval_const(fold(low_expr))
            high_const = eval_const(fold(high_expr))
            if low_const is not None and high_const is not None:
                return low_const, high_const + width
        return None
