"""Provably-safe check elision on whole-function dataflow facts.

ASan-- (Zhang et al. 2022) removes a check outright when the compiler
can prove the access stays inside its object.  This pass generalizes
that idea onto the dataflow framework (:mod:`repro.dataflow`): a check
is *elided* when

* the base pointer's provenance root and constant base offset are
  statically known,
* the object's size is a statically known constant,
* the object is definitely **LIVE** at the check (allocation-state
  analysis — an in-bounds proof says nothing about a freed object), and
* the checked byte range, evaluated over the interval fixpoint (loop
  induction variables clamped to their trip ranges, joins hulled), lies
  inside ``[0, size)``.

The same pass serves both pipelines: ASan--'s instruction checks and
GiantSan's merged/promoted region checks (after merging and promotion,
so surviving anchors and promoted loop regions elide as units).  Every
elision is recorded as an :class:`~repro.passes.base.ElisionRecord` in
``PassStats.elisions``; with ``audit=True`` the check is wrapped in
:class:`~repro.ir.nodes.CheckElided` instead of deleted, so the
interpreter can replay it against the shadow oracle and flag any
elision that would have fired — the fuzzer's soundness audit.

While the dataflow results are hot, the pass also runs the static bug
detector and stashes its definite findings in ``PassStats.findings``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.nodes import (
    Call,
    CheckAccess,
    CheckElided,
    CheckRegion,
    Free,
    Instr,
    Loop,
    Protection,
)
from ..ir.program import Program, transform_blocks, walk
from .base import ElisionRecord, Pass, PassStats
from .check_merging import _site_map
from .constprop import eval_const


def _barred_check_ids(function, summaries=None) -> "set":
    """Checks inside loops whose body frees or opaquely calls.

    Same conservatism as :data:`~repro.passes.loop_promotion`'s loop
    barriers: a free (or a call that may free) in a loop body keeps
    every per-iteration check in place, even when the allocation-state
    fixpoint can tell the freed object apart from the checked one.
    With interprocedural summaries, a call to a provably non-freeing
    callee is no barrier.
    """
    from ..dataflow.summaries import call_frees_nothing

    def is_barrier(i) -> bool:
        if isinstance(i, Free):
            return True
        if isinstance(i, Call):
            return not call_frees_nothing(i, summaries)
        return False

    barred = set()
    for instr in walk(function.body):
        if isinstance(instr, Loop) and any(
            is_barrier(i) for i in walk(instr.body)
        ):
            for i in walk(instr.body):
                if isinstance(i, (CheckAccess, CheckRegion)):
                    barred.add(id(i))
    return barred


class SafeAccessElimination(Pass):
    """Elide checks whose access provably stays in a live object."""

    name = "safe-access-elimination"

    def __init__(self, audit: bool = False, interprocedural: bool = False):
        self.audit = audit
        self.interprocedural = interprocedural

    def run(self, program: Program, stats: PassStats) -> None:
        from .. import dataflow  # lazy: dataflow lazily imports passes

        sites = _site_map(program)
        summaries = (
            dataflow.compute_summaries(program)
            if self.interprocedural
            else None
        )
        for function in program.functions.values():
            flow = dataflow.FunctionDataflow(function, summaries=summaries)
            stats.findings.extend(dataflow.detect_function(flow))
            decisions = self._decide(flow)
            if not decisions:
                continue

            def prune(block: List[Instr]) -> List[Instr]:
                kept: List[Instr] = []
                for instr in block:
                    record = decisions.get(id(instr))
                    if record is None:
                        kept.append(instr)
                        continue
                    stats.eliminated += 1
                    stats.bump("safe_access_removed")
                    stats.elisions.append(record)
                    site = sites.get(getattr(instr, "site_id", -1))
                    if site is not None:
                        site.protection = Protection.ELIDED
                    if self.audit:
                        kept.append(
                            CheckElided(inner=instr, reason=record.reason)
                        )
                return kept

            function.body = transform_blocks(function.body, prune)

    # ------------------------------------------------------------------
    def _decide(self, flow) -> Dict[int, ElisionRecord]:
        """``id(check) -> ElisionRecord`` for every elidable check."""
        decisions: Dict[int, ElisionRecord] = {}
        barred = _barred_check_ids(flow.function, flow.summaries)
        for block in flow.cfg.blocks:
            if not flow.reachable(block.index):
                continue
            # replay yields a live state object; snapshot each step
            alloc_states = [
                flow.alloc_analysis.copy(state)
                for _, state in flow.allocstate.replay(block)
            ]
            for position, (instr, ivals) in enumerate(
                flow.intervals.replay(block)
            ):
                if not isinstance(instr, (CheckAccess, CheckRegion)):
                    continue
                if id(instr) in barred:
                    continue
                record = self._elidable(
                    flow, instr, ivals, alloc_states[position]
                )
                if record is not None:
                    decisions[id(instr)] = record
        return decisions

    @staticmethod
    def _elidable(
        flow, check: Instr, ivals, astate
    ) -> Optional[ElisionRecord]:
        from ..dataflow import LIVE, AllocStateAnalysis, eval_expr

        prov = flow.pmap.provenance(check.base)
        if prov is None:
            return None
        size = flow.sizes.get(prov.root)
        if size is None:
            return None
        base_off = eval_const(prov.offset)
        if base_off is None:
            return None
        if AllocStateAnalysis.state_of(astate, prov.root) != LIVE:
            # an in-bounds offset into a freed (or maybe-freed) object is
            # still a bug the check must keep catching
            return None
        if isinstance(check, CheckAccess):
            offset = eval_expr(check.offset, ivals)
            if offset.is_bottom() or offset.lo is None or offset.hi is None:
                return None
            lo = base_off + offset.lo
            hi = base_off + offset.hi + check.width
        else:
            start = eval_expr(check.start, ivals)
            end = eval_expr(check.end, ivals)
            if start.is_bottom() or end.is_bottom():
                return None
            if start.lo is None or end.hi is None:
                return None
            lo = base_off + start.lo
            hi = base_off + end.hi
            if check.use_anchor:
                # the runtime widens the region to start at the anchor
                lo = min(lo, base_off)
        if 0 <= lo and hi <= size:
            return ElisionRecord(
                function=flow.function.name,
                site_id=getattr(check, "site_id", -1),
                root=prov.root,
                reason=(
                    f"bytes [{lo}, {hi}) within live object "
                    f"{prov.root} of size {size}"
                ),
            )
        return None
