"""Pass infrastructure: a tiny analogue of LLVM's pass manager.

Passes mutate a cloned :class:`~repro.ir.program.Program` in place and
record what they did in :class:`PassStats`, which the Figure 10 harness
reads (how many checks each optimization removed, cached, or merged).
The manager also wall-clocks each pass (``pass_us:<name>`` notes), which
``repro analyze --stats`` renders as a timing table.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List

from ..ir.program import Program


@dataclass(frozen=True)
class ElisionRecord:
    """One check removed by a static in-bounds + lifetime proof."""

    function: str
    site_id: int
    root: str
    reason: str


@dataclass
class PassStats:
    """Instrumentation-time counters, keyed per pass."""

    #: Checks present right after baseline placement.
    baseline_checks: int = 0
    #: CheckAccess/CheckRegion sites removed by merging/elimination.
    eliminated: int = 0
    #: Sites promoted out of loops into one region check.
    promoted: int = 0
    #: Sites rewritten to cached checks.
    cached_sites: int = 0
    #: Remaining per-site checks after the whole pipeline.
    remaining_checks: int = 0
    notes: Dict[str, int] = field(default_factory=dict)
    #: Every check the static analysis elided, for reporting and audit.
    elisions: List[ElisionRecord] = field(default_factory=list)
    #: Definite static bugs found while instrumenting (StaticFinding).
    findings: List[object] = field(default_factory=list)

    def bump(self, key: str, amount: int = 1) -> None:
        self.notes[key] = self.notes.get(key, 0) + amount

    def pass_timings(self) -> Dict[str, int]:
        """Per-pass wall time in microseconds, keyed by pass name."""
        prefix = "pass_us:"
        return {
            key[len(prefix):]: value
            for key, value in self.notes.items()
            if key.startswith(prefix)
        }


class Pass:
    """One transformation over a program."""

    name = "pass"

    def run(self, program: Program, stats: PassStats) -> None:
        raise NotImplementedError


class PassManager:
    """Runs a pass list in order, collecting shared stats."""

    def __init__(self, passes: List[Pass]):
        self.passes = passes

    def run(self, program: Program) -> PassStats:
        stats = PassStats()
        for p in self.passes:
            started = time.perf_counter()
            p.run(program, stats)
            elapsed_us = int((time.perf_counter() - started) * 1e6)
            stats.bump(f"pass_us:{p.name}", elapsed_us)
        return stats
