"""Pass infrastructure: a tiny analogue of LLVM's pass manager.

Passes mutate a cloned :class:`~repro.ir.program.Program` in place and
record what they did in :class:`PassStats`, which the Figure 10 harness
reads (how many checks each optimization removed, cached, or merged).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..ir.program import Program


@dataclass
class PassStats:
    """Instrumentation-time counters, keyed per pass."""

    #: Checks present right after baseline placement.
    baseline_checks: int = 0
    #: CheckAccess/CheckRegion sites removed by merging/elimination.
    eliminated: int = 0
    #: Sites promoted out of loops into one region check.
    promoted: int = 0
    #: Sites rewritten to cached checks.
    cached_sites: int = 0
    #: Remaining per-site checks after the whole pipeline.
    remaining_checks: int = 0
    notes: Dict[str, int] = field(default_factory=dict)

    def bump(self, key: str, amount: int = 1) -> None:
        self.notes[key] = self.notes.get(key, 0) + amount


class Pass:
    """One transformation over a program."""

    name = "pass"

    def run(self, program: Program, stats: PassStats) -> None:
        raise NotImplementedError


class PassManager:
    """Runs a pass list in order, collecting shared stats."""

    def __init__(self, passes: List[Pass]):
        self.passes = passes

    def run(self, program: Program) -> PassStats:
        stats = PassStats()
        for p in self.passes:
            p.run(program, stats)
        return stats
