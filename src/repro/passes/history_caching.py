"""History-caching instrumentation (§4.3, Figure 9).

Checks remaining inside loops after merging/promotion — typically
data-dependent indices like ``y[j]`` with ``j`` loaded from memory, or
accesses in unbounded loops — are rewritten to quasi-bound cached checks.
A ``CacheFinalize`` is placed after the loop: it re-checks
``CI(base, base+ub)`` to catch a deallocation that happened mid-loop
(Figure 9 line 14) and resets the cache for the next dynamic loop entry.
"""

from __future__ import annotations

from typing import Dict, List

from ..ir.nodes import (
    BinOp,
    CacheFinalize,
    CheckAccess,
    CheckCached,
    CheckRegion,
    Const,
    If,
    Instr,
    Load,
    Loop,
    Memcpy,
    Memset,
    Protection,
    Store,
    Strcpy,
)
from ..ir.program import Program, walk
from .base import Pass, PassStats
from .constprop import assigned_vars, fold


def _region_width(start, end):
    """Byte width of ``[start, end)`` when statically constant.

    Placement emits ``end = start + width``, so the syntactic shape is
    recognized directly; a constant folded difference also qualifies.
    """
    if (
        isinstance(end, BinOp)
        and end.op == "+"
        and end.left == start
        and isinstance(end.right, Const)
    ):
        return end.right.value
    difference = fold(BinOp("-", end, start))
    if isinstance(difference, Const):
        return difference.value
    return None


class HistoryCaching(Pass):
    """Rewrite in-loop checks to quasi-bound cached checks."""

    name = "history-caching"

    def __init__(self) -> None:
        self._next_cache_id = 0

    def run(self, program: Program, stats: PassStats) -> None:
        sites = {}
        for function in program.functions.values():
            for instr in walk(function.body):
                if isinstance(instr, (Load, Store, Memset, Memcpy, Strcpy)):
                    if instr.site_id >= 0:
                        sites[instr.site_id] = instr
        for function in program.functions.values():
            function.body = self._process(function.body, None, stats, sites)

    # ------------------------------------------------------------------
    def _process(
        self,
        block: List[Instr],
        loop_ctx,
        stats: PassStats,
        sites: Dict[int, Instr],
    ) -> List[Instr]:
        """``loop_ctx`` is (killed_vars, cache_map) of the innermost
        enclosing loop, or None outside loops."""
        result: List[Instr] = []
        for instr in block:
            if isinstance(instr, Loop):
                killed = assigned_vars(instr.body) | {instr.var}
                caches: Dict[str, int] = {}
                instr.body = self._process(
                    instr.body, (killed, caches), stats, sites
                )
                result.append(instr)
                for base, cache_id in caches.items():
                    result.append(CacheFinalize(cache_id=cache_id, base=base))
                continue
            if isinstance(instr, If):
                instr.then = self._process(instr.then, loop_ctx, stats, sites)
                instr.orelse = self._process(
                    instr.orelse, loop_ctx, stats, sites
                )
                result.append(instr)
                continue
            converted = self._convert(instr, loop_ctx, stats, sites)
            result.append(converted if converted is not None else instr)
        return result

    def _convert(self, instr, loop_ctx, stats, sites):
        if loop_ctx is None:
            return None
        killed, caches = loop_ctx
        if isinstance(instr, CheckRegion):
            if instr.base in killed or not instr.use_anchor:
                return None
            width = _region_width(instr.start, instr.end)
            if width is None or width <= 0:
                return None
            cache_id = caches.get(instr.base)
            if cache_id is None:
                cache_id = self._next_cache_id
                self._next_cache_id += 1
                caches[instr.base] = cache_id
            stats.cached_sites += 1
            site = sites.get(instr.site_id)
            if site is not None and site.protection is Protection.DIRECT:
                site.protection = Protection.CACHED
            return CheckCached(
                cache_id=cache_id,
                base=instr.base,
                offset=instr.start,
                width=width,
                access=instr.access,
                site_id=instr.site_id,
            )
        if isinstance(instr, CheckAccess):
            if instr.base in killed:
                return None
            cache_id = caches.get(instr.base)
            if cache_id is None:
                cache_id = self._next_cache_id
                self._next_cache_id += 1
                caches[instr.base] = cache_id
            stats.cached_sites += 1
            site = sites.get(instr.site_id)
            if site is not None and site.protection is Protection.DIRECT:
                site.protection = Protection.CACHED
            return CheckCached(
                cache_id=cache_id,
                base=instr.base,
                offset=instr.offset,
                width=instr.width,
                access=instr.access,
                site_id=instr.site_id,
            )
        return None
