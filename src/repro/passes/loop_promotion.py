"""Check-in-loop promotion via SCEV-style bounds (§4.4.2).

For region-capable tools (GiantSan), a per-iteration check whose offset
is affine in the induction variable of a bounded unit-step loop is
replaced by ONE region check before the loop — Table 1's bounded-loop row
(N checks -> 1) and Figure 8c's ``CI(x, x + 4N)``.

For instruction-level tools with elimination (ASan--), only
loop-*invariant* checks can be hoisted (their address never changes);
varying accesses keep their per-iteration checks, which is exactly the
efficiency gap between ASan-- and GiantSan the ablation study measures.

The pass is rebased onto the whole-function dataflow facts: when the
interval fixpoint at a loop header proves the trip count positive
(``end.lo > start.hi``), relocated first/last-iteration checks are
emitted unguarded instead of wrapped in a zero-trip ``If`` guard.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.nodes import (
    BinOp,
    Call,
    CheckAccess,
    CheckRegion,
    Const,
    Free,
    If,
    Instr,
    Load,
    Loop,
    Memcpy,
    Memset,
    Protection,
    Store,
    Strcpy,
    Var,
)
from ..ir.program import Program, transform_blocks, walk
from .base import Pass, PassStats
from .constprop import fold
from .loop_bounds import (
    affine_of,
    loop_killed_vars,
    offset_bounds,
    trip_range,
)

#: Loop bodies containing these cannot be promoted safely: a call may
#: free the object, a free certainly may.
_LOOP_BARRIERS = (Call, Free)


def _body_has_barrier(loop: Loop, summaries=None) -> bool:
    """A free — or a call that may free — bars promotion out of a loop.

    With interprocedural summaries a call to a provably non-freeing
    callee is harmless here: it cannot change any object's
    addressability (its writes touch contents, not bounds), and its
    only register effect is its destination variable, which
    :func:`~repro.passes.loop_bounds.loop_killed_vars` already treats
    as loop-varying.
    """
    from ..dataflow.summaries import call_frees_nothing

    for i in walk(loop.body):
        if isinstance(i, Free):
            return True
        if isinstance(i, Call) and not call_frees_nothing(i, summaries):
            return True
    return False


class LoopCheckPromotion(Pass):
    """Promote affine in-loop checks to pre-loop region checks."""

    name = "loop-check-promotion"

    def __init__(self, mode: str, interprocedural: bool = False):
        if mode not in ("region", "hoist"):
            raise ValueError(f"unknown promotion mode: {mode}")
        self.mode = mode
        self.interprocedural = interprocedural

    def run(self, program: Program, stats: PassStats) -> None:
        from .. import dataflow  # lazy: dataflow lazily imports passes

        sites = _site_map(program)
        summaries = (
            dataflow.compute_summaries(program)
            if self.interprocedural
            else None
        )
        for function in program.functions.values():
            positive_trips = self._positive_trip_loops(function, summaries)
            function.body = transform_blocks(
                function.body,
                lambda block: self._process_block(
                    block, stats, sites, positive_trips, summaries
                ),
            )

    @staticmethod
    def _positive_trip_loops(function, summaries=None) -> Set[int]:
        """ids of loops whose trip count the intervals prove positive."""
        from .. import dataflow  # lazy: dataflow lazily imports passes

        cfg = dataflow.lower_function(function)
        solution = dataflow.solve(
            cfg, dataflow.IntervalAnalysis(summaries=summaries)
        )
        proven: Set[int] = set()
        for block in cfg.blocks:
            if block.loop is None or block.index not in solution.in_states:
                continue
            state = solution.in_states[block.index]
            start = dataflow.eval_expr(block.loop.start, state)
            end = dataflow.eval_expr(block.loop.end, state)
            if (
                not start.is_bottom()
                and not end.is_bottom()
                and start.hi is not None
                and end.lo is not None
                and end.lo > start.hi
            ):
                proven.add(id(block.loop))
        return proven

    # ------------------------------------------------------------------
    def _process_block(
        self,
        block: List[Instr],
        stats,
        sites,
        positive_trips: Set[int],
        summaries=None,
    ) -> List[Instr]:
        result: List[Instr] = []
        for instr in block:
            if isinstance(instr, Loop):
                promoted = self._promote_from_loop(
                    instr, stats, sites, positive_trips, summaries
                )
                result.extend(promoted)
            result.append(instr)
        return result

    def _promote_from_loop(
        self,
        loop: Loop,
        stats: PassStats,
        sites,
        positive_trips: Set[int],
        summaries=None,
    ) -> List[Instr]:
        killed = loop_killed_vars(loop)
        trips = trip_range(loop, killed)
        if trips is None or _body_has_barrier(loop, summaries):
            return []
        hoisted: List[Instr] = []
        remaining: List[Instr] = []
        for instr in loop.body:
            replacement = self._try_promote(
                instr, loop, killed, trips, stats,
                trip_positive=id(loop) in positive_trips,
            )
            if replacement is not None:
                hoisted.extend(replacement)
                stats.promoted += 1
                site = sites.get(getattr(instr, "site_id", -1))
                if site is not None:
                    site.protection = Protection.ELIMINATED
            else:
                remaining.append(instr)
        loop.body = remaining
        return hoisted

    # ------------------------------------------------------------------
    def _try_promote(
        self, instr: Instr, loop: Loop, killed, trips,
        stats: PassStats, trip_positive: bool,
    ) -> Optional[List[Instr]]:
        """A pre-loop replacement check for ``instr``, or None."""
        if isinstance(instr, CheckAccess):
            if instr.base in killed:
                return None
            affine = affine_of(instr.offset, loop.var, killed)
            if affine is None:
                return None
            if self.mode == "hoist":
                if affine.coefficient == 0:
                    # loop-invariant address: hoist the single check
                    return [
                        CheckAccess(
                            base=instr.base,
                            offset=affine.offset,
                            width=instr.width,
                            access=instr.access,
                            site_id=instr.site_id,
                        )
                    ]
                # ASan--'s check relocation for monotonic accesses: test
                # only the first and last iterations' addresses, guarded
                # against zero-trip loops.  (Assumes the iterated range
                # stays inside one object, as ASan-- does.)
                first_offset = fold(
                    BinOp(
                        "+",
                        BinOp("*", Const(affine.coefficient), trips.first),
                        affine.offset,
                    )
                )
                last_offset = fold(
                    BinOp(
                        "+",
                        BinOp("*", Const(affine.coefficient), trips.last),
                        affine.offset,
                    )
                )
                relocated: List[Instr] = [
                    CheckAccess(
                        base=instr.base,
                        offset=first_offset,
                        width=instr.width,
                        access=instr.access,
                        site_id=instr.site_id,
                    ),
                    CheckAccess(
                        base=instr.base,
                        offset=last_offset,
                        width=instr.width,
                        access=instr.access,
                        site_id=instr.site_id,
                    ),
                ]
                if trip_positive:
                    # the interval fixpoint proves the loop runs at least
                    # once, so the zero-trip guard is dead weight
                    stats.bump("guard_elided")
                    return relocated
                return [
                    If(cond=BinOp("<", loop.start, loop.end), then=relocated)
                ]
            bounds = offset_bounds(affine, trips, instr.width)
            if bounds is None:
                return None
            low, high = bounds
            return [
                CheckRegion(
                    base=instr.base,
                    start=fold(low),
                    end=fold(high),
                    access=instr.access,
                    use_anchor=True,
                    site_id=instr.site_id,
                )
            ]
        if isinstance(instr, CheckRegion) and self.mode == "region":
            if instr.base in killed:
                return None
            start_affine = affine_of(instr.start, loop.var, killed)
            end_affine = affine_of(instr.end, loop.var, killed)
            if start_affine is None or end_affine is None:
                return None
            start_bounds = offset_bounds(start_affine, trips, 0)
            end_bounds = offset_bounds(end_affine, trips, 0)
            if start_bounds is None or end_bounds is None:
                return None
            return [
                CheckRegion(
                    base=instr.base,
                    start=fold(start_bounds[0]),
                    end=fold(end_bounds[1]),
                    access=instr.access,
                    use_anchor=instr.use_anchor,
                    site_id=instr.site_id,
                )
            ]
        return None


def _site_map(program: Program) -> Dict[int, Instr]:
    mapping: Dict[int, Instr] = {}
    for function in program.functions.values():
        for instr in walk(function.body):
            if isinstance(instr, (Load, Store, Memset, Memcpy, Strcpy)):
                if instr.site_id >= 0:
                    mapping[instr.site_id] = instr
    return mapping
