"""Constant folding and propagation over the IR.

The paper's check-merging examples (Table 1 first row, Figure 8) rely on
constant propagation to see that ``p[0]``, ``p[10]``, ``p[20]`` are the
same base with constant offsets.  The pass runs the whole-function
interval analysis (:mod:`repro.dataflow`) to fixpoint and substitutes
every variable whose interval is a singleton — so constants survive
control-flow joins when both arms agree (where the old tree walk had to
drop every fact), and loop-carried facts are only kept when the fixpoint
proves them stable.

:func:`fold` and :func:`eval_const` stay pure expression-level helpers,
shared by the other passes and the dataflow analyses (which import them
lazily; this module must import :mod:`repro.dataflow` lazily in turn).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.nodes import (
    BinOp,
    Call,
    Const,
    Expr,
    Instr,
    Var,
)
from ..ir.program import Program, walk
from .base import Pass, PassStats

_ARITH = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "//": lambda a, b: a // b if b else 0,
    "%": lambda a, b: a % b if b else 0,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
}


def fold(expr: Expr, env: Optional[Dict[str, int]] = None) -> Expr:
    """Fold ``expr`` given known constants; returns a simplified Expr."""
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, Var):
        if env and expr.name in env:
            return Const(env[expr.name])
        return expr
    if isinstance(expr, BinOp):
        left = fold(expr.left, env)
        right = fold(expr.right, env)
        if isinstance(left, Const) and isinstance(right, Const):
            return Const(_ARITH[expr.op](left.value, right.value))
        # algebraic identities keep promoted bounds readable
        if expr.op == "+" and isinstance(right, Const) and right.value == 0:
            return left
        if expr.op == "+" and isinstance(left, Const) and left.value == 0:
            return right
        if expr.op == "*" and isinstance(right, Const) and right.value == 1:
            return left
        if expr.op == "*" and isinstance(left, Const) and left.value == 1:
            return right
        if expr.op == "-" and isinstance(right, Const) and right.value == 0:
            return left
        return BinOp(expr.op, left, right)
    return expr


def eval_const(expr: Expr) -> Optional[int]:
    """The constant value of ``expr``, or None when not a constant."""
    folded = fold(expr)
    return folded.value if isinstance(folded, Const) else None


def assigned_vars(block: List[Instr]) -> Set[str]:
    """Every variable assigned anywhere inside a block tree."""
    names: Set[str] = set()
    for instr in walk(block):
        for attr in ("dst", "var"):
            value = getattr(instr, attr, None)
            if isinstance(value, str):
                names.add(value)
    return names


def _fold_instr_exprs(instr: Instr, env: Dict[str, int]) -> None:
    """Fold every expression field of one instruction in place."""
    for attr in (
        "expr",
        "offset",
        "size",
        "length",
        "byte",
        "value",
        "dst_offset",
        "src_offset",
        "start",
        "end",
    ):
        value = getattr(instr, attr, None)
        if isinstance(value, Expr):
            setattr(instr, attr, fold(value, env))
    if isinstance(instr, Call):
        instr.args = [fold(a, env) for a in instr.args]


def _singletons(state) -> Dict[str, int]:
    """The variables whose interval is a single value."""
    return {
        name: interval.lo
        for name, interval in state.items()
        if interval.is_constant()
    }


class ConstantPropagation(Pass):
    """Propagate constants and fold expressions program-wide.

    Rides on the interval fixpoint: a variable folds to a constant at a
    program point exactly when its interval there is a singleton.  Block
    terminators fold too — ``If`` conditions with the state at the end
    of the condition block, ``Loop`` bounds with the meet at the loop
    header (sound whether bounds are read once at entry or re-read each
    iteration, since the header meet covers both edge sets).
    """

    name = "constprop"

    def run(self, program: Program, stats: PassStats) -> None:
        # lazy import: repro.dataflow imports eval_const from this module
        from .. import dataflow

        for function in program.functions.values():
            cfg = dataflow.lower_function(function)
            solution = dataflow.solve(cfg, dataflow.IntervalAnalysis())
            for block in cfg.blocks:
                if block.index not in solution.in_states:
                    continue  # unreachable
                for instr, state in solution.replay(block):
                    _fold_instr_exprs(instr, _singletons(state))
                out_env = _singletons(solution.out_states[block.index])
                if block.branch is not None:
                    block.branch.cond = fold(block.branch.cond, out_env)
                if block.loop is not None:
                    header_env = _singletons(
                        solution.in_states[block.index]
                    )
                    loop = block.loop
                    loop.start = fold(loop.start, header_env)
                    loop.end = fold(loop.end, header_env)
