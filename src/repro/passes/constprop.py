"""Constant folding and propagation over the IR.

The paper's check-merging examples (Table 1 first row, Figure 8) rely on
constant propagation to see that ``p[0]``, ``p[10]``, ``p[20]`` are the
same base with constant offsets.  This pass folds expressions and
propagates constants through straight-line code, conservatively dropping
facts at control-flow joins.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.nodes import (
    Assign,
    BinOp,
    GlobalAlloc,
    Call,
    Const,
    Expr,
    Free,
    If,
    Instr,
    Load,
    Loop,
    Malloc,
    Memcpy,
    Memset,
    PtrAdd,
    Return,
    StackAlloc,
    Store,
    Strcpy,
    Var,
)
from ..ir.program import Program, walk
from .base import Pass, PassStats

_ARITH = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "//": lambda a, b: a // b if b else 0,
    "%": lambda a, b: a % b if b else 0,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
}


def fold(expr: Expr, env: Optional[Dict[str, int]] = None) -> Expr:
    """Fold ``expr`` given known constants; returns a simplified Expr."""
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, Var):
        if env and expr.name in env:
            return Const(env[expr.name])
        return expr
    if isinstance(expr, BinOp):
        left = fold(expr.left, env)
        right = fold(expr.right, env)
        if isinstance(left, Const) and isinstance(right, Const):
            return Const(_ARITH[expr.op](left.value, right.value))
        # algebraic identities keep promoted bounds readable
        if expr.op == "+" and isinstance(right, Const) and right.value == 0:
            return left
        if expr.op == "+" and isinstance(left, Const) and left.value == 0:
            return right
        if expr.op == "*" and isinstance(right, Const) and right.value == 1:
            return left
        if expr.op == "*" and isinstance(left, Const) and left.value == 1:
            return right
        if expr.op == "-" and isinstance(right, Const) and right.value == 0:
            return left
        return BinOp(expr.op, left, right)
    return expr


def eval_const(expr: Expr) -> Optional[int]:
    """The constant value of ``expr``, or None when not a constant."""
    folded = fold(expr)
    return folded.value if isinstance(folded, Const) else None


def assigned_vars(block: List[Instr]) -> Set[str]:
    """Every variable assigned anywhere inside a block tree."""
    names: Set[str] = set()
    for instr in walk(block):
        for attr in ("dst", "var"):
            value = getattr(instr, attr, None)
            if isinstance(value, str):
                names.add(value)
    return names


def _fold_instr_exprs(instr: Instr, env: Dict[str, int]) -> None:
    """Fold every expression field of one instruction in place."""
    for attr in (
        "expr",
        "offset",
        "size",
        "length",
        "byte",
        "value",
        "dst_offset",
        "src_offset",
        "start",
        "end",
    ):
        value = getattr(instr, attr, None)
        if isinstance(value, Expr):
            setattr(instr, attr, fold(value, env))
    if isinstance(instr, Call):
        instr.args = [fold(a, env) for a in instr.args]


def _propagate_block(block: List[Instr], env: Dict[str, int]) -> None:
    for instr in block:
        _fold_instr_exprs(instr, env)
        if isinstance(instr, Assign):
            folded = instr.expr
            if isinstance(folded, Const):
                env[instr.dst] = folded.value
            else:
                env.pop(instr.dst, None)
        elif isinstance(instr, (Load, Malloc, StackAlloc, GlobalAlloc, PtrAdd)):
            env.pop(instr.dst, None)
        elif isinstance(instr, Call):
            if instr.dst:
                env.pop(instr.dst, None)
        elif isinstance(instr, Loop):
            killed = assigned_vars(instr.body) | {instr.var}
            inner = {k: v for k, v in env.items() if k not in killed}
            _propagate_block(instr.body, inner)
            for name in killed:
                env.pop(name, None)
        elif isinstance(instr, If):
            killed = assigned_vars(instr.then) | assigned_vars(instr.orelse)
            then_env = {k: v for k, v in env.items() if k not in killed}
            else_env = dict(then_env)
            _propagate_block(instr.then, then_env)
            _propagate_block(instr.orelse, else_env)
            for name in killed:
                env.pop(name, None)
        elif isinstance(instr, (Free, Memset, Memcpy, Strcpy, Store, Return)):
            pass


class ConstantPropagation(Pass):
    """Propagate constants and fold expressions program-wide."""

    name = "constprop"

    def run(self, program: Program, stats: PassStats) -> None:
        for function in program.functions.values():
            _propagate_block(function.body, {})
