"""Error taxonomy and report structures for the sanitizer runtimes.

Location-based sanitizers such as ASan and GiantSan classify an invalid
access by the shadow state of the byte that was hit (redzone, freed
quarantine slot, stack poison, ...).  This module defines the shared
vocabulary every sanitizer in this package reports with, mirroring the
report categories of the paper's evaluation (spatial vs. temporal errors,
overflow vs. underflow, use-after-free, ...).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional


class ErrorKind(enum.Enum):
    """The kind of memory-safety violation detected at runtime."""

    HEAP_BUFFER_OVERFLOW = "heap-buffer-overflow"
    HEAP_BUFFER_UNDERFLOW = "heap-buffer-underflow"
    STACK_BUFFER_OVERFLOW = "stack-buffer-overflow"
    STACK_BUFFER_UNDERFLOW = "stack-buffer-underflow"
    GLOBAL_BUFFER_OVERFLOW = "global-buffer-overflow"
    USE_AFTER_FREE = "heap-use-after-free"
    USE_AFTER_RETURN = "stack-use-after-return"
    DOUBLE_FREE = "double-free"
    INVALID_FREE = "invalid-free"
    NULL_DEREFERENCE = "null-dereference"
    WILD_ACCESS = "wild-access"
    UNKNOWN = "unknown-violation"

    @property
    def is_spatial(self) -> bool:
        """True for accesses outside an object's allocated region."""
        return self in _SPATIAL_KINDS

    @property
    def is_temporal(self) -> bool:
        """True for accesses to an object outside its lifetime."""
        return self in _TEMPORAL_KINDS


_SPATIAL_KINDS = frozenset(
    {
        ErrorKind.HEAP_BUFFER_OVERFLOW,
        ErrorKind.HEAP_BUFFER_UNDERFLOW,
        ErrorKind.STACK_BUFFER_OVERFLOW,
        ErrorKind.STACK_BUFFER_UNDERFLOW,
        ErrorKind.GLOBAL_BUFFER_OVERFLOW,
    }
)

_TEMPORAL_KINDS = frozenset(
    {
        ErrorKind.USE_AFTER_FREE,
        ErrorKind.USE_AFTER_RETURN,
        ErrorKind.DOUBLE_FREE,
        ErrorKind.INVALID_FREE,
    }
)


class AccessType(enum.Enum):
    """Whether the faulting operation was a read or a write."""

    READ = "read"
    WRITE = "write"
    FREE = "free"


@dataclass(frozen=True)
class ErrorReport:
    """One diagnosed memory-safety violation.

    Mirrors the fields an ASan report carries: the faulting address and
    width, the access direction, the classified kind, and (when the
    allocator can resolve it) which allocation the address relates to.
    """

    kind: ErrorKind
    address: int
    size: int
    access: AccessType
    shadow_value: Optional[int] = None
    allocation_id: Optional[int] = None
    detail: str = ""

    def __str__(self) -> str:
        base = (
            f"{self.kind.value}: {self.access.value} of {self.size} byte(s)"
            f" at 0x{self.address:x}"
        )
        if self.detail:
            base += f" ({self.detail})"
        return base


class SanitizerError(Exception):
    """Raised when a sanitizer halts on the first error (halt_on_error)."""

    def __init__(self, report: ErrorReport):
        super().__init__(str(report))
        self.report = report


class AllocationError(Exception):
    """Raised when the simulated allocator cannot satisfy a request."""


class AddressSpaceError(Exception):
    """Raised on accesses that leave the simulated arenas entirely."""


@dataclass
class ErrorLog:
    """Collects reports during execution (halt_on_error=false mode).

    The paper's evaluation disables halting so a whole benchmark or test
    suite can run to completion; this log is the analogue.
    """

    reports: List[ErrorReport] = field(default_factory=list)
    halt_on_error: bool = False

    def report(self, report: ErrorReport) -> None:
        """Record one violation, raising if configured to halt."""
        self.reports.append(report)
        if self.halt_on_error:
            raise SanitizerError(report)

    def clear(self) -> None:
        self.reports.clear()

    def __len__(self) -> int:
        return len(self.reports)

    def __bool__(self) -> bool:
        return bool(self.reports)

    def __iter__(self):
        return iter(self.reports)

    def kinds(self) -> List[ErrorKind]:
        """The kinds of all recorded reports, in order."""
        return [r.kind for r in self.reports]

    def count(self, kind: ErrorKind) -> int:
        """Number of reports of the given kind."""
        return sum(1 for r in self.reports if r.kind is kind)

    @property
    def spatial(self) -> List[ErrorReport]:
        return [r for r in self.reports if r.kind.is_spatial]

    @property
    def temporal(self) -> List[ErrorReport]:
        return [r for r in self.reports if r.kind.is_temporal]
