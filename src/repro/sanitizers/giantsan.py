"""GiantSan: location-based sanitizer with segment folding (the paper's
primary contribution).

Three runtime mechanisms live here:

* **Region checking** — :meth:`GiantSan.check_region` implements
  Algorithm 1 (``CI(L, R)``): a *fast check* answered by one shadow load
  (the folded segment at ``L``), and a *slow check* of at most three more
  loads covering the prefix / suffix / trailing-partial-segment cases.
  Constant time for regions of arbitrary size.
* **History caching** — :meth:`GiantSan.check_cached` implements the
  quasi-bound of Figure 9: accesses below the cached bound cost one
  comparison and zero metadata loads; a miss re-checks and extends the
  bound from the folded segment just visited (at most
  ``ceil(log2(n/8))`` misses per object when walking forward).
* **Anchor-based enhancement** (§4.4.1) — checks span
  ``[anchor, access_end)`` so a far out-of-bounds index cannot jump over
  a small redzone; this is what Table 5's php experiment measures.

Ablation variants (Table 2's CacheOnly / EliminationOnly columns) are
built by the factory helpers at the bottom.
"""

from __future__ import annotations

from typing import Optional

from ..errors import AccessType, ErrorKind
from ..memory.allocator import Allocation
from ..memory.layout import SEGMENT_SIZE, segment_index
from ..memory.stack import StackFrame
from ..shadow import giantsan_encoding as enc
from ..shadow.oracle import giantsan_region_is_addressable
from .base import AccessCache, Capabilities, Sanitizer

#: Codes <= this mark folded segments (Definition 1).
_FOLDED_MAX = enc.FOLDED_MAX_CODE


def _rewrite_kind_for_arena(kind: ErrorKind, arena: str) -> ErrorKind:
    """Partial-segment hits classify as heap overflow by default; refine
    by the arena the faulting byte actually lives in."""
    if kind is ErrorKind.UNKNOWN:
        kind = ErrorKind.HEAP_BUFFER_OVERFLOW
    if kind in (ErrorKind.HEAP_BUFFER_OVERFLOW, ErrorKind.HEAP_BUFFER_UNDERFLOW):
        if arena == "stack":
            return (
                ErrorKind.STACK_BUFFER_OVERFLOW
                if kind is ErrorKind.HEAP_BUFFER_OVERFLOW
                else ErrorKind.STACK_BUFFER_UNDERFLOW
            )
        if arena == "globals":
            return ErrorKind.GLOBAL_BUFFER_OVERFLOW
    return kind


class GiantSan(Sanitizer):
    """The GiantSan runtime over the folded shadow encoding."""

    name = "GiantSan"

    def __init__(
        self,
        layout=None,
        enable_caching: bool = True,
        enable_elimination: bool = True,
        enable_anchor: bool = True,
        enable_lower_bound: bool = False,
        **kwargs,
    ):
        super().__init__(layout=layout, **kwargs)
        self.enable_caching = enable_caching
        self.enable_elimination = enable_elimination
        self.enable_anchor = enable_anchor
        #: §5.4's proposed mitigation for reverse traversals: locate the
        #: object's lower bound by enumerating folding degrees and cache
        #: it as a quasi-lower-bound.  Off by default, as in the paper.
        self.enable_lower_bound = enable_lower_bound

    @property
    def capabilities(self) -> Capabilities:  # type: ignore[override]
        return Capabilities(
            constant_time_region=True,
            history_caching=self.enable_caching,
            anchor_checks=self.enable_anchor,
            check_elimination=self.enable_elimination,
            temporal=True,
        )

    # ------------------------------------------------------------------
    # shadow maintenance (folding-aware poisoning, §4.5)
    # ------------------------------------------------------------------
    def _poison_null_page(self) -> None:
        # null guard page, plus the unallocated heap/stack arenas (see
        # the ASan runtime for rationale; codes are shared)
        self.shadow.fill(0, self.layout.heap_base >> 3, enc.NULL_PAGE)
        self.shadow.fill(
            segment_index(self.layout.heap_base),
            (self.layout.heap_end - self.layout.heap_base) >> 3,
            enc.HEAP_LEFT_REDZONE,
        )
        self.shadow.fill(
            segment_index(self.layout.stack_base),
            (self.layout.stack_end - self.layout.stack_base) >> 3,
            enc.STACK_MID_REDZONE,
        )
        self.shadow.fill(
            segment_index(self.layout.globals_base),
            (self.layout.globals_end - self.layout.globals_base) >> 3,
            enc.GLOBAL_REDZONE,
        )

    def _poison_global(self, variable) -> None:
        self.stats.shadow_stores += enc.poison_object_shadow_fast(
            self.shadow, variable.base, variable.size
        )

    #: Flat extra work per malloc/free, matching ASan's bookkeeping (the
    #: paper keeps redzones and quarantine unchanged, §4.5).
    ALLOC_BOOKKEEPING = 50
    FREE_BOOKKEEPING = 40

    def _poison_alloc(self, allocation: Allocation) -> None:
        # charge the bytes the encoding reports having written, keeping
        # the counter honest across shadow backends and size policies
        self.stats.shadow_stores += enc.poison_allocation(
            self.shadow, allocation
        )
        self.stats.extra_instructions += self.ALLOC_BOOKKEEPING

    def _poison_free(self, allocation: Allocation) -> None:
        self.stats.shadow_stores += enc.poison_freed(self.shadow, allocation)
        self.stats.extra_instructions += self.FREE_BOOKKEEPING

    def _unpoison_chunk(self, allocation: Allocation) -> None:
        # as in the ASan runtime: the shadow stays freed-poisoned until a
        # new allocation claims the chunk and repoisons it
        pass

    def _poison_stack_frame(self, frame: StackFrame) -> None:
        first = segment_index(frame.base)
        count = (frame.size + SEGMENT_SIZE - 1) >> 3
        self.shadow.fill(first, count, enc.STACK_MID_REDZONE)
        written = count
        for var in frame.variables:
            written += enc.poison_object_shadow_fast(
                self.shadow, var.base, var.size
            )
        self.stats.shadow_stores += written

    def _poison_stack_pop(self, frame: StackFrame) -> None:
        first = segment_index(frame.base)
        count = (frame.size + SEGMENT_SIZE - 1) >> 3
        self.shadow.fill(first, count, enc.STACK_AFTER_RETURN)
        self.stats.shadow_stores += count

    # ------------------------------------------------------------------
    # Algorithm 1: CI(L, R)
    # ------------------------------------------------------------------
    def check_region(
        self,
        start: int,
        end: int,
        access: AccessType,
        anchor: Optional[int] = None,
    ) -> bool:
        """Operation-level check of ``[start, end)`` in O(1) time.

        When ``anchor`` is given (and anchor checks are enabled) the
        checked region is widened to ``[anchor, end)`` so redzone
        bypassing is impossible.  Algorithm 1 assumes an 8-byte-aligned
        left endpoint; an unaligned head costs one extra shadow load.
        """
        if self.enable_anchor and anchor is not None:
            # widen to span the anchor in either direction: overflow checks
            # become CI(anchor, end), underflow checks CI(start, anchor) —
            # no redzone can be jumped over either way (§4.4.1, §4.3).
            if self.telemetry is not None and (
                anchor < start or anchor > end
            ):
                self.telemetry.incr("anchor_widened_checks")
            start = min(start, anchor)
            end = max(end, anchor)
        if end <= start:
            return True
        self.stats.checks_executed += 1
        self.stats.region_checks += 1
        ok = self._ci(start, end)
        if not ok:
            self._report_region(start, end, access)
        return ok

    def _ci(self, left: int, right: int) -> bool:
        """``CI(L, R)`` with head alignment handling; counts shadow loads.

        Shadow probes read the raw shadow bytearray directly: ``CI`` runs
        on every operation-level check, and the ``ShadowMemory.load``
        call overhead dwarfs the one-byte read it wraps.
        """
        if left < 0 or right > self._total_size:
            return False  # wild access: no shadow exists for it
        head = left & (SEGMENT_SIZE - 1)
        if head:
            # Unaligned L: validate the tail of the first segment, then
            # restart Algorithm 1 from the next segment boundary.
            self.stats.shadow_loads += 1
            code = self.shadow._shadow[left >> 3]
            segment_end = (left | (SEGMENT_SIZE - 1)) + 1
            needed_end = min(right, segment_end)
            prefix = enc.addressable_prefix(code)
            if needed_end - (segment_end - SEGMENT_SIZE) > prefix:
                return False
            if right <= segment_end:
                return True
            left = segment_end
        return self._ci_aligned(left, right)

    def _ci_aligned(self, left: int, right: int) -> bool:
        """Algorithm 1 verbatim (L is a multiple of 8)."""
        stats = self.stats
        shadow = self.shadow._shadow
        first_index = left >> 3
        stats.shadow_loads += 1
        v = shadow[first_index]  # line 1
        u = (1 << (67 - v)) if v <= _FOLDED_MAX else 0  # line 2
        span = right - left
        if u >= span:  # line 3: fast check passed
            stats.fast_checks += 1
            return True
        stats.slow_checks += 1
        loaded = {first_index}
        if span >= SEGMENT_SIZE:  # line 4
            if 2 * u < span:  # line 5: prefix folding too small
                return False
            suffix_index = (right - u) >> 3  # line 8
            if suffix_index not in loaded:
                stats.shadow_loads += 1
                loaded.add(suffix_index)
            if shadow[suffix_index] != v:
                return False
        last_index = (right - 1) >> 3  # line 12
        if last_index not in loaded:
            stats.shadow_loads += 1
            loaded.add(last_index)
        if shadow[last_index] > enc.PARTIAL_BASE - (right & 7):
            return False
        return True

    # ------------------------------------------------------------------
    # instruction-level fallback (small accesses outside any operation)
    # ------------------------------------------------------------------
    def check_access(self, address: int, width: int, access: AccessType) -> bool:
        """Guard one access; still one shadow load in the common case."""
        self.stats.checks_executed += 1
        self.stats.instruction_checks += 1
        ok = self._ci(address, address + width)
        if not ok:
            self._report_region(address, address + width, access)
        return ok

    # ------------------------------------------------------------------
    # history caching (§4.3, Figure 9)
    # ------------------------------------------------------------------
    def make_cache(self) -> AccessCache:
        return AccessCache()

    def check_cached(
        self,
        cache: AccessCache,
        base: int,
        offset: int,
        width: int,
        access: AccessType,
    ) -> bool:
        """Guard ``base[offset .. offset+width)`` through the quasi-bound.

        Negative offsets use a dedicated underflow ``CI`` and are never
        cached (the paper creates no quasi-lower-bound; §4.3, §5.4).
        """
        if offset < 0:
            if self.telemetry is not None:
                # negative offsets never feed the quasi-upper-bound
                # (§4.3); the telemetry split makes the §5.4 reverse-
                # traversal penalty directly observable
                self.telemetry.incr("underflow_checks")
            if self.enable_lower_bound and cache.covers_below(offset):
                self.stats.checks_executed += 1
                self.stats.cached_hits += 1
                return True
            # Dedicated underflow CI(y + off, y): spans up to the anchor
            # so a left redzone cannot be jumped over.
            self.stats.checks_executed += 1
            self.stats.region_checks += 1
            right = base + max(offset + width, 0)
            ok = self._ci(base + offset, right)
            if not ok:
                self._report_region(base + offset, right, access)
            elif self.enable_lower_bound:
                # §5.4 mitigation: locate the object's true lower bound
                # once (O(log n) shadow loads) and serve all further
                # negative offsets from the quasi-lower-bound.
                lower = self.locate_lower_bound(base + offset)
                cache.lb = min(cache.lb, lower - base)
                self.stats.cache_updates += 1
            return ok
        end = offset + width
        if self.enable_caching and cache.covers(end):
            self.stats.checks_executed += 1
            self.stats.cached_hits += 1
            return True
        ok = self.check_region(
            base + offset, base + end, access, anchor=base
        )
        if ok and self.enable_caching:
            # Extend the quasi-bound from the folded segment at the access
            # point (Figure 9 lines 6-7).  The bound is taken from the
            # segment base so the cache never over-claims.
            self.stats.shadow_loads += 1
            self.stats.cache_updates += 1
            v = self.shadow.load((base + offset) >> 3)
            guaranteed = (1 << (67 - v)) if v <= _FOLDED_MAX else 0
            cache.ub = max(cache.ub, (offset & ~7) + guaranteed)
        return ok

    # ------------------------------------------------------------------
    # bound location by degree skipping (Figure 7)
    # ------------------------------------------------------------------
    def locate_bound(self, base: int) -> int:
        """Upper bound of the addressable region starting at ``base``.

        Skips over folded segments, at most ``ceil(log2(n/8))`` hops
        (Figure 7); used by the reverse-traversal mitigation discussed in
        §5.4 and exposed for diagnostics.
        """
        address = base
        while True:
            self.stats.shadow_loads += 1
            code = self.shadow.load(address >> 3)
            if code <= _FOLDED_MAX:
                address += enc.guaranteed_bytes(code)
                continue
            partial = enc.decode_partial(code)
            if partial is not None:
                return address + partial
            return address

    def locate_lower_bound(self, address: int) -> int:
        """Lowest address of the addressable run containing ``address``.

        The §5.4 mitigation: "locate the lower bound before buffer
        reverse traversals by enumerating the folding degrees and
        checking whether corresponding folded segments exist."  From the
        segment of ``address`` we repeatedly jump backwards by the
        largest power of two whose landing segment's folding degree
        still covers the current position (codes are monotone within an
        object, and a good run never spans a redzone, so a covering
        folded segment proves same-object membership).  O(log^2 n)
        shadow loads in the worst case.
        """
        segment = address >> 3
        self.stats.shadow_loads += 1
        start_code = self.shadow.load(segment)
        if enc.is_error_code(start_code):
            return segment << 3  # not addressable: nothing to locate
        if start_code > _FOLDED_MAX and segment > 0:
            # partial tail: the run may continue to its left — but only
            # step if a folded segment is actually there (a sub-8-byte
            # object has no good segments at all)
            self.stats.shadow_loads += 1
            if self.shadow.load(segment - 1) <= _FOLDED_MAX:
                segment -= 1
        floor_segment = 0
        moved = True
        while moved:
            moved = False
            span = 1
            best = None
            # find the furthest covering jump (enumerate degrees upward)
            while segment - span >= floor_segment:
                target = segment - span
                self.stats.shadow_loads += 1
                code = self.shadow.load(target)
                if code > _FOLDED_MAX:
                    break  # poison or partial: previous object territory
                degree = _FOLDED_MAX - code
                if (1 << degree) >= span + 1:
                    best = target
                span <<= 1
            if best is not None and best != segment:
                segment = best
                moved = True
        return segment << 3

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def _report_region(self, start: int, end: int, access: AccessType) -> None:
        if start < 0 or end > self.layout.total_size:
            self._report(
                ErrorKind.WILD_ACCESS, start, end - start, access, detail="wild"
            )
            return
        ok, fault = giantsan_region_is_addressable(self.shadow, start, end)
        if ok:
            # Algorithm 1 can only fail on a genuine violation for
            # regions produced by our poisoning; if the oracle disagrees
            # the region straddles unrelated objects — report the seam.
            fault = start
        code = self.shadow.load(segment_index(fault))
        kind = enc.classify(code)
        arena = self.space.arena_of(fault)
        kind = _rewrite_kind_for_arena(kind, arena)
        self._report(kind, fault, end - start, access, shadow_value=code)


def make_giantsan(**kwargs) -> GiantSan:
    """Full GiantSan: caching + elimination + anchors (Table 2 main column)."""
    return GiantSan(**kwargs)


def make_cache_only(**kwargs) -> GiantSan:
    """Ablation: history caching only (Table 2 "CacheOnly")."""
    san = GiantSan(
        enable_caching=True, enable_elimination=False, enable_anchor=True, **kwargs
    )
    san.name = "GiantSan-CacheOnly"
    return san


def make_elimination_only(**kwargs) -> GiantSan:
    """Ablation: check elimination only (Table 2 "EliminationOnly")."""
    san = GiantSan(
        enable_caching=False, enable_elimination=True, enable_anchor=True, **kwargs
    )
    san.name = "GiantSan-EliminationOnly"
    return san
