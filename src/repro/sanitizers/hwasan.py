"""HWASAN-style tag-based sanitizer (Serebryany et al. 2018).

The paper's Related Work (§6) contrasts GiantSan with hardware-assisted
address sanitizing: memory is split into 16-byte *granules*, each granule
carries an 8-bit tag in shadow, and every pointer carries a tag in its
top byte (Top-Byte-Ignore).  A check compares the pointer's tag with the
accessed granule's tag — one load and one compare per access, no
redzones, and use-after-free detection by retagging on free.

Two properties the paper highlights are directly observable here:

* **no protection-density gain** — a region check still visits one
  granule tag per 16 bytes (the "low protection density issue" that
  motivates GiantSan);
* **probabilistic detection** — distinct allocations receive distinct
  tags only with probability 255/256 per pair; a tag collision is a
  false negative (``TAG_SPACE`` makes this testable deterministically).

This baseline is an *extension* of the reproduction: it is not part of
the paper's Table 2 (HWASAN needs AArch64 TBI hardware), but it lets the
benchmarks contrast segment folding with memory tagging.
"""

from __future__ import annotations

from typing import Optional

from ..errors import AccessType, ErrorKind
from ..memory.allocator import Allocation
from ..memory.stack import StackFrame
from .base import Capabilities, Sanitizer

#: Granule size in bytes (HWASAN uses 16).
GRANULE_SIZE = 16
GRANULE_SHIFT = 4

#: Pointer tags live in bits 56..63 (Top-Byte-Ignore).
TAG_SHIFT = 56
ADDRESS_MASK = (1 << TAG_SHIFT) - 1

#: Number of distinct non-zero tags.  Real HWASAN uses 255; keeping the
#: real value preserves the 1/255 collision probability.
TAG_SPACE = 255

#: Tag for never-allocated memory (matches no pointer tag).
FREE_TAG = 0


def pointer_tag(pointer: int) -> int:
    """The tag byte carried in a pointer's top bits."""
    return (pointer >> TAG_SHIFT) & 0xFF


def untag(pointer: int) -> int:
    """The raw address with the tag stripped (what TBI hardware does)."""
    return pointer & ADDRESS_MASK


def with_tag(address: int, tag: int) -> int:
    """Attach ``tag`` to ``address``."""
    return (address & ADDRESS_MASK) | ((tag & 0xFF) << TAG_SHIFT)


class HWASan(Sanitizer):
    """Memory tagging over 16-byte granules with top-byte pointer tags."""

    name = "HWASan"
    capabilities = Capabilities(
        constant_time_region=False,
        history_caching=False,
        anchor_checks=False,
        check_elimination=False,
        temporal=True,
    )

    def __init__(self, layout=None, **kwargs):
        # everything must be granule-aligned: the "redzone" here is only
        # the padding that rounds objects to 16-byte boundaries — its
        # bytes carry the FREE tag, so adjacent overflow is caught by
        # tag mismatch, not by dedicated poison values
        kwargs.setdefault("redzone", GRANULE_SIZE)
        kwargs.setdefault("quarantine_bytes", 0)
        kwargs.setdefault(
            "size_policy", lambda size: (size + GRANULE_SIZE - 1) & ~15
        )
        super().__init__(layout=layout, **kwargs)
        # rebuild stack/global allocators with granule alignment
        from ..memory import GlobalAllocator, StackAllocator

        self.stack = StackAllocator(
            self.space, redzone=GRANULE_SIZE, alignment=GRANULE_SIZE
        )
        self.globals = GlobalAllocator(
            self.space, redzone=GRANULE_SIZE, alignment=GRANULE_SIZE
        )
        #: Granule tag table (the HWASAN shadow: 1 byte per 16 bytes).
        self._tags = bytearray(self.layout.total_size >> GRANULE_SHIFT)
        self._next_tag = 1

    # ------------------------------------------------------------------
    # tag plumbing
    # ------------------------------------------------------------------
    def _fresh_tag(self) -> int:
        tag = self._next_tag
        self._next_tag += 1
        if self._next_tag > TAG_SPACE:
            self._next_tag = 1
        return tag

    def _set_granule_tags(self, base: int, size: int, tag: int) -> None:
        first = base >> GRANULE_SHIFT
        count = (size + GRANULE_SIZE - 1) >> GRANULE_SHIFT
        self._tags[first : first + count] = bytes([tag]) * count
        self.stats.shadow_stores += count

    def granule_tag(self, address: int) -> int:
        return self._tags[address >> GRANULE_SHIFT]

    def _metadata_bytes(self) -> int:
        # the tag table: 1 byte per 16, half of ASan-family shadow
        return len(self._tags)

    def resolve_address(self, pointer: int) -> int:
        """Strip the tag before the real memory access (TBI)."""
        return pointer & ADDRESS_MASK

    # ------------------------------------------------------------------
    # allocation hooks: tag instead of poisoning
    # ------------------------------------------------------------------
    def malloc(self, size: int) -> Allocation:
        allocation = super().malloc(size)
        # hand out a *tagged* pointer: callers use allocation.base, so
        # the tag is stored onto the base attribute itself
        tag = self._fresh_tag()
        self._set_granule_tags(allocation.base, allocation.usable_size, tag)
        allocation.base = with_tag(allocation.base, tag)
        return allocation

    def free(self, address: int) -> None:
        raw = untag(address)
        allocation = self.allocator.lookup(raw)
        if allocation is not None and pointer_tag(address) != self.granule_tag(raw):
            # stale pointer into a recycled chunk: report, don't free
            self._report(
                ErrorKind.USE_AFTER_FREE, raw, 0, AccessType.FREE,
                detail="tag mismatch on free",
            )
            return
        super().free(raw)

    def _poison_alloc(self, allocation: Allocation) -> None:
        pass  # tags are written in malloc (needs the fresh tag)

    def _poison_free(self, allocation: Allocation) -> None:
        # retag with the free tag: any dangling tagged pointer mismatches
        self._set_granule_tags(
            untag(allocation.base), allocation.usable_size, FREE_TAG
        )
        self.stats.extra_instructions += 8

    def _unpoison_chunk(self, allocation: Allocation) -> None:
        allocation.base = untag(allocation.base)

    def _poison_stack_frame(self, frame: StackFrame) -> None:
        for variable in frame.variables:
            tag = self._fresh_tag()
            self._set_granule_tags(variable.base, variable.size, tag)
            variable.base = with_tag(variable.base, tag)

    def _poison_stack_pop(self, frame: StackFrame) -> None:
        for variable in frame.variables:
            self._set_granule_tags(
                untag(variable.base), variable.size, FREE_TAG
            )

    def _poison_global(self, variable) -> None:
        tag = self._fresh_tag()
        self._set_granule_tags(variable.base, variable.size, tag)
        variable.base = with_tag(variable.base, tag)

    # ------------------------------------------------------------------
    # checks: tag comparison per granule
    # ------------------------------------------------------------------
    def _check_granules(
        self, pointer: int, raw_start: int, raw_end: int, access: AccessType
    ) -> bool:
        expected = pointer_tag(pointer)
        if raw_start < 0 or raw_end > self.layout.total_size:
            self._report(
                ErrorKind.WILD_ACCESS, raw_start, raw_end - raw_start, access
            )
            return False
        granule = raw_start >> GRANULE_SHIFT
        last = (raw_end - 1) >> GRANULE_SHIFT
        while granule <= last:
            self.stats.shadow_loads += 1
            self.stats.segments_scanned += 1
            actual = self._tags[granule]
            if actual != expected:
                # a tag mismatch does not say *why* (real HWASAN guesses
                # from allocation history): if the preceding granule still
                # carries the pointer's tag, this is a contiguous run off
                # the end of the object — an overflow; otherwise the
                # object itself was retagged, i.e. freed.
                previous = self._tags[granule - 1] if granule else FREE_TAG
                if actual != FREE_TAG or previous == expected:
                    kind = ErrorKind.HEAP_BUFFER_OVERFLOW
                else:
                    kind = ErrorKind.USE_AFTER_FREE
                arena = self.space.arena_of(granule << GRANULE_SHIFT)
                if arena == "stack":
                    # stack mismatches are reported as overflows; HWASAN
                    # cannot tell a gap hit from a popped frame by tags
                    kind = ErrorKind.STACK_BUFFER_OVERFLOW
                elif arena == "globals":
                    kind = ErrorKind.GLOBAL_BUFFER_OVERFLOW
                self._report(
                    kind,
                    granule << GRANULE_SHIFT,
                    raw_end - raw_start,
                    access,
                    shadow_value=actual,
                    detail=f"tag {actual:#04x} != pointer tag {expected:#04x}",
                )
                return False
            granule += 1
        return True

    def check_access(self, address: int, width: int, access: AccessType) -> bool:
        self.stats.checks_executed += 1
        self.stats.instruction_checks += 1
        raw = untag(address)
        if untag(address) < (1 << 12) and pointer_tag(address) == 0:
            self._report(ErrorKind.NULL_DEREFERENCE, raw, width, access)
            return False
        return self._check_granules(address, raw, raw + width, access)

    def check_region(
        self,
        start: int,
        end: int,
        access: AccessType,
        anchor: Optional[int] = None,
    ) -> bool:
        """Tag comparison per granule: linear, like ASan's guardian —
        HWASAN does not improve protection density (paper §6)."""
        if end <= start:
            return True
        self.stats.checks_executed += 1
        self.stats.region_checks += 1
        pointer = anchor if anchor is not None else start
        return self._check_granules(pointer, untag(start), untag(end), access)
