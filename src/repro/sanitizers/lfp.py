"""LFP: low-fat-pointer baseline (Duck & Yap, CC 2016 / NDSS 2017).

LFP is the rounded-up-bound representative the paper compares against
(BBC itself is not publicly available; §5.1).  Allocations are placed in
power-of-two-with-midpoints size classes, and a pointer's bounds are
recomputed from its value in O(1) — no shadow scan, no redzones.  Two
consequences the evaluation relies on:

* **False negatives in the slack**: an access past the requested size
  but inside the rounded size class is indistinguishable from a valid
  access (Table 3's 4/1504 heap overflows caught; §2.1's ``p[700]`` on
  a 600-byte buffer).
* **Extra instructions**: each check pays the base-derivation ALU work
  (``CHECK_ARITHMETIC_OVERHEAD``), and every function entry pays for the
  parallel stack LFP simulates to satisfy its alignment requirements
  (``STACK_SIMULATION_OVERHEAD``) — the cost the paper cites as the
  reason LFP loses to GiantSan despite O(1) bounds (§5.2).

Heap-only protection: stack variables are not placed in size classes, so
stack overflows pass unchecked (Table 3's 49/1439).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import AccessType, ErrorKind
from ..memory import low_fat_policy
from ..memory.allocator import Allocation
from ..memory.stack import StackFrame
from .base import AccessCache, Capabilities, FoldResult, Sanitizer

#: Effective extra cycles per check for the base-derivation arithmetic —
#: a few ALU ops that pipeline well next to the access itself.
CHECK_ARITHMETIC_OVERHEAD = 0.5

#: Per-frame cost of the parallel stack LFP simulates to satisfy its
#: alignment requirements (§5.2) — charged on function entry.
STACK_SIMULATION_OVERHEAD = 10


class LFP(Sanitizer):
    """Pointer-derived bounds with low-fat size classes."""

    name = "LFP"
    capabilities = Capabilities(
        constant_time_region=True,
        history_caching=False,
        anchor_checks=True,
        check_elimination=False,
        temporal=True,
    )

    def __init__(self, layout=None, **kwargs):
        kwargs.setdefault("redzone", 0)
        kwargs.setdefault("size_policy", low_fat_policy)
        # LFP has no quarantine; freed regions are immediately reusable.
        kwargs.setdefault("quarantine_bytes", 0)
        super().__init__(layout=layout, **kwargs)
        #: Live bounds keyed by object base — the O(1) analogue of
        #: deriving the region from the pointer value.
        self._bounds: Dict[int, Allocation] = {}
        #: Bases of freed allocations.  LFP has no liveness metadata —
        #: the region is recomputed from the pointer value — but a freed
        #: *base* pointer resolves to a region whose allocation bit is
        #: clear, which is the one temporal case it catches (Juliet's
        #: CWE416 uses base pointers; an aliased interior pointer like
        #: libzip's CVE-2017-12858 silently re-derives a region).
        self._freed_bases: set = set()

    # ------------------------------------------------------------------
    # allocation hooks maintain the bounds table instead of shadow
    # ------------------------------------------------------------------
    #: LFP's metadata maintenance is a size-class computation, far
    #: cheaper than redzone poisoning — its advantage on alloc-heavy
    #: programs like omnetpp (Table 2).
    ALLOC_BOOKKEEPING = 6
    FREE_BOOKKEEPING = 4

    def _poison_alloc(self, allocation: Allocation) -> None:
        self._bounds[allocation.base] = allocation
        self._freed_bases.discard(allocation.base)
        self.stats.extra_instructions += self.ALLOC_BOOKKEEPING

    def _poison_free(self, allocation: Allocation) -> None:
        self._bounds.pop(allocation.base, None)
        self._freed_bases.add(allocation.base)
        self.stats.extra_instructions += self.FREE_BOOKKEEPING

    def _unpoison_chunk(self, allocation: Allocation) -> None:
        pass

    def _metadata_bytes(self) -> int:
        # no shadow: just the per-region bound entries (~16B each)
        return 16 * len(self._bounds)

    # ------------------------------------------------------------------
    # checks
    # ------------------------------------------------------------------
    def _lookup(self, base: int) -> Optional[Allocation]:
        """O(1) bound derivation from the pointer value.

        Real LFP computes the region base with bit arithmetic on the
        pointer — no metadata load — so only ALU work is charged (the
        per-check ``extra_instructions`` below).
        """
        return self._bounds.get(base)

    def check_access(self, address: int, width: int, access: AccessType) -> bool:
        """Instruction check with the pointer itself as its own base.

        Without the original base pointer LFP can only verify the access
        lies in *some* live region — matching its behaviour when the tag
        recovery falls back to the address value.
        """
        stats = self.stats
        stats.checks_executed += 1
        stats.instruction_checks += 1
        stats.extra_instructions += CHECK_ARITHMETIC_OVERHEAD
        # inline arena classification: the heap arena starts right after
        # the null guard, so anything below heap_base (and non-negative)
        # is the null page; stack/globals/wild are unprotected
        if not self._heap_base <= address < self._heap_end:
            if 0 <= address < self._heap_base:
                # a null pointer derives no low-fat region: always caught
                self._report(
                    ErrorKind.NULL_DEREFERENCE, address, width, access
                )
                return False
            return True  # stack/globals are unprotected
        allocation = self._find_region(address)
        if allocation is None:
            if address in self._freed_bases:
                self._report(
                    ErrorKind.USE_AFTER_FREE, address, width, access,
                    detail="freed low-fat region",
                )
                return False
            # region re-derived from the value: no liveness to check
            return True
        if address + width > allocation.usable_end:
            self._report(
                ErrorKind.HEAP_BUFFER_OVERFLOW, address, width, access,
                detail="beyond size class",
            )
            return False
        return True

    def check_region(
        self,
        start: int,
        end: int,
        access: AccessType,
        anchor: Optional[int] = None,
    ) -> bool:
        """Bounds test ``[start, end) subset-of region(anchor)`` in O(1)."""
        if end <= start:
            return True
        stats = self.stats
        stats.checks_executed += 1
        # LFP's operation-level test compiles to the same compare+branch
        # as an instruction check (no metadata load, no CI call): charge
        # it as one.
        stats.instruction_checks += 1
        stats.extra_instructions += CHECK_ARITHMETIC_OVERHEAD
        base = anchor if anchor is not None else start
        # inline arena classification (see check_access)
        if not self._heap_base <= base < self._heap_end:
            if 0 <= base < self._heap_base:
                self._report(
                    ErrorKind.NULL_DEREFERENCE, start, end - start, access
                )
                return False
            return True
        allocation = self._bounds.get(base)
        if allocation is None:
            allocation = self._find_region(base)
        if allocation is None:
            if base in self._freed_bases:
                self._report(
                    ErrorKind.USE_AFTER_FREE, start, end - start, access,
                    detail="freed low-fat region",
                )
                return False
            # an interior/aliased pointer into dead memory re-derives a
            # plausible region: LFP cannot tell it is gone
            return True
        self.stats.fast_checks += 1
        if start < allocation.base:
            self._report(
                ErrorKind.HEAP_BUFFER_UNDERFLOW, start, end - start, access
            )
            return False
        if end > allocation.usable_end:
            self._report(
                ErrorKind.HEAP_BUFFER_OVERFLOW,
                allocation.usable_end,
                end - start,
                access,
                detail="beyond size class",
            )
            return False
        return True

    def check_cached(
        self,
        cache: AccessCache,
        base: int,
        offset: int,
        width: int,
        access: AccessType,
    ) -> bool:
        return self.check_region(
            base + offset, base + offset + width, access, anchor=base
        )

    # ------------------------------------------------------------------
    # bulk-check folding (superblock fast path)
    # ------------------------------------------------------------------
    def fold_region_checks(
        self,
        count: int,
        base: int,
        start: int,
        start_stride: int,
        end: int,
        end_stride: int,
        access: AccessType,
        use_anchor: bool,
    ) -> Optional[FoldResult]:
        """Fold ``count`` anchored region checks over a strided walk.

        LFP's per-check work is O(1) and depends only on the anchor's
        region and the extreme endpoints, so when every iteration's
        bounds test passes the counters follow arithmetically.  Any
        iteration that would report (or take a different stats path)
        declines, deferring to the per-iteration reference.
        """
        if count <= 0:
            return FoldResult()
        if not use_anchor:
            return None
        last_start = start + (count - 1) * start_stride
        last_end = end + (count - 1) * end_stride
        # width is linear in the iteration index: its minimum is at an
        # endpoint.  A non-positive width anywhere would take the
        # early-return (stat-free) path for that iteration only: decline.
        if min(end - start, last_end - last_start) <= 0:
            return None
        per_check = FoldResult(
            stat_deltas={
                "checks_executed": count,
                "instruction_checks": count,
                "extra_instructions": CHECK_ARITHMETIC_OVERHEAD * count,
            }
        )
        arena = self.space.arena_of(base)
        if arena == "null":
            return None  # every iteration reports: fall back
        if arena != "heap":
            per_check.full_check = count
            return per_check
        allocation = self._lookup(base)
        if allocation is None:
            allocation = self._find_region(base)
        if allocation is None:
            if base in self._freed_bases:
                return None  # use-after-free reports: fall back
            per_check.full_check = count
            return per_check
        # Region found: each check charges one fast check, then passes
        # iff the extreme bounds stay inside the size class.
        if min(start, last_start) < allocation.base:
            return None
        if max(end, last_end) > allocation.usable_end:
            return None
        per_check.stat_deltas["fast_checks"] = count
        per_check.fast_only = count
        return per_check

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _find_region(self, address: int) -> Optional[Allocation]:
        """Containing live region by address (models base derivation from
        the pointer value; slack bytes are inside the region)."""
        allocation = self._bounds.get(address)
        if allocation is not None:
            return allocation
        for candidate in self._bounds.values():
            if candidate.base <= address < candidate.usable_end:
                return candidate
        return None

    def _poison_stack_frame(self, frame: StackFrame) -> None:
        # LFP's high alignment requirement prevents cheap stack
        # protection (paper §5.2): the stack stays unguarded, but a
        # parallel stack must be simulated for compatible layout.
        self.stats.extra_instructions += STACK_SIMULATION_OVERHEAD

    def _poison_stack_pop(self, frame: StackFrame) -> None:
        pass
