"""AddressSanitizer baseline (Serebryany et al. 2012), instruction level.

Every <=8-byte access is guarded by one shadow load plus a partial-prefix
comparison (paper Example 1).  Region operations (memset/memcpy/str*) go
through a guardian that scans shadow *linearly*, one load per segment —
the low-protection-density behaviour GiantSan is built to fix: a 1 KiB
region costs 128 shadow loads here and 1-4 in GiantSan.
"""

from __future__ import annotations

from math import gcd
from typing import Optional

from ..errors import AccessType, ErrorKind
from ..memory.allocator import Allocation
from ..memory.layout import SEGMENT_SIZE, segment_index, segment_offset
from ..memory.stack import StackFrame
from ..shadow import asan_encoding as enc
from ..shadow.oracle import bulk_region_is_addressable, scan_region
from .base import Capabilities, FoldResult, Sanitizer


def _straddle_count(address: int, stride: int, width: int, count: int) -> int:
    """How many of ``count`` strided accesses straddle a segment boundary.

    ``address % 8`` cycles with period ``8 / gcd(stride, 8)``, so one
    period is enumerated and scaled — O(1) instead of O(count).
    """
    period = SEGMENT_SIZE // gcd(stride % SEGMENT_SIZE or SEGMENT_SIZE,
                                 SEGMENT_SIZE)
    period = min(period, count)
    per_period = sum(
        1
        for i in range(period)
        if (address + i * stride) % SEGMENT_SIZE + width > SEGMENT_SIZE
    )
    full_cycles, remainder = divmod(count, period)
    tail = sum(
        1
        for i in range(remainder)
        if (address + i * stride) % SEGMENT_SIZE + width > SEGMENT_SIZE
    )
    return full_cycles * per_period + tail


def _write_global_states(shadow, variable, good_code: int) -> int:
    """Object byte-states for one global (the surrounding arena is
    already pre-poisoned with the global redzone code).  Returns the
    shadow bytes written."""
    index = segment_index(variable.base)
    full, tail = divmod(variable.size, SEGMENT_SIZE)
    if full:
        shadow.fill(index, full, good_code)
    if tail:
        shadow.store(index + full, tail)
    return full + (1 if tail else 0)


class ASan(Sanitizer):
    """Instruction-level location-based sanitizer with linear region scans."""

    name = "ASan"
    capabilities = Capabilities(
        constant_time_region=False,
        history_caching=False,
        anchor_checks=False,
        check_elimination=False,
        temporal=True,
    )

    # ------------------------------------------------------------------
    # shadow maintenance
    # ------------------------------------------------------------------
    def _poison_null_page(self) -> None:
        # null guard page, plus the not-yet-allocated heap and stack
        # arenas: real ASan leaves unmapped pages inaccessible, which the
        # pre-poison models (allocation hooks unpoison what they carve)
        self.shadow.fill(0, self.layout.heap_base >> 3, enc.NULL_PAGE)
        self.shadow.fill(
            segment_index(self.layout.heap_base),
            (self.layout.heap_end - self.layout.heap_base) >> 3,
            enc.HEAP_LEFT_REDZONE,
        )
        self.shadow.fill(
            segment_index(self.layout.stack_base),
            (self.layout.stack_end - self.layout.stack_base) >> 3,
            enc.STACK_MID_REDZONE,
        )
        self.shadow.fill(
            segment_index(self.layout.globals_base),
            (self.layout.globals_end - self.layout.globals_base) >> 3,
            enc.GLOBAL_REDZONE,
        )

    #: Flat extra work per malloc/free: redzone setup and quarantine
    #: bookkeeping beyond the shadow writes themselves.
    ALLOC_BOOKKEEPING = 50
    FREE_BOOKKEEPING = 40

    def _poison_alloc(self, allocation: Allocation) -> None:
        # shadow-store traffic is charged as the bytes the poisoning
        # actually wrote (the encoding reports them), so the counter
        # stays comparable across shadow backends and size policies
        self.stats.shadow_stores += enc.poison_allocation(
            self.shadow, allocation
        )
        self.stats.extra_instructions += self.ALLOC_BOOKKEEPING

    def _poison_free(self, allocation: Allocation) -> None:
        self.stats.shadow_stores += enc.poison_freed(self.shadow, allocation)
        self.stats.extra_instructions += self.FREE_BOOKKEEPING

    def _unpoison_chunk(self, allocation: Allocation) -> None:
        # leaving quarantine only makes the chunk *reusable*; its shadow
        # stays freed-poisoned until a new allocation repoisons it, so a
        # use-after-free is caught right up to actual reuse (compiler-rt
        # behaves the same way)
        pass

    def _poison_global(self, variable) -> None:
        # charge exactly the object-state bytes written (the arena's
        # redzone pre-poison happened at construction time)
        self.stats.shadow_stores += _write_global_states(
            self.shadow, variable, enc.GOOD
        )

    def _poison_stack_frame(self, frame: StackFrame) -> None:
        first = segment_index(frame.base)
        count = (frame.size + SEGMENT_SIZE - 1) >> 3
        self.shadow.fill(first, count, enc.STACK_MID_REDZONE)
        written = count
        for var in frame.variables:
            index = segment_index(var.base)
            full, tail = divmod(var.size, SEGMENT_SIZE)
            if full:
                self.shadow.fill(index, full, enc.GOOD)
            if tail:
                self.shadow.store(index + full, tail)
            written += full + (1 if tail else 0)
        self.stats.shadow_stores += written

    def _poison_stack_pop(self, frame: StackFrame) -> None:
        first = segment_index(frame.base)
        count = (frame.size + SEGMENT_SIZE - 1) >> 3
        self.shadow.fill(first, count, enc.STACK_AFTER_RETURN)
        self.stats.shadow_stores += count

    # ------------------------------------------------------------------
    # checks
    # ------------------------------------------------------------------
    def check_access(self, address: int, width: int, access: AccessType) -> bool:
        """One instruction-level check: 1-2 shadow loads.

        The shadow probe from :func:`asan_encoding.check_small_access`
        is inlined on the raw shadow bytearray — this is the hottest
        call in a Table 2 sweep, and the method-call indirection costs
        more than the check itself.  Accounting is identical: a
        straddling access charges two shadow loads even when the first
        byte already faults, exactly as before.
        """
        stats = self.stats
        stats.checks_executed += 1
        stats.instruction_checks += 1
        if address < 0 or address + width > self._total_size:
            self._report(
                ErrorKind.WILD_ACCESS, address, width, access, detail="wild"
            )
            return False
        shadow = self.shadow._shadow
        index = address >> 3
        reach = (address & (SEGMENT_SIZE - 1)) + width
        code = shadow[index]
        if reach <= SEGMENT_SIZE:
            stats.shadow_loads += 1
            # addressable_prefix: GOOD -> 8, partial 1..7 -> k, poison -> 0
            if code == enc.GOOD or reach <= (code if code <= 7 else 0):
                return True
            self._report_code(code, address, width, access)
            return False
        stats.shadow_loads += 2
        if code != enc.GOOD:
            self._report_code(code, address, width, access)
            return False
        code2 = shadow[index + 1]
        tail = reach - SEGMENT_SIZE
        if code2 == enc.GOOD or tail <= (code2 if code2 <= 7 else 0):
            return True
        self._report_code(code2, address, width, access)
        return False

    def check_region(
        self,
        start: int,
        end: int,
        access: AccessType,
        anchor: Optional[int] = None,
    ) -> bool:
        """Guardian-style linear scan: one shadow load per segment.

        ASan ignores ``anchor`` — it protects only the touched bytes,
        which is what makes its redzones bypassable (paper §4.4.1).

        Implemented with the backend's zero-copy bulk shadow scan (no
        snapshot is taken) but *accounted* per segment: shadow loads and
        segments scanned are charged for every segment the reference
        walk would have visited, so CheckStats are byte-identical across
        both engines and both shadow backends.
        """
        if end <= start:
            return True
        self.stats.checks_executed += 1
        self.stats.region_checks += 1
        if start < 0 or end > self.layout.total_size:
            self._report(
                ErrorKind.WILD_ACCESS, start, end - start, access, detail="wild"
            )
            return False
        ok, fault, visited = scan_region(
            self.shadow, start, end, enc.addressable_prefix
        )
        self.stats.shadow_loads += visited
        self.stats.segments_scanned += visited
        if ok:
            return True
        code = self.shadow.load(segment_index(start) + visited - 1)
        self._report_code(code, fault, end - start, access)
        return False

    # ------------------------------------------------------------------
    # bulk-check folding (superblock fast path)
    # ------------------------------------------------------------------
    def fold_access_checks(
        self,
        count: int,
        address: int,
        stride: int,
        width: int,
        access: AccessType,
    ) -> Optional[FoldResult]:
        """Fold ``count`` instruction checks over a strided walk.

        Eligible only when the covering byte range is entirely
        addressable — then every per-iteration check is known to pass
        (an access passes iff all its bytes are addressable) and the
        counters follow arithmetically.  Anything else (wild addresses,
        poison anywhere in the covering range, even in unaccessed gaps)
        conservatively declines so the per-iteration path produces the
        report-exact behaviour.
        """
        if count <= 0:
            return FoldResult()
        last = address + (count - 1) * stride
        lo, hi = min(address, last), max(address, last) + width
        if lo < 0 or hi > self.layout.total_size:
            return None
        ok, _ = bulk_region_is_addressable(
            self.shadow, lo, hi, enc.addressable_prefix
        )
        if not ok:
            return None
        return FoldResult(
            stat_deltas={
                "checks_executed": count,
                "instruction_checks": count,
                "shadow_loads": count
                + _straddle_count(address, stride, width, count),
            },
            full_check=count,
        )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _report_code(
        self, code: int, address: int, size: int, access: AccessType
    ) -> None:
        kind = enc.classify(code)
        if kind is ErrorKind.UNKNOWN and enc.is_partial(code):
            kind = ErrorKind.HEAP_BUFFER_OVERFLOW
        arena = self.space.arena_of(address)
        if kind in (
            ErrorKind.HEAP_BUFFER_OVERFLOW,
            ErrorKind.HEAP_BUFFER_UNDERFLOW,
        ):
            if arena == "stack":
                kind = ErrorKind.STACK_BUFFER_OVERFLOW
            elif arena == "globals":
                kind = ErrorKind.GLOBAL_BUFFER_OVERFLOW
        self._report(kind, address, size, access, shadow_value=code)
