"""The sanitizer runtimes under evaluation."""

from .base import AccessCache, Capabilities, CheckStats, Sanitizer
from .native import NativeSanitizer
from .asan import ASan
from .asanmm import ASanMinusMinus
from .giantsan import (
    GiantSan,
    make_cache_only,
    make_elimination_only,
    make_giantsan,
)
from .hwasan import HWASan
from .lfp import LFP

#: Factory registry used by the benchmark harness; names match the paper.
SANITIZER_FACTORIES = {
    "Native": NativeSanitizer,
    "GiantSan": make_giantsan,
    "ASan": ASan,
    "ASan--": ASanMinusMinus,
    "LFP": LFP,
    "HWASan": HWASan,
    "GiantSan-CacheOnly": make_cache_only,
    "GiantSan-EliminationOnly": make_elimination_only,
}

__all__ = [
    "AccessCache",
    "Capabilities",
    "CheckStats",
    "Sanitizer",
    "NativeSanitizer",
    "ASan",
    "ASanMinusMinus",
    "GiantSan",
    "LFP",
    "HWASan",
    "make_giantsan",
    "make_cache_only",
    "make_elimination_only",
    "SANITIZER_FACTORIES",
]
