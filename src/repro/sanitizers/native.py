"""Native execution baseline: no metadata, no checks.

Used as the denominator for every overhead ratio in Table 2 and the
"Native" series in Figure 11.  The allocator still runs (programs need
memory) but with zero redzones, no quarantine, and no shadow writes.
"""

from __future__ import annotations

from .base import Capabilities, Sanitizer


class NativeSanitizer(Sanitizer):
    """No-op sanitizer; every check passes and costs nothing."""

    name = "Native"
    capabilities = Capabilities(temporal=False)

    def __init__(self, layout=None, **kwargs):
        kwargs.setdefault("redzone", 0)
        kwargs.setdefault("quarantine_bytes", 0)
        super().__init__(layout=layout, **kwargs)

    def malloc(self, size):
        # no poisoning, no sanitizer event accounting — native malloc's
        # own cost is already charged by the interpreter's cycle table
        return self.allocator.malloc(size)

    def free(self, address) -> None:
        allocation = self.allocator.lookup(address)
        if allocation is None:
            return  # native free of a bad pointer: undefined, not counted
        self.allocator.free(address)
        self.allocator.release_chunk(allocation)
