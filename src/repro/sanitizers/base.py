"""Sanitizer runtime interface shared by all tools under evaluation.

A sanitizer owns the simulated process state (address space, shadow
memory, allocator, quarantine, stack) and exposes:

* allocation hooks (``malloc``/``free``/stack frames) that maintain
  shadow metadata — the paper's "runtime support library";
* runtime checks (``check_access`` for one instruction,
  ``check_region`` for one memory operation) — the guards the
  instrumented program calls;
* :class:`CheckStats` event counters the cost model converts into
  simulated cycles, so overhead ratios can be derived deterministically.

Concrete tools: :mod:`repro.sanitizers.native`, ``asan``, ``asanmm``,
``giantsan``, ``lfp``, and the ``hwasan`` extension.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional

from ..errors import AccessType, ErrorKind, ErrorLog, ErrorReport
from ..memory import (
    AddressSpace,
    Allocation,
    ArenaLayout,
    DEFAULT_REDZONE,
    GlobalAllocator,
    GlobalVariable,
    HeapAllocator,
    Quarantine,
    StackAllocator,
    StackFrame,
    exact_size_policy,
)
from ..memory.layout import DEFAULT_QUARANTINE_BYTES
from ..shadow import make_shadow


@dataclass
class CheckStats:
    """Event counters a run accumulates; input to the cost model."""

    #: Shadow bytes read on check paths (the metadata-loading cost the
    #: paper attributes ~80% of ASan's overhead to).
    shadow_loads: int = 0
    #: Shadow bytes written while poisoning/unpoisoning.
    shadow_stores: int = 0
    #: Runtime check instances executed, of any kind.
    checks_executed: int = 0
    #: Instruction-level checks (one <=8-byte access each).
    instruction_checks: int = 0
    #: Operation-level region checks (CI(L, R) style).
    region_checks: int = 0
    #: Region checks satisfied by the fast path alone.
    fast_checks: int = 0
    #: Region checks that needed the slow path too.
    slow_checks: int = 0
    #: Checks answered from a quasi-bound cache without metadata loads.
    cached_hits: int = 0
    #: Cache misses that reloaded metadata and updated the quasi-bound.
    cache_updates: int = 0
    #: Segments visited by linear region scans (ASan's guardian loop).
    segments_scanned: int = 0
    #: Extra per-operation instructions (LFP's stack simulation, etc.).
    extra_instructions: int = 0
    #: malloc / free counts.
    allocations: int = 0
    frees: int = 0
    #: Error reports raised.
    reports: int = 0

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def merged(self, other: "CheckStats") -> "CheckStats":
        result = CheckStats()
        for f in fields(self):
            setattr(result, f.name, getattr(self, f.name) + getattr(other, f.name))
        return result


@dataclass
class FoldResult:
    """Outcome of folding a loop's checks without running them.

    ``stat_deltas`` maps :class:`CheckStats` field names to the exact
    amount the per-iteration execution would have added; ``fast_only``
    and ``full_check`` are the Figure 10 classifications the interpreter
    would have recorded at the check sites.
    """

    stat_deltas: Dict[str, float] = field(default_factory=dict)
    fast_only: int = 0
    full_check: int = 0

    def merge(self, other: "FoldResult") -> None:
        for name, delta in other.stat_deltas.items():
            self.stat_deltas[name] = self.stat_deltas.get(name, 0) + delta
        self.fast_only += other.fast_only
        self.full_check += other.full_check

    def apply(self, stats: CheckStats) -> None:
        for name, delta in self.stat_deltas.items():
            setattr(stats, name, getattr(stats, name) + delta)


@dataclass(frozen=True)
class Capabilities:
    """What the tool's instrumentation pipeline may rely on.

    The instrumenter consults these to decide which passes to run, which
    is how one IR program gets the per-tool check placement the paper's
    Table 1 / Figure 10 compare.
    """

    #: O(1) region checks of arbitrary size (GiantSan's CI).
    constant_time_region: bool = False
    #: Quasi-bound history caching (GiantSan §4.3).
    history_caching: bool = False
    #: Anchor-based enhancement: checks span [anchor, access_end).
    anchor_checks: bool = False
    #: Static check merging/elimination (ASan-- and GiantSan).
    check_elimination: bool = False
    #: Detects temporal errors (quarantine-backed).
    temporal: bool = True


class Sanitizer:
    """Base class: owns simulated process state and default hooks.

    Subclasses override the check methods and the shadow-poisoning hooks.
    The base class implements allocation plumbing (allocator + quarantine
    wiring) so every tool shares identical heap behaviour; only metadata
    handling differs.
    """

    name = "base"
    capabilities = Capabilities()

    def __init__(
        self,
        layout: Optional[ArenaLayout] = None,
        redzone: int = DEFAULT_REDZONE,
        quarantine_bytes: int = DEFAULT_QUARANTINE_BYTES,
        halt_on_error: bool = False,
        size_policy=exact_size_policy,
        shadow_backend: Optional[str] = None,
    ):
        self.layout = layout or ArenaLayout()
        self.space = AddressSpace(self.layout)
        # shadow plane backend: "bytearray" (reference) or "numpy"
        # (vectorized); None honours the REPRO_SHADOW process default.
        # Byte-identical observables either way.
        self.shadow = make_shadow(self.layout.total_size, shadow_backend)
        # bounds used on every single check: cached as plain attributes
        # so hot paths skip the layout attribute chain
        self._total_size = self.layout.total_size
        self._heap_base = self.layout.heap_base
        self._heap_end = self.layout.heap_end
        self.redzone = redzone
        self.allocator = HeapAllocator(
            self.space, redzone=redzone, size_policy=size_policy
        )
        self.stack = StackAllocator(self.space, redzone=max(redzone, 8))
        self.globals = GlobalAllocator(self.space, redzone=max(redzone, 8))
        self.quarantine = Quarantine(quarantine_bytes, self._evict_chunk)
        self.log = ErrorLog(halt_on_error=halt_on_error)
        self.stats = CheckStats()
        #: Telemetry registry (:class:`repro.telemetry.Telemetry`) when a
        #: session enabled it; None keeps every check path untelemetered.
        #: Check-path call sites gate on ``is not None`` so a disabled
        #: run pays one attribute test at most.
        self.telemetry = None
        self._poison_null_page()

    # ------------------------------------------------------------------
    # shadow maintenance hooks (overridden per encoding)
    # ------------------------------------------------------------------
    def _poison_null_page(self) -> None:
        """Poison the null guard page; no-op for tools without shadow."""

    def _poison_alloc(self, allocation: Allocation) -> None:
        """Set shadow for a fresh allocation."""

    def _poison_free(self, allocation: Allocation) -> None:
        """Set shadow for a freed (quarantined) allocation."""

    def _unpoison_chunk(self, allocation: Allocation) -> None:
        """Clear shadow when a chunk leaves quarantine."""

    def _poison_stack_frame(self, frame: StackFrame) -> None:
        """Set shadow for a pushed stack frame."""

    def _poison_stack_pop(self, frame: StackFrame) -> None:
        """Poison a popped frame's extent (use-after-return)."""

    # ------------------------------------------------------------------
    # allocation API used by programs
    # ------------------------------------------------------------------
    def malloc(self, size: int) -> Allocation:
        """Allocate and poison; the program receives ``allocation.base``."""
        allocation = self.allocator.malloc(size)
        self.stats.allocations += 1
        self._poison_alloc(allocation)
        return allocation

    def free(self, address: int) -> None:
        """Free with double/invalid-free diagnosis and quarantine entry."""
        allocation = self.allocator.lookup(address)
        if allocation is None:
            kind = (
                ErrorKind.DOUBLE_FREE
                if self._was_freed(address)
                else ErrorKind.INVALID_FREE
            )
            self._report(kind, address, 0, AccessType.FREE)
            return
        self.allocator.free(address)
        self.stats.frees += 1
        self._poison_free(allocation)
        self.quarantine.push(allocation)

    def _was_freed(self, address: int) -> bool:
        for allocation in self.quarantine._queue:
            if allocation.base == address:
                return True
        return False

    def _evict_chunk(self, allocation: Allocation) -> None:
        self._unpoison_chunk(allocation)
        self.allocator.release_chunk(allocation)

    def define_global(self, name: str, size: int) -> GlobalVariable:
        """Define an immortal global buffer (ASan-style global redzones)."""
        variable = self.globals.define(name, size)
        self._poison_global(variable)
        return variable

    def _poison_global(self, variable: GlobalVariable) -> None:
        """Set shadow for a global definition."""

    def push_frame(self, sizes: List[int], names: Optional[List[str]] = None):
        frame = self.stack.push_frame(sizes, names)
        self._poison_stack_frame(frame)
        return frame

    def pop_frame(self) -> StackFrame:
        frame = self.stack.pop_frame()
        self._poison_stack_pop(frame)
        return frame

    def resolve_address(self, pointer: int) -> int:
        """Map a pointer value to the raw address the hardware would
        access.  Identity for every tool except tag-based ones (HWASan
        strips the top-byte tag, like TBI hardware)."""
        return pointer

    # ------------------------------------------------------------------
    # runtime checks (overridden per tool)
    # ------------------------------------------------------------------
    def check_access(self, address: int, width: int, access: AccessType) -> bool:
        """Guard one <=8-byte access; True when safe."""
        return True

    def check_region(
        self,
        start: int,
        end: int,
        access: AccessType,
        anchor: Optional[int] = None,
    ) -> bool:
        """Guard the memory operation touching ``[start, end)``.

        ``anchor`` is the object base for anchor-based enhancement;
        tools that ignore anchors check only ``[start, end)``.
        """
        return True

    # ------------------------------------------------------------------
    # bulk-check folding (superblock fast path)
    # ------------------------------------------------------------------
    # The fast path (:mod:`repro.runtime.fastpath`) executes an eligible
    # loop as one superblock.  Before doing so it asks the sanitizer to
    # *fold* the loop's per-iteration checks: decide, without mutating
    # any state, whether every iteration's check passes, and if so return
    # the exact stat deltas the per-iteration execution would have
    # accumulated.  Returning ``None`` means "cannot fold" (ineligible
    # shape, or at least one check would fail/report) and the interpreter
    # falls back to per-iteration execution — so error paths always run
    # through the reference implementation.

    def fold_access_checks(
        self,
        count: int,
        address: int,
        stride: int,
        width: int,
        access: AccessType,
    ) -> Optional["FoldResult"]:
        """Fold ``count`` instruction checks at ``address + i * stride``."""
        return None

    def fold_region_checks(
        self,
        count: int,
        base: int,
        start: int,
        start_stride: int,
        end: int,
        end_stride: int,
        access: AccessType,
        use_anchor: bool,
    ) -> Optional["FoldResult"]:
        """Fold ``count`` region checks of ``[start + i*s, end + i*e)``."""
        return None

    def make_cache(self) -> "AccessCache":
        """A per-pointer history cache; no-op unless the tool supports it."""
        return AccessCache()

    def check_cached(
        self,
        cache: "AccessCache",
        base: int,
        offset: int,
        width: int,
        access: AccessType,
    ) -> bool:
        """Guard ``[base+offset, base+offset+width)`` with history caching.

        Default: no cache, delegate to an ordinary region/access check.
        """
        return self.check_region(base + offset, base + offset + width, access)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def _report(
        self,
        kind: ErrorKind,
        address: int,
        size: int,
        access: AccessType,
        shadow_value: Optional[int] = None,
        detail: str = "",
    ) -> None:
        self.stats.reports += 1
        self.log.report(
            ErrorReport(
                kind=kind,
                address=address,
                size=size,
                access=access,
                shadow_value=shadow_value,
                detail=detail,
            )
        )

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    def memory_overhead(self) -> Dict[str, int]:
        """Metadata and padding bytes this tool holds right now.

        * ``shadow_bytes`` — the dedicated metadata store (ASan-family:
          1/8 of the address space; tag-based tools report their tag
          table; LFP/Native report 0);
        * ``redzone_bytes`` — padding around live objects;
        * ``slack_bytes`` — size-class rounding slack inside live objects
          (LFP/BBC's overhead, and their false-negative surface);
        * ``quarantine_bytes`` — freed memory held back from reuse.
        """
        redzone = 0
        slack = 0
        for allocation in self.allocator.live_allocations:
            redzone += allocation.left_redzone + allocation.right_redzone
            slack += allocation.usable_size - allocation.requested_size
        return {
            "shadow_bytes": self._metadata_bytes(),
            "redzone_bytes": redzone,
            "slack_bytes": slack,
            "quarantine_bytes": self.quarantine.held_bytes,
        }

    def _metadata_bytes(self) -> int:
        """Size of the dedicated metadata store (0 when the tool keeps
        none; overridden by tag-based tools)."""
        return len(self.shadow) if self._uses_shadow() else 0

    def _uses_shadow(self) -> bool:
        # a tool "uses" shadow iff it overrides the poisoning hooks
        return type(self)._poison_alloc is not Sanitizer._poison_alloc

    @property
    def error_count(self) -> int:
        return len(self.log)

    def reset_stats(self) -> None:
        self.stats.reset()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} errors={self.error_count}>"


class AccessCache:
    """Per-pointer quasi-bound state (paper §4.3, Figure 9).

    ``ub`` is the cached upper bound, in bytes relative to the anchor:
    offsets with ``offset + width <= ub`` were proven addressable by the
    folded segment loaded at the last cache miss.  Tools without caching
    leave it permanently at 0 so every lookup misses.

    ``lb`` is the optional quasi-*lower*-bound (the §5.4 mitigation for
    reverse traversals, off by default): a non-positive byte offset such
    that ``[anchor+lb, anchor)`` is known addressable.
    """

    __slots__ = ("ub", "lb")

    def __init__(self) -> None:
        self.ub = 0
        self.lb = 0

    def covers(self, end_offset: int) -> bool:
        return end_offset <= self.ub

    def covers_below(self, offset: int) -> bool:
        return offset >= self.lb

    def reset(self) -> None:
        self.ub = 0
        self.lb = 0
