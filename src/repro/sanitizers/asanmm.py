"""ASan-- (Zhang et al., USENIX Security 2022): debloated ASan.

ASan-- keeps ASan's runtime checks byte-for-byte but removes checks the
compiler can prove redundant — must-aliased duplicates, checks dominated
by an identical check, and loop-invariant checks it can hoist.  In this
reproduction the runtime is therefore shared with :class:`ASan`; the
difference lives in the instrumentation pipeline, which consults
``capabilities.check_elimination`` (see
:mod:`repro.passes.check_merging`).

ASan-- does *not* get constant-time region checks or history caching —
that distinction is the paper's ablation argument (Table 2: ASan-- lands
close to GiantSan-EliminationOnly, and both trail full GiantSan).
"""

from __future__ import annotations

from .asan import ASan
from .base import Capabilities


class ASanMinusMinus(ASan):
    """ASan runtime + static check elimination at instrumentation time."""

    name = "ASan--"
    capabilities = Capabilities(
        constant_time_region=False,
        history_caching=False,
        anchor_checks=False,
        check_elimination=True,
        temporal=True,
    )
