"""Low-overhead runtime counter registry (the observability tentpole).

The paper's performance story is told in *events* — fast vs. slow
region checks (§4.2, Table 1), quasi-bound cache hits and the
``ceil(log2(n/8))`` convergence claim (§4.3), shadow bytes touched,
redzone bytes poisoned, quarantine occupancy — and this module makes
every one of them observable at runtime without perturbing the numbers
it measures:

* **Zero cost when disabled.**  A session without telemetry attaches
  nothing: no wrappers are installed, the interpreter's only added work
  is one attribute test per *loop execution* (not per iteration), and
  the sanitizer check paths are untouched — they keep feeding
  :class:`~repro.sanitizers.base.CheckStats` exactly as before.
* **Stats mirroring, not double counting.**  Counters the sanitizer
  already maintains (``fast_checks``, ``slow_checks``,
  ``shadow_loads`` …) are *mirrored into the snapshot* at collection
  time rather than incremented a second time on the hot path.
* **Probes for everything else.**  Quantities no CheckStats field
  covers — redzone bytes poisoned, per-site quasi-bound convergence
  steps, superblock entry/decline counts, phase timings — come from
  attach-style probes and explicitly gated call sites in the
  interpreter and fast path.

Enable per session with ``Session(tool, telemetry=True)`` or process
wide with ``REPRO_TELEMETRY=1``; read the result from
``RunResult.telemetry`` (a :class:`TelemetrySnapshot`), the
``repro profile`` CLI, or :func:`repro.analysis.export.telemetry_to_rows`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from .profiler import PhaseProfiler, PhaseStat


def telemetry_enabled_default() -> bool:
    """Process-wide default for telemetry (off unless REPRO_TELEMETRY)."""
    return os.environ.get("REPRO_TELEMETRY", "0").lower() in (
        "1",
        "true",
        "on",
    )


#: CheckStats fields mirrored into every snapshot, renamed to the
#: telemetry vocabulary the paper's sections use.
_STATS_MIRROR = {
    "checks_executed": "checks_executed",
    "instruction_checks": "instruction_checks",
    "region_checks": "region_checks",
    "fast_checks": "fast_check_hits",
    "slow_checks": "slow_path_entries",
    "shadow_loads": "shadow_bytes_loaded",
    "shadow_stores": "shadow_bytes_stored",
    "cached_hits": "quasi_bound_hits",
    "cache_updates": "quasi_bound_updates",
    "segments_scanned": "segments_scanned",
    "allocations": "allocations",
    "frees": "frees",
    "reports": "reports",
}


@dataclass
class TelemetrySnapshot:
    """One collection of every counter a telemetry-enabled run produced.

    ``counters`` holds both the mirrored CheckStats events and the
    probe-only counters; ``convergence_per_site`` maps a history-cache
    site id to the number of quasi-bound *updates* (cache misses that
    extended the bound) it took — the paper claims at most
    ``ceil(log2(n/8))`` per object for forward walks.  Plain dicts
    throughout so snapshots pickle cleanly across worker processes.
    """

    tool: str
    counters: Dict[str, int] = field(default_factory=dict)
    convergence_per_site: Dict[int, int] = field(default_factory=dict)
    superblock_declines: Dict[str, int] = field(default_factory=dict)
    quarantine_peak_bytes: int = 0
    phases: Dict[str, Dict[str, float]] = field(default_factory=dict)

    # -- derived views -------------------------------------------------
    @property
    def fast_slow_split(self) -> tuple:
        """(fast-check hits, slow-path entries) — the §4.2 split."""
        return (
            self.counters.get("fast_check_hits", 0),
            self.counters.get("slow_path_entries", 0),
        )

    @property
    def fast_fraction(self) -> float:
        """Fast-only share of the region checks that took either path."""
        fast, slow = self.fast_slow_split
        total = fast + slow
        return fast / total if total else 0.0

    @property
    def convergence_max_steps(self) -> int:
        return max(self.convergence_per_site.values(), default=0)

    @property
    def convergence_total_steps(self) -> int:
        return sum(self.convergence_per_site.values())

    def as_dict(self) -> dict:
        """Structured JSON-ready form (the export schema)."""
        return {
            "tool": self.tool,
            "counters": dict(self.counters),
            "quasi_bound_convergence": {
                "sites": len(self.convergence_per_site),
                "max_steps": self.convergence_max_steps,
                "total_steps": self.convergence_total_steps,
                "per_site": {
                    str(site): steps
                    for site, steps in sorted(
                        self.convergence_per_site.items()
                    )
                },
            },
            "superblock_declines": dict(self.superblock_declines),
            "quarantine_peak_bytes": self.quarantine_peak_bytes,
            "phases": {
                name: dict(stat) for name, stat in self.phases.items()
            },
        }


def merge_snapshots(
    snapshots: Iterable[TelemetrySnapshot],
) -> TelemetrySnapshot:
    """Combine same-tool snapshots into one additive snapshot.

    This is the *only* sanctioned way to aggregate telemetry across
    Sessions: registries stay scoped to one Session each, and callers
    (the server's process aggregate, sweep roll-ups) merge the immutable
    snapshots afterwards.  Counters, per-site convergence steps,
    superblock declines, and phase events/samples/seconds add;
    ``quarantine_peak_bytes`` takes the max (peaks of disjoint runs do
    not sum).  Merging snapshots from different tools raises — that is
    exactly the cross-contamination this API exists to prevent.
    """
    snapshots = list(snapshots)
    if not snapshots:
        raise ValueError("merge_snapshots needs at least one snapshot")
    tools = {snapshot.tool for snapshot in snapshots}
    if len(tools) > 1:
        raise ValueError(
            f"refusing to merge snapshots from different tools: "
            f"{sorted(tools)}"
        )

    counters: Dict[str, int] = {}
    convergence: Dict[int, int] = {}
    declines: Dict[str, int] = {}
    phases: Dict[str, PhaseStat] = {}
    quarantine_peak = 0
    for snapshot in snapshots:
        for name, value in snapshot.counters.items():
            counters[name] = counters.get(name, 0) + value
        for site, steps in snapshot.convergence_per_site.items():
            convergence[site] = convergence.get(site, 0) + steps
        for reason, count in snapshot.superblock_declines.items():
            declines[reason] = declines.get(reason, 0) + count
        for name, stat in snapshot.phases.items():
            merged = phases.setdefault(name, PhaseStat())
            merged.events += int(stat.get("events", 0))
            merged.samples += int(stat.get("samples", 0))
            merged.sampled_seconds += float(stat.get("sampled_seconds", 0.0))
        quarantine_peak = max(quarantine_peak, snapshot.quarantine_peak_bytes)
    return TelemetrySnapshot(
        tool=snapshots[0].tool,
        counters=counters,
        convergence_per_site=convergence,
        superblock_declines=declines,
        quarantine_peak_bytes=quarantine_peak,
        phases={name: stat.as_dict() for name, stat in phases.items()},
    )


class Telemetry:
    """Counter registry + probes for one sanitizer's lifetime.

    Create one per :class:`~repro.runtime.session.Session` (the session
    does this when ``telemetry`` resolves to on) and :meth:`attach` it
    to the sanitizer; the interpreter and fast path receive the same
    object and feed the probe counters.  Counters accumulate across
    runs exactly like ``CheckStats`` does.
    """

    def __init__(self, sample_interval: int = 8):
        self.counters: Dict[str, int] = {}
        self.convergence: Dict[int, int] = {}
        self.declines: Dict[str, int] = {}
        self.profiler = PhaseProfiler(sample_interval=sample_interval)
        self._sanitizer = None

    # -- hot-path probes (every call site is gated on `is not None`) ---
    def incr(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def note_convergence(self, site_id: int) -> None:
        """One quasi-bound update at history-cache site ``site_id``."""
        self.convergence[site_id] = self.convergence.get(site_id, 0) + 1

    def note_superblock_decline(self, reason: str) -> None:
        self.declines[reason] = self.declines.get(reason, 0) + 1

    # -- explicit aggregation ------------------------------------------
    def merge(self, other: "Telemetry") -> "Telemetry":
        """Fold another registry's *probe* counters into this one.

        Registries are scoped to one Session each; merging is the
        explicit opt-in for roll-ups (never implicit sharing).  Only the
        probe side merges — CheckStats mirrors belong to each
        sanitizer's own snapshot, so merging attached registries' raw
        counters directly would double-count.  Use
        :func:`merge_snapshots` to combine *collected* snapshots.
        """
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for site, steps in other.convergence.items():
            self.convergence[site] = self.convergence.get(site, 0) + steps
        for reason, count in other.declines.items():
            self.declines[reason] = self.declines.get(reason, 0) + count
        for name, stat in other.profiler.phases.items():
            merged = self.profiler.phases.setdefault(name, PhaseStat())
            merged.events += stat.events
            merged.samples += stat.samples
            merged.sampled_seconds += stat.sampled_seconds
        return self

    # -- attachment ----------------------------------------------------
    def attach(self, sanitizer) -> "Telemetry":
        """Install the allocation probes on ``sanitizer``.

        Idempotent for the same sanitizer; attaching one registry to two
        different sanitizers is a bug (their counters would blur) and
        raises.
        """
        if self._sanitizer is sanitizer:
            return self
        if self._sanitizer is not None:
            raise ValueError(
                "telemetry registry is already attached to another sanitizer"
            )
        self._sanitizer = sanitizer
        sanitizer.telemetry = self

        original_malloc = sanitizer.malloc
        original_define_global = sanitizer.define_global

        def telemetry_malloc(size):
            allocation = original_malloc(size)
            self.incr(
                "redzone_bytes_poisoned",
                allocation.left_redzone + allocation.right_redzone,
            )
            return allocation

        def telemetry_define_global(name, size):
            variable = original_define_global(name, size)
            self.incr("global_definitions")
            return variable

        sanitizer.malloc = telemetry_malloc
        sanitizer.define_global = telemetry_define_global
        return self

    # -- collection ----------------------------------------------------
    def snapshot(self, sanitizer=None) -> TelemetrySnapshot:
        """Merge probe counters with the sanitizer's CheckStats mirror."""
        sanitizer = sanitizer or self._sanitizer
        counters = dict(self.counters)
        counters.setdefault("redzone_bytes_poisoned", 0)
        quarantine_peak = 0
        tool = "?"
        if sanitizer is not None:
            tool = sanitizer.name
            stats = sanitizer.stats.as_dict()
            for stats_name, telemetry_name in _STATS_MIRROR.items():
                counters[telemetry_name] = stats[stats_name]
            quarantine_peak = sanitizer.quarantine.peak_held_bytes
        return TelemetrySnapshot(
            tool=tool,
            counters=counters,
            convergence_per_site=dict(self.convergence),
            superblock_declines=dict(self.declines),
            quarantine_peak_bytes=quarantine_peak,
            phases=self.profiler.summary(),
        )
