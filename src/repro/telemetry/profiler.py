"""Sampling phase profiler for the interpreter/fastpath hot loops.

Timing every loop execution with ``perf_counter`` would itself slow the
interpreter (the classic observer effect), so the profiler *samples*:
every phase counts all of its events, but only every Nth event is
actually timed.  The per-phase estimate scales the sampled seconds by
``events / samples``, which is accurate as long as event durations do
not correlate with the sampling stride — loop executions in the sweeps
are homogeneous enough that the default stride of 8 stays within a few
percent of exhaustive timing.

Usage::

    profiler = PhaseProfiler(sample_interval=8)
    started = profiler.begin("superblock")   # None when unsampled
    ... hot work ...
    profiler.end("superblock", started)
    profiler.summary()  # {phase: {events, samples, sampled/estimated s}}
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional


@dataclass
class PhaseStat:
    """Event and sampled-time accounting for one profiler phase."""

    events: int = 0
    samples: int = 0
    sampled_seconds: float = 0.0

    @property
    def estimated_seconds(self) -> float:
        """Sampled time scaled up to the full event population."""
        if not self.samples:
            return 0.0
        return self.sampled_seconds * (self.events / self.samples)

    def as_dict(self) -> Dict[str, float]:
        return {
            "events": self.events,
            "samples": self.samples,
            "sampled_seconds": round(self.sampled_seconds, 6),
            "estimated_seconds": round(self.estimated_seconds, 6),
        }


class PhaseProfiler:
    """Per-phase sampling wall-clock profiler.

    ``sample_interval`` of 1 times every event (exhaustive mode, used by
    the unit tests); the first event of each phase is always sampled so
    single-shot phases still get a measurement.  ``clock`` is injectable
    for deterministic tests.
    """

    def __init__(
        self,
        sample_interval: int = 8,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self.sample_interval = max(int(sample_interval), 1)
        self.clock = clock
        self.phases: Dict[str, PhaseStat] = {}

    def begin(self, phase: str) -> Optional[float]:
        """Count one event; returns a start timestamp when sampled."""
        stat = self.phases.get(phase)
        if stat is None:
            stat = self.phases[phase] = PhaseStat()
        stat.events += 1
        if (stat.events - 1) % self.sample_interval:
            return None
        return self.clock()

    def end(self, phase: str, started: Optional[float]) -> None:
        """Close a :meth:`begin`; no-op when the event was unsampled."""
        if started is None:
            return
        stat = self.phases[phase]
        stat.samples += 1
        stat.sampled_seconds += self.clock() - started

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-phase accounting, JSON-ready."""
        return {name: stat.as_dict() for name, stat in self.phases.items()}
