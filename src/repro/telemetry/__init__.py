"""Runtime telemetry: counters, quasi-bound convergence, phase profiler.

See :mod:`repro.telemetry.registry` for the design and
``docs/OBSERVABILITY.md`` for the user-facing guide.
"""

from .profiler import PhaseProfiler, PhaseStat
from .registry import (
    Telemetry,
    TelemetrySnapshot,
    merge_snapshots,
    telemetry_enabled_default,
)

__all__ = [
    "PhaseProfiler",
    "PhaseStat",
    "Telemetry",
    "TelemetrySnapshot",
    "merge_snapshots",
    "telemetry_enabled_default",
]
