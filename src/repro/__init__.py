"""GiantSan reproduction: memory sanitization with segment folding.

Reproduces *GiantSan: Efficient Memory Sanitization with Segment Folding*
(Ling et al., ASPLOS 2024) as a pure-Python system: a simulated process
memory, the folded shadow encoding, the O(1) region check, history
caching, the operation-level instrumentation pipeline, the baselines
(ASan, ASan--, LFP), and the full evaluation harness.

Quickstart::

    from repro import Session, ProgramBuilder, V

    b = ProgramBuilder()
    with b.function("main") as f:
        f.malloc("buf", 100)
        with f.loop("i", 0, 25) as i:
            f.store("buf", i * 4, 4, i)
        f.load("oops", "buf", 100, 4)        # heap overflow
        f.free("buf")
    result = Session("GiantSan").run(b.build())
    print(result.errors.reports)
"""

from .errors import (
    AccessType,
    ErrorKind,
    ErrorLog,
    ErrorReport,
    SanitizerError,
)
from .ir import C, ProgramBuilder, Program, V, format_program
from .memory import ArenaLayout
from .passes import instrument, InstrumentedProgram
from .runtime import (
    CostModel,
    DEFAULT_COST_MODEL,
    RunResult,
    Session,
    geometric_mean,
    run_with_tools,
)
from .sanitizers import (
    ASan,
    ASanMinusMinus,
    GiantSan,
    LFP,
    NativeSanitizer,
    SANITIZER_FACTORIES,
)
from .reporting import format_all_reports, format_report
from .trace import Tracer

__version__ = "1.0.0"

__all__ = [
    "AccessType",
    "ArenaLayout",
    "ASan",
    "ASanMinusMinus",
    "C",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "ErrorKind",
    "ErrorLog",
    "ErrorReport",
    "GiantSan",
    "InstrumentedProgram",
    "LFP",
    "NativeSanitizer",
    "Program",
    "ProgramBuilder",
    "RunResult",
    "SANITIZER_FACTORIES",
    "SanitizerError",
    "Session",
    "Tracer",
    "V",
    "format_all_reports",
    "format_report",
    "format_program",
    "geometric_mean",
    "instrument",
    "run_with_tools",
]
