"""Wall-clock benchmark: Table 2 sweep across execution engines.

Times the full Table 2 sweep four ways and writes the committed
``BENCH_interpreter.json`` at the repository root:

* ``baseline`` — tree walker, fast path off, instrumentation cache off,
  one process (the seed interpreter's configuration);
* ``fastpath`` — tree walker with superblock fast path +
  instrumentation memo cache on, one process;
* ``compiled`` — the compile-to-closures engine
  (:mod:`repro.runtime.compiler`) with the same accelerations, one
  process;
* ``parallel`` — the compiled engine plus ``--jobs max(default_jobs(), 2)``
  fabric workers (``default_jobs`` honours the CPU affinity mask, so
  containerized runs don't oversubscribe), floored at two so the
  persistent-fabric path is genuinely exercised even on one-core boxes.
  Unlike the single-process cells — whose instrumentation caches are
  cleared before every repeat — fabric workers stay warm across
  repeats: persistence across sweeps is precisely the behaviour this
  cell measures (it is what any long ``repro`` invocation or service
  deployment sees).

``--assert-parallel-speedup MIN`` exits non-zero when
``compiled_seconds / parallel_seconds`` falls below ``MIN`` — the CI
gate that the warm fabric is not slower than the single-process
compiled engine.

Each configuration is then repeated with ``REPRO_SHADOW=numpy`` (cells
keyed ``<name>+numpy-shadow``), producing the full 4-configuration x
2-shadow-backend matrix.  The geomean identity check spans *all* cells:
neither the engine nor the shadow plane is allowed to change a single
Table 2 number.

Each run is also appended to ``benchmarks/results/bench_history.jsonl``
with a timestamp and git revision, giving a cross-PR wall-clock
trajectory alongside the committed snapshot.

Run directly::

    PYTHONPATH=src python benchmarks/bench_wallclock.py

``REPRO_BENCH_SCALE`` scales the proxies as for the other benchmarks
(the committed numbers use the full per-program scales).  Each
configuration is timed ``REPRO_BENCH_REPEAT`` times (default 2) and the
best run is recorded: single-shot sweeps on a busy box showed ~15%
run-to-run swing, enough to drown the engine comparison in noise.
"""

import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))
sys.path.insert(0, str(pathlib.Path(__file__).parent))

from conftest import bench_scale  # noqa: E402

REPO_ROOT = pathlib.Path(__file__).parent.parent
OUTPUT = REPO_ROOT / "BENCH_interpreter.json"


def _repeat_count() -> int:
    import os

    return max(int(os.environ.get("REPRO_BENCH_REPEAT", "2")), 1)


def _sweep(jobs: int, scale) -> dict:
    """Best-of-N timed Table 2 sweeps; fastpath/memoize/engine come from
    the REPRO_* environment variables the caller pinned (workers inherit
    them through the fabric key).  Single-process repeats start from
    cold instrumentation caches; fabric workers persist across repeats
    by design (warm caches across sweeps are the feature under test),
    so the parallel cell's best-of-N reports the warm-fabric sweep."""
    from repro.analysis import PERFORMANCE_TOOLS, run_overhead_study
    from repro.passes.instrument import clear_instrumentation_cache

    timings = []
    for _ in range(_repeat_count()):
        clear_instrumentation_cache()
        started = time.perf_counter()
        study = run_overhead_study(
            tools=list(PERFORMANCE_TOOLS), scale=scale, jobs=jobs
        )
        timings.append(time.perf_counter() - started)
    elapsed = min(timings)
    return {
        "seconds": round(elapsed, 3),
        "all_runs": [round(t, 3) for t in timings],
        "jobs": jobs,
        # the fabric spawns exactly `jobs` persistent workers (idle ones
        # cost nothing), so the request is also the effective count
        "workers": jobs if jobs > 1 else 1,
        "programs": len(study.rows),
        "tools": len(study.tools) + 1,  # + the Native baseline runs
        "geomeans": {
            tool: round(mean, 6)
            for tool, mean in study.geometric_means().items()
        },
    }


def main(argv=None) -> int:
    import argparse
    import os

    from repro.analysis.parallel import default_jobs

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--assert-parallel-speedup",
        type=float,
        default=None,
        metavar="MIN",
        help="exit non-zero unless compiled_s / parallel_s >= MIN "
        "(CI gate: the warm fabric must not trail the single-process "
        "compiled engine)",
    )
    args = parser.parse_args(argv)

    scale = bench_scale()
    configurations = {
        "baseline": dict(
            fastpath=False, memoize=False, engine="tree", jobs=1
        ),
        "fastpath": dict(
            fastpath=True, memoize=True, engine="tree", jobs=1
        ),
        "compiled": dict(
            fastpath=True, memoize=True, engine="compiled", jobs=1
        ),
        # affinity-aware worker count (cgroup quotas respected), floored
        # at two so single-core machines still exercise the fabric
        # instead of collapsing to the inline runner
        "parallel": dict(
            fastpath=True,
            memoize=True,
            engine="compiled",
            jobs=max(default_jobs(), 2),
        ),
    }
    results = {}
    for name, config in configurations.items():
        for shadow in ("bytearray", "numpy"):
            cell = name if shadow == "bytearray" else f"{name}+numpy-shadow"
            os.environ["REPRO_FASTPATH"] = "1" if config["fastpath"] else "0"
            os.environ["REPRO_INSTRUMENT_CACHE"] = (
                "1" if config["memoize"] else "0"
            )
            os.environ["REPRO_ENGINE"] = config["engine"]
            os.environ["REPRO_SHADOW"] = shadow
            results[cell] = _sweep(config["jobs"], scale)
            results[cell]["engine"] = config["engine"]
            results[cell]["shadow"] = shadow
            print(
                f"{cell:22s} engine={config['engine']:<8s} "
                f"jobs={config['jobs']:<2d} "
                f"{results[cell]['seconds']:8.2f}s"
            )
    os.environ.pop("REPRO_FASTPATH", None)
    os.environ.pop("REPRO_INSTRUMENT_CACHE", None)
    os.environ.pop("REPRO_ENGINE", None)
    os.environ.pop("REPRO_SHADOW", None)

    # The geomeans are the correctness check: every configuration must
    # reproduce the same Table 2 numbers.
    reference = results["baseline"]["geomeans"]
    for name, row in results.items():
        if row["geomeans"] != reference:
            raise SystemExit(f"configuration {name!r} changed the results")

    baseline_s = results["baseline"]["seconds"]
    fastpath_s = results["fastpath"]["seconds"]
    compiled_s = results["compiled"]["seconds"]
    parallel_s = results["parallel"]["seconds"]
    payload = {
        "benchmark": "table2-sweep-wallclock",
        "scale": "full" if scale is None else scale,
        "python": sys.version.split()[0],
        "configurations": results,
        "speedup_fastpath_vs_baseline": round(baseline_s / fastpath_s, 2),
        "speedup_compiled_vs_baseline": round(baseline_s / compiled_s, 2),
        "speedup_compiled_vs_fastpath": round(fastpath_s / compiled_s, 2),
        "speedup_parallel_vs_baseline": round(baseline_s / parallel_s, 2),
        "speedup_parallel_vs_fastpath": round(fastpath_s / parallel_s, 2),
        # the fabric headline: warm persistent workers vs the best
        # single-process configuration (>= 1.0 means the fabric wins)
        "speedup_parallel_vs_compiled": round(compiled_s / parallel_s, 2),
        # numpy-shadow cell vs its bytearray twin, per configuration.
        # Full sweeps are dominated by small-region checks (which stay
        # on the scalar path by design), so these hover near 1.0; the
        # scan-bound win lives in the shadow-traffic micro-benchmark.
        "numpy_shadow_speedups": {
            name: round(
                results[name]["seconds"]
                / results[f"{name}+numpy-shadow"]["seconds"],
                2,
            )
            for name in configurations
        },
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    _append_history(payload)
    print(
        f"\nfastpath {baseline_s / fastpath_s:.2f}x  "
        f"compiled {baseline_s / compiled_s:.2f}x "
        f"(vs fastpath {fastpath_s / compiled_s:.2f}x)  "
        f"fabric-vs-compiled {compiled_s / parallel_s:.2f}x"
        f"  -> {OUTPUT.name}"
    )
    if args.assert_parallel_speedup is not None:
        achieved = compiled_s / parallel_s
        if achieved < args.assert_parallel_speedup:
            print(
                f"FABRIC REGRESSION: parallel sweep is only "
                f"{achieved:.2f}x the compiled single-process sweep "
                f"(gate: {args.assert_parallel_speedup:.2f}x)"
            )
            return 1
        print(
            f"fabric gate ok: {achieved:.2f}x >= "
            f"{args.assert_parallel_speedup:.2f}x"
        )
    return 0


def _append_history(payload: dict) -> None:
    """Append this run to the cross-PR trajectory log."""
    import datetime
    import subprocess

    from conftest import RESULTS_DIR

    try:
        revision = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        ).stdout.strip() or None
    except Exception:
        revision = None
    record = {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "revision": revision,
        **payload,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    history = RESULTS_DIR / "bench_history.jsonl"
    with history.open("a") as handle:
        handle.write(json.dumps(record) + "\n")
    print(f"history -> {history.relative_to(REPO_ROOT)}")


if __name__ == "__main__":
    sys.exit(main())
