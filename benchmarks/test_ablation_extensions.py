"""Ablations beyond the paper's (DESIGN.md §6).

* redzone sweep with/without anchor enhancement — quantifies how much
  redzone the anchor saves;
* quarantine budget vs use-after-free detection over churn;
* folding-degree cap — what protection density is lost if the encoding
  reserved fewer bits for the degree.
"""

from conftest import emit

from repro.errors import AccessType
from repro.memory import ArenaLayout
from repro.runtime import Session
from repro.sanitizers import GiantSan
from repro.workloads.magma import MagmaProject, generate_project_cases

LAYOUT = ArenaLayout(heap_size=1 << 20, stack_size=1 << 16, globals_size=1 << 14)


def test_redzone_sweep_with_and_without_anchor(benchmark):
    """Detection rate of mid/far jumps per redzone size and anchor flag."""
    project = MagmaProject("sweep", "-", near=8, mid=8, far=4)
    cases = generate_project_cases(project)

    def sweep():
        rows = []
        for redzone in (1, 16, 64, 512):
            for anchor in (False, True):
                detected = 0
                for case in cases:
                    san = GiantSan(redzone=redzone, enable_anchor=anchor)
                    result = Session(san).run(case.build())
                    if result.errors:
                        detected += 1
                rows.append((redzone, anchor, detected, len(cases)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Ablation: redzone size vs anchor-based enhancement",
             f"{'redzone':>8s} {'anchor':>7s} {'detected':>9s} {'total':>6s}"]
    for redzone, anchor, detected, total in rows:
        lines.append(f"{redzone:>8d} {str(anchor):>7s} {detected:>9d} {total:>6d}")
    emit("ablation_redzone_anchor", "\n".join(lines))

    by_key = {(rz, a): d for rz, a, d, _ in rows}
    # with anchors, even a 1-byte redzone catches everything
    assert by_key[(1, True)] == len(cases)
    # without anchors, small redzones are bypassed by far jumps
    assert by_key[(16, False)] < len(cases)
    # anchor never hurts
    for rz in (1, 16, 64, 512):
        assert by_key[(rz, True)] >= by_key[(rz, False)]


def test_hwasan_extension_comparison(benchmark):
    """Extension: memory tagging (HWASAN, §6) vs segment folding.

    Tagging removes redzones and catches adjacent overflows by tag
    mismatch, but keeps one metadata load per 16-byte granule — the low
    protection density GiantSan removes.  Measured on three proxies plus
    a detection-granularity probe.
    """
    from repro import ProgramBuilder, Session
    from repro.workloads.spec import SPEC_BY_NAME

    def sweep():
        rows = []
        for name in ("505.mcf_r", "519.lbm_r", "523.xalancbmk_r"):
            spec = SPEC_BY_NAME[name]
            program = spec.build()
            native = Session("Native").run(program, args=[2]).total_cycles()
            per_tool = {}
            for tool in ("GiantSan", "HWASan", "ASan"):
                total = Session(tool).run(program, args=[2]).total_cycles()
                per_tool[tool] = total / native
            rows.append((name, per_tool))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Extension: HWASAN-style tagging vs segment folding",
             f"{'program':18s} {'GiantSan':>9s} {'HWASan':>9s} {'ASan':>9s}"]
    for name, per_tool in rows:
        lines.append(
            f"{name:18s} {per_tool['GiantSan']*100:>8.1f}% "
            f"{per_tool['HWASan']*100:>8.1f}% {per_tool['ASan']*100:>8.1f}%"
        )

    # detection granularity: a 6-byte overflow within the last granule
    b = ProgramBuilder()
    with b.function("main") as f:
        f.malloc("p", 100)
        f.store("p", 105, 1, 1)
        f.free("p")
    slack_program = b.build()
    giant_catches = bool(Session("GiantSan").run(slack_program).errors)
    hwasan_catches = bool(Session("HWASan").run(slack_program).errors)
    lines.append(
        f"6-byte overflow inside the last granule: GiantSan "
        f"{'caught' if giant_catches else 'missed'}, HWASan "
        f"{'caught' if hwasan_catches else 'missed'}"
    )
    emit("extension_hwasan", "\n".join(lines))

    for name, per_tool in rows:
        assert per_tool["GiantSan"] < per_tool["HWASan"], name
    assert giant_catches and not hwasan_catches


def test_memory_overhead_comparison(benchmark):
    """Extension: metadata + padding memory per tool on one workload.

    The paper's compatibility claim includes keeping ASan's shadow
    budget: GiantSan's encoding fits the same one-byte-per-8 shadow, so
    its memory overhead equals ASan's exactly.  LFP trades shadow for
    per-object slack; HWASAN halves the metadata store.
    """
    from repro import Session
    from repro.workloads.spec import SPEC_BY_NAME

    def measure():
        rows = []
        for tool in ("Native", "GiantSan", "ASan", "LFP", "HWASan"):
            session = Session(tool)
            session.run(SPEC_BY_NAME["520.omnetpp_r"].build(), args=[2])
            # one off-size-class object so LFP's rounding slack shows
            session.sanitizer.malloc(600)
            rows.append((tool, session.sanitizer.memory_overhead()))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["Extension: metadata/padding memory per tool (omnetpp proxy)",
             f"{'tool':10s} {'shadow':>10s} {'redzones':>9s} {'slack':>7s} "
             f"{'quarantine':>11s}"]
    for tool, overhead in rows:
        lines.append(
            f"{tool:10s} {overhead['shadow_bytes']:>10d} "
            f"{overhead['redzone_bytes']:>9d} {overhead['slack_bytes']:>7d} "
            f"{overhead['quarantine_bytes']:>11d}"
        )
    emit("extension_memory_overhead", "\n".join(lines))

    by_tool = dict(rows)
    # GiantSan's shadow budget is exactly ASan's (compatibility claim)
    assert by_tool["GiantSan"]["shadow_bytes"] == by_tool["ASan"]["shadow_bytes"]
    assert by_tool["GiantSan"]["redzone_bytes"] == by_tool["ASan"]["redzone_bytes"]
    # LFP keeps no shadow but pays slack; HWASan halves the store
    assert by_tool["LFP"]["shadow_bytes"] < by_tool["ASan"]["shadow_bytes"] / 100
    assert by_tool["LFP"]["slack_bytes"] > 0
    assert by_tool["HWASan"]["shadow_bytes"] * 2 == by_tool["ASan"]["shadow_bytes"]
    assert by_tool["Native"]["shadow_bytes"] == 0


def test_quarantine_budget_vs_uaf_detection(benchmark):
    """Small quarantines recycle chunks early and miss delayed UAF."""
    from repro import ProgramBuilder

    def delayed_uaf(churn: int):
        # the fillers stay alive: once the victim's chunk is evicted from
        # quarantine, a filler adopts it and the dangling read lands on a
        # *live* object — the quarantine-bypass false negative
        b = ProgramBuilder()
        with b.function("main") as f:
            f.malloc("victim", 64)
            f.free("victim")
            with f.loop("i", 0, churn):
                f.malloc("filler", 64)  # stays live; may adopt the chunk
                f.store("filler", 0, 8, 1)
                f.malloc("flusher", 128)  # freed churn pushes the victim
                f.free("flusher")  # out of the quarantine
            f.load("x", "victim", 0, 8)
        return b.build()

    def sweep():
        rows = []
        for budget in (0, 1 << 10, 1 << 14, 1 << 20):
            detected = 0
            total = 0
            for churn in (0, 4, 16, 64):
                san = GiantSan(layout=LAYOUT, quarantine_bytes=budget)
                result = Session(san).run(delayed_uaf(churn))
                total += 1
                uaf = [r for r in result.errors if "use-after-free" in r.kind.value]
                if uaf:
                    detected += 1
            rows.append((budget, detected, total))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Ablation: quarantine budget vs delayed-UAF detection",
             f"{'budget':>10s} {'detected':>9s} {'total':>6s}"]
    for budget, detected, total in rows:
        lines.append(f"{budget:>10d} {detected:>9d} {total:>6d}")
    emit("ablation_quarantine", "\n".join(lines))
    detections = [d for _, d, _ in rows]
    # a bigger quarantine never detects less, and the largest catches all
    assert detections == sorted(detections)
    assert detections[-1] == rows[-1][2]


def test_folding_degree_cap(benchmark):
    """Largest region CI can safeguard per folding-degree cap.

    A folded segment with degree cap ``c`` vouches for ``8 * 2^c`` bytes;
    Algorithm 1's slow path needs two folded halves, so the largest
    checkable region is ``2^(c+4)`` bytes.  This is why the paper spends
    6 shadow bits on the degree: anything less puts a hard ceiling on
    operation-level protection (larger checks would need a linear
    fallback, i.e. regress to ASan's guardian).
    """
    import repro.shadow.folding as folding

    object_size = 1 << 16

    def sweep():
        rows = []
        original = folding.MAX_DEGREE
        try:
            for cap in (2, 4, 8, 62):
                folding.MAX_DEGREE = cap
                san = GiantSan(layout=LAYOUT)
                allocation = san.malloc(object_size)
                largest = 0
                size = 8
                while size <= object_size:
                    if san.check_region(
                        allocation.base,
                        allocation.base + size,
                        AccessType.READ,
                    ):
                        largest = size
                    size *= 2
                san.log.clear()
                rows.append((cap, largest))
        finally:
            folding.MAX_DEGREE = original
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Ablation: folding degree cap vs largest O(1)-checkable region",
             f"{'cap':>4s} {'largest region (bytes)':>24s}"]
    for cap, largest in rows:
        lines.append(f"{cap:>4d} {largest:>24d}")
    emit("ablation_degree_cap", "\n".join(lines))

    by_cap = dict(rows)
    # ceiling = 2^(cap+4) while it is below the object size
    assert by_cap[2] == 1 << 6
    assert by_cap[4] == 1 << 8
    assert by_cap[8] == 1 << 12
    # the paper's 6-bit degree handles the whole object in O(1)
    assert by_cap[62] == object_size
