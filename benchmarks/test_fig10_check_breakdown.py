"""Figure 10: proportion of memory accesses per protection category.

Runs every SPEC proxy under GiantSan and classifies each dynamic access
as Eliminated / Cached / FastOnly / FullCheck (ASan's per-access checks
are the implicit denominator: every category entry corresponds to one
access ASan would have checked).
"""

from conftest import bench_scale, emit

from repro.analysis import render_figure10, run_figure10_study


def test_fig10_check_breakdown(benchmark):
    breakdowns = benchmark.pedantic(
        run_figure10_study,
        kwargs={"scale": bench_scale()},
        rounds=1,
        iterations=1,
    )
    emit("fig10_check_breakdown", render_figure10(breakdowns))
    by_name = {b.program: b for b in breakdowns}
    # the paper's Figure 10 highlights: mcf, namd, and lbm optimize away
    # more than 80% of ASan's checks
    for name in ("505.mcf_r", "508.namd_r", "519.lbm_r"):
        assert by_name[name].optimized_fraction > 0.8, name
    # every program optimizes something, and the fast check covers the
    # majority of what remains
    for item in breakdowns:
        assert item.optimized_fraction > 0.3, item.program
    mean_fast_share = sum(
        b.fast_only_share_of_unoptimized for b in breakdowns
    ) / len(breakdowns)
    assert mean_fast_share > 0.45
    benchmark.extra_info["mean_optimized_pct"] = round(
        100 * sum(b.optimized_fraction for b in breakdowns) / len(breakdowns),
        2,
    )
