"""Table 5: Magma-style detection vs redzone size.

The php row is the anchor-based-enhancement experiment: GiantSan at
rz=16 detects more cases than ASan/ASan-- even at rz=512, because the
anchored CI spans any jump distance.  All other projects' cases are
near-overflows that every configuration catches equally.
"""

from conftest import emit

from repro.analysis import render_table5, run_magma_study


def test_table5_magma(benchmark):
    results = benchmark.pedantic(run_magma_study, rounds=1, iterations=1)
    emit("table5_magma", render_table5(results))

    php = results.detected["php"]
    # paper ordering: rz16 (1556) < rz512 (1962) < GiantSan rz16 (2019)
    assert php["ASan (rz=16)"] < php["ASan (rz=512)"] < php["GiantSan (rz=16)"]
    assert php["ASan-- (rz=16)"] == php["ASan (rz=16)"]
    assert php["ASan-- (rz=512)"] == php["ASan (rz=512)"]
    # no configuration reaches the total (latent cases never trigger)
    assert php["GiantSan (rz=16)"] < results.totals["php"]

    # the other projects are redzone-insensitive
    for project in ("libpng", "libtiff", "libxml2", "sqlite3", "poppler"):
        counts = set(results.detected[project].values())
        assert len(counts) == 1, project

    # openssl: almost everything is undetectable by any config
    openssl = results.detected["openssl"]
    assert max(openssl.values()) < results.totals["openssl"] * 0.2

    benchmark.extra_info["php"] = dict(php)
