"""Table 2 (performance study): SPEC CPU2017 proxy overheads.

Runs all 24 proxies under Native / GiantSan / ASan / ASan-- / LFP and
prints the per-program overhead percentages plus geometric means in the
paper's layout.  Expected shape (paper values in parentheses):
GiantSan ~146% (146.04) < LFP ~162% (161.76) ~ ASan-- (174.89) <
ASan ~220% (212.58).
"""

from conftest import bench_scale, emit

from repro.analysis import (
    PERFORMANCE_TOOLS,
    render_table2,
    run_overhead_study,
)


def test_table2_spec_overhead(benchmark):
    study = benchmark.pedantic(
        run_overhead_study,
        kwargs={"tools": PERFORMANCE_TOOLS, "scale": bench_scale()},
        rounds=1,
        iterations=1,
    )
    emit("table2_spec_overhead", render_table2(study))
    means = study.geometric_means()
    benchmark.extra_info.update(
        {tool: round(ratio * 100, 2) for tool, ratio in means.items()}
    )
    # headline claims of the paper, as ordering assertions
    assert means["GiantSan"] < means["ASan--"] < means["ASan"]
    assert means["GiantSan"] < means["LFP"] < means["ASan"]
    # GiantSan removes over a third of ASan's overhead-over-native
    reduction = 1 - (means["GiantSan"] - 1) / (means["ASan"] - 1)
    assert reduction > 0.35
