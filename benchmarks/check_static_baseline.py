"""CI gate: static analysis over the Table 2 + Juliet corpora.

Runs ``repro analyze --format json`` in-process for every (tool,
corpus) pair the interprocedural layer is wired into and enforces the
two properties the static layer must never lose:

* **zero false positives** — the SPEC proxies are clean by
  construction, and each Juliet case carries ground truth; any finding
  on a clean program fails the gate;
* **no elision regression** — total elided checks, cross-call elided
  checks, and duplicate-eliminated checks must not fall below the
  checked-in baseline (``benchmarks/results/static_analysis_baseline
  .json``).  Totals are allowed to grow; ``--write-baseline``
  re-records them after an intentional improvement.

Run directly::

    PYTHONPATH=src python benchmarks/check_static_baseline.py
    PYTHONPATH=src python benchmarks/check_static_baseline.py --write-baseline
"""

import argparse
import contextlib
import io
import json
import pathlib
import sys

from repro.cli import main as repro_main

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BASELINE_PATH = RESULTS_DIR / "static_analysis_baseline.json"

#: every (tool, corpus) pair the CI gate covers — the two tools with a
#: check-elimination pipeline, over both static-analysis corpora
PAIRS = (
    ("GiantSan", "spec"),
    ("GiantSan", "juliet"),
    ("GiantSan", "callheavy"),
    ("ASan--", "spec"),
    ("ASan--", "juliet"),
    ("ASan--", "callheavy"),
)

#: totals that must never regress below the baseline
GATED_TOTALS = ("elided", "cross_call_elided", "eliminated")


def analyze_json(tool: str, corpus: str) -> dict:
    """Run ``repro analyze --format json`` in-process and parse it."""
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        rc = repro_main(
            ["analyze", "--tool", tool, "--corpus", corpus,
             "--format", "json"]
        )
    if rc != 0:
        raise SystemExit(f"repro analyze failed for {tool}/{corpus}")
    return json.loads(out.getvalue())


def check_false_positives(payload: dict) -> list:
    """Findings on programs that are clean by ground truth."""
    failures = []
    for row in payload["programs"]:
        clean = row.get("expected_buggy") is not True
        if clean and row["findings"]:
            kinds = sorted({f["kind"] for f in row["findings"]})
            failures.append(
                f"  {payload['tool']}/{payload['corpus']}: "
                f"{row['name']} is clean but has "
                f"{len(row['findings'])} finding(s): {', '.join(kinds)}"
            )
    return failures


def check_totals(payload: dict, baseline: dict) -> list:
    """Gated totals that fell below the recorded baseline."""
    key = f"{payload['tool']}/{payload['corpus']}"
    recorded = baseline.get(key)
    if recorded is None:
        return [f"  {key}: no baseline recorded (run --write-baseline)"]
    failures = []
    for total in GATED_TOTALS:
        now, floor = payload["totals"][total], recorded[total]
        if now < floor:
            failures.append(
                f"  {key}: {total} regressed to {now} "
                f"(baseline {floor})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current totals as the new baseline and exit",
    )
    args = parser.parse_args(argv)

    payloads = {}
    for tool, corpus in PAIRS:
        payloads[f"{tool}/{corpus}"] = analyze_json(tool, corpus)

    if args.write_baseline:
        baseline = {
            key: {t: p["totals"][t] for t in GATED_TOTALS}
            for key, p in payloads.items()
        }
        RESULTS_DIR.mkdir(exist_ok=True)
        BASELINE_PATH.write_text(
            json.dumps(baseline, indent=2, sort_keys=True) + "\n"
        )
        print(f"baseline written to {BASELINE_PATH}")
        return 0

    baseline = json.loads(BASELINE_PATH.read_text())
    failures = []
    for payload in payloads.values():
        failures.extend(check_false_positives(payload))
        failures.extend(check_totals(payload, baseline))

    for key, payload in sorted(payloads.items()):
        totals = payload["totals"]
        print(
            f"{key:<18} elided={totals['elided']:>4} "
            f"x-call={totals['cross_call_elided']:>4} "
            f"eliminated={totals['eliminated']:>4} "
            f"findings={totals['findings']:>3}"
        )
    if failures:
        print("\nstatic-analysis gate FAILED:")
        print("\n".join(failures))
        return 1
    print("\nstatic-analysis gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
