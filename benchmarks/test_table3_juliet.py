"""Table 3: detection capability on the Juliet-style CWE suite.

Every buggy/non-buggy pair runs under GiantSan, ASan, ASan--, and LFP.
Expected pattern (paper): the three shadow-memory tools detect every
triggering case identically; LFP misses stack overflows entirely, almost
all heap overflows (size-class slack), and nothing in the underwrite /
underread rows; nobody reports a false positive.
"""

from conftest import emit

from repro.analysis import render_table3, run_juliet_study


def test_table3_juliet(benchmark):
    results = benchmark.pedantic(run_juliet_study, rounds=1, iterations=1)
    emit("table3_juliet", render_table3(results))

    shadow_tools = ("GiantSan", "ASan", "ASan--")
    # the three shadow-memory tools agree exactly, per CWE
    for cwe in results.totals:
        counts = {t: results.detected[t].get(cwe, 0) for t in shadow_tools}
        assert len(set(counts.values())) == 1, (cwe, counts)
        triggering = results.totals[cwe] - results.latent.get(cwe, 0)
        assert counts["GiantSan"] == triggering, cwe

    # LFP's characteristic misses
    assert results.detected["LFP"].get("CWE121", 0) == 0
    heap_total = results.totals["CWE122"]
    assert results.detected["LFP"].get("CWE122", 0) < heap_total * 0.25
    assert results.detected["LFP"]["CWE124"] == results.totals["CWE124"]
    assert results.detected["LFP"]["CWE127"] == results.totals["CWE127"]
    assert results.detected["LFP"]["CWE416"] == results.totals["CWE416"]
    assert results.detected["LFP"]["CWE476"] == results.totals["CWE476"]

    # no tool reports on a non-buggy twin
    assert set(results.false_positives.values()) == {0}

    benchmark.extra_info["totals"] = dict(results.totals)
