"""Table 2 (ablation study): CacheOnly and EliminationOnly columns.

Each optimization alone must improve on ASan; combining both must beat
either; and EliminationOnly should land close to ASan-- (the paper's
§5.2 observation that ASan-- has similar efficiency to
GiantSan-EliminationOnly).
"""

from conftest import bench_scale, emit

from repro.analysis import (
    ABLATION_TOOLS,
    render_table2,
    run_overhead_study,
)


def test_table2_ablation(benchmark):
    tools = ["GiantSan", "ASan", "ASan--"] + ABLATION_TOOLS

    study = benchmark.pedantic(
        run_overhead_study,
        kwargs={"tools": tools, "scale": bench_scale()},
        rounds=1,
        iterations=1,
    )
    emit("table2_ablation", render_table2(study))
    means = study.geometric_means()
    benchmark.extra_info.update(
        {tool: round(ratio * 100, 2) for tool, ratio in means.items()}
    )
    full = means["GiantSan"]
    cache_only = means["GiantSan-CacheOnly"]
    elim_only = means["GiantSan-EliminationOnly"]
    asan = means["ASan"]
    asanmm = means["ASan--"]
    # each optimization alone improves on ASan
    assert cache_only < asan
    assert elim_only < asan
    # combining both is the best configuration
    assert full <= cache_only
    assert full <= elim_only
    # EliminationOnly tracks ASan-- (paper §5.2)
    assert abs(elim_only - asanmm) / asanmm < 0.15
