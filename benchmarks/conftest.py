"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures, prints
it, and archives it under ``benchmarks/results/``.  Scale knobs:

* ``REPRO_BENCH_SCALE`` — SPEC proxy iteration scale.  The default,
  ``full``, uses each program's own scale (the paper-style run, a few
  minutes); set a small integer (e.g. ``2``) for quick CI runs.
"""

import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_scale(default: str = "full"):
    """The SPEC proxy scale for benchmark runs (None = per-program default)."""
    raw = os.environ.get("REPRO_BENCH_SCALE", str(default))
    if raw == "full":
        return None
    return int(raw)


def emit(name: str, text: str) -> str:
    """Print a rendered table/figure and archive it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)
    return text
