"""Figure 11: forward / random / reverse buffer traversal cost.

Sweeps buffer sizes 1KB..16KB per pattern for Native, GiantSan, ASan.
Expected shape: GiantSan beats ASan walking forward and in random order
(cache hits replace metadata loads) and loses walking backwards (no
quasi-lower-bound; every access re-checks, §5.4).
"""

from conftest import emit

from repro.analysis import render_figure11, run_figure11_study


def test_fig11_traversals(benchmark):
    study = benchmark.pedantic(run_figure11_study, rounds=1, iterations=1)
    emit("fig11_traversals", render_figure11(study))

    forward = study.speedup_vs_asan("forward")
    random_speedup = study.speedup_vs_asan("random")
    reverse = study.speedup_vs_asan("reverse")
    benchmark.extra_info.update(
        {
            "forward_speedup": round(forward, 3),
            "random_speedup": round(random_speedup, 3),
            "reverse_speedup": round(reverse, 3),
        }
    )
    # paper: 1.07x faster forward, 1.48x faster random, 1.39x slower reverse
    assert forward > 1.0
    assert random_speedup > 1.0
    assert reverse < 1.0


def test_fig11_reverse_mitigation(benchmark):
    """§5.4's proposed fix: locate the lower bound by enumerating folding
    degrees and keep a quasi-lower-bound.  With it enabled, the reverse
    traversal's penalty disappears (at an O(log n) one-off cost)."""
    from repro import ProgramBuilder, V
    from repro.passes import instrument
    from repro.runtime import Interpreter
    from repro.sanitizers import GiantSan

    size = 8192
    b = ProgramBuilder()
    with b.function("walk", params=["y", "n"]) as f:
        f.ptr_add("p", "y", V("n") * 4)
        with f.loop("i", 1, V("n") + 1, bounded=False) as i:
            f.load("t", "p", 0 - i * 4, 4)
            f.compute(2.0)
    with b.function("main") as m:
        m.malloc("buf", size)
        m.call("walk", [V("buf"), size // 4])
    program = b.build()

    def run_three():
        results = {}
        for label, san in (
            ("GiantSan", GiantSan()),
            ("GiantSan+lb", GiantSan(enable_lower_bound=True)),
        ):
            result = Interpreter(san).run(instrument(program, tool=san))
            assert not result.errors
            results[label] = result.total_cycles()
        from repro.runtime import Session

        results["ASan"] = Session("ASan").run(program).total_cycles()
        return results

    results = benchmark.pedantic(run_three, rounds=1, iterations=1)
    emit(
        "fig11_reverse_mitigation",
        "Reverse traversal, 8 KiB buffer (cycles):\n"
        + "\n".join(f"  {k:12s} {v:10.0f}" for k, v in results.items()),
    )
    # plain GiantSan loses to ASan in reverse; the mitigation wins back
    assert results["GiantSan"] > results["ASan"]
    assert results["GiantSan+lb"] < results["ASan"]
    benchmark.extra_info.update({k: round(v) for k, v in results.items()})


def test_fig11_scaling_is_linear_for_both(benchmark):
    """Neither tool's traversal cost explodes with size: per-access cost
    is O(1) in both designs; the difference is the constant."""
    from repro.runtime import Session
    from repro.workloads.traversals import forward_traversal

    def measure():
        small = Session("GiantSan").run(forward_traversal(1024)).total_cycles()
        large = Session("GiantSan").run(forward_traversal(16384)).total_cycles()
        return large / small

    growth = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert 10 < growth < 22  # ~16x data -> ~16x cycles
