"""Microbenchmarks of the core checking primitives (wall-clock).

These time the *actual Python implementations* with pytest-benchmark:
GiantSan's CI must stay flat as the region grows (O(1) shadow loads)
while ASan's guardian scan grows linearly — the protection-density claim
at the heart of the paper, observable as real time here.
"""

import pytest

from repro.errors import AccessType
from repro.memory import ArenaLayout
from repro.sanitizers import ASan, GiantSan

LAYOUT = ArenaLayout(heap_size=1 << 20, stack_size=1 << 16, globals_size=1 << 14)
REGION_SIZES = [64, 1024, 16384, 262144]


@pytest.fixture(scope="module")
def giantsan_heap():
    san = GiantSan(layout=LAYOUT)
    allocation = san.malloc(1 << 19)
    return san, allocation


@pytest.fixture(scope="module")
def asan_heap():
    san = ASan(layout=LAYOUT)
    allocation = san.malloc(1 << 19)
    return san, allocation


@pytest.mark.parametrize("size", REGION_SIZES)
def test_giantsan_region_check(benchmark, giantsan_heap, size):
    san, allocation = giantsan_heap
    base = allocation.base
    result = benchmark(san.check_region, base, base + size, AccessType.READ)
    assert result is True


@pytest.mark.parametrize("size", REGION_SIZES)
def test_asan_region_check(benchmark, asan_heap, size):
    san, allocation = asan_heap
    base = allocation.base
    result = benchmark(san.check_region, base, base + size, AccessType.READ)
    assert result is True


def test_giantsan_shadow_loads_constant(benchmark, giantsan_heap):
    """Counts, not time: CI needs <= 4 loads at every size."""
    san, allocation = giantsan_heap
    base = allocation.base

    def loads_for_all_sizes():
        per_size = []
        for size in REGION_SIZES:
            before = san.stats.shadow_loads
            san.check_region(base, base + size, AccessType.READ)
            per_size.append(san.stats.shadow_loads - before)
        return per_size

    per_size = benchmark.pedantic(loads_for_all_sizes, rounds=1, iterations=1)
    assert max(per_size) <= 4


def test_quasi_bound_forward_walk(benchmark, giantsan_heap):
    """Time a full cached forward walk over 64 KiB."""
    san, allocation = giantsan_heap
    base = allocation.base

    def walk():
        cache = san.make_cache()
        for offset in range(0, 65536, 8):
            san.check_cached(cache, base, offset, 8, AccessType.READ)

    benchmark.pedantic(walk, rounds=3, iterations=1)


def test_poisoning_cost_linear(benchmark, giantsan_heap):
    """Folded poisoning is linear in object size, same as ASan's."""
    san, _ = giantsan_heap
    from repro.shadow import giantsan_encoding as enc

    def poison():
        enc.object_codes(1 << 16)

    benchmark.pedantic(poison, rounds=5, iterations=1)
