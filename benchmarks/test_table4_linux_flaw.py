"""Table 4: detection of Linux Flaw Project CVE scenarios.

The paper's matrix: GiantSan, ASan, and ASan-- detect all 28 CVEs; LFP
misses exactly CVE-2017-12858 (UAF via an aliased pointer),
CVE-2017-9165 (overflow inside the size-class slack), and
CVE-2017-14409 (stack overflow).
"""

from conftest import emit

from repro.analysis import render_table4, run_linux_flaw_study

PAPER_LFP_MISSES = {"CVE-2017-12858", "CVE-2017-9165", "CVE-2017-14409"}


def test_table4_linux_flaw(benchmark):
    results = benchmark.pedantic(run_linux_flaw_study, rounds=1, iterations=1)
    emit("table4_linux_flaw", render_table4(results))

    for tool in ("GiantSan", "ASan", "ASan--"):
        assert not results.misses(tool), tool
    assert set(results.misses("LFP")) == PAPER_LFP_MISSES
    benchmark.extra_info["lfp_misses"] = sorted(results.misses("LFP"))
