"""Micro benchmark: per-instruction dispatch cost across engines.

The compile-to-closures engine exists to eliminate the tree walker's
per-instruction ``type()`` dispatch and recursive expression
evaluation.  This benchmark isolates exactly that cost with two kernels
the superblock fast path cannot absorb, so what is measured is the
engine's dispatch loop and nothing else:

* ``dispatch`` — a data-dependent branch inside the loop body (the
  classic fast-path decline shape): every iteration takes the
  per-instruction path under both engines;
* ``poison_churn`` — a malloc/free storm over mixed size classes:
  dominated by allocator + shadow poisoning, exercising the memoized
  ``object_codes`` tables and the fill-pattern cache.

A third kernel targets the shadow plane instead of the engine:

* ``shadow_traffic`` — large-region guardian scans, superblock
  covering-range scans, and bulk redzone repaints against a 1 MiB
  object, run on both shadow backends.  This is the workload the
  vectorized numpy plane exists for; the kernel asserts the two
  backends produce identical CheckStats before reporting the speedup.

Results are written to ``benchmarks/results/bench_micro_dispatch.json``.
``--assert-speedup X`` exits non-zero unless the compiled engine beats
the tree walker by at least ``X``x on the dispatch kernel, and
``--assert-shadow-speedup X`` does the same for the numpy shadow plane
on the shadow-traffic kernel — the CI smoke gates that keep either
accelerator from silently regressing into a slower curiosity.

Run directly::

    PYTHONPATH=src python benchmarks/bench_micro_dispatch.py
    PYTHONPATH=src python benchmarks/bench_micro_dispatch.py \
        --assert-speedup 1.3 --assert-shadow-speedup 3.0 --repeat 3
"""

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))
sys.path.insert(0, str(pathlib.Path(__file__).parent))

from conftest import RESULTS_DIR  # noqa: E402

OUTPUT = RESULTS_DIR / "bench_micro_dispatch.json"

ENGINES = ("tree", "compiled")

#: Iteration counts sized so each (kernel, engine) cell runs for a
#: fraction of a second at full scale — enough to dwarf compile and
#: session setup, small enough for a CI smoke leg.
DISPATCH_ITERATIONS = 40_000
CHURN_ROUNDS = 1_500

#: Shadow-traffic kernel: object size and scan rounds.  1 MiB = 128 Ki
#: shadow segments per scan, deep in vectorized territory.
SHADOW_REGION_BYTES = 1 << 20
SHADOW_ROUNDS = 100

SHADOW_BACKENDS = ("bytearray", "numpy")


def _build_dispatch_kernel(iterations: int):
    """Branch-in-body loop: ineligible for superblock folding, so every
    iteration pays per-instruction dispatch under either engine."""
    from repro.ir.builder import ProgramBuilder

    builder = ProgramBuilder()
    with builder.function("main") as f:
        f.malloc("buf", 256)
        total = f.assign("total", 0)
        with f.loop("i", 0, iterations) as i:
            with f.if_(i % 3):
                f.store("buf", (i % 32) * 8, 8, i)
            with f.else_():
                loaded = f.load("x", "buf", (i % 32) * 8, 8)
                f.assign("total", total + loaded)
        f.free("buf")
        f.ret(total)
    return builder.build()


def _build_poison_churn_kernel(rounds: int):
    """Allocation storm over mixed size classes (the Table 2 churn
    shape): time goes to malloc/free shadow poisoning, not loop math."""
    from repro.ir.builder import ProgramBuilder

    builder = ProgramBuilder()
    sizes = [24, 64, 129, 1000, 4096]
    with builder.function("main") as f:
        with f.loop("r", 0, rounds):
            for index, size in enumerate(sizes):
                name = f"obj{index}"
                f.malloc(name, size)
                f.store(name, 0, 8, 1)
                f.store(name, size - 8, 8, 2)
                f.free(name)
        f.ret(0)
    return builder.build()


KERNELS = {
    "dispatch": lambda: _build_dispatch_kernel(DISPATCH_ITERATIONS),
    "poison_churn": lambda: _build_poison_churn_kernel(CHURN_ROUNDS),
}


def _time_cell(program, engine: str, repeat: int) -> dict:
    """Best-of-``repeat`` wall clock for one (kernel, engine) cell.

    A throwaway warm-up run pays one-time costs (closure compilation,
    instrumentation, folding tables) so the timed runs measure steady
    state for both engines symmetrically.
    """
    from repro.runtime import Session

    def once() -> float:
        session = Session(
            "GiantSan", engine=engine, fastpath=True, memoize=True
        )
        started = time.perf_counter()
        result = session.run(program)
        elapsed = time.perf_counter() - started
        assert not result.errors
        return elapsed

    once()
    timings = [once() for _ in range(repeat)]
    return {
        "seconds": round(min(timings), 4),
        "all_runs": [round(t, 4) for t in timings],
    }


def _time_shadow_cell(backend: str, repeat: int) -> dict:
    """Best-of-``repeat`` wall clock for the shadow-traffic kernel on
    one backend; returns timing plus the CheckStats the run produced so
    the caller can assert backend equivalence."""
    from repro.errors import AccessType
    from repro.sanitizers import SANITIZER_FACTORIES
    from repro.shadow import giantsan_encoding
    from repro.shadow.oracle import bulk_region_is_addressable

    def once():
        asan = SANITIZER_FACTORIES["ASan"](shadow_backend=backend)
        giant = SANITIZER_FACTORIES["GiantSan"](shadow_backend=backend)
        obj_a = asan.malloc(SHADOW_REGION_BYTES)
        obj_g = giant.malloc(SHADOW_REGION_BYTES)
        # repaint target: the untouched heap tail keeps its pre-poison
        # code, so rewriting the same value is semantically a no-op
        tail_index = (obj_a.chunk_end >> 3) + 8
        tail_count = min(1 << 16, len(asan.shadow) - tail_index)
        tail_code = asan.shadow.load(tail_index)
        segments = SHADOW_REGION_BYTES >> 3
        started = time.perf_counter()
        for _ in range(SHADOW_ROUNDS):
            # ASan guardian scan over the whole object (one shadow load
            # per segment in the model; one bulk scan in the backend)
            assert asan.check_region(
                obj_a.base, obj_a.base + SHADOW_REGION_BYTES, AccessType.READ
            )
            # superblock covering-range scan (the fold-hook fast path)
            assert (
                asan.fold_access_checks(
                    segments, obj_a.base, 8, 8, AccessType.READ
                )
                is not None
            )
            # GiantSan whole-range addressability reduction
            ok, _ = bulk_region_is_addressable(
                giant.shadow,
                obj_g.base,
                obj_g.base + SHADOW_REGION_BYTES,
                giantsan_encoding.addressable_prefix,
            )
            assert ok
            # bulk redzone repaint
            asan.shadow.fill(tail_index, tail_count, tail_code)
        elapsed = time.perf_counter() - started
        return elapsed, asan.stats.as_dict()

    once()
    timings = []
    stats = None
    for _ in range(repeat):
        elapsed, run_stats = once()
        timings.append(elapsed)
        if stats is None:
            stats = run_stats
        else:
            assert stats == run_stats, "shadow kernel must be deterministic"
    return {
        "seconds": round(min(timings), 4),
        "all_runs": [round(t, 4) for t in timings],
        "_stats": stats,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless compiled beats tree by at least Xx on the "
        "dispatch kernel",
    )
    parser.add_argument(
        "--assert-shadow-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless the numpy shadow backend beats bytearray by "
        "at least Xx on the shadow-traffic kernel",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=3,
        help="timed runs per cell (best-of is reported)",
    )
    options = parser.parse_args(argv)

    results = {}
    for kernel_name, build in KERNELS.items():
        program = build()
        cells = {}
        for engine in ENGINES:
            cells[engine] = _time_cell(program, engine, options.repeat)
            print(
                f"{kernel_name:13s} {engine:9s} "
                f"{cells[engine]['seconds']:8.4f}s"
            )
        speedup = cells["tree"]["seconds"] / cells["compiled"]["seconds"]
        cells["speedup_compiled_vs_tree"] = round(speedup, 2)
        results[kernel_name] = cells
        print(f"{kernel_name:13s} speedup   {speedup:7.2f}x")

    shadow_cells = {}
    shadow_stats = {}
    for backend in SHADOW_BACKENDS:
        cell = _time_shadow_cell(backend, options.repeat)
        shadow_stats[backend] = cell.pop("_stats")
        shadow_cells[backend] = cell
        print(
            f"shadow_traffic {backend:9s} {cell['seconds']:8.4f}s"
        )
    assert shadow_stats["bytearray"] == shadow_stats["numpy"], (
        "shadow backends disagree on CheckStats - not a fair race"
    )
    shadow_speedup = (
        shadow_cells["bytearray"]["seconds"]
        / shadow_cells["numpy"]["seconds"]
    )
    shadow_cells["speedup_numpy_vs_bytearray"] = round(shadow_speedup, 2)
    results["shadow_traffic"] = shadow_cells
    print(f"shadow_traffic speedup  {shadow_speedup:7.2f}x")

    payload = {
        "benchmark": "micro-dispatch",
        "python": sys.version.split()[0],
        "dispatch_iterations": DISPATCH_ITERATIONS,
        "churn_rounds": CHURN_ROUNDS,
        "shadow_region_bytes": SHADOW_REGION_BYTES,
        "shadow_rounds": SHADOW_ROUNDS,
        "kernels": results,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"-> {OUTPUT.relative_to(OUTPUT.parent.parent.parent)}")

    if options.assert_speedup is not None:
        achieved = results["dispatch"]["speedup_compiled_vs_tree"]
        if achieved < options.assert_speedup:
            print(
                f"FAIL: compiled engine {achieved:.2f}x < required "
                f"{options.assert_speedup:.2f}x on dispatch kernel",
                file=sys.stderr,
            )
            return 1
        print(
            f"OK: compiled engine {achieved:.2f}x >= "
            f"{options.assert_speedup:.2f}x"
        )
    if options.assert_shadow_speedup is not None:
        achieved = results["shadow_traffic"]["speedup_numpy_vs_bytearray"]
        if achieved < options.assert_shadow_speedup:
            print(
                f"FAIL: numpy shadow {achieved:.2f}x < required "
                f"{options.assert_shadow_speedup:.2f}x on shadow-traffic "
                "kernel",
                file=sys.stderr,
            )
            return 1
        print(
            f"OK: numpy shadow {achieved:.2f}x >= "
            f"{options.assert_shadow_speedup:.2f}x"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
