"""Table 1: # checks under operation-level vs instruction-level protection.

Regenerates the four analysis-method rows by instrumenting each pattern
for GiantSan (operation level) and ASan (instruction level) and counting
static and dynamic checks.
"""

from conftest import emit

from repro.analysis import render_table1
from repro.runtime import Session
from repro.workloads.patterns import TABLE1_PATTERNS


def test_table1_check_counts(benchmark):
    text = benchmark.pedantic(render_table1, rounds=1, iterations=1)
    emit("table1_check_counts", text)
    # sanity: the operation-level column must show 1 check for the first
    # three patterns, instruction-level Theta(N) for memset and the loop
    lines = [l for l in text.splitlines() if l.startswith(("Constant", "Pre", "Loop"))]
    for line in lines:
        columns = line.split()
        assert int(columns[-2]) <= 2  # operation-level dynamic
        assert int(columns[-1]) >= 3  # instruction-level dynamic


def test_table1_dynamic_check_ratio(benchmark):
    """Time + count the loop-bound pattern: N instruction checks vs 1."""
    pattern = next(p for p in TABLE1_PATTERNS if p.name == "loop-bound")

    def run_both():
        giant = Session("GiantSan").run(pattern.build())
        asan = Session("ASan").run(pattern.build())
        return giant.stats.checks_executed, asan.stats.checks_executed

    giant_checks, asan_checks = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    assert giant_checks * 10 < asan_checks
