"""Tests for the detection workloads: Juliet, Linux Flaw, Magma."""

import pytest

from repro import Session
from repro.workloads.juliet import (
    TABLE3_CWES,
    generate_cwe122,
    generate_cwe416,
    generate_cwe476,
    generate_cwe761,
    generate_juliet_suite,
)
from repro.workloads.linux_flaw import TABLE4_SCENARIOS, scenarios_by_program
from repro.workloads.magma import (
    TABLE5_PROJECTS,
    generate_project_cases,
)


class TestJulietGenerators:
    def test_all_cwes_generate(self):
        suite = generate_juliet_suite()
        cwes = {case.cwe for case in suite}
        assert cwes == {cwe for cwe, _ in TABLE3_CWES}

    def test_pairs_balanced(self):
        cases = generate_cwe122()
        buggy = [c for c in cases if c.buggy]
        good = [c for c in cases if not c.buggy]
        assert len(buggy) == len(good)

    def test_case_ids_unique(self):
        suite = generate_juliet_suite()
        ids = [c.case_id for c in suite]
        assert len(ids) == len(set(ids))

    def test_programs_validate(self):
        for case in generate_juliet_suite(["CWE416", "CWE476", "CWE761"]):
            case.program.validate()

    def test_latent_cases_only_in_cwe126(self):
        suite = generate_juliet_suite()
        latent = [c for c in suite if c.latent]
        assert latent
        assert all(c.cwe == "CWE126" for c in latent)
        assert all(c.buggy for c in latent)


class TestJulietDetectionSamples:
    @pytest.mark.parametrize("tool", ["GiantSan", "ASan", "ASan--"])
    def test_shadow_tools_catch_heap_overflow(self, tool):
        case = next(c for c in generate_cwe122() if c.buggy)
        assert Session(tool).run(case.program).errors

    def test_lfp_misses_slack_overflow(self):
        # size 10 rounds to 16: distance-1 overflow sits in the slack
        case = next(
            c for c in generate_cwe122()
            if c.buggy and "s10_d1_direct" in c.case_id
        )
        assert not Session("LFP").run(case.program).errors

    @pytest.mark.parametrize("tool", ["GiantSan", "ASan", "ASan--", "LFP"])
    def test_good_twins_are_silent(self, tool):
        for case in generate_cwe122()[:8]:
            if case.buggy:
                continue
            assert not Session(tool).run(case.program).errors, case.case_id

    def test_latent_cases_trigger_nothing(self):
        latent = [c for c in generate_juliet_suite(["CWE126"]) if c.latent]
        for case in latent:
            for tool in ("GiantSan", "ASan", "LFP"):
                assert not Session(tool).run(case.program).errors

    @pytest.mark.parametrize("tool", ["GiantSan", "ASan", "ASan--", "LFP"])
    def test_uaf_detected_via_base_pointer(self, tool):
        case = next(c for c in generate_cwe416() if c.buggy)
        assert Session(tool).run(case.program).errors

    @pytest.mark.parametrize("tool", ["GiantSan", "ASan", "ASan--", "LFP"])
    def test_null_deref_detected(self, tool):
        case = next(c for c in generate_cwe476() if c.buggy)
        assert Session(tool).run(case.program).errors

    @pytest.mark.parametrize("tool", ["GiantSan", "ASan"])
    def test_bad_free_detected(self, tool):
        case = next(c for c in generate_cwe761() if c.buggy)
        assert Session(tool).run(case.program).errors


class TestExtendedJulietSuite:
    def test_double_free_detected_by_shadow_tools(self):
        from repro.workloads.juliet import generate_cwe415

        for case in generate_cwe415():
            for tool in ("GiantSan", "ASan", "ASan--"):
                result = Session(tool).run(case.program)
                if case.buggy:
                    assert result.errors, (tool, case.case_id)
                else:
                    assert not result.errors, (tool, case.case_id)

    def test_free_of_non_heap_detected(self):
        from repro.workloads.juliet import generate_cwe590

        for case in generate_cwe590():
            result = Session("GiantSan").run(case.program)
            if case.buggy:
                assert result.errors, case.case_id
                assert result.errors.kinds()[0].value in (
                    "invalid-free", "double-free",
                )
            else:
                assert not result.errors

    def test_extended_suite_separate_from_table3(self):
        from repro.workloads.juliet import (
            TABLE3_CWES,
            generate_extended_suite,
        )

        table3 = {cwe for cwe, _ in TABLE3_CWES}
        for case in generate_extended_suite():
            assert case.cwe not in table3


class TestLinuxFlawScenarios:
    def test_twenty_five_rows(self):
        # 28 CVE identifiers in the paper collapse into 25 scenarios here
        # (the 9166~9173 range is expanded; 5976~5977 etc. are separate)
        assert len(TABLE4_SCENARIOS) == 25

    def test_grouped_by_program(self):
        grouped = scenarios_by_program()
        assert set(grouped) == {
            "libzip", "autotrace", "imageworsener", "lame", "zziplib",
            "libtiff", "potrace", "mp3gain",
        }

    def test_shadow_tools_detect_everything(self):
        for scenario in TABLE4_SCENARIOS:
            for tool in ("GiantSan", "ASan", "ASan--"):
                result = Session(tool).run(scenario.build())
                assert result.errors, f"{tool} missed {scenario.cve_id}"

    def test_lfp_misses_exactly_the_papers_three(self):
        missed = []
        for scenario in TABLE4_SCENARIOS:
            if not Session("LFP").run(scenario.build()).errors:
                missed.append(scenario.cve_id)
        assert sorted(missed) == [
            "CVE-2017-12858",  # UAF via aliased pointer
            "CVE-2017-14409",  # stack overflow
            "CVE-2017-9165",  # overflow inside rounding slack
        ]


class TestMagmaCases:
    def test_project_counts(self):
        php = next(p for p in TABLE5_PROJECTS if p.name == "php")
        cases = generate_project_cases(php)
        assert len(cases) == php.total
        kinds = {c.kind for c in cases}
        assert kinds == {"near", "mid", "far", "latent"}

    def test_near_case_detected_by_all_configs(self):
        php = next(p for p in TABLE5_PROJECTS if p.name == "php")
        near = next(
            c for c in generate_project_cases(php) if c.kind == "near"
        )
        for tool, kwargs in (
            ("ASan", {"redzone": 16}),
            ("ASan", {"redzone": 512}),
            ("GiantSan", {"redzone": 16}),
        ):
            assert Session(tool, **kwargs).run(near.build()).errors

    def test_mid_jump_bypasses_small_redzone_only(self):
        php = next(p for p in TABLE5_PROJECTS if p.name == "php")
        mid = next(c for c in generate_project_cases(php) if c.kind == "mid")
        assert not Session("ASan", redzone=16).run(mid.build()).errors
        assert Session("ASan", redzone=512).run(mid.build()).errors
        assert Session("GiantSan", redzone=16).run(mid.build()).errors

    def test_far_jump_only_giantsan(self):
        php = next(p for p in TABLE5_PROJECTS if p.name == "php")
        far = next(c for c in generate_project_cases(php) if c.kind == "far")
        assert not Session("ASan", redzone=16).run(far.build()).errors
        assert not Session("ASan", redzone=512).run(far.build()).errors
        assert Session("GiantSan", redzone=16).run(far.build()).errors

    def test_latent_cases_silent(self):
        openssl = next(p for p in TABLE5_PROJECTS if p.name == "openssl")
        for case in generate_project_cases(openssl):
            if case.kind != "latent":
                continue
            assert not Session("GiantSan").run(case.build()).errors
            break
