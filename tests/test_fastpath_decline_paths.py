"""Directed differentials for superblock fast-path *decline* paths.

The fast path must refuse (or safely handle) the awkward loops — zero
trips, tiny trip counts, negative strides, final accesses landing
exactly on the usable/redzone boundary, unbounded trip counts — and in
every case the observables must match the reference walker exactly.
These are the edges the fuzzer's random programs only occasionally hit,
so each gets a pinned, deterministic test here.
"""

import pytest

from repro.ir.builder import ProgramBuilder
from repro.runtime import Session

TOOLS = ["Native", "GiantSan", "ASan", "ASan--", "LFP", "HWASan"]


def _observables(result):
    return {
        "native_cycles": result.native_cycles,
        "instructions": result.instructions_executed,
        "return_value": result.return_value,
        "stats": result.stats.as_dict(),
        "protection": dict(result.protection_counts),
        "errors": [(e.kind, e.address) for e in result.errors],
    }


def _assert_paths_match(program, expect_errors_from=()):
    for tool in TOOLS:
        on = Session(tool, fastpath=True, memoize=False).run(program)
        off = Session(tool, fastpath=False, memoize=False).run(program)
        assert _observables(on) == _observables(off), tool
        if tool in expect_errors_from:
            assert off.errors, f"{tool} missed the planted bug"


def test_zero_trip_loop():
    """start == end: the loop body never runs, no checks are emitted."""
    builder = ProgramBuilder()
    with builder.function("main") as f:
        f.malloc("buf", 64)
        with f.loop("i", 0, 0) as i:
            f.store("buf", i * 8, 8, i)
        f.free("buf")
        f.ret(0)
    _assert_paths_match(builder.build())


def test_trip_count_below_minimum():
    """Trip counts under MIN_TRIP_COUNT decline folding but still check."""
    builder = ProgramBuilder()
    with builder.function("main") as f:
        f.malloc("buf", 64)
        with f.loop("i", 0, 3) as i:
            f.store("buf", i * 8, 8, i)
        f.free("buf")
        f.ret(0)
    _assert_paths_match(builder.build())


def test_reverse_walk_in_bounds():
    """Negative-stride traversal (Figure 11c pattern) within bounds."""
    builder = ProgramBuilder()
    with builder.function("main") as f:
        f.malloc("buf", 128)
        with f.loop("i", 0, 16, reverse=True) as i:
            f.store("buf", i * 8, 8, i)
        total = f.assign("total", 0)
        with f.loop("j", 0, 16, reverse=True) as j:
            loaded = f.load("x", "buf", j * 8, 8)
            f.assign("total", total + loaded)
        f.free("buf")
        f.ret(total)
    program = builder.build()
    _assert_paths_match(program)
    result = Session("Native", fastpath=False, memoize=False).run(program)
    assert result.return_value == sum(range(16))


def test_reverse_walk_overflowing():
    """Negative stride whose *first* access is past the end: both paths
    must report, at the same address, the same number of times."""
    builder = ProgramBuilder()
    with builder.function("main") as f:
        f.malloc("buf", 64)
        with f.loop("i", 0, 9, reverse=True) as i:
            f.store("buf", i * 8, 8, i)  # i=8 writes bytes [64, 72)
        f.free("buf")
        f.ret(0)
    # 64 is an exact LFP size class and a HWASan granule multiple, so
    # every protected tool sees bytes [64, 72) as out of bounds
    _assert_paths_match(
        builder.build(),
        expect_errors_from=("GiantSan", "ASan", "ASan--", "LFP", "HWASan"),
    )


def test_final_access_exactly_at_usable_boundary():
    """The last iteration's access ends exactly at base + size: fully
    addressable, so the fast path may fold it — but must not report."""
    builder = ProgramBuilder()
    with builder.function("main") as f:
        f.malloc("buf", 64)
        with f.loop("i", 0, 8) as i:
            f.store("buf", i * 8, 8, i)  # last write ends at offset 64
        f.free("buf")
        f.ret(0)
    program = builder.build()
    _assert_paths_match(program)
    for tool in TOOLS:
        result = Session(tool, fastpath=True, memoize=False).run(program)
        assert not result.errors, tool


def test_final_partial_segment_on_redzone_boundary():
    """Object size not segment-aligned: the final in-bounds access ends
    inside a partial segment, one byte short of the redzone."""
    builder = ProgramBuilder()
    with builder.function("main") as f:
        f.malloc("buf", 61)  # 7 good segments + 5-partial tail
        with f.loop("i", 0, 61) as i:
            f.store("buf", i, 1, 7)
        f.free("buf")
        f.ret(0)
    program = builder.build()
    _assert_paths_match(program)
    for tool in TOOLS:
        result = Session(tool, fastpath=True, memoize=False).run(program)
        assert not result.errors, tool


def test_loop_one_past_redzone_boundary():
    """Same shape, one extra iteration: the access at offset 61 is the
    first poisoned byte. Fast path must decline the fold and report the
    same error the walker does."""
    builder = ProgramBuilder()
    with builder.function("main") as f:
        f.malloc("buf", 61)
        with f.loop("i", 0, 62) as i:
            f.store("buf", i, 1, 7)
        f.free("buf")
        f.ret(0)
    # LFP rounds 61 up to its 64-byte size class and HWASan to granule
    # 64, so byte 61 is inside their usable slack — no report expected
    _assert_paths_match(
        builder.build(), expect_errors_from=("GiantSan", "ASan", "ASan--")
    )


def test_unbounded_loop_takes_cached_path():
    """bounded=False forbids SCEV promotion; GiantSan's CheckCached
    history-based protection must behave identically on both paths."""
    builder = ProgramBuilder()
    with builder.function("main") as f:
        f.malloc("buf", 256)
        with f.loop("i", 0, 32, bounded=False) as i:
            f.store("buf", i * 8, 8, i)
        f.free("buf")
        f.ret(0)
    _assert_paths_match(builder.build())


def test_non_affine_subscript_declines():
    """A quadratic subscript defeats SCEV: the reference walker runs."""
    builder = ProgramBuilder()
    with builder.function("main") as f:
        f.malloc("buf", 1024)
        with f.loop("i", 0, 10) as i:
            f.store("buf", i * i * 8, 8, i)
        f.free("buf")
        f.ret(0)
    _assert_paths_match(builder.build())


@pytest.mark.parametrize("size", [8, 16, 24, 56, 64, 72, 4096])
def test_exact_fit_walk_across_sizes(size):
    """Exact-fit 8-byte walks across segment-aligned sizes never report
    and never diverge between the two execution paths."""
    builder = ProgramBuilder()
    with builder.function("main") as f:
        f.malloc("buf", size)
        with f.loop("i", 0, size // 8) as i:
            f.store("buf", i * 8, 8, 1)
        f.free("buf")
        f.ret(0)
    _assert_paths_match(builder.build())
