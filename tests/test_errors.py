"""Tests for the error taxonomy and report log."""

import pytest

from repro.errors import (
    AccessType,
    ErrorKind,
    ErrorLog,
    ErrorReport,
    SanitizerError,
)


def report(kind=ErrorKind.HEAP_BUFFER_OVERFLOW, address=0x1000):
    return ErrorReport(kind=kind, address=address, size=4, access=AccessType.READ)


class TestErrorKind:
    def test_spatial_classification(self):
        assert ErrorKind.HEAP_BUFFER_OVERFLOW.is_spatial
        assert ErrorKind.STACK_BUFFER_UNDERFLOW.is_spatial
        assert not ErrorKind.USE_AFTER_FREE.is_spatial

    def test_temporal_classification(self):
        assert ErrorKind.USE_AFTER_FREE.is_temporal
        assert ErrorKind.DOUBLE_FREE.is_temporal
        assert not ErrorKind.HEAP_BUFFER_OVERFLOW.is_temporal

    def test_null_neither(self):
        assert not ErrorKind.NULL_DEREFERENCE.is_spatial
        assert not ErrorKind.NULL_DEREFERENCE.is_temporal


class TestErrorReport:
    def test_str_contains_essentials(self):
        text = str(report())
        assert "heap-buffer-overflow" in text
        assert "0x1000" in text
        assert "read" in text

    def test_detail_rendered(self):
        r = ErrorReport(
            kind=ErrorKind.USE_AFTER_FREE,
            address=8,
            size=1,
            access=AccessType.WRITE,
            detail="in quarantine",
        )
        assert "in quarantine" in str(r)

    def test_frozen(self):
        with pytest.raises(Exception):
            report().address = 5


class TestErrorLog:
    def test_collects_without_halting(self):
        log = ErrorLog()
        log.report(report())
        log.report(report(kind=ErrorKind.USE_AFTER_FREE))
        assert len(log) == 2
        assert bool(log)

    def test_halt_on_error(self):
        log = ErrorLog(halt_on_error=True)
        with pytest.raises(SanitizerError):
            log.report(report())
        assert len(log) == 1

    def test_kinds_and_count(self):
        log = ErrorLog()
        log.report(report())
        log.report(report())
        log.report(report(kind=ErrorKind.USE_AFTER_FREE))
        assert log.count(ErrorKind.HEAP_BUFFER_OVERFLOW) == 2
        assert log.kinds()[-1] is ErrorKind.USE_AFTER_FREE

    def test_spatial_temporal_views(self):
        log = ErrorLog()
        log.report(report())
        log.report(report(kind=ErrorKind.USE_AFTER_FREE))
        assert len(log.spatial) == 1
        assert len(log.temporal) == 1

    def test_clear(self):
        log = ErrorLog()
        log.report(report())
        log.clear()
        assert not log

    def test_iteration(self):
        log = ErrorLog()
        log.report(report())
        assert [r.kind for r in log] == [ErrorKind.HEAP_BUFFER_OVERFLOW]
