"""Tests for the guardian-wrapped intrinsics."""

import pytest

from repro.errors import AccessType, ErrorKind
from repro.ir.nodes import Protection
from repro.memory import ArenaLayout
from repro.runtime.intrinsics import (
    guarded_memcpy,
    guarded_memset,
    guarded_strcpy,
)
from repro.sanitizers import ASan, GiantSan, NativeSanitizer

SMALL = ArenaLayout(heap_size=1 << 17, stack_size=1 << 14, globals_size=1 << 13)


@pytest.fixture(params=[ASan, GiantSan], ids=["asan", "giantsan"])
def san(request):
    return request.param(layout=SMALL)


class TestMemset:
    def test_fills_and_passes(self, san):
        allocation = san.malloc(64)
        guarded_memset(
            san, Protection.DIRECT, allocation.base, 64, 0xCC, allocation.base
        )
        assert san.space.read_bytes(allocation.base, 64) == b"\xcc" * 64
        assert not san.log

    def test_overflow_reported_but_executed(self, san):
        """halt_on_error=false: the guardian reports, the op proceeds
        (the redzone bytes get clobbered like in a real non-halting run)."""
        allocation = san.malloc(60)
        guarded_memset(
            san, Protection.DIRECT, allocation.base, 64, 1, allocation.base
        )
        assert san.log.kinds() == [ErrorKind.HEAP_BUFFER_OVERFLOW]
        assert san.space.load(allocation.base + 60, 1) == 1

    def test_unprotected_skips_check(self, san):
        allocation = san.malloc(60)
        guarded_memset(
            san, Protection.UNPROTECTED, allocation.base, 64, 1,
            allocation.base,
        )
        assert not san.log

    def test_zero_length_noop(self, san):
        allocation = san.malloc(8)
        guarded_memset(
            san, Protection.DIRECT, allocation.base, 0, 9, allocation.base
        )
        assert san.space.load(allocation.base, 1) == 0


class TestMemcpy:
    def test_copies(self, san):
        src = san.malloc(64)
        dst = san.malloc(64)
        san.space.write_bytes(src.base, b"x" * 64)
        guarded_memcpy(
            san, Protection.DIRECT, dst.base, src.base, 64, dst.base, src.base
        )
        assert san.space.read_bytes(dst.base, 64) == b"x" * 64
        assert not san.log

    def test_source_overread_detected(self, san):
        src = san.malloc(32)
        dst = san.malloc(64)
        guarded_memcpy(
            san, Protection.DIRECT, dst.base, src.base, 48, dst.base, src.base
        )
        assert any(
            r.access is AccessType.READ for r in san.log.reports
        )

    def test_destination_overflow_detected(self, san):
        src = san.malloc(64)
        dst = san.malloc(32)
        guarded_memcpy(
            san, Protection.DIRECT, dst.base, src.base, 48, dst.base, src.base
        )
        assert any(
            r.access is AccessType.WRITE for r in san.log.reports
        )


class TestStrcpy:
    def test_copies_through_terminator(self, san):
        src = san.malloc(16)
        dst = san.malloc(16)
        san.space.write_bytes(src.base, b"hello\x00")
        copied = guarded_strcpy(
            san, Protection.DIRECT, dst.base, src.base, dst.base, src.base
        )
        assert copied == 6
        assert san.space.read_bytes(dst.base, 6) == b"hello\x00"
        assert not san.log

    def test_unterminated_source_overreads(self, san):
        """No NUL inside the buffer: the scan runs into the redzone and
        the guardian reports the overread (classic CWE-126 via strcpy)."""
        src = san.malloc(16)
        dst = san.malloc(256)
        san.space.fill(src.base, 16, 0x41)
        guarded_strcpy(
            san, Protection.DIRECT, dst.base, src.base, dst.base, src.base
        )
        assert san.log

    def test_destination_too_small(self, san):
        src = san.malloc(64)
        dst = san.malloc(8)
        san.space.fill(src.base, 32, 0x42)
        san.space.store(src.base + 32, 1, 0)
        guarded_strcpy(
            san, Protection.DIRECT, dst.base, src.base, dst.base, src.base
        )
        assert any(
            r.access is AccessType.WRITE for r in san.log.reports
        )


class TestGuardianCosts:
    def test_asan_guardian_is_linear(self):
        asan = ASan(layout=SMALL)
        allocation = asan.malloc(4096)
        asan.reset_stats()
        guarded_memset(
            asan, Protection.DIRECT, allocation.base, 4096, 0,
            allocation.base,
        )
        assert asan.stats.shadow_loads == 512  # 4096 / 8

    def test_giantsan_guardian_is_constant(self):
        giant = GiantSan(layout=SMALL)
        allocation = giant.malloc(4096)
        giant.reset_stats()
        guarded_memset(
            giant, Protection.DIRECT, allocation.base, 4096, 0,
            allocation.base,
        )
        assert giant.stats.shadow_loads <= 4

    def test_native_costs_nothing(self):
        native = NativeSanitizer(layout=SMALL)
        allocation = native.malloc(4096)
        guarded_memset(
            native, Protection.UNPROTECTED, allocation.base, 4096, 0,
            allocation.base,
        )
        assert native.stats.shadow_loads == 0
