"""Tests for the whole-function dataflow framework (repro.dataflow).

Covers CFG lowering, dominators, the interval and allocation-state
fixpoints, cross-block check elimination at control-flow joins, the
static bug detector, and the fuzz-auditable elision pass.
"""

import pytest

from repro.dataflow import (
    LIVE,
    LOOP_HEADER,
    AllocStateAnalysis,
    FunctionDataflow,
    IntervalAnalysis,
    analyze_program,
    const,
    detect_function,
    dominates,
    eval_expr,
    immediate_dominators,
    lower_function,
    solve,
)
from repro.ir import (
    AccessType,
    BinOp,
    CheckElided,
    CheckAccess,
    CheckRegion,
    Const,
    Load,
    ProgramBuilder,
    Store,
    V,
    walk,
)
from repro.passes import instrument
from repro.passes.base import PassStats
from repro.passes.instrument import InstrumentedProgram
from repro.runtime.interpreter import Interpreter
from repro.runtime.session import Session
from repro.sanitizers import ASanMinusMinus, GiantSan


def _main_function(builder: ProgramBuilder):
    program = builder.build()
    return program.function("main")


# ----------------------------------------------------------------------
# CFG lowering + dominators
# ----------------------------------------------------------------------
class TestCfg:
    def test_straight_line_single_path(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.malloc("p", 64)
            f.store("p", 0, 4, 1)
        cfg = lower_function(_main_function(b))
        assert cfg.entry.index == 0
        assert cfg.exit.index == 1
        rpo = cfg.rpo()
        assert rpo[0] == cfg.entry.index
        assert rpo[-1] == cfg.exit.index

    def test_loop_gets_header_with_back_edge(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.malloc("p", 64)
            with f.loop("i", 0, 4) as i:
                f.store("p", i * 4, 4, 0)
        cfg = lower_function(_main_function(b))
        headers = [blk for blk in cfg.blocks if blk.kind == LOOP_HEADER]
        assert len(headers) == 1
        header = headers[0]
        assert header.loop is not None
        # the back edge makes the header its own dominator frontier:
        # one of its predecessors must be dominated by the header itself
        assert any(
            dominates(cfg, header.index, pred) for pred in header.preds
        )

    def test_if_join_dominated_by_condition_not_arms(self):
        b = ProgramBuilder()
        with b.function("main", params=["c"]) as f:
            f.malloc("p", 64)
            with f.if_(V("c").gt(0)):
                f.store("p", 0, 4, 1)
            with f.else_():
                f.store("p", 8, 4, 2)
            f.load("x", "p", 0, 4)
        fn = _main_function(b)
        cfg = lower_function(fn)
        blocks_of = {}
        for block in cfg.blocks:
            for instr in block.instrs:
                blocks_of[id(instr)] = block.index
        join_load = next(i for i in walk(fn.body) if isinstance(i, Load))
        arm_stores = [i for i in walk(fn.body) if isinstance(i, Store)]
        join_index = blocks_of[id(join_load)]
        for store in arm_stores:
            assert not dominates(cfg, blocks_of[id(store)], join_index)
        assert dominates(cfg, cfg.entry.index, join_index)


# ----------------------------------------------------------------------
# interval fixpoint
# ----------------------------------------------------------------------
class TestIntervals:
    def _offset_interval_at_store(self, function):
        cfg = lower_function(function)
        solution = solve(cfg, IntervalAnalysis())
        for block in cfg.blocks:
            if block.index not in solution.in_states:
                continue
            for instr, state in solution.replay(block):
                if isinstance(instr, Store):
                    return eval_expr(instr.offset, state)
        raise AssertionError("no store found")

    def test_loop_induction_variable_clamped(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.malloc("p", 4096)
            with f.loop("i", 0, 1024) as i:
                f.store("p", i * 4, 4, 0)
        interval = self._offset_interval_at_store(_main_function(b))
        assert interval.lo == 0
        assert interval.hi == 4092

    def test_join_hulls_both_arms(self):
        b = ProgramBuilder()
        with b.function("main", params=["c"]) as f:
            f.malloc("p", 64)
            with f.if_(V("c").gt(0)):
                f.assign("k", 3)
            with f.else_():
                f.assign("k", 7)
            f.store("p", V("k"), 4, 0)
        interval = self._offset_interval_at_store(_main_function(b))
        assert (interval.lo, interval.hi) == (3, 7)

    def test_division_by_zero_matches_interpreter_convention(self):
        # the interpreter defines x // 0 == x % 0 == 0
        assert eval_expr(BinOp("//", Const(10), Const(0)), {}) == const(0)
        assert eval_expr(BinOp("%", Const(10), Const(0)), {}) == const(0)

    def test_unknown_parameter_is_unbounded(self):
        b = ProgramBuilder()
        with b.function("main", params=["n"]) as f:
            f.malloc("p", 64)
            f.store("p", V("n"), 4, 0)
        interval = self._offset_interval_at_store(_main_function(b))
        assert interval.lo is None and interval.hi is None


# ----------------------------------------------------------------------
# allocation-state fixpoint + static bug detector
# ----------------------------------------------------------------------
class TestDetector:
    def test_definite_oob_store(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.malloc("p", 4096)
            f.store("p", 5000, 4, 1)
        findings = detect_function(FunctionDataflow(_main_function(b)))
        assert [f.kind for f in findings] == ["definite-oob"]
        assert findings[0].always_executes

    def test_definite_double_free(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.malloc("p", 64)
            f.free("p")
            f.free("p")
        findings = detect_function(FunctionDataflow(_main_function(b)))
        assert [f.kind for f in findings] == ["definite-double-free"]

    def test_definite_use_after_free(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.malloc("p", 64)
            f.free("p")
            f.load("x", "p", 0, 4)
        findings = detect_function(FunctionDataflow(_main_function(b)))
        assert [f.kind for f in findings] == ["definite-uaf"]

    def test_one_armed_free_is_not_definite(self):
        b = ProgramBuilder()
        with b.function("main", params=["c"]) as f:
            f.malloc("p", 64)
            with f.if_(V("c").gt(0)):
                f.free("p")
            f.load("x", "p", 0, 4)
        findings = detect_function(FunctionDataflow(_main_function(b)))
        assert findings == []

    def test_bug_in_one_arm_is_path_sensitive(self):
        b = ProgramBuilder()
        with b.function("main", params=["c"]) as f:
            f.malloc("p", 4096)
            with f.if_(V("c").gt(0)):
                f.store("p", 5000, 4, 1)
        findings = detect_function(FunctionDataflow(_main_function(b)))
        assert [f.kind for f in findings] == ["definite-oob"]
        assert not findings[0].always_executes

    def test_in_bounds_program_is_clean(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.malloc("p", 4096)
            with f.loop("i", 0, 1024) as i:
                f.store("p", i * 4, 4, 0)
            f.free("p")
        assert detect_function(FunctionDataflow(_main_function(b))) == []

    def test_analyze_program_covers_all_functions(self):
        b = ProgramBuilder()
        with b.function("helper") as f:
            f.malloc("q", 16)
            f.store("q", 100, 4, 1)
        with b.function("main") as m:
            m.call("helper", [])
        findings = analyze_program(b.build())
        assert [f.function for f in findings] == ["helper"]

    def test_allocstate_join_is_maybe(self):
        b = ProgramBuilder()
        with b.function("main", params=["c"]) as f:
            f.malloc("p", 64)
            with f.if_(V("c").gt(0)):
                f.free("p")
            f.load("x", "p", 0, 4)
        fn = _main_function(b)
        flow = FunctionDataflow(fn)
        load = next(i for i in walk(fn.body) if isinstance(i, Load))
        for block in flow.cfg.blocks:
            if not flow.reachable(block.index):
                continue
            states = [
                flow.alloc_analysis.copy(state)
                for _, state in flow.allocstate.replay(block)
            ]
            for position, instr in enumerate(block.instrs):
                if instr is load:
                    root = flow.pmap.provenance("p").root
                    assert (
                        AllocStateAnalysis.state_of(states[position], root)
                        != LIVE
                    )
                    return
        raise AssertionError("load not found in CFG")


# ----------------------------------------------------------------------
# cross-block check elimination at joins (the satellite cases)
# ----------------------------------------------------------------------
class TestCrossBlockElimination:
    def _giantsan_program(self, both_arms: bool):
        b = ProgramBuilder()
        with b.function("kernel", params=["p", "c"]) as f:
            with f.if_(V("c").gt(0)):
                f.load("a", "p", 80, 4)
            with f.else_():
                if both_arms:
                    f.load("b", "p", 80, 4)
                else:
                    f.assign("b", 1)
            f.load("d", "p", 40, 4)
        with b.function("main", params=["c"]) as m:
            m.malloc("buf", 256)
            m.call("kernel", [V("buf"), V("c")])
        return b.build()

    def test_check_after_if_with_wider_checks_in_both_arms_dies(self):
        ip = instrument(self._giantsan_program(True), tool=GiantSan())
        # anchored arm checks cover [0, 84) on both paths; the join
        # check [0, 44) is redundant on every path
        assert ip.stats.notes.get("cross_block_eliminated", 0) == 1
        kernel_checks = [
            i
            for i in walk(ip.program.function("kernel").body)
            if isinstance(i, CheckRegion)
        ]
        assert len(kernel_checks) == 2  # one per arm, none after the join

    def test_one_armed_coverage_does_not_eliminate(self):
        ip = instrument(self._giantsan_program(False), tool=GiantSan())
        assert ip.stats.notes.get("cross_block_eliminated", 0) == 0
        kernel_checks = [
            i
            for i in walk(ip.program.function("kernel").body)
            if isinstance(i, CheckRegion)
        ]
        assert len(kernel_checks) == 2  # the arm check AND the join check

    def test_asanmm_join_duplicate_eliminated(self):
        b = ProgramBuilder()
        with b.function("kernel", params=["p", "c"]) as f:
            with f.if_(V("c").gt(0)):
                f.load("a", "p", 40, 4)
            with f.else_():
                f.load("b", "p", 40, 4)
            f.load("d", "p", 40, 4)
        with b.function("main", params=["c"]) as m:
            m.malloc("buf", 256)
            m.call("kernel", [V("buf"), V("c")])
        ip = instrument(b.build(), tool=ASanMinusMinus())
        assert ip.stats.notes.get("cross_block_eliminated", 0) == 1
        kernel_checks = [
            i
            for i in walk(ip.program.function("kernel").body)
            if isinstance(i, CheckAccess)
        ]
        assert len(kernel_checks) == 2

    def test_pre_loop_check_covers_in_loop_duplicate(self):
        b = ProgramBuilder()
        with b.function("kernel", params=["p", "n"]) as f:
            f.load("a", "p", 0, 8)
            with f.loop("i", 0, V("n"), bounded=False) as i:
                f.load("b", "p", 0, 8)
                f.assign("s", V("b") + i)
        with b.function("main", params=["n"]) as m:
            m.malloc("buf", 64)
            m.call("kernel", [V("buf"), V("n")])
        ip = instrument(b.build(), tool=ASanMinusMinus())
        assert ip.stats.notes.get("cross_block_eliminated", 0) >= 1


# ----------------------------------------------------------------------
# static elision + the runtime audit
# ----------------------------------------------------------------------
def _elidable_program():
    b = ProgramBuilder()
    with b.function("main") as f:
        f.malloc("p", 64)
        f.load("x", "p", 0, 4)
        f.load("y", "p", 8, 4)
    return b.build()


class TestElisionAudit:
    def test_elisions_are_recorded_with_proofs(self):
        ip = instrument(_elidable_program(), tool=ASanMinusMinus())
        assert len(ip.stats.elisions) == 2
        for record in ip.stats.elisions:
            assert record.function == "main"
            assert record.site_id >= 0
            assert "size 64" in record.reason

    def test_audit_mode_wraps_instead_of_deleting(self):
        ip = instrument(
            _elidable_program(), tool=ASanMinusMinus(), audit_elisions=True
        )
        markers = [
            i
            for fn in ip.program.functions.values()
            for i in walk(fn.body)
            if isinstance(i, CheckElided)
        ]
        assert len(markers) == len(ip.stats.elisions) == 2
        assert all(isinstance(m.inner, CheckAccess) for m in markers)

    def test_audit_replay_is_invisible(self):
        plain = Session("ASan--", memoize=False, fastpath=False).run(
            _elidable_program()
        )
        audited = Session(
            "ASan--", memoize=False, fastpath=False, audit_elisions=True
        ).run(_elidable_program())
        assert audited.elision_audit_failures == []
        assert audited.stats.as_dict() == plain.stats.as_dict()
        assert audited.native_cycles == plain.native_cycles
        assert len(audited.errors) == len(plain.errors) == 0

    def test_unsound_elision_is_caught_and_rolled_back(self):
        # hand-build a marker whose inner check is definitely OOB: the
        # replay must flag it without perturbing stats or the error log
        b = ProgramBuilder()
        with b.function("main") as f:
            f.malloc("p", 16)
        program = b.build()
        program.function("main").body.append(
            CheckElided(
                inner=CheckAccess(
                    base="p",
                    offset=Const(100),
                    width=4,
                    access=AccessType.READ,
                    site_id=7,
                ),
                reason="deliberately bogus proof",
            )
        )
        iprogram = InstrumentedProgram(
            program=program, stats=PassStats(), style="instruction"
        )
        result = Interpreter(GiantSan()).run(iprogram)
        assert len(result.elision_audit_failures) == 1
        failure = result.elision_audit_failures[0]
        assert failure.site_id == 7
        assert "bogus" in failure.reason
        assert len(result.errors) == 0  # rolled back
        assert result.stats.reports == 0

    def test_fuzz_driver_flags_unsound_elisions(self):
        from repro.fuzz.driver import run_case
        from repro.fuzz.generator import generate_case

        for seed in range(20, 26):
            case = generate_case(seed, bug_probability=0.5)
            report = run_case(
                case, tools=("GiantSan", "ASan--"), audit_elisions=True
            )
            assert not [
                d for d in report.divergences if d.kind == "elision"
            ], report.divergences
