"""Tests for the memory-overhead accounting."""

from repro.sanitizers import ASan, GiantSan, HWASan, LFP, NativeSanitizer


class TestMemoryOverhead:
    def test_native_holds_nothing(self):
        san = NativeSanitizer()
        san.malloc(600)
        overhead = san.memory_overhead()
        assert overhead["shadow_bytes"] == 0
        assert overhead["slack_bytes"] == 0
        assert overhead["quarantine_bytes"] == 0

    def test_giantsan_matches_asan_exactly(self):
        """The compatibility claim: the folded encoding fits ASan's
        shadow budget byte for byte."""
        giant, asan = GiantSan(), ASan()
        for size in (7, 64, 600, 4096):
            giant.malloc(size)
            asan.malloc(size)
        g, a = giant.memory_overhead(), asan.memory_overhead()
        assert g["shadow_bytes"] == a["shadow_bytes"]
        assert g["redzone_bytes"] == a["redzone_bytes"]
        assert g["slack_bytes"] == a["slack_bytes"] == 0

    def test_shadow_is_one_eighth_of_address_space(self):
        san = GiantSan()
        assert san.memory_overhead()["shadow_bytes"] * 8 == san.layout.total_size

    def test_lfp_trades_shadow_for_slack(self):
        san = LFP()
        san.malloc(600)  # rounds to 640
        overhead = san.memory_overhead()
        assert overhead["shadow_bytes"] < 100
        assert overhead["slack_bytes"] == 40
        assert overhead["redzone_bytes"] <= 8

    def test_hwasan_tag_table_is_half_shadow(self):
        hw, asan = HWASan(), ASan()
        assert (
            hw.memory_overhead()["shadow_bytes"] * 2
            == asan.memory_overhead()["shadow_bytes"]
        )

    def test_quarantine_bytes_tracked(self):
        san = GiantSan()
        allocation = san.malloc(512)
        assert san.memory_overhead()["quarantine_bytes"] == 0
        san.free(allocation.base)
        assert (
            san.memory_overhead()["quarantine_bytes"] == allocation.chunk_size
        )

    def test_redzones_scale_with_setting(self):
        small = ASan(redzone=16)
        large = ASan(redzone=512)
        small.malloc(64)
        large.malloc(64)
        assert (
            large.memory_overhead()["redzone_bytes"]
            > small.memory_overhead()["redzone_bytes"] * 10
        )

    def test_freed_objects_leave_live_accounting(self):
        san = GiantSan()
        a = san.malloc(100)
        san.malloc(100)
        before = san.memory_overhead()["redzone_bytes"]
        san.free(a.base)
        after = san.memory_overhead()["redzone_bytes"]
        assert after < before
