"""Tests for arena layout and alignment helpers."""

import pytest

from repro.memory.layout import (
    ArenaLayout,
    NULL_GUARD_SIZE,
    SEGMENT_SIZE,
    align_down,
    align_up,
    is_aligned,
    segment_index,
    segment_offset,
    segments_spanned,
)


class TestAlignment:
    def test_align_up_exact_multiple(self):
        assert align_up(16, 8) == 16

    def test_align_up_rounds(self):
        assert align_up(17, 8) == 24

    def test_align_up_zero(self):
        assert align_up(0, 8) == 0

    def test_align_down(self):
        assert align_down(17, 8) == 16
        assert align_down(16, 8) == 16

    def test_align_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            align_up(10, 6)
        with pytest.raises(ValueError):
            align_down(10, 0)

    def test_is_aligned(self):
        assert is_aligned(24, 8)
        assert not is_aligned(25, 8)

    def test_default_alignment_is_object_alignment(self):
        assert align_up(1) == 8


class TestSegments:
    def test_segment_index(self):
        assert segment_index(0) == 0
        assert segment_index(7) == 0
        assert segment_index(8) == 1

    def test_segment_offset(self):
        assert segment_offset(13) == 5
        assert segment_offset(16) == 0

    def test_segments_spanned_single(self):
        assert segments_spanned(0, 8) == 1
        assert segments_spanned(0, 1) == 1

    def test_segments_spanned_straddle(self):
        assert segments_spanned(4, 8) == 2

    def test_segments_spanned_empty(self):
        assert segments_spanned(100, 0) == 0

    def test_segments_spanned_large(self):
        assert segments_spanned(0, 1024) == 128


class TestArenaLayout:
    def test_arenas_are_disjoint_and_ordered(self):
        layout = ArenaLayout()
        assert layout.heap_base == NULL_GUARD_SIZE
        assert layout.heap_end == layout.stack_base
        assert layout.stack_end == layout.globals_base
        assert layout.globals_end == layout.total_size

    def test_arena_of_classification(self):
        layout = ArenaLayout()
        assert layout.arena_of(0) == "null"
        assert layout.arena_of(NULL_GUARD_SIZE - 1) == "null"
        assert layout.arena_of(layout.heap_base) == "heap"
        assert layout.arena_of(layout.stack_base) == "stack"
        assert layout.arena_of(layout.globals_base) == "globals"
        assert layout.arena_of(layout.total_size) == "wild"
        assert layout.arena_of(-1) == "wild"

    def test_rejects_unaligned_sizes(self):
        with pytest.raises(ValueError):
            ArenaLayout(heap_size=100)

    def test_rejects_non_positive_sizes(self):
        with pytest.raises(ValueError):
            ArenaLayout(stack_size=0)

    def test_total_size_segment_aligned(self):
        layout = ArenaLayout()
        assert layout.total_size % SEGMENT_SIZE == 0
