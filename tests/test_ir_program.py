"""Tests for Program containers and tree-walking utilities."""

from repro.ir import (
    Load,
    Loop,
    ProgramBuilder,
    Store,
    V,
    assign_site_ids,
    memory_sites,
    transform_blocks,
    walk,
    walk_with_depth,
)
from repro.ir.nodes import Assign, Const


def nested_program():
    b = ProgramBuilder()
    with b.function("main") as f:
        f.malloc("p", 1024)
        with f.loop("i", 0, 4):
            f.load("x", "p", V("i") * 8, 8)
            with f.if_(V("x").gt(0)):
                f.store("p", 0, 8, 1)
            with f.loop("j", 0, 4):
                f.store("p", V("j"), 1, 0)
    return b.build()


class TestWalk:
    def test_walk_visits_all(self):
        program = nested_program()
        kinds = [type(i).__name__ for i in walk(program.function("main").body)]
        assert kinds.count("Load") == 1
        assert kinds.count("Store") == 2
        assert kinds.count("Loop") == 2
        assert kinds.count("If") == 1

    def test_walk_with_depth(self):
        program = nested_program()
        depths = {
            type(i).__name__: d
            for i, d in walk_with_depth(program.function("main").body)
        }
        assert depths["Malloc"] == 0
        assert depths["Load"] == 1
        assert depths["Store"] == 2  # the innermost store wins the dict

    def test_memory_sites(self):
        program = nested_program()
        sites = memory_sites(program)
        assert len(sites) == 3
        assert all(isinstance(s, (Load, Store)) for s in sites)

    def test_assign_site_ids(self):
        program = nested_program()
        count = assign_site_ids(program)
        assert count == 3
        assert sorted(s.site_id for s in memory_sites(program)) == [0, 1, 2]


class TestTransformBlocks:
    def test_insertion_everywhere(self):
        program = nested_program()

        def prepend_marker(block):
            return [Assign("_marker", Const(0))] + block

        function = program.function("main")
        function.body = transform_blocks(function.body, prepend_marker)
        # one marker per block: top, loop i, if-then, if-else, loop j
        markers = [
            i
            for i in walk(function.body)
            if isinstance(i, Assign) and i.dst == "_marker"
        ]
        assert len(markers) == 5

    def test_filtering(self):
        program = nested_program()

        def drop_stores(block):
            return [i for i in block if not isinstance(i, Store)]

        function = program.function("main")
        function.body = transform_blocks(function.body, drop_stores)
        assert not [i for i in walk(function.body) if isinstance(i, Store)]


class TestClone:
    def test_clone_is_deep(self):
        program = nested_program()
        clone = program.clone()
        clone.function("main").body.clear()
        assert program.function("main").body  # original intact
