"""Tests for the shared sanitizer base class and the native baseline."""

import pytest

from repro.errors import AccessType
from repro.memory import ArenaLayout
from repro.sanitizers import CheckStats, NativeSanitizer, Sanitizer
from repro.sanitizers.base import AccessCache


class TestCheckStats:
    def test_reset(self):
        stats = CheckStats(shadow_loads=5, checks_executed=2)
        stats.reset()
        assert stats.shadow_loads == 0
        assert stats.checks_executed == 0

    def test_as_dict_roundtrip(self):
        stats = CheckStats(shadow_loads=3)
        d = stats.as_dict()
        assert d["shadow_loads"] == 3
        assert set(d) >= {"fast_checks", "slow_checks", "cached_hits"}

    def test_merged(self):
        a = CheckStats(shadow_loads=3, reports=1)
        b = CheckStats(shadow_loads=4, frees=2)
        m = a.merged(b)
        assert m.shadow_loads == 7
        assert m.reports == 1
        assert m.frees == 2
        assert a.shadow_loads == 3  # originals untouched


class TestAccessCache:
    def test_initially_covers_nothing(self):
        cache = AccessCache()
        assert not cache.covers(1)
        assert cache.covers(0)

    def test_reset(self):
        cache = AccessCache()
        cache.ub = 100
        assert cache.covers(100)
        cache.reset()
        assert not cache.covers(1)


class TestNativeSanitizer:
    @pytest.fixture
    def native(self):
        return NativeSanitizer(
            layout=ArenaLayout(
                heap_size=1 << 16, stack_size=1 << 14, globals_size=1 << 13
            )
        )

    def test_all_checks_pass(self, native):
        assert native.check_access(123456, 8, AccessType.READ)
        assert native.check_region(0, 1 << 20, AccessType.WRITE)

    def test_no_stats_charged(self, native):
        allocation = native.malloc(64)
        native.free(allocation.base)
        assert native.stats.allocations == 0
        assert native.stats.frees == 0
        assert native.stats.shadow_loads == 0

    def test_memory_reusable_immediately(self, native):
        a = native.malloc(64)
        native.free(a.base)
        b = native.malloc(64)
        assert b.chunk_base == a.chunk_base

    def test_bad_free_silently_ignored(self, native):
        native.free(424242)  # UB in C; native crashes or corrupts silently
        assert not native.log

    def test_no_redzone(self, native):
        allocation = native.malloc(64)
        assert allocation.left_redzone == 0


class TestBaseSanitizerPlumbing:
    def test_base_checks_default_true(self):
        san = Sanitizer(
            layout=ArenaLayout(
                heap_size=1 << 16, stack_size=1 << 14, globals_size=1 << 13
            )
        )
        assert san.check_access(0, 8, AccessType.READ)
        cache = san.make_cache()
        assert san.check_cached(cache, 4096, 0, 8, AccessType.READ)

    def test_repr_contains_error_count(self):
        san = Sanitizer()
        assert "errors=0" in repr(san)

    def test_error_count_property(self):
        san = Sanitizer()
        assert san.error_count == 0
