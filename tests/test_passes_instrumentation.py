"""Tests for placement, merging, promotion, caching, and the pipelines.

These encode the paper's Table 1 and Figure 8 transformations as
assertions on the instrumented IR.
"""

import pytest

from repro.ir import (
    CacheFinalize,
    CheckAccess,
    CheckCached,
    CheckRegion,
    Loop,
    ProgramBuilder,
    Protection,
    V,
    memory_sites,
    walk,
)
from repro.passes import instrument
from repro.sanitizers import (
    ASan,
    ASanMinusMinus,
    GiantSan,
    LFP,
    NativeSanitizer,
    make_cache_only,
    make_elimination_only,
)


def find_loops(program):
    return [
        i
        for f in program.functions.values()
        for i in walk(f.body)
        if isinstance(i, Loop)
    ]


def checks_in(program_or_block, kinds=(CheckAccess, CheckRegion, CheckCached)):
    if isinstance(program_or_block, list):
        return [i for i in walk(program_or_block) if isinstance(i, kinds)]
    return [
        i
        for f in program_or_block.functions.values()
        for i in walk(f.body)
        if isinstance(i, kinds)
    ]


def constant_offsets_program():
    """Table 1 row 1: p[0] + p[10] + p[20] on a pointer of unknown size
    (a parameter, as in the paper's example — so ASan-- cannot simply
    prove the accesses in-bounds and drop them)."""
    b = ProgramBuilder()
    with b.function("kernel", params=["p"]) as f:
        f.load("a", "p", 0, 4)
        f.load("b", "p", 40, 4)
        f.load("c", "p", 80, 4)
    with b.function("main") as m:
        m.malloc("buf", 256)
        m.call("kernel", [V("buf")])
    return b.build()


def bounded_loop_program():
    """Table 1 row 3: for (i = 0; i < N; i++) p[i] = foo(i)."""
    b = ProgramBuilder()
    with b.function("kernel", params=["p", "N"]) as f:
        with f.loop("i", 0, V("N")) as i:
            f.store("p", i * 4, 4, i)
    with b.function("main", params=["N"]) as m:
        m.malloc("buf", 4096)
        m.call("kernel", [V("buf"), V("N")])
    return b.build()


def unbounded_loop_program():
    """Table 1 row 4 flavour: data-dependent index in a loop."""
    b = ProgramBuilder()
    with b.function("kernel", params=["idx", "p", "N"]) as f:
        with f.loop("i", 0, V("N"), bounded=False) as i:
            f.load("j", "idx", i * 4, 4)
            f.store("p", V("j") * 4, 4, i)
    with b.function("main", params=["N"]) as m:
        m.malloc("ib", 4096)
        m.malloc("pb", 4096)
        m.call("kernel", [V("ib"), V("pb"), V("N")])
    return b.build()


class TestPlacementStyles:
    def test_asan_gets_instruction_checks(self):
        ip = instrument(constant_offsets_program(), tool=ASan())
        checks = checks_in(ip.program)
        assert len(checks) == 3
        assert all(isinstance(c, CheckAccess) for c in checks)

    def test_giantsan_gets_region_checks(self):
        ip = instrument(constant_offsets_program(), tool=make_cache_only())
        checks = checks_in(ip.program)
        assert len(checks) == 3
        assert all(isinstance(c, CheckRegion) for c in checks)
        assert all(c.use_anchor for c in checks)

    def test_native_gets_nothing(self):
        ip = instrument(constant_offsets_program(), tool=NativeSanitizer())
        assert not checks_in(ip.program)
        assert all(
            s.protection is Protection.UNPROTECTED
            for s in memory_sites(ip.program)
        )

    def test_lfp_region_checks_without_merging(self):
        ip = instrument(constant_offsets_program(), tool=LFP())
        checks = checks_in(ip.program)
        assert len(checks) == 3


class TestTable1ConstantPropagation:
    def test_giantsan_merges_to_one_check(self):
        ip = instrument(constant_offsets_program(), tool=GiantSan())
        checks = checks_in(ip.program)
        assert len(checks) == 1
        only = checks[0]
        assert isinstance(only, CheckRegion)
        # merged span covers [0, 84): p[0..4) through p[80..84)
        from repro.ir.nodes import Const

        assert only.start == Const(0)
        assert only.end == Const(84)
        assert ip.stats.eliminated == 2

    def test_asanmm_cannot_merge_distinct_offsets(self):
        ip = instrument(constant_offsets_program(), tool=ASanMinusMinus())
        assert len(checks_in(ip.program)) == 3

    def test_asanmm_removes_exact_duplicates(self):
        b = ProgramBuilder()
        with b.function("kernel", params=["p"]) as f:
            f.load("a", "p", 0, 8)
            f.store("p", 0, 8, V("a"))  # must-aliased with the load
        with b.function("main") as m:
            m.malloc("buf", 64)
            m.call("kernel", [V("buf")])
        ip = instrument(b.build(), tool=ASanMinusMinus())
        assert len(checks_in(ip.program)) == 1
        assert ip.stats.eliminated == 1

    def test_duplicate_elimination_stops_at_call(self):
        """Intraprocedurally a call clobbers the fact; with summaries
        the provably non-freeing callee is transparent."""
        b = ProgramBuilder()
        with b.function("callee"):
            pass
        with b.function("kernel", params=["p"]) as f:
            f.load("a", "p", 0, 8)
            f.call("callee")
            f.load("b", "p", 0, 8)
        with b.function("main") as m:
            m.malloc("buf", 64)
            m.call("kernel", [V("buf")])
        ip = instrument(
            b.build(), tool=ASanMinusMinus(), interprocedural=False
        )
        assert len(checks_in(ip.program)) == 2
        ip = instrument(
            b.build(), tool=ASanMinusMinus(), interprocedural=True
        )
        assert len(checks_in(ip.program)) == 1

    def test_asanmm_safe_access_removal_with_known_size(self):
        """When the allocation size IS visible (same function, constant),
        ASan-- drops the provably in-bounds checks entirely."""
        b = ProgramBuilder()
        with b.function("main") as f:
            f.malloc("p", 64)
            f.load("a", "p", 0, 8)
            f.load("b", "p", 56, 8)
        ip = instrument(b.build(), tool=ASanMinusMinus())
        assert len(checks_in(ip.program)) == 0
        assert ip.stats.notes.get("safe_access_removed") == 2

    def test_safe_access_keeps_out_of_bounds_checks(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.malloc("p", 64)
            f.load("a", "p", 64, 8)  # one past the end: must keep check
        ip = instrument(b.build(), tool=ASanMinusMinus())
        assert len(checks_in(ip.program)) == 1

    def test_safe_access_proves_affine_loops(self):
        """A constant-trip loop over a known-size local buffer is fully
        provable (the lbm-style case ASan-- wins on)."""
        b = ProgramBuilder()
        with b.function("main") as f:
            f.malloc("p", 4096)
            with f.loop("i", 0, 1024) as i:
                f.store("p", i * 4, 4, i)
        ip = instrument(b.build(), tool=ASanMinusMinus())
        assert len(checks_in(ip.program)) == 0

    def test_safe_access_rejects_overflowing_loop(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.malloc("p", 4096)
            with f.loop("i", 0, 1025) as i:  # last store is out of bounds
                f.store("p", i * 4, 4, i)
        ip = instrument(b.build(), tool=ASanMinusMinus())
        assert len(checks_in(ip.program)) >= 1


class TestTable1LoopPromotion:
    def test_giantsan_promotes_bounded_loop(self):
        ip = instrument(bounded_loop_program(), tool=GiantSan())
        loop = find_loops(ip.program)[0]
        assert not checks_in(loop.body)  # hoisted out
        checks = checks_in(ip.program)
        assert len(checks) == 1
        assert isinstance(checks[0], CheckRegion)
        assert ip.stats.promoted == 1

    def test_asan_keeps_check_in_loop(self):
        ip = instrument(bounded_loop_program(), tool=ASan())
        loop = find_loops(ip.program)[0]
        assert len(checks_in(loop.body)) == 1

    def test_asanmm_relocates_varying_access(self):
        """ASan--'s check relocation: a monotonic in-loop access is
        replaced by first/last-iteration checks before the loop."""
        ip = instrument(bounded_loop_program(), tool=ASanMinusMinus())
        loop = find_loops(ip.program)[0]
        assert not checks_in(loop.body)
        relocated = checks_in(ip.program)
        assert len(relocated) == 2
        assert all(isinstance(c, CheckAccess) for c in relocated)

    def test_asanmm_hoists_invariant_access(self):
        b = ProgramBuilder()
        with b.function("kernel", params=["p"]) as f:
            with f.loop("i", 0, 100):
                f.store("p", 0, 8, V("i"))
        with b.function("main") as m:
            m.malloc("buf", 64)
            m.call("kernel", [V("buf")])
        ip = instrument(b.build(), tool=ASanMinusMinus())
        loop = find_loops(ip.program)[0]
        assert not checks_in(loop.body)
        assert len(checks_in(ip.program)) == 1

    def test_unbounded_loop_not_promoted(self):
        ip = instrument(unbounded_loop_program(), tool=make_elimination_only())
        loop = find_loops(ip.program)[0]
        assert checks_in(loop.body)  # checks remain inside

    def test_free_in_loop_blocks_promotion(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.malloc("p", 4096)
            f.malloc("q", 64)
            with f.loop("i", 0, 4) as i:
                f.store("p", i * 4, 4, i)
                f.free("q")
        ip = instrument(b.build(), tool=make_elimination_only())
        loop = next(
            i
            for i in walk(ip.program.function("main").body)
            if isinstance(i, Loop)
        )
        assert checks_in(loop.body)

    def test_conditional_access_not_promoted(self):
        b = ProgramBuilder()
        with b.function("main", params=["N"]) as f:
            f.malloc("p", 4096)
            with f.loop("i", 0, V("N")) as i:
                with f.if_(i.gt(2)):
                    f.store("p", i * 4, 4, i)
        ip = instrument(b.build(), tool=make_elimination_only())
        assert ip.stats.promoted == 0


class TestHistoryCachingPass:
    def test_unbounded_loop_uses_cache(self):
        ip = instrument(unbounded_loop_program(), tool=GiantSan())
        cached = checks_in(ip.program, kinds=(CheckCached,))
        assert len(cached) == 2  # idx[i*4] and p[j*4]
        finalizers = [
            i
            for f in ip.program.functions.values()
            for i in walk(f.body)
            if isinstance(i, CacheFinalize)
        ]
        assert len(finalizers) == 2
        assert ip.cache_count == 2

    def test_cache_only_variant_caches_everything_in_loops(self):
        ip = instrument(bounded_loop_program(), tool=make_cache_only())
        cached = checks_in(ip.program, kinds=(CheckCached,))
        assert len(cached) == 1  # no promotion, so the store is cached
        assert ip.stats.promoted == 0

    def test_elimination_only_has_no_caches(self):
        ip = instrument(unbounded_loop_program(), tool=make_elimination_only())
        assert not checks_in(ip.program, kinds=(CheckCached,))

    def test_sites_tagged_cached(self):
        ip = instrument(unbounded_loop_program(), tool=GiantSan())
        protections = [s.protection for s in memory_sites(ip.program)]
        assert protections.count(Protection.CACHED) == 2


class TestPipelineSummary:
    def test_remaining_checks_counted(self):
        ip = instrument(constant_offsets_program(), tool=GiantSan())
        assert ip.static_checks == 1
        assert ip.stats.baseline_checks == 3

    def test_instrument_requires_tool_or_caps(self):
        with pytest.raises(ValueError):
            instrument(constant_offsets_program())

    def test_instrument_with_raw_caps(self):
        from repro.sanitizers.base import Capabilities

        caps = Capabilities(constant_time_region=True, check_elimination=True)
        ip = instrument(constant_offsets_program(), caps=caps)
        assert ip.static_checks == 1

    def test_source_program_not_mutated(self):
        source = constant_offsets_program()
        instrument(source, tool=GiantSan())
        assert not checks_in(source)
