"""Tests for the §5.4 reverse-traversal mitigation (quasi-lower-bound)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AccessType, ErrorKind
from repro.memory import ArenaLayout
from repro.sanitizers import GiantSan

SMALL = ArenaLayout(heap_size=1 << 17, stack_size=1 << 14, globals_size=1 << 13)


def mitigated():
    return GiantSan(layout=SMALL, enable_lower_bound=True)


class TestLocateLowerBound:
    @pytest.mark.parametrize("size", [8, 24, 68, 100, 1024, 5000])
    def test_exact_from_any_interior_address(self, size):
        san = mitigated()
        allocation = san.malloc(size)
        for probe in (0, 7, size // 3, size // 2, size - 1):
            assert (
                san.locate_lower_bound(allocation.base + probe)
                == allocation.base
            ), (size, probe)

    def test_logarithmic_load_count(self):
        import math

        san = mitigated()
        allocation = san.malloc(1 << 14)
        san.reset_stats()
        san.locate_lower_bound(allocation.base + (1 << 14) - 4)
        segments = (1 << 14) >> 3
        bound = (math.ceil(math.log2(segments)) + 1) ** 2
        assert san.stats.shadow_loads <= bound

    def test_from_poisoned_address_returns_in_place(self):
        san = mitigated()
        allocation = san.malloc(64)
        probe = allocation.base - 8  # left redzone
        assert san.locate_lower_bound(probe) == probe & ~7

    def test_does_not_cross_into_previous_object(self):
        san = mitigated()
        first = san.malloc(256)
        second = san.malloc(256)
        lo, hi = sorted([first.base, second.base])
        assert san.locate_lower_bound(hi + 128) == hi

    @given(st.integers(min_value=1, max_value=3000),
           st.integers(min_value=0, max_value=2999))
    @settings(max_examples=100, deadline=None)
    def test_property_exact(self, size, probe):
        if probe >= size:
            probe = size - 1
        san = mitigated()
        allocation = san.malloc(size)
        assert (
            san.locate_lower_bound(allocation.base + probe) == allocation.base
        )


class TestQuasiLowerBoundCache:
    def test_reverse_walk_mostly_hits(self):
        san = mitigated()
        allocation = san.malloc(4096)
        cache = san.make_cache()
        end = allocation.base + 4096
        san.reset_stats()
        for i in range(1, 1024):
            assert san.check_cached(cache, end, -4 * i, 4, AccessType.READ)
        assert san.stats.cached_hits >= 1000
        assert san.stats.region_checks <= 4

    def test_underflow_still_detected(self):
        san = mitigated()
        allocation = san.malloc(256)
        cache = san.make_cache()
        end = allocation.base + 256
        for i in range(1, 64):
            san.check_cached(cache, end, -4 * i, 4, AccessType.READ)
        assert not san.check_cached(cache, end, -260, 4, AccessType.READ)
        assert ErrorKind.HEAP_BUFFER_UNDERFLOW in san.log.kinds()

    def test_lower_bound_never_overclaims(self):
        san = mitigated()
        allocation = san.malloc(100)
        cache = san.make_cache()
        end = allocation.base + 96  # aligned interior anchor
        san.check_cached(cache, end, -8, 8, AccessType.READ)
        assert end + cache.lb >= allocation.base

    def test_disabled_by_default(self):
        san = GiantSan(layout=SMALL)
        allocation = san.malloc(1024)
        cache = san.make_cache()
        end = allocation.base + 1024
        for i in range(1, 16):
            san.check_cached(cache, end, -4 * i, 4, AccessType.READ)
        assert san.stats.cached_hits == 0
        assert cache.lb == 0

    def test_mitigation_removes_reverse_penalty(self):
        """With the quasi-lower-bound, reverse traversal costs about the
        same as forward traversal (the §5.4 'second solution')."""
        from repro.runtime import Interpreter
        from repro.passes import instrument
        from repro.workloads.traversals import forward_traversal
        from repro import ProgramBuilder, V

        size = 4096
        b = ProgramBuilder()
        with b.function("walk", params=["y", "n"]) as f:
            f.ptr_add("p", "y", V("n") * 4)
            with f.loop("i", 1, V("n") + 1, bounded=False) as i:
                f.load("t", "p", 0 - i * 4, 4)
                f.compute(2.0)
        with b.function("main") as m:
            m.malloc("buf", size)
            m.call("walk", [V("buf"), size // 4])
        reverse_program = b.build()

        plain = GiantSan(layout=SMALL)
        plain_result = Interpreter(plain).run(
            instrument(reverse_program, tool=plain)
        )
        fixed = mitigated()
        fixed_result = Interpreter(fixed).run(
            instrument(reverse_program, tool=fixed)
        )
        assert fixed_result.total_cycles() < plain_result.total_cycles() * 0.8
        assert not fixed_result.errors
