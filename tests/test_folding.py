"""Tests for the binary segment-folding math (paper §4.1)."""

import pytest
from hypothesis import given, strategies as st

from repro.shadow.folding import (
    MAX_DEGREE,
    degree_for_remaining,
    floor_log2,
    fold_degrees,
    run_lengths,
    verify_degrees,
)


class TestFloorLog2:
    @pytest.mark.parametrize(
        "value,expected",
        [(1, 0), (2, 1), (3, 1), (4, 2), (7, 2), (8, 3), (1023, 9), (1024, 10)],
    )
    def test_values(self, value, expected):
        assert floor_log2(value) == expected

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            floor_log2(0)
        with pytest.raises(ValueError):
            floor_log2(-4)


class TestFoldDegrees:
    def test_figure5_pattern(self):
        # 68-byte object: 8 good segments fold as (3)(2)(2)(2)(2)(1)(1)(0)
        assert fold_degrees(8) == [3, 2, 2, 2, 2, 1, 1, 0]

    def test_single_segment(self):
        assert fold_degrees(1) == [0]

    def test_two_segments(self):
        assert fold_degrees(2) == [1, 0]

    def test_empty(self):
        assert fold_degrees(0) == []

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            fold_degrees(-1)

    def test_power_of_two_counts(self):
        # counting from the object's end: one (0), two (1), four (2), ...
        degrees = fold_degrees(16)
        tail = degrees[::-1]
        assert tail[0] == 0
        assert tail[1:3] == [1, 1]
        assert tail[3:7] == [2, 2, 2, 2]
        assert tail[7:15] == [3] * 8
        assert degrees[0] == 4

    @given(st.integers(min_value=0, max_value=5000))
    def test_length_matches(self, good):
        assert len(fold_degrees(good)) == good

    @given(st.integers(min_value=1, max_value=5000))
    def test_folding_invariant(self, good):
        """Degree d at position j guarantees 2^d good segments remain."""
        assert verify_degrees(fold_degrees(good))

    @given(st.integers(min_value=1, max_value=5000))
    def test_degrees_non_increasing(self, good):
        degrees = fold_degrees(good)
        assert all(a >= b for a, b in zip(degrees, degrees[1:]))

    @given(st.integers(min_value=1, max_value=5000))
    def test_first_degree_is_floor_log(self, good):
        assert fold_degrees(good)[0] == min(floor_log2(good), MAX_DEGREE)

    @given(st.integers(min_value=1, max_value=5000))
    def test_degree_formula_positionwise(self, good):
        """degree(j) == floor(log2(remaining))."""
        degrees = fold_degrees(good)
        for j, degree in enumerate(degrees):
            assert degree == min(floor_log2(good - j), MAX_DEGREE)


class TestRunLengths:
    @given(st.integers(min_value=0, max_value=5000))
    def test_matches_fold_degrees(self, good):
        expanded = []
        for degree, run in run_lengths(good):
            expanded.extend([degree] * run)
        assert expanded == fold_degrees(good)

    def test_runs_compact(self):
        runs = run_lengths(8)
        assert runs == [(3, 1), (2, 4), (1, 2), (0, 1)]


class TestVerifyDegrees:
    def test_accepts_valid(self):
        assert verify_degrees([1, 0])

    def test_rejects_overclaim(self):
        assert not verify_degrees([2, 0])  # degree 2 needs 4 segments

    def test_empty_is_valid(self):
        assert verify_degrees([])


class TestDegreeForRemaining:
    def test_caps_at_max_degree(self):
        # 2^64 segments would fold at degree 64 (7 bits); the cap clamps
        assert degree_for_remaining(1 << 64) == MAX_DEGREE
        assert degree_for_remaining((1 << 65) - 1) == MAX_DEGREE

    def test_uncapped_below_max(self):
        # degrees right below the cap are NOT clamped (the old cap of 62
        # silently truncated degree 63, which fits the paper's six bits)
        assert degree_for_remaining(1 << 62) == 62
        assert degree_for_remaining(1 << 63) == MAX_DEGREE == 63

    @given(st.integers(min_value=1, max_value=1 << 20))
    def test_never_overclaims(self, remaining):
        assert (1 << degree_for_remaining(remaining)) <= remaining


class TestMaxDegreeEncoderConsistency:
    """MAX_DEGREE must equal the encoder's representable range exactly."""

    def test_every_degree_up_to_cap_encodes(self):
        from repro.shadow.giantsan_encoding import decode_degree, encode_folded

        for degree in range(MAX_DEGREE + 1):
            code = encode_folded(degree)
            assert 1 <= code <= 64  # code 0 is reserved, never emitted
            assert decode_degree(code) == degree

    def test_degree_beyond_cap_rejected(self):
        from repro.shadow.giantsan_encoding import encode_folded

        with pytest.raises(ValueError):
            encode_folded(MAX_DEGREE + 1)

    def test_run_lengths_at_giant_scale(self):
        """Objects big enough to hit the cap fold without materializing
        per-segment lists: the head run absorbs the clamp."""
        good = 1 << 64  # 2^64 good segments (cap territory)
        runs = run_lengths(good)
        head_degree, head_run = runs[0]
        assert head_degree == MAX_DEGREE
        # every clamped head segment still satisfies the invariant:
        # 2^MAX_DEGREE <= remaining for each of the head-run positions
        assert head_run == good - (1 << MAX_DEGREE) + 1
        assert sum(run for _, run in runs) == good
        # after the head, degrees descend exactly as the formula says
        for degree, _ in runs[1:]:
            assert degree < MAX_DEGREE

    def test_giant_scale_head_degrees_verify(self):
        """A synthetic prefix of the giant fold passes verify_degrees
        when padded with the guaranteed remaining segments."""
        # degree sequence for 2^63 + 2 good segments starts [63, 63, 62?]
        runs = run_lengths((1 << 63) + 2)
        assert runs[0] == (MAX_DEGREE, 3)
        # the tail below the cap folds exactly like a small object
        expanded_small = run_lengths((1 << 63) - 1)
        assert expanded_small[0][0] == 62
