"""Telemetry registry, sampling profiler, and profile-study tests.

The load-bearing suite here validates the counters against ground
truth: an independent shim around the sanitizer's check entry points
recounts every check on real Table 2 kernels and re-answers each region
check with the byte-exact shadow oracle, then the telemetry snapshot
must agree with both.
"""

import pytest

from repro import ProgramBuilder, Session
from repro.analysis import (
    ProfileStudy,
    profile_program,
    profile_to_json,
    quasi_bound_limit,
    render_profile,
    run_profile_study,
    telemetry_to_rows,
    wiring_problems,
)
from repro.errors import AccessType
from repro.sanitizers import GiantSan
from repro.shadow.oracle import giantsan_region_is_addressable
from repro.telemetry import (
    PhaseProfiler,
    Telemetry,
    TelemetrySnapshot,
    telemetry_enabled_default,
)
from repro.workloads.spec import SPEC_BY_NAME


# ----------------------------------------------------------------------
# sampling profiler
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 1.0
        return self.now


class TestPhaseProfiler:
    def test_exhaustive_mode_times_every_event(self):
        profiler = PhaseProfiler(sample_interval=1, clock=FakeClock())
        for _ in range(5):
            started = profiler.begin("loop")
            assert started is not None
            profiler.end("loop", started)
        stat = profiler.phases["loop"]
        assert stat.events == 5
        assert stat.samples == 5
        assert stat.sampled_seconds == 5.0  # fake clock: 1s per timing
        assert stat.estimated_seconds == 5.0

    def test_sampling_scales_estimate(self):
        profiler = PhaseProfiler(sample_interval=4, clock=FakeClock())
        for _ in range(8):
            profiler.end("loop", profiler.begin("loop"))
        stat = profiler.phases["loop"]
        assert stat.events == 8
        assert stat.samples == 2  # events 1 and 5
        assert stat.estimated_seconds == stat.sampled_seconds * 4

    def test_first_event_always_sampled(self):
        profiler = PhaseProfiler(sample_interval=1000, clock=FakeClock())
        assert profiler.begin("once") is not None
        assert profiler.begin("once") is None

    def test_end_without_sample_is_noop(self):
        profiler = PhaseProfiler(sample_interval=2, clock=FakeClock())
        profiler.end("loop", profiler.begin("loop"))
        profiler.end("loop", profiler.begin("loop"))  # unsampled
        assert profiler.phases["loop"].samples == 1

    def test_summary_shape(self):
        profiler = PhaseProfiler(sample_interval=1, clock=FakeClock())
        profiler.end("a", profiler.begin("a"))
        summary = profiler.summary()
        assert set(summary["a"]) == {
            "events", "samples", "sampled_seconds", "estimated_seconds",
        }


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestTelemetryRegistry:
    def test_attach_is_idempotent_per_sanitizer(self):
        san = GiantSan()
        tele = Telemetry()
        assert tele.attach(san) is tele
        before = san.malloc  # re-attach must not re-wrap
        tele.attach(san)
        assert san.malloc is before

    def test_attach_to_second_sanitizer_raises(self):
        tele = Telemetry()
        tele.attach(GiantSan())
        with pytest.raises(ValueError):
            tele.attach(GiantSan())

    def test_redzone_probe(self):
        san = GiantSan()
        Telemetry().attach(san)
        allocation = san.malloc(100)
        expected = allocation.left_redzone + allocation.right_redzone
        assert san.telemetry.counters["redzone_bytes_poisoned"] == expected

    def test_snapshot_mirrors_checkstats_exactly(self):
        san = GiantSan()
        tele = Telemetry()
        tele.attach(san)
        allocation = san.malloc(256)
        for offset in range(0, 256, 8):
            san.check_region(
                allocation.base + offset, allocation.base + offset + 8,
                AccessType.READ,
            )
        snap = tele.snapshot()
        stats = san.stats
        assert snap.counters["checks_executed"] == stats.checks_executed
        assert snap.counters["region_checks"] == stats.region_checks
        assert snap.counters["fast_check_hits"] == stats.fast_checks
        assert snap.counters["slow_path_entries"] == stats.slow_checks
        assert snap.counters["shadow_bytes_loaded"] == stats.shadow_loads
        assert snap.counters["allocations"] == stats.allocations

    def test_quarantine_peak_in_snapshot(self):
        san = GiantSan()
        tele = Telemetry()
        tele.attach(san)
        allocation = san.malloc(128)
        san.free(allocation.base)
        snap = tele.snapshot()
        assert snap.quarantine_peak_bytes >= allocation.chunk_size

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        assert telemetry_enabled_default() is False
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        assert telemetry_enabled_default() is True
        monkeypatch.setenv("REPRO_TELEMETRY", "off")
        assert telemetry_enabled_default() is False

    def test_snapshot_as_dict_schema(self):
        snap = TelemetrySnapshot(
            tool="GiantSan",
            counters={"fast_check_hits": 3, "slow_path_entries": 1},
            convergence_per_site={7: 2},
        )
        payload = snap.as_dict()
        assert payload["quasi_bound_convergence"]["max_steps"] == 2
        assert payload["quasi_bound_convergence"]["per_site"] == {"7": 2}
        assert snap.fast_slow_split == (3, 1)
        assert snap.fast_fraction == 0.75


# ----------------------------------------------------------------------
# session integration
# ----------------------------------------------------------------------
def small_program():
    b = ProgramBuilder()
    with b.function("main") as f:
        f.malloc("p", 256)
        with f.loop("i", 0, 16):
            f.store("p", 0, 8, 1)
        f.free("p")
    return b.build()


class TestSessionIntegration:
    def test_off_by_default(self):
        session = Session("GiantSan")
        result = session.run(small_program())
        assert session.telemetry is None
        assert result.telemetry is None
        assert session.sanitizer.telemetry is None  # no probes installed

    def test_on_yields_snapshot(self):
        result = Session("GiantSan", telemetry=True).run(small_program())
        assert isinstance(result.telemetry, TelemetrySnapshot)
        assert result.telemetry.tool == "GiantSan"
        assert result.telemetry.counters["allocations"] == 1

    def test_env_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        session = Session("GiantSan")
        assert session.telemetry is not None

    def test_shared_registry_accumulates(self):
        tele = Telemetry()
        session = Session("GiantSan", telemetry=tele)
        session.run(small_program())
        first = tele.snapshot().counters["allocations"]
        session.run(small_program())
        assert tele.snapshot().counters["allocations"] == first + 1

    @pytest.mark.parametrize("fastpath", [False, True])
    def test_results_invariant_under_telemetry(self, fastpath):
        spec = SPEC_BY_NAME["505.mcf_r"]
        plain = Session("GiantSan", fastpath=fastpath).run(spec.build(), [1])
        traced = Session(
            "GiantSan", fastpath=fastpath, telemetry=True
        ).run(spec.build(), [1])
        assert plain.stats.as_dict() == traced.stats.as_dict()
        assert plain.errors == traced.errors
        assert plain.protection_counts == traced.protection_counts


# ----------------------------------------------------------------------
# ground truth: independent recount + shadow oracle on Table 2 kernels
# ----------------------------------------------------------------------
TABLE2_KERNELS = ["505.mcf_r", "519.lbm_r", "520.omnetpp_r", "531.deepsjeng_r"]


def run_with_ground_truth_shim(name: str):
    """Run one kernel with telemetry on and an independent check recount.

    The shim wraps the three check entry points *outside* the sanitizer's
    own accounting: it counts calls on its own, and re-answers every
    executed region check with the byte-exact shadow oracle.  The
    fast path is disabled so every check truly executes (folding applies
    stat deltas without calling the check methods, which is exactly the
    double-count hazard the recount must not inherit).
    """
    san = GiantSan()
    tele = Telemetry()
    tele.attach(san)
    calls = {"access": 0, "cached": 0, "region": 0}
    oracle_disagreements = []
    nesting = {"in_cached": False}

    original_region = san.check_region
    original_access = san.check_access
    original_cached = san.check_cached

    def shim_region(start, end, access, anchor=None):
        if not nesting["in_cached"]:
            calls["region"] += 1
        result = original_region(start, end, access, anchor=anchor)
        left, right = start, end
        if san.enable_anchor and anchor is not None:
            left, right = min(start, anchor), max(end, anchor)
        if right > left:
            ok, _ = giantsan_region_is_addressable(san.shadow, left, right)
            if ok != result:
                oracle_disagreements.append((left, right, result, ok))
        return result

    def shim_access(address, width, access):
        calls["access"] += 1
        result = original_access(address, width, access)
        ok, _ = giantsan_region_is_addressable(
            san.shadow, address, address + width
        )
        if ok != result:
            oracle_disagreements.append((address, address + width, result, ok))
        return result

    def shim_cached(cache, base, offset, width, access):
        calls["cached"] += 1
        nesting["in_cached"] = True
        try:
            return original_cached(cache, base, offset, width, access)
        finally:
            nesting["in_cached"] = False

    san.check_region = shim_region
    san.check_access = shim_access
    san.check_cached = shim_cached

    spec = SPEC_BY_NAME[name]
    result = Session(san, fastpath=False, telemetry=tele).run(
        spec.build(), [1]
    )
    return result, calls, oracle_disagreements


class TestGroundTruth:
    @pytest.mark.parametrize("name", TABLE2_KERNELS)
    def test_checks_executed_matches_recount(self, name):
        result, calls, _ = run_with_ground_truth_shim(name)
        snap = result.telemetry
        expected = calls["access"] + calls["cached"] + calls["region"]
        assert snap.counters["checks_executed"] == expected
        assert snap.counters["checks_executed"] > 0

    @pytest.mark.parametrize("name", TABLE2_KERNELS)
    def test_every_check_agrees_with_shadow_oracle(self, name):
        result, _, disagreements = run_with_ground_truth_shim(name)
        assert disagreements == []
        assert not result.errors  # bug-free kernels: all checks passed

    @pytest.mark.parametrize("name", TABLE2_KERNELS)
    def test_split_and_hits_account_for_region_checks(self, name):
        result, calls, _ = run_with_ground_truth_shim(name)
        snap = result.telemetry
        fast, slow = snap.fast_slow_split
        # every cached call resolves to exactly one of: quasi-bound hit
        # or a region check (underflow CI or CI-with-anchor)
        assert (
            snap.counters["quasi_bound_hits"]
            + snap.counters["region_checks"]
            == calls["cached"] + calls["region"]
        )
        # the CI split never exceeds the region checks that ran it
        assert fast + slow <= (
            snap.counters["region_checks"]
            + snap.counters["instruction_checks"]
        )
        assert fast + slow > 0


# ----------------------------------------------------------------------
# quasi-bound convergence (§4.3)
# ----------------------------------------------------------------------
class TestConvergence:
    def test_limit_formula(self):
        assert quasi_bound_limit(8) == 0
        assert quasi_bound_limit(64) == 3
        assert quasi_bound_limit(1024) == 7
        assert quasi_bound_limit(16384) == 11

    def test_forward_walk_converges_within_bound(self):
        san = GiantSan()
        n = 1024
        allocation = san.malloc(n)
        cache = san.make_cache()
        steps = 0
        for offset in range(0, n, 8):
            before = cache.ub
            assert san.check_cached(
                cache, allocation.base, offset, 8, AccessType.READ
            )
            if cache.ub > before:
                steps += 1
        assert 0 < steps <= quasi_bound_limit(n)

    def test_interpreter_tracks_per_site_convergence(self):
        spec = SPEC_BY_NAME["520.omnetpp_r"]
        result = Session("GiantSan", fastpath=False, telemetry=True).run(
            spec.build(), [1]
        )
        snap = result.telemetry
        assert snap.convergence_per_site  # cached sites converged
        # 16384 bytes is the largest object any proxy allocates
        assert snap.convergence_max_steps <= quasi_bound_limit(16384)
        assert snap.convergence_total_steps <= snap.counters[
            "quasi_bound_updates"
        ]


# ----------------------------------------------------------------------
# profile study + exporters
# ----------------------------------------------------------------------
class TestProfileStudy:
    def test_profile_program_row(self):
        row = profile_program(SPEC_BY_NAME["519.lbm_r"], "GiantSan", 1)
        assert row.program == "519.lbm_r"
        assert row.snapshot.counters["checks_executed"] > 0
        assert row.seconds >= 0

    def test_study_and_wiring_check(self):
        study = run_profile_study(
            tool="GiantSan",
            programs=[SPEC_BY_NAME["505.mcf_r"], SPEC_BY_NAME["519.lbm_r"]],
            scale=1,
        )
        assert isinstance(study, ProfileStudy)
        assert wiring_problems(study) == []
        totals = study.totals()
        assert totals["checks_executed"] == sum(
            r.snapshot.counters["checks_executed"] for r in study.rows
        )

    def test_wiring_check_flags_dead_counters(self):
        study = run_profile_study(
            tool="GiantSan", programs=[SPEC_BY_NAME["519.lbm_r"]], scale=1
        )
        snap = study.rows[0].snapshot
        snap.counters["fast_check_hits"] = 0
        snap.counters["slow_path_entries"] = 0
        problems = wiring_problems(study)
        assert problems and "fast/slow" in problems[0]

    def test_unknown_tool_rejected(self):
        with pytest.raises(ValueError):
            run_profile_study(tool="NoSuchSan")

    def test_render_and_exports(self):
        study = run_profile_study(
            tool="GiantSan", programs=[SPEC_BY_NAME["519.lbm_r"]], scale=1
        )
        text = render_profile(study)
        assert "519.lbm_r" in text
        assert "fast" in text
        rows = telemetry_to_rows(study)
        assert rows[0]["program"] == "519.lbm_r"
        assert rows[0]["fast_check_hits"] == study.rows[
            0
        ].snapshot.counters["fast_check_hits"]
        import json

        payload = json.loads(profile_to_json(study))
        assert payload["kind"] == "telemetry_profile"
        assert payload["programs"][0]["telemetry"]["counters"]


# ----------------------------------------------------------------------
# explicit aggregation: per-Session registries + merge API
# ----------------------------------------------------------------------
class TestMergeAPI:
    def _run_demo(self, tool="GiantSan"):
        builder = ProgramBuilder()
        with builder.function("main") as f:
            f.malloc("buf", 64)
            with f.loop("i", 0, 8) as i:
                f.store("buf", i * 8, 8, i)
            f.free("buf")
        session = Session(tool, telemetry=True)
        result = session.run(builder.build())
        return result.telemetry

    def test_merge_snapshots_is_additive(self):
        first = self._run_demo()
        second = self._run_demo()
        from repro.telemetry import merge_snapshots

        merged = merge_snapshots([first, second])
        assert merged.tool == "GiantSan"
        for name in first.counters:
            assert merged.counters[name] == (
                first.counters[name] + second.counters.get(name, 0)
            )
        assert merged.convergence_total_steps == (
            first.convergence_total_steps + second.convergence_total_steps
        )
        assert merged.quarantine_peak_bytes == max(
            first.quarantine_peak_bytes, second.quarantine_peak_bytes
        )
        for name, stat in merged.phases.items():
            assert stat["events"] == (
                first.phases[name]["events"] + second.phases[name]["events"]
            )

    def test_merge_snapshots_rejects_mixed_tools(self):
        from repro.telemetry import merge_snapshots

        with pytest.raises(ValueError, match="different tools"):
            merge_snapshots([self._run_demo("GiantSan"),
                             self._run_demo("ASan")])
        with pytest.raises(ValueError, match="at least one"):
            merge_snapshots([])

    def test_registry_merge_folds_probe_counters(self):
        left, right = Telemetry(), Telemetry()
        left.incr("redzone_bytes_poisoned", 10)
        left.note_convergence(3)
        right.incr("redzone_bytes_poisoned", 5)
        right.note_convergence(3)
        right.note_convergence(7)
        right.note_superblock_decline("degree")
        merged = left.merge(right)
        assert merged is left
        assert left.counters["redzone_bytes_poisoned"] == 15
        assert left.convergence == {3: 2, 7: 1}
        assert left.declines == {"degree": 1}

    def test_concurrent_sessions_do_not_cross_contaminate(self):
        """Two telemetry Sessions running in parallel threads stay scoped."""
        import threading

        def build(iterations):
            builder = ProgramBuilder()
            with builder.function("main") as f:
                f.malloc("buf", iterations * 8)
                with f.loop("i", 0, iterations) as i:
                    f.store("buf", i * 8, 8, i)
                f.free("buf")
            return builder.build()

        # sequential ground truth
        expected = {}
        for tool, iterations in (("GiantSan", 8), ("ASan", 24)):
            session = Session(tool, telemetry=True)
            session.run(build(iterations))
            snapshot = session.telemetry.snapshot()
            expected[tool] = (snapshot.counters, snapshot.convergence_per_site)

        observed = {}
        barrier = threading.Barrier(2)

        def run(tool, iterations):
            session = Session(tool, telemetry=True)
            program = build(iterations)
            barrier.wait(timeout=30)
            session.run(program)
            snapshot = session.telemetry.snapshot()
            observed[tool] = (
                snapshot.counters, snapshot.convergence_per_site
            )

        threads = [
            threading.Thread(target=run, args=("GiantSan", 8)),
            threading.Thread(target=run, args=("ASan", 24)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert observed == expected
