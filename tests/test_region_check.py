"""Property tests: Algorithm 1 (CI) agrees with the byte-exact oracle.

The paper claims CI(L, R) safeguards arbitrary regions in O(1).  Here we
verify, over randomized heaps and regions, that the fast+slow check is
*exactly* as precise as scanning every shadow byte — and that it never
loads more than 4 shadow bytes doing so.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AccessType
from repro.memory import ArenaLayout
from repro.sanitizers import GiantSan
from repro.shadow.oracle import giantsan_region_is_addressable


def fresh_giantsan():
    layout = ArenaLayout(
        heap_size=1 << 16, stack_size=1 << 14, globals_size=1 << 13
    )
    return GiantSan(layout=layout)


@st.composite
def heap_and_region(draw):
    """A randomized heap plus an arbitrary candidate region."""
    san = fresh_giantsan()
    sizes = draw(
        st.lists(st.integers(min_value=1, max_value=600), min_size=1, max_size=6)
    )
    allocations = [san.malloc(size) for size in sizes]
    freed = draw(st.lists(st.booleans(), min_size=len(sizes), max_size=len(sizes)))
    for allocation, do_free in zip(allocations, freed):
        if do_free:
            san.free(allocation.base)
    low = allocations[0].chunk_base - 16
    high = allocations[-1].chunk_end + 16
    start = draw(st.integers(min_value=low, max_value=high - 1))
    length = draw(st.integers(min_value=1, max_value=high - start))
    return san, start, start + length


class TestAlgorithm1Exactness:
    @given(heap_and_region())
    @settings(max_examples=300, deadline=None)
    def test_ci_matches_oracle(self, case):
        san, start, end = case
        expected, _ = giantsan_region_is_addressable(san.shadow, start, end)
        assert san._ci(start, end) == expected

    @given(heap_and_region())
    @settings(max_examples=300, deadline=None)
    def test_constant_shadow_loads(self, case):
        """CI loads at most 4 shadow bytes regardless of region size."""
        san, start, end = case
        before = san.stats.shadow_loads
        san._ci(start, end)
        assert san.stats.shadow_loads - before <= 4


class TestAlignedRegions:
    """Exhaustive sweep over every aligned subregion of one object."""

    @pytest.mark.parametrize("size", [8, 12, 24, 68, 100, 256, 1000])
    def test_all_interior_regions_safe(self, size):
        san = fresh_giantsan()
        allocation = san.malloc(size)
        base = allocation.base
        for start_off in range(0, size, 8):
            for end_off in range(start_off + 1, size + 1):
                assert san._ci(base + start_off, base + end_off), (
                    f"size={size} [{start_off},{end_off}) wrongly rejected"
                )

    @pytest.mark.parametrize("size", [8, 12, 24, 68, 100])
    def test_one_past_end_rejected(self, size):
        san = fresh_giantsan()
        allocation = san.malloc(size)
        base = allocation.base
        for start_off in range(0, size, 8):
            assert not san._ci(base + start_off, base + size + 1), (
                f"size={size} overflow from {start_off} missed"
            )

    def test_empty_region_is_safe(self):
        san = fresh_giantsan()
        allocation = san.malloc(64)
        assert san._ci(allocation.base, allocation.base)

    def test_unaligned_start_within_partial(self):
        san = fresh_giantsan()
        allocation = san.malloc(13)  # good segment + 5-partial
        base = allocation.base
        assert san._ci(base + 9, base + 13)
        assert not san._ci(base + 9, base + 14)

    def test_region_through_redzone_rejected(self):
        san = fresh_giantsan()
        a = san.malloc(64)
        b = san.malloc(64)
        lo, hi = sorted([a.base, b.base])
        assert not san._ci(lo, hi + 8)

    def test_wild_region_rejected(self):
        san = fresh_giantsan()
        assert not san._ci(-64, 0)
        total = san.layout.total_size
        assert not san._ci(total - 8, total + 8)


class TestFastSlowSplit:
    def test_whole_object_is_fast(self):
        """The first segment's degree covers the whole object."""
        san = fresh_giantsan()
        allocation = san.malloc(4096)
        san.reset_stats()
        san.check_region(
            allocation.base, allocation.base + 4096, AccessType.READ
        )
        assert san.stats.fast_checks == 1
        assert san.stats.slow_checks == 0
        assert san.stats.shadow_loads == 1

    def test_suffix_region_may_need_slow_check(self):
        """A region starting past the fold apex exercises the slow path."""
        san = fresh_giantsan()
        allocation = san.malloc(24)  # degrees (1)(1)(0)
        san.reset_stats()
        assert san.check_region(
            allocation.base, allocation.base + 24, AccessType.READ
        )
        assert san.stats.slow_checks == 1

    def test_fast_check_covers_majority_prefix(self):
        """u covers > 50% of addressable bytes after L (paper §4.2)."""
        from repro.shadow import giantsan_encoding as enc

        san = fresh_giantsan()
        for size in (16, 100, 1000, 4096):
            allocation = san.malloc(size)
            code = san.shadow.load(allocation.base >> 3)
            guaranteed = enc.guaranteed_bytes(code)
            assert guaranteed * 2 > (size // 8) * 8
