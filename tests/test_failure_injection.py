"""Failure injection: corrupted metadata and hostile inputs.

A sanitizer's guarantees rest on its metadata invariants; these tests
deliberately break them and assert the system degrades the way the
design says it must — checks turn conservative or report, never crash,
and the oracle exposes disagreements.
"""

import pytest

from repro.errors import AccessType, AddressSpaceError, ErrorKind
from repro.memory import ArenaLayout
from repro.sanitizers import ASan, GiantSan
from repro.shadow import giantsan_encoding as enc
from repro.shadow.oracle import giantsan_region_is_addressable

SMALL = ArenaLayout(heap_size=1 << 16, stack_size=1 << 14, globals_size=1 << 13)


class TestShadowCorruption:
    def test_interior_poison_requires_refolding(self):
        """CI trusts the folding summaries: poisoning an interior
        segment WITHOUT downgrading the preceding degrees violates the
        encoding invariant, and the fast check sails over it.  This is
        the contract a manual sub-object poisoning API would have to
        honour — refold the prefix, and detection works."""
        san = GiantSan(layout=SMALL)
        allocation = san.malloc(256)
        middle = (allocation.base + 128) >> 3
        san.shadow.store(middle, enc.HEAP_FREED)
        # invariant broken: the head degree still claims 256 bytes, so
        # the fast check accepts — but the oracle sees the poison
        assert san.check_region(
            allocation.base, allocation.base + 256, AccessType.READ
        )
        ok, fault = giantsan_region_is_addressable(
            san.shadow, allocation.base, allocation.base + 256
        )
        assert not ok and fault == allocation.base + 128
        # refolding the prefix restores the invariant and detection
        enc.refold_region(san.shadow, allocation.base, 128)
        assert not san.check_region(
            allocation.base, allocation.base + 256, AccessType.READ
        )
        san.log.clear()
        # accesses inside the refolded prefix still pass
        assert san.check_region(
            allocation.base, allocation.base + 128, AccessType.READ
        )

    def test_overclaimed_degree_detected_by_oracle(self):
        """An attacker (or bug) writing an inflated folding degree makes
        CI and the oracle disagree — the property suite's invariant."""
        san = GiantSan(layout=SMALL)
        victim = san.malloc(16)  # 2 good segments
        index = victim.base >> 3
        san.shadow.store(index, enc.encode_folded(8))  # claims 2048 bytes
        ok_ci = san._ci(victim.base, victim.base + 1024)
        ok_oracle, _ = giantsan_region_is_addressable(
            san.shadow, victim.base, victim.base + 1024
        )
        assert ok_ci and not ok_oracle  # the corruption is visible

    def test_verify_degrees_flags_corruption(self):
        from repro.shadow.folding import verify_degrees

        codes = list(enc.object_codes(64))
        degrees = [enc.decode_degree(c) for c in codes]
        assert verify_degrees(degrees)
        degrees[-1] = 5  # inflated tail degree
        assert not verify_degrees(degrees)

    def test_zeroed_shadow_means_addressable_for_asan(self):
        """ASan's 0 code is 'good': wiping shadow silently disables
        detection (why shadow itself must be protected in real ASan)."""
        san = ASan(layout=SMALL)
        allocation = san.malloc(32)
        first = allocation.chunk_base >> 3
        san.shadow.fill(first, allocation.chunk_size >> 3, 0)
        assert san.check_access(allocation.base + 40, 4, AccessType.READ)


class TestHostileInputs:
    def test_checks_survive_extreme_addresses(self):
        san = GiantSan(layout=SMALL)
        for address in (-(1 << 62), -1, 1 << 62):
            assert not san.check_region(
                address, address + 8, AccessType.READ
            )
        assert all(
            r.kind in (ErrorKind.WILD_ACCESS, ErrorKind.UNKNOWN)
            for r in san.log.reports
        )

    def test_inverted_region_is_trivially_safe(self):
        san = GiantSan(layout=SMALL)
        assert san.check_region(1000, 100, AccessType.READ)

    def test_interpreter_survives_wild_store(self):
        """A failed check is reported and the faulting access is absorbed
        (a real run would segfault; the simulator must not)."""
        from repro import ProgramBuilder, Session

        b = ProgramBuilder()
        with b.function("main") as f:
            f.malloc("p", 16)
            f.store("p", 1 << 40, 8, 1)
        result = Session("GiantSan").run(b.build())
        assert result.errors
        assert result.instructions_executed > 0

    def test_address_space_rejects_out_of_arena(self):
        from repro.memory import AddressSpace

        space = AddressSpace(SMALL)
        with pytest.raises(AddressSpaceError):
            space.store(SMALL.total_size + 10, 8, 1)

    def test_free_of_stack_address_reported(self):
        from repro import ProgramBuilder, Session

        b = ProgramBuilder()
        with b.function("main") as f:
            f.stack_alloc("buf", 32)
            f.free("buf")
        result = Session("GiantSan").run(b.build())
        assert ErrorKind.INVALID_FREE in result.errors.kinds()

    def test_zero_length_intrinsics_harmless(self):
        from repro import ProgramBuilder, Session

        b = ProgramBuilder()
        with b.function("main") as f:
            f.malloc("p", 16)
            f.memset("p", 0, 0)
            f.memcpy("p", 0, "p", 8, 0)
            f.free("p")
        for tool in ("GiantSan", "ASan", "HWASan"):
            assert not Session(tool).run(b.build()).errors, tool


class TestHaltOnError:
    def test_halting_sanitizer_stops_at_first_report(self):
        from repro.errors import SanitizerError

        san = GiantSan(layout=SMALL, halt_on_error=True)
        allocation = san.malloc(16)
        with pytest.raises(SanitizerError) as excinfo:
            san.check_access(allocation.base + 16, 4, AccessType.READ)
        assert excinfo.value.report.kind is ErrorKind.HEAP_BUFFER_OVERFLOW
        assert len(san.log) == 1
