"""Tests for the heap allocator: alignment, redzones, size policies."""

import pytest

from repro.errors import AllocationError
from repro.memory import (
    AddressSpace,
    Allocation,
    AllocationState,
    ArenaLayout,
    HeapAllocator,
    exact_size_policy,
    low_fat_policy,
    power_of_two_policy,
)


class TestBasicAllocation:
    def test_base_is_8_byte_aligned(self, allocator):
        for size in (1, 7, 8, 13, 100, 4096):
            assert allocator.malloc(size).base % 8 == 0

    def test_requested_size_preserved(self, allocator):
        allocation = allocator.malloc(100)
        assert allocation.requested_size == 100
        assert allocation.usable_size == 100

    def test_redzones_surround_object(self, allocator):
        allocation = allocator.malloc(24)
        assert allocation.chunk_base < allocation.base
        assert allocation.chunk_end > allocation.end
        assert allocation.left_redzone >= 16
        assert allocation.right_redzone >= 1

    def test_chunks_do_not_overlap(self, allocator):
        a = allocator.malloc(40)
        b = allocator.malloc(40)
        assert a.chunk_end <= b.chunk_base or b.chunk_end <= a.chunk_base

    def test_chunks_segment_aligned(self, allocator):
        a = allocator.malloc(13)
        assert a.chunk_base % 8 == 0
        assert a.chunk_size % 8 == 0

    def test_unique_ids(self, allocator):
        ids = {allocator.malloc(8).allocation_id for _ in range(10)}
        assert len(ids) == 10

    def test_zero_size_allocation(self, allocator):
        allocation = allocator.malloc(0)
        assert allocation.usable_size >= 1

    def test_negative_size_rejected(self, allocator):
        with pytest.raises(AllocationError):
            allocator.malloc(-1)

    def test_arena_exhaustion(self):
        layout = ArenaLayout(heap_size=1 << 12, stack_size=1 << 12, globals_size=1 << 12)
        allocator = HeapAllocator(AddressSpace(layout), redzone=16)
        with pytest.raises(AllocationError):
            for _ in range(1000):
                allocator.malloc(64)


class TestFreeAndRecycle:
    def test_free_marks_quarantined(self, allocator):
        allocation = allocator.malloc(32)
        freed = allocator.free(allocation.base)
        assert freed is allocation
        assert allocation.state is AllocationState.QUARANTINED

    def test_double_free_raises(self, allocator):
        allocation = allocator.malloc(32)
        allocator.free(allocation.base)
        with pytest.raises(AllocationError):
            allocator.free(allocation.base)

    def test_invalid_free_raises(self, allocator):
        allocation = allocator.malloc(32)
        with pytest.raises(AllocationError):
            allocator.free(allocation.base + 8)

    def test_release_requires_quarantined(self, allocator):
        allocation = allocator.malloc(32)
        with pytest.raises(AllocationError):
            allocator.release_chunk(allocation)

    def test_chunk_reuse_after_release(self, allocator):
        a = allocator.malloc(32)
        allocator.free(a.base)
        allocator.release_chunk(a)
        b = allocator.malloc(32)
        assert b.chunk_base == a.chunk_base

    def test_lookup_live_only(self, allocator):
        allocation = allocator.malloc(32)
        assert allocator.lookup(allocation.base) is allocation
        allocator.free(allocation.base)
        assert allocator.lookup(allocation.base) is None

    def test_find_containing(self, allocator):
        allocation = allocator.malloc(64)
        assert allocator.find_containing(allocation.base + 10) is allocation
        assert allocator.find_containing(allocation.chunk_base) is None

    def test_bytes_in_use_accounting(self, allocator):
        before = allocator.bytes_in_use
        a = allocator.malloc(128)
        assert allocator.bytes_in_use == before + a.chunk_size
        allocator.free(a.base)
        allocator.release_chunk(a)
        assert allocator.bytes_in_use == before


class TestSizePolicies:
    def test_exact_policy_identity(self):
        assert exact_size_policy(600) == 600

    @pytest.mark.parametrize(
        "requested,expected",
        [(1, 1), (2, 2), (3, 4), (600, 1024), (1024, 1024), (1025, 2048)],
    )
    def test_power_of_two_policy(self, requested, expected):
        assert power_of_two_policy(requested) == expected

    @pytest.mark.parametrize(
        "requested,expected",
        [(1, 16), (16, 16), (17, 20), (600, 640), (1024, 1024), (1100, 1280)],
    )
    def test_low_fat_policy(self, requested, expected):
        assert low_fat_policy(requested) == expected

    def test_low_fat_never_shrinks(self):
        for requested in range(1, 3000, 7):
            assert low_fat_policy(requested) >= requested

    def test_policy_slack_is_usable(self, space):
        allocator = HeapAllocator(space, redzone=0, size_policy=power_of_two_policy)
        allocation = allocator.malloc(600)
        assert allocation.usable_size == 1024
        assert allocation.usable_end - allocation.base == 1024

    def test_shrinking_policy_rejected(self, space):
        allocator = HeapAllocator(space, redzone=0, size_policy=lambda s: s // 2)
        with pytest.raises(AllocationError):
            allocator.malloc(100)


class TestAllocationRecord:
    def test_contains(self, allocator):
        allocation = allocator.malloc(50)
        assert allocation.contains(allocation.base)
        assert allocation.contains(allocation.base + 49)
        assert not allocation.contains(allocation.base + 50)
        assert not allocation.contains(allocation.base - 1)

    def test_chunk_size_consistent(self, allocator):
        allocation = allocator.malloc(100)
        assert allocation.chunk_size == (
            allocation.left_redzone
            + allocation.usable_size
            + allocation.right_redzone
        )
