"""The interprocedural analysis layer: call graph, summaries, seeding.

Covers the whole stack bottom-up: call-graph construction and SCC
condensation, bottom-up function summaries, the rewired analyses
(available checks survive provably non-freeing calls; alloc state only
dies through summarized may-free sets), cross-call check elision with
its audit trail, the degenerate shapes that must fall back to the old
conservative behaviour, and the call-heavy acceptance workload where
the dynamic check count must drop with summaries enabled while the
semantics stay identical across the engine x shadow x fastpath matrix.
"""

import pytest

from repro.dataflow import (
    LIVE,
    MAYBE,
    AllocStateAnalysis,
    AvailableCheckAnalysis,
    InterproceduralContext,
    analyze_program,
    build_call_graph,
    call_frees_nothing,
    compute_summaries,
    lower_function,
    solve,
    whole_program_data,
)
from repro.ir.builder import ProgramBuilder
from repro.ir.nodes import Call, V
from repro.ir.program import Function, Program
from repro.passes.alias import ProvenanceMap
from repro.passes.instrument import instrument
from repro.runtime.session import Session
from repro.sanitizers import SANITIZER_FACTORIES
from repro.workloads import build_callheavy_program


def _checks_in(program):
    from repro.ir.nodes import CheckAccess, CheckCached, CheckRegion
    from repro.ir.program import walk

    found = []
    for function in program.functions.values():
        for instr in walk(function.body):
            if isinstance(instr, (CheckAccess, CheckRegion, CheckCached)):
                found.append(instr)
    return found


def _elided_markers(program):
    from repro.ir.nodes import CheckElided
    from repro.ir.program import walk

    found = []
    for function in program.functions.values():
        for instr in walk(function.body):
            if isinstance(instr, CheckElided):
                found.append(instr)
    return found


# ----------------------------------------------------------------------
# call graph
# ----------------------------------------------------------------------
class TestCallGraph:
    def test_edges_and_bottom_up_order(self):
        b = ProgramBuilder()
        with b.function("leaf", params=["p"]) as f:
            f.load("x", "p", 0, 8)
            f.ret(V("x"))
        with b.function("mid", params=["p"]) as f:
            f.call("leaf", [V("p")], dst="r")
            f.ret(V("r"))
        with b.function("main") as f:
            f.malloc("buf", 64)
            f.call("mid", [V("buf")], dst="r")
            f.ret(V("r"))
        graph = build_call_graph(b.build())
        assert graph.callees["main"] == {"mid"}
        assert graph.callees["mid"] == {"leaf"}
        order = graph.bottom_up()
        assert order.index("leaf") < order.index("mid") < order.index("main")
        assert not graph.recursive

    def test_self_recursion_flagged(self):
        b = ProgramBuilder()
        with b.function("rec", params=["d"]) as f:
            with f.if_(V("d").gt(0)):
                f.call("rec", [V("d") - 1])
            f.ret(0)
        with b.function("main") as f:
            f.call("rec", [3])
            f.ret(0)
        graph = build_call_graph(b.build())
        assert graph.recursive == {"rec"}

    def test_mutual_recursion_one_scc(self):
        b = ProgramBuilder()
        with b.function("even", params=["d"]) as f:
            with f.if_(V("d").gt(0)):
                f.call("odd", [V("d") - 1])
            f.ret(0)
        with b.function("odd", params=["d"]) as f:
            with f.if_(V("d").gt(0)):
                f.call("even", [V("d") - 1])
            f.ret(0)
        with b.function("main") as f:
            f.call("even", [4])
            f.ret(0)
        graph = build_call_graph(b.build())
        assert graph.recursive == {"even", "odd"}
        assert ["even", "odd"] in [list(s) for s in graph.sccs]

    def test_unknown_target_recorded_not_edged(self):
        # hand-built (validate() would reject the dangling target)
        program = Program()
        program.add(
            Function(name="main", params=[], body=[Call("missing", [], None)])
        )
        program.entry = "main"
        graph = build_call_graph(program)
        assert "main" in graph.unknown_callers
        assert graph.callees["main"] == set()


# ----------------------------------------------------------------------
# summaries
# ----------------------------------------------------------------------
def _summary_fixture():
    b = ProgramBuilder()
    with b.function("reader", params=["p"]) as f:
        f.load("x", "p", 0, 8)
        f.load("y", "p", 8, 8)
        f.ret(V("x") + V("y"))
    with b.function("releaser", params=["p"]) as f:
        f.free("p")
        f.ret(0)
    with b.function("maker") as f:
        f.malloc("fresh", 48)
        f.ret(V("fresh"))
    with b.function("wrap", params=["p"]) as f:
        f.call("reader", [V("p")], dst="r")
        f.ret(V("r"))
    with b.function("spin", params=["d"]) as f:
        with f.if_(V("d").gt(0)):
            f.call("spin", [V("d") - 1])
        f.ret(0)
    with b.function("main") as f:
        f.malloc("buf", 64)
        f.call("wrap", [V("buf")], dst="a")
        f.call("maker", [], dst="q")
        f.call("releaser", [V("buf")])
        f.call("spin", [2])
        f.ret(V("a"))
    return b.build()


class TestSummaries:
    def test_reader_is_pure_and_non_freeing(self):
        program = _summary_fixture()
        summaries = compute_summaries(program)
        reader = summaries["reader"]
        assert reader.frees_nothing
        assert not reader.writes_memory
        assert reader.param_facts[0].must_access == ((0, 16),)

    def test_wrapper_folds_callee_access_range(self):
        summaries = compute_summaries(_summary_fixture())
        wrap = summaries["wrap"]
        assert wrap.frees_nothing
        assert wrap.param_facts[0].must_access == ((0, 16),)

    def test_releaser_freed_param(self):
        summaries = compute_summaries(_summary_fixture())
        assert summaries["releaser"].param_facts[0].freed
        assert not summaries["releaser"].frees_nothing

    def test_maker_returns_fresh_allocation(self):
        summaries = compute_summaries(_summary_fixture())
        assert summaries["maker"].returns_fresh == 48

    def test_recursive_gets_conservative_top(self):
        summaries = compute_summaries(_summary_fixture())
        spin = summaries["spin"]
        assert spin.recursive
        assert spin.may_free_unknown

    def test_call_frees_nothing_predicate(self):
        program = _summary_fixture()
        summaries = compute_summaries(program)

        def call_to(name):
            return Call(name, [V("p")], None)

        assert call_frees_nothing(call_to("reader"), summaries)
        assert call_frees_nothing(call_to("wrap"), summaries)
        assert not call_frees_nothing(call_to("releaser"), summaries)
        assert not call_frees_nothing(call_to("spin"), summaries)
        assert not call_frees_nothing(call_to("reader"), None)

    def test_stack_returner_is_not_fresh(self):
        # returning a stack slot must never count as a fresh allocation
        b = ProgramBuilder()
        with b.function("uar_helper") as f:
            f.stack_alloc("sbuf", 16)
            f.ret(V("sbuf"))
        with b.function("main") as f:
            f.call("uar_helper", [], dst="p")
            f.ret(0)
        summaries = compute_summaries(b.build())
        assert summaries["uar_helper"].returns_fresh is None


# ----------------------------------------------------------------------
# rewired analyses
# ----------------------------------------------------------------------
def _before_second_check(function, summaries):
    """Available facts immediately before the second placed check —
    i.e. after everything between the two checks has transferred."""
    from repro.ir.nodes import CheckAccess
    from repro.ir.program import walk

    pmap = ProvenanceMap(function, summaries=summaries)
    cfg = lower_function(function)
    analysis = AvailableCheckAnalysis(function, pmap, summaries=summaries)
    solution = solve(cfg, analysis)
    checks = [
        i for i in walk(function.body) if isinstance(i, CheckAccess)
    ]
    assert len(checks) >= 2
    return solution.state_before(checks[1])


class TestRewiredAnalyses:
    def _program(self, callee_frees):
        from repro.passes.base import PassStats
        from repro.passes.check_placement import CheckPlacement

        b = ProgramBuilder()
        with b.function("callee", params=["p"]) as f:
            if callee_frees:
                f.free("p")
            f.ret(0)
        with b.function("main") as f:
            f.malloc("buf", 64)
            f.load("x", "buf", 0, 8)
            f.call("callee", [V("buf")])
            f.load("y", "buf", 0, 8)
            f.ret(V("x") + V("y"))
        program = b.build()
        # availability facts are generated by placed checks
        CheckPlacement("instruction").run(program, PassStats())
        return program

    def test_nonfreeing_call_preserves_available_facts(self):
        # satellite 3 regression: the call must no longer invalidate
        # the caller's available checks
        program = self._program(callee_frees=False)
        summaries = compute_summaries(program)
        facts = _before_second_check(program.functions["main"], summaries)
        assert any(
            isinstance(key, str) and key.startswith("alloc:")
            for key in facts
        )

    def test_freeing_call_still_kills_facts(self):
        program = self._program(callee_frees=True)
        summaries = compute_summaries(program)
        facts = _before_second_check(program.functions["main"], summaries)
        assert not any(
            isinstance(key, str) and key.startswith("alloc:")
            for key in facts
        )

    def test_allocstate_precise_call_kills_only_freed_params(self):
        b = ProgramBuilder()
        with b.function("sink", params=["p"]) as f:
            f.free("p")
            f.ret(0)
        with b.function("main") as f:
            f.malloc("a", 32)
            f.malloc("b", 32)
            f.call("sink", [V("a")])
            f.ret(0)
        program = b.build()
        summaries = compute_summaries(program)
        main = program.functions["main"]
        pmap = ProvenanceMap(main, summaries=summaries)
        cfg = lower_function(main)
        solution = solve(
            cfg, AllocStateAnalysis(main, pmap, summaries=summaries)
        )
        exit_state = solution.in_states[1]
        # "freed" in a summary is may-free: the arg degrades to MAYBE,
        # the other allocation provably stays LIVE
        freed_root = pmap.provenance("a").root
        live_root = pmap.provenance("b").root
        assert exit_state[freed_root] == MAYBE
        assert exit_state[live_root] == LIVE

    def test_param_alias_free_degrades_sibling_params(self):
        # free through one param root must not leave the other LIVE-ish:
        # the caller may pass the same object twice
        from repro.passes.base import PassStats
        from repro.passes.check_placement import CheckPlacement

        b = ProgramBuilder()
        with b.function("kern", params=["p", "q"]) as f:
            f.load("x", "q", 0, 8)
            f.free("p")
            f.load("y", "q", 0, 8)
            f.ret(V("x") + V("y"))
        with b.function("main") as f:
            f.malloc("buf", 32)
            f.call("kern", [V("buf"), V("buf")], dst="r")
            f.ret(V("r"))
        program = b.build()
        CheckPlacement("instruction").run(program, PassStats())
        summaries = compute_summaries(program)
        kern = program.functions["kern"]
        pmap = ProvenanceMap(kern, summaries=summaries)
        cfg = lower_function(kern)
        solution = solve(
            cfg, AllocStateAnalysis(kern, pmap, summaries=summaries)
        )
        exit_state = solution.in_states[1]
        assert exit_state.get("param:q") == MAYBE
        # availability through q must be gone between the free and the
        # second check (which then legitimately regenerates it)
        facts = _before_second_check(kern, summaries)
        assert "param:q" not in facts


# ----------------------------------------------------------------------
# cross-call elision + audit
# ----------------------------------------------------------------------
class TestCrossCallElision:
    def test_callee_prologue_dies_from_caller_coverage(self):
        b = ProgramBuilder()
        with b.function("peek", params=["p"]) as f:
            f.load("x", "p", 0, 8)
            f.ret(V("x"))
        with b.function("main") as f:
            f.malloc("buf", 64)
            f.load("warm", "buf", 0, 8)  # caller validates [0, 8)
            f.call("peek", [V("buf")], dst="r")
            f.ret(V("r") + V("warm"))
        tool = SANITIZER_FACTORIES["ASan--"]()
        with_ipo = instrument(b.build(), tool=tool, interprocedural=True)
        without = instrument(b.build(), tool=tool, interprocedural=False)
        assert len(_checks_in(with_ipo.program)) < len(
            _checks_in(without.program)
        )
        assert with_ipo.stats.notes.get("cross_call_eliminated", 0) >= 1

    def test_cross_call_elisions_carry_audit_markers(self):
        program = build_callheavy_program()
        tool = SANITIZER_FACTORIES["GiantSan"]()
        audited = instrument(
            program, tool=tool, audit_elisions=True, interprocedural=True
        )
        assert audited.stats.notes.get("cross_call_eliminated", 0) >= 1
        reasons = [m.reason for m in _elided_markers(audited.program)]
        assert any("across calls" in reason for reason in reasons)

    def test_audit_replay_confirms_cross_call_elisions(self):
        program = build_callheavy_program()
        for tool in ("GiantSan", "ASan--"):
            session = Session(
                tool, memoize=False, audit_elisions=True,
                interprocedural=True,
            )
            result = session.run(program, args=[6])
            assert result.elision_audit_failures == []
            assert not result.errors


# ----------------------------------------------------------------------
# degenerate shapes fall back byte-identically
# ----------------------------------------------------------------------
def _observables(tool, program, args=None, **kwargs):
    session = Session(tool, memoize=False, **kwargs)
    result = session.run(program, args)
    return {
        "return_value": result.return_value,
        "errors": [(e.kind, e.address) for e in result.errors],
        "protection": dict(result.protection_counts),
    }


class TestDegenerateShapes:
    def test_self_recursion_byte_identical(self):
        b = ProgramBuilder()
        with b.function("walk", params=["p", "d"]) as f:
            f.assign("acc", 0)
            with f.if_(V("d").gt(0)):
                f.load("v", "p", (V("d") - 1) * 8, 8)
                f.call("walk", [V("p"), V("d") - 1], dst="sub")
                f.assign("acc", V("v") + V("sub"))
            f.ret(V("acc"))
        with b.function("main") as f:
            f.malloc("buf", 64)
            f.memset("buf", 0, 64, 3)
            f.call("walk", [V("buf"), 8], dst="r")
            f.free("buf")
            f.ret(V("r"))
        program = b.build()
        for tool in ("GiantSan", "ASan--"):
            on = _observables(tool, program, interprocedural=True)
            off = _observables(tool, program, interprocedural=False)
            assert on == off

    def test_mutual_recursion_byte_identical(self):
        b = ProgramBuilder()
        with b.function("ping", params=["p", "d"]) as f:
            with f.if_(V("d").gt(0)):
                f.store("p", V("d"), 1, V("d"))
                f.call("pong", [V("p"), V("d") - 1])
            f.ret(0)
        with b.function("pong", params=["p", "d"]) as f:
            with f.if_(V("d").gt(0)):
                f.load("v", "p", V("d"), 1)
                f.call("ping", [V("p"), V("d") - 1])
            f.ret(0)
        with b.function("main") as f:
            f.malloc("buf", 32)
            f.call("ping", [V("buf"), 6])
            f.ret(0)
        program = b.build()
        for tool in ("GiantSan", "ASan--"):
            assert _observables(
                tool, program, interprocedural=True
            ) == _observables(tool, program, interprocedural=False)

    def test_unreachable_block_does_not_confuse_seeding(self):
        b = ProgramBuilder()
        with b.function("peek", params=["p"]) as f:
            f.load("x", "p", 0, 8)
            f.ret(V("x"))
        with b.function("main") as f:
            f.malloc("buf", 16)
            f.ret(0)
            # unreachable: a call site the solver never reaches
            f.call("peek", [V("buf")], dst="dead")
        program = b.build()
        for tool in ("GiantSan", "ASan--"):
            on = _observables(tool, program, interprocedural=True)
            off = _observables(tool, program, interprocedural=False)
            assert on["return_value"] == off["return_value"]
            assert on["errors"] == off["errors"]

    def test_buggy_reports_identical_across_modes(self):
        # a real UAF reached through a call must be reported the same
        # with and without summaries
        b = ProgramBuilder()
        with b.function("use", params=["p"]) as f:
            f.load("x", "p", 0, 8)
            f.ret(V("x"))
        with b.function("main") as f:
            f.malloc("buf", 32)
            f.free("buf")
            f.call("use", [V("buf")], dst="r")
            f.ret(V("r"))
        program = b.build()
        for tool in ("GiantSan", "ASan", "ASan--"):
            on = _observables(tool, program, interprocedural=True)
            off = _observables(tool, program, interprocedural=False)
            assert on["errors"] == off["errors"]
            assert on["errors"], tool

    def test_aliased_free_in_callee_still_reported(self):
        # same buffer passed as both params; callee frees through one
        # and touches through the other — summaries must not elide the
        # catching check
        b = ProgramBuilder()
        with b.function("kern", params=["p", "q"]) as f:
            f.load("x", "q", 0, 8)
            f.free("p")
            f.load("y", "q", 0, 8)  # UAF when p aliases q
            f.ret(V("x") + V("y"))
        with b.function("main") as f:
            f.malloc("buf", 32)
            f.call("kern", [V("buf"), V("buf")], dst="r")
            f.ret(V("r"))
        program = b.build()
        for ipo in (True, False):
            obs = _observables("GiantSan", program, interprocedural=ipo)
            assert obs["errors"], f"interprocedural={ipo}"


# ----------------------------------------------------------------------
# acceptance: call-heavy check-count drop + matrix identity
# ----------------------------------------------------------------------
class TestCallHeavyAcceptance:
    def test_dynamic_check_count_drops_with_summaries(self):
        program = build_callheavy_program()
        for tool in ("GiantSan", "ASan--"):
            counts = {}
            semantics = {}
            for ipo in (True, False):
                session = Session(tool, memoize=False, interprocedural=ipo)
                result = session.run(program, args=[10])
                counts[ipo] = result.stats.checks_executed
                semantics[ipo] = (
                    result.return_value,
                    [(e.kind, e.address) for e in result.errors],
                )
            assert counts[True] < counts[False], tool
            assert semantics[True] == semantics[False], tool

    @pytest.mark.parametrize("engine", ["tree", "compiled"])
    @pytest.mark.parametrize("shadow", ["bytearray", "numpy"])
    @pytest.mark.parametrize("fastpath", [False, True])
    def test_matrix_identity(self, engine, shadow, fastpath):
        pytest.importorskip("numpy") if shadow == "numpy" else None
        program = build_callheavy_program()
        baseline = None
        session = Session(
            "GiantSan",
            memoize=False,
            engine=engine,
            shadow=shadow,
            fastpath=fastpath,
            interprocedural=True,
        )
        result = session.run(program, args=[5])
        observed = (
            result.return_value,
            [(e.kind, e.address) for e in result.errors],
        )
        reference = Session(
            "GiantSan", memoize=False, interprocedural=True
        ).run(program, args=[5])
        baseline = (
            reference.return_value,
            [(e.kind, e.address) for e in reference.errors],
        )
        assert observed == baseline


# ----------------------------------------------------------------------
# whole-program data + detector
# ----------------------------------------------------------------------
class TestWholeProgram:
    def test_data_shape(self):
        data = whole_program_data(build_callheavy_program())
        assert data["entry"] == "main"
        assert "digest" in data["call_graph"]["edges"]["main"]
        assert "countdown" in data["call_graph"]["recursive"]
        assert data["summaries"]["digest"]["frees_nothing"]
        assert data["findings"] == []

    def test_detector_cross_call_oob(self):
        # callee demands [0, 16) of its param; caller hands it 8 bytes
        b = ProgramBuilder()
        with b.function("wide", params=["p"]) as f:
            f.load("x", "p", 0, 8)
            f.load("y", "p", 8, 8)
            f.ret(V("x") + V("y"))
        with b.function("main") as f:
            f.malloc("small", 8)
            f.call("wide", [V("small")], dst="r")
            f.ret(V("r"))
        findings = analyze_program(b.build(), interprocedural=True)
        assert any(f.kind == "definite-oob" for f in findings)
        # without summaries the call is opaque: no such finding
        findings_off = analyze_program(b.build(), interprocedural=False)
        assert not any(f.kind == "definite-oob" for f in findings_off)

    def test_detector_cross_call_uaf(self):
        b = ProgramBuilder()
        with b.function("use", params=["p"]) as f:
            f.load("x", "p", 0, 8)
            f.ret(V("x"))
        with b.function("main") as f:
            f.malloc("buf", 32)
            f.free("buf")
            f.call("use", [V("buf")], dst="r")
            f.ret(V("r"))
        findings = analyze_program(b.build(), interprocedural=True)
        assert any(f.kind == "definite-uaf" for f in findings)

    def test_juliet_good_cases_stay_clean(self):
        from repro.workloads import juliet_suite_cached

        tool = SANITIZER_FACTORIES["GiantSan"]
        for case in juliet_suite_cached():
            if case.buggy:
                continue
            ip = instrument(
                case.program, tool=tool(), interprocedural=True
            )
            assert ip.stats.findings == [], case.case_id


# ----------------------------------------------------------------------
# CLI surfaces
# ----------------------------------------------------------------------
class TestAnalyzeCli:
    def test_json_format(self, capsys):
        import json

        from repro.cli import main

        assert main(
            ["analyze", "--format", "json", "--program", "505.mcf_r"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["interprocedural"] is True
        assert payload["programs"][0]["name"] == "505.mcf_r"
        assert "pass_timings_us" in payload

    def test_whole_program_text(self, capsys):
        from repro.cli import main

        assert main(
            ["analyze", "--program", "505.mcf_r", "--whole-program"]
        ) == 0
        out = capsys.readouterr().out
        assert "call graph" in out
        assert "function summaries:" in out

    def test_no_interproc_flag(self, capsys):
        import json

        from repro.cli import main

        assert main(
            [
                "analyze", "--format", "json", "--no-interproc",
                "--program", "505.mcf_r",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["interprocedural"] is False
        assert payload["totals"]["cross_call_elided"] == 0
